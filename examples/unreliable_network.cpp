// Unreliable network — the failure-injection extension in action.  The
// paper assumes lossless, instantaneous negotiation; real wide-area
// deployments drop enquiries.  This example sweeps the enquiry-channel
// loss rate and shows how the Grid-Federation protocol degrades: timeouts
// burn rank-walk attempts, phantom reservations get cancelled, acceptance
// erodes gently rather than collapsing.
//
//   $ ./build/examples/unreliable_network

#include <cstdio>

#include "cluster/catalog.hpp"
#include "core/federation.hpp"
#include "stats/table.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace gridfed;

  stats::Table t({"Drop rate", "Accepted %", "Dropped msgs", "Cancelled holds",
                  "Sent msgs", "Avg negotiations/job"});
  for (const double drop : {0.0, 0.05, 0.10, 0.20, 0.30, 0.50}) {
    core::FederationConfig cfg;
    cfg.message_drop_rate = drop;
    cfg.negotiate_timeout = drop > 0.0 ? 30.0 : 0.0;
    cfg.network_latency = 1.0;

    auto specs = cluster::table1_specs();
    core::Federation fed(cfg, specs);
    const auto traces = workload::generate_federation_workload(
        specs, cfg.window, cfg.seed);
    fed.load_workload(traces, workload::PopulationProfile{30});
    const auto result = fed.run();

    std::uint64_t cancelled = 0;
    for (cluster::ResourceIndex i = 0; i < 8; ++i) {
      cancelled += fed.lrms(i).jobs_cancelled();
    }
    t.add_row({stats::Table::num(100.0 * drop, 0) + "%",
               stats::Table::num(result.acceptance_pct(), 2),
               std::to_string(fed.messages_dropped()),
               std::to_string(cancelled),
               std::to_string(result.total_messages),
               stats::Table::num(result.negotiations_per_job.mean(), 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Reading the table: lost replies strand reservations (cancelled by\n"
      "the hold timeout), lost negotiates waste a timeout window; both\n"
      "push jobs further down the rank walk, so negotiations/job rises\n"
      "while acceptance falls only gradually — the directory walk's\n"
      "redundancy is what keeps the federation usable on a lossy WAN.\n");
  return 0;
}
