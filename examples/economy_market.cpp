// Economy market study — the workload the paper's introduction motivates:
// what population mix (OFC vs OFT share) balances the market?  Sweeps the
// eleven profiles over the full Table 1 federation and reports the
// owner-side and user-side picture, ending with the paper's 70/30
// recommendation check.

#include <algorithm>
#include <cstdio>

#include "core/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace gridfed;

  const auto cfg = core::make_config(core::SchedulingMode::kEconomy);
  const auto sweep = core::run_profile_sweep(cfg);

  stats::Table t({"Profile", "Owners earning >5% share", "Total incentive",
                  "Avg response (s)", "Avg budget (G$)", "Messages"});
  for (const auto& r : sweep) {
    // An owner "earns significantly" when it takes at least half of a fair
    // (1/8) share of the federation incentive.
    int significant = 0;
    for (const auto& row : r.resources) {
      if (row.incentive > 0.0625 * r.total_incentive) ++significant;
    }
    t.add_row({"OFC" + std::to_string(100 - r.oft_percent) + "/OFT" +
                   std::to_string(r.oft_percent),
               std::to_string(significant) + "/8",
               stats::Table::sci(r.total_incentive, 2),
               stats::Table::sci(r.fed_response_excl.mean(), 3),
               stats::Table::sci(r.fed_budget_excl.mean(), 3),
               std::to_string(r.total_messages)});
  }
  std::printf("%s\n", t.str().c_str());

  // The paper's conclusion: 70% OFC / 30% OFT balances incentive across
  // every owner without the message blow-up of OFT-heavy mixes.
  const auto& mix = sweep[3];  // OFT = 30%
  const auto& oft_heavy = sweep.back();
  std::printf("70/30 mix: every owner earns? %s;  messages %llu vs %llu at "
              "100%% OFT (%.1fx cheaper)\n",
              std::all_of(mix.resources.begin(), mix.resources.end(),
                          [](const auto& row) { return row.incentive > 0; })
                  ? "yes"
                  : "no",
              static_cast<unsigned long long>(mix.total_messages),
              static_cast<unsigned long long>(oft_heavy.total_messages),
              static_cast<double>(oft_heavy.total_messages) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, mix.total_messages)));
  return 0;
}
