// Tree-overlay fan-out walkthrough: a 50-cluster federation running the
// auction market with per-job multi-attribute scoring, once over the
// paper's point-to-point messaging (batched solicitation) and once over
// TransportKind::kTree — the k-ary dissemination tree built on the
// overlay ring keys, with epoch-batched call-for-bids floods and
// convergecast-aggregated bids.  Prints the wire-message ledger both
// ways (per-type counts and bytes) so the overlay's cross-origin
// sharing is visible, and ends with a determinism self-check.

#include <cstdio>

#include "core/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace gridfed;

  auto cfg = core::make_config(core::SchedulingMode::kAuction, 90210);
  cfg.auction.scoring = market::ScoringRule::kPerJob;  // OFT jobs buy time
  cfg.auction.batch_solicitations = true;
  cfg.auction.solicit_batch_window = 300.0;

  constexpr std::size_t kClusters = 50;
  constexpr std::uint32_t kOftPercent = 30;

  std::printf("mode: %s  scoring: per-job  clusters: %zu  population: "
              "OFC%u/OFT%u\n\n",
              to_string(cfg.mode), kClusters, 100 - kOftPercent, kOftPercent);

  const auto direct = core::run_experiment(cfg, kClusters, kOftPercent);

  cfg.transport.kind = transport::TransportKind::kTree;
  std::printf("tree transport: fanout %u, epoch %.0f s, bid prune k=%u, "
              "delta encoding %s\n\n",
              cfg.transport.tree_fanout, cfg.transport.tree_epoch,
              cfg.transport.bid_prune_k,
              cfg.transport.bid_delta_encode ? "on" : "off");
  const auto tree = core::run_experiment(cfg, kClusters, kOftPercent);

  // The same tree with the convergecast forwarded whole (no pruning, no
  // delta encoding): the reference the pruned run must match bid-for-bid
  // on every clearing outcome.
  auto raw_cfg = cfg;
  raw_cfg.transport.bid_prune_k = 0;
  raw_cfg.transport.bid_delta_encode = false;
  const auto tree_raw = core::run_experiment(raw_cfg, kClusters, kOftPercent);

  stats::Table t({"Metric", "Direct (batched)", "Tree overlay"});
  t.add_row({"wire msgs/job", stats::Table::num(direct.wire_msgs_per_job(), 2),
             stats::Table::num(tree.wire_msgs_per_job(), 2)});
  t.add_row({"total wire messages", std::to_string(direct.total_messages),
             std::to_string(tree.total_messages)});
  t.add_row({"overlay relay messages",
             std::to_string(direct.overlay_relay_messages),
             std::to_string(tree.overlay_relay_messages)});
  t.add_row({"wire megabytes",
             stats::Table::num(
                 static_cast<double>(direct.total_message_bytes) / 1.0e6, 2),
             stats::Table::num(
                 static_cast<double>(tree.total_message_bytes) / 1.0e6, 2)});
  t.add_row({"acceptance %", stats::Table::num(direct.acceptance_pct(), 2),
             stats::Table::num(tree.acceptance_pct(), 2)});
  t.add_row({"mean response (s)",
             stats::Table::num(direct.fed_response_excl.mean(), 1),
             stats::Table::num(tree.fed_response_excl.mean(), 1)});
  t.add_row({"bids per auction",
             stats::Table::num(direct.auctions.bids_per_auction.mean(), 2),
             stats::Table::num(tree.auctions.bids_per_auction.mean(), 2)});
  t.add_row({"bids pruned in-network", std::to_string(direct.bids_pruned),
             std::to_string(tree.bids_pruned)});
  t.add_row({"prune+encode MB saved",
             stats::Table::num(
                 static_cast<double>(direct.bid_prune_bytes_saved) / 1.0e6, 2),
             stats::Table::num(
                 static_cast<double>(tree.bid_prune_bytes_saved) / 1.0e6, 2)});
  std::printf("%s\n", t.str().c_str());

  std::printf("per-type wire messages (direct -> tree):\n");
  for (std::size_t i = 0; i < core::kMessageTypeCount; ++i) {
    std::printf("  %-15s %8llu -> %8llu  (%.1f -> %.1f KB)\n",
                core::to_string(static_cast<core::MessageType>(i)),
                static_cast<unsigned long long>(direct.messages_by_type[i]),
                static_cast<unsigned long long>(tree.messages_by_type[i]),
                static_cast<double>(direct.bytes_by_type[i]) / 1024.0,
                static_cast<double>(tree.bytes_by_type[i]) / 1024.0);
  }

  const double cut =
      100.0 * (1.0 - tree.wire_msgs_per_job() / direct.wire_msgs_per_job());
  std::printf("\ntree overlay cut wire messages/job by %.1f%%\n", cut);

  // The PR 8 headline: with in-network top-k bid pruning and the
  // delta-encoded convergecast, the tree no longer trades bytes for
  // message count — it must beat the batched direct transport on BOTH
  // axes, and pruning must leave every clearing outcome bit-identical
  // to the whole-convergecast tree (the relays provably preserve the
  // engine's rank prefix, so acceptance and settled spend match).
  const bool fewer_bytes =
      tree.total_message_bytes <= direct.total_message_bytes;
  const bool same_outcomes =
      tree.total_accepted == tree_raw.total_accepted &&
      tree.total_messages == tree_raw.total_messages &&
      tree.fed_budget_incl.sum() == tree_raw.fed_budget_incl.sum() &&
      tree.fed_response_incl.sum() == tree_raw.fed_response_incl.sum();
  std::printf("tree bytes <= batched bytes: %s (%.2f vs %.2f MB)\n"
              "pruned run identical to whole-convergecast run: %s "
              "(%llu bids tombstoned, %.2f MB saved)\n",
              fewer_bytes ? "yes" : "NO",
              static_cast<double>(tree.total_message_bytes) / 1.0e6,
              static_cast<double>(direct.total_message_bytes) / 1.0e6,
              same_outcomes ? "yes" : "NO",
              static_cast<unsigned long long>(tree.bids_pruned),
              static_cast<double>(tree.bid_prune_bytes_saved) / 1.0e6);

  // Determinism self-check: identical seed, identical overlay run.
  const auto replay = core::run_experiment(cfg, kClusters, kOftPercent);
  const bool identical = replay.total_messages == tree.total_messages &&
                         replay.overlay_relay_messages ==
                             tree.overlay_relay_messages &&
                         replay.total_accepted == tree.total_accepted;
  std::printf("deterministic replay: %s\n", identical ? "yes" : "NO");
  return identical && cut > 25.0 && fewer_bytes && same_outcomes ? 0 : 1;
}
