// Trace replay — run the federation over *real* Parallel Workloads Archive
// traces in Standard Workload Format instead of the calibrated synthetic
// workload.
//
//   $ ./build/examples/trace_replay CTC-SP2.swf KTH-SP2.swf ...
//
// Each file is assigned to the Table 1 resource with the same position
// (first file -> CTC SP2, second -> KTH SP2, ...).  With no arguments the
// example falls back to a synthetic demo so it always runs.

#include <cstdio>
#include <vector>

#include "cluster/catalog.hpp"
#include "core/federation.hpp"
#include "stats/table.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace gridfed;

  const auto specs = cluster::table1_specs();
  core::FederationConfig cfg;  // economy mode, two-day window

  std::vector<workload::ResourceTrace> traces;
  if (argc > 1) {
    const int files = std::min<int>(argc - 1, static_cast<int>(specs.size()));
    std::printf("Replaying %d SWF trace file(s) over Table 1 resources\n",
                files);
    for (int i = 0; i < files; ++i) {
      workload::SwfOptions opts;
      opts.window_length = cfg.window;  // the paper's two-day slice
      opts.max_processors = specs[static_cast<std::size_t>(i)].processors;
      auto trace = workload::load_swf(
          argv[i + 1], static_cast<cluster::ResourceIndex>(i), opts);
      std::printf("  %-12s <- %s (%zu jobs in window)\n",
                  specs[static_cast<std::size_t>(i)].name.c_str(),
                  argv[i + 1], trace.jobs.size());
      traces.push_back(std::move(trace));
    }
  } else {
    std::printf("No SWF files given; replaying the calibrated synthetic "
                "two-day workload instead.\n"
                "Usage: trace_replay <ctc.swf> [kth.swf ...]\n\n");
    traces = workload::generate_federation_workload(specs, cfg.window,
                                                    cfg.seed);
  }

  core::Federation fed(cfg, specs);
  fed.load_workload(traces, workload::PopulationProfile{30});
  const auto result = fed.run();

  stats::Table t({"Resource", "Jobs", "Accepted %", "Local", "Migrated",
                  "Remote", "Utilization %", "Incentive (G$)"});
  for (const auto& row : result.resources) {
    t.add_row({row.name, std::to_string(row.total_jobs),
               stats::Table::num(row.acceptance_pct(), 1),
               std::to_string(row.processed_locally),
               std::to_string(row.migrated),
               std::to_string(row.remote_processed),
               stats::Table::num(100.0 * row.utilization, 1),
               stats::Table::sci(row.incentive, 2)});
  }
  std::printf("\n%s\n", t.str().c_str());
  std::printf("Federation: %.2f%% acceptance, %llu messages, %s G$ total "
              "incentive\n",
              result.acceptance_pct(),
              static_cast<unsigned long long>(result.total_messages),
              stats::Table::sci(result.total_incentive, 3).c_str());
  return 0;
}
