// gridfed_sim — command-line driver for one federation run.  The tool a
// downstream user reaches for first: pick a mode, a population profile, a
// system size and a seed; get the per-resource table and (optionally) the
// raw per-job outcome CSV.
//
//   $ gridfed_sim [--mode independent|federation|economy] [--oft N]
//                 [--size N] [--seed N] [--drop P] [--wan] [--csv FILE]
//
// Examples:
//   gridfed_sim --mode economy --oft 30            # the paper's best mix
//   gridfed_sim --size 50 --oft 100                # Experiment 5 corner
//   gridfed_sim --drop 0.2 --csv outcomes.csv      # lossy WAN + raw dump

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/catalog.hpp"
#include "core/experiment.hpp"
#include "core/trace_export.hpp"
#include "network/latency_model.hpp"
#include "stats/table.hpp"
#include "workload/synthetic.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--mode independent|federation|economy] [--oft N]\n"
               "          [--size N] [--seed N] [--drop P] [--wan] "
               "[--csv FILE]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gridfed;

  auto mode = core::SchedulingMode::kEconomy;
  std::uint32_t oft = 30;
  std::size_t size = 8;
  std::uint64_t seed = core::FederationConfig{}.seed;
  double drop = 0.0;
  bool wan = false;
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--mode") {
      const std::string m = next();
      if (m == "independent") {
        mode = core::SchedulingMode::kIndependent;
      } else if (m == "federation") {
        mode = core::SchedulingMode::kFederationNoEconomy;
      } else if (m == "economy") {
        mode = core::SchedulingMode::kEconomy;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--oft") {
      oft = static_cast<std::uint32_t>(std::atoi(next()));
      if (oft > 100) usage(argv[0]);
    } else if (arg == "--size") {
      size = static_cast<std::size_t>(std::atoi(next()));
      if (size == 0) usage(argv[0]);
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--drop") {
      drop = std::atof(next());
    } else if (arg == "--wan") {
      wan = true;
    } else if (arg == "--csv") {
      csv_path = next();
    } else {
      usage(argv[0]);
    }
  }

  auto cfg = core::make_config(mode, seed);
  if (drop > 0.0) {
    cfg.message_drop_rate = drop;
    cfg.negotiate_timeout = 30.0;
    cfg.network_latency = 1.0;
  }
  if (wan) {
    network::NetworkConfig net;
    net.kind = network::LatencyKind::kCoordinates;
    cfg.wan = net;
    if (cfg.negotiate_timeout == 0.0) cfg.network_latency = 0.0;
  }

  std::printf("gridfed_sim: mode=%s oft=%u%% size=%zu seed=%llu drop=%.2f "
              "wan=%s\n\n",
              core::to_string(mode), oft, size,
              static_cast<unsigned long long>(seed), drop,
              wan ? "on" : "off");

  const auto specs = cluster::replicated_specs(size);
  core::Federation fed(cfg, specs);
  const auto traces =
      workload::generate_federation_workload(specs, cfg.window, cfg.seed);
  std::optional<workload::PopulationProfile> profile;
  if (mode == core::SchedulingMode::kEconomy) {
    profile = workload::PopulationProfile{oft};
  }
  fed.load_workload(traces, profile);
  const auto result = fed.run();

  stats::Table t({"Resource", "Jobs", "Accept %", "Util %", "Local",
                  "Migrated", "Remote", "Incentive (G$)"});
  for (const auto& row : result.resources) {
    t.add_row({row.name, std::to_string(row.total_jobs),
               stats::Table::num(row.acceptance_pct(), 1),
               stats::Table::num(100.0 * row.utilization, 1),
               std::to_string(row.processed_locally),
               std::to_string(row.migrated),
               std::to_string(row.remote_processed),
               stats::Table::sci(row.incentive, 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("federation: accept %.2f%%  messages %llu (+%llu directory)  "
              "incentive %s G$  avg response %.4g s\n",
              result.acceptance_pct(),
              static_cast<unsigned long long>(result.total_messages),
              static_cast<unsigned long long>(
                  result.directory_traffic.total_messages()),
              stats::Table::sci(result.total_incentive, 3).c_str(),
              result.fed_response_excl.mean());

  if (!csv_path.empty()) {
    core::save_outcomes_csv(csv_path, fed.outcomes());
    std::printf("wrote %zu outcome rows to %s\n", fed.outcomes().size(),
                csv_path.c_str());
  }
  return 0;
}
