// Scaling study — Experiment 5 beyond the paper.  The authors note their
// Java tooling "prohibited us from scaling the system further" than 50
// resources; the native engine does not have that problem.  This example
// pushes the federation to 200 resources and reports how per-job and
// per-GFA message complexity grow.
//
//   $ ./build/examples/scaling_study [max_size]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/experiment.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace gridfed;

  std::size_t max_size = 200;
  if (argc > 1) max_size = static_cast<std::size_t>(std::atoi(argv[1]));

  std::vector<std::size_t> sizes;
  for (std::size_t n = 25; n <= max_size; n *= 2) sizes.push_back(n);
  if (sizes.empty()) sizes.push_back(max_size);

  const auto cfg = core::make_config(core::SchedulingMode::kEconomy);
  std::printf("Scaling the federation to %zu resources (paper stopped at "
              "50)...\n\n", sizes.back());

  stats::Table t({"Size", "Jobs", "Avg msgs/job", "Max msgs/job",
                  "Avg msgs/GFA", "Directory msgs", "Acceptance %"});
  for (const auto n : sizes) {
    const auto r = core::run_experiment(cfg, n, 30);
    t.add_row({std::to_string(n), std::to_string(r.total_jobs),
               stats::Table::num(r.msgs_per_job.mean(), 2),
               stats::Table::num(r.msgs_per_job.max(), 0),
               stats::Table::num(r.msgs_per_gfa.mean(), 0),
               std::to_string(r.directory_traffic.total_messages()),
               stats::Table::num(r.acceptance_pct(), 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Read: average complexity grows slowly (the rank walk rarely\n"
              "goes deep), while the max shows the worst-case job that had\n"
              "to walk far down the ranking — the paper's scalability\n"
              "caveat, reproduced.\n");
  return 0;
}
