// Membership churn walkthrough: a 50-cluster auction federation over
// the tree transport with coalitions enabled — and a hostile mid-run
// script.  The deterministic topology is probed first so the crashes
// hit where they hurt:
//
//   * an interior tree relay (its death orphans a whole subtree of the
//     call-for-bids fan-out, forcing a self-repair and a replay of the
//     solicitations it swallowed);
//   * a coalition representative (its death forces a re-formation: the
//     survivor first in ring order takes over the group's wire
//     identity, and in-flight settlements still split over the
//     placement-time member snapshot);
//
// plus a cooperative leave and, later, the relay rejoining under a
// fresh incarnation.  Detection is epidemic: no oracle tells the
// survivors anything — push-pull gossip digests circulate until every
// live view confirms each death, and only then do the directory
// eviction, the tree repair and the coalition re-formation fire.
//
// Exits nonzero unless every loaded job terminates exactly once, the
// GridBank balances to the cent, both crashes are confirmed, the tree
// replayed the lost solicitations, and every re-formation leaves an
// individually rational split rule behind.

#include <cstdio>
#include <set>

#include "cluster/catalog.hpp"
#include "core/experiment.hpp"
#include "core/federation.hpp"
#include "stats/table.hpp"
#include "transport/tree_transport.hpp"
#include "workload/synthetic.hpp"

namespace {

constexpr std::size_t kClusters = 50;
constexpr std::uint32_t kOftPercent = 30;

gridfed::core::FederationConfig base_config() {
  using namespace gridfed;
  auto cfg = core::make_config(core::SchedulingMode::kAuction, 90210);
  cfg.auction.clearing = market::ClearingRule::kVickrey;
  cfg.auction.batch_solicitations = true;
  cfg.auction.solicit_batch_window = 300.0;
  cfg.transport.kind = transport::TransportKind::kTree;
  cfg.coalitions.enabled = true;
  cfg.coalitions.bucket_size = 4;
  // Churn needs timeouts: enquiries to a dead peer must expire, and
  // auction books holding a dead bidder's slot must close.  Both bounds
  // are hop- and epoch-aware over the tree (see Federation's ctor).
  cfg.network_latency = 1.0;
  cfg.negotiate_timeout = 200.0;
  cfg.auction.bid_timeout = 200.0;
  return cfg;
}

struct RunOutput {
  gridfed::core::FederationResult result;
  bool balanced = false;
  bool exactly_once = true;
  std::uint64_t loaded = 0;
  std::uint64_t repairs = 0;
  std::uint64_t replayed = 0;
  std::uint64_t reformations = 0;
  bool reformations_rational = true;
  std::uint64_t confirmations = 0;
  std::uint64_t gossip_msgs = 0;
};

RunOutput run(const gridfed::core::FederationConfig& cfg) {
  using namespace gridfed;
  auto specs = cluster::replicated_specs(kClusters);
  core::Federation fed(cfg, specs);
  const auto traces =
      workload::generate_federation_workload(specs, cfg.window, cfg.seed);
  RunOutput out;
  for (const auto& t : traces) out.loaded += t.jobs.size();
  fed.load_workload(traces, workload::PopulationProfile{kOftPercent});
  out.result = fed.run();
  out.balanced = fed.bank().balanced();
  std::set<cluster::JobId> seen;
  for (const auto& o : fed.outcomes()) {
    if (!seen.insert(o.job.id).second) out.exactly_once = false;
  }
  if (fed.outcomes().size() != out.loaded) out.exactly_once = false;
  if (const auto* tree =
          dynamic_cast<const transport::TreeTransport*>(&fed.transport())) {
    out.repairs = tree->repairs();
    out.replayed = tree->replayed_solicitations();
  }
  if (const coalition::CoalitionManager* manager = fed.coalitions()) {
    out.reformations = manager->reformations().size();
    for (const auto& r : manager->reformations()) {
      if (!r.rational) out.reformations_rational = false;
    }
  }
  if (const membership::MembershipService* m = fed.membership()) {
    out.confirmations = m->telemetry().confirmations;
    out.gossip_msgs = m->telemetry().gossip_messages;
  }
  return out;
}

}  // namespace

int main() {
  using namespace gridfed;

  auto cfg = base_config();

  // Probe the deterministic construction for the interesting victims.
  // The churn schedule is config, so targets must be known up front —
  // and they are: topology and formation depend only on specs + config.
  cluster::ResourceIndex relay = cluster::kNoResource;
  cluster::ResourceIndex rep = cluster::kNoResource;
  {
    core::Federation probe(cfg, cluster::replicated_specs(kClusters));
    const auto* tree =
        dynamic_cast<const transport::TreeTransport*>(&probe.transport());
    const auto& registry = probe.coalitions()->registry();
    rep = registry.representative(
        federation::ParticipantId{federation::kCoalitionBase});
    for (cluster::ResourceIndex i = 0; i < kClusters; ++i) {
      if (i != rep && tree->interior_relay(i)) {
        relay = i;
        break;
      }
    }
  }
  if (relay == cluster::kNoResource || rep == cluster::kNoResource) {
    std::fprintf(stderr, "probe found no interior relay / representative\n");
    return 1;
  }

  using membership::ChurnEvent;
  using membership::ChurnKind;
  const auto leaver = static_cast<cluster::ResourceIndex>(
      (relay + 1) % kClusters == rep ? (relay + 2) % kClusters
                                     : (relay + 1) % kClusters);
  cfg.membership.churn.events = {
      ChurnEvent{40000.0, relay, ChurnKind::kCrash},
      ChurnEvent{60000.0, leaver, ChurnKind::kLeave},
      ChurnEvent{70000.0, rep, ChurnKind::kCrash},
      ChurnEvent{120000.0, relay, ChurnKind::kJoin},
  };

  std::printf("churn script over %zu clusters (auction + tree + "
              "coalitions):\n"
              "  t= 40000  CRASH cluster %u (interior tree relay)\n"
              "  t= 60000  LEAVE cluster %u (cooperative)\n"
              "  t= 70000  CRASH cluster %u (coalition representative)\n"
              "  t=120000  JOIN  cluster %u (the relay, fresh incarnation)\n\n",
              kClusters, relay, cfg.membership.churn.events[1].site, rep,
              relay);

  auto calm_cfg = base_config();
  calm_cfg.membership.enabled = true;  // gossip on, schedule empty
  const RunOutput calm = run(calm_cfg);
  const RunOutput churned = run(cfg);

  stats::Table t({"Metric", "Static roster", "Churned"});
  t.add_row({"jobs loaded", std::to_string(calm.loaded),
             std::to_string(churned.loaded)});
  t.add_row({"acceptance %", stats::Table::num(calm.result.acceptance_pct(), 2),
             stats::Table::num(churned.result.acceptance_pct(), 2)});
  t.add_row({"wire msgs/job",
             stats::Table::num(calm.result.wire_msgs_per_job(), 2),
             stats::Table::num(churned.result.wire_msgs_per_job(), 2)});
  t.add_row({"gossip wire messages", std::to_string(calm.gossip_msgs),
             std::to_string(churned.gossip_msgs)});
  t.add_row({"deaths confirmed", std::to_string(calm.confirmations),
             std::to_string(churned.confirmations)});
  t.add_row({"tree repairs", std::to_string(calm.repairs),
             std::to_string(churned.repairs)});
  t.add_row({"solicitations replayed", std::to_string(calm.replayed),
             std::to_string(churned.replayed)});
  t.add_row({"coalition re-formations", std::to_string(calm.reformations),
             std::to_string(churned.reformations)});
  t.add_row({"every job terminated once", calm.exactly_once ? "yes" : "NO",
             churned.exactly_once ? "yes" : "NO"});
  t.add_row({"bank balanced", calm.balanced ? "yes" : "NO",
             churned.balanced ? "yes" : "NO"});
  std::printf("%s\n", t.str().c_str());

  const double degradation =
      calm.result.acceptance_pct() - churned.result.acceptance_pct();
  std::printf("losing 2 clusters + 1 leave (6%% of the federation) cost "
              "%.2f acceptance points\n",
              degradation);
  std::printf("re-formations all individually rational: %s\n",
              churned.reformations_rational ? "yes" : "NO");

  const bool ok = churned.exactly_once && churned.balanced &&
                  calm.exactly_once && calm.balanced &&
                  churned.confirmations == 2 && churned.repairs >= 1 &&
                  churned.replayed > 0 && churned.reformations >= 2 &&
                  churned.reformations_rational;
  return ok ? 0 : 1;
}
