// Auction market walkthrough: runs the Table 1 federation in
// SchedulingMode::kAuction — every job is scheduled by a sealed-bid
// reverse auction instead of the paper's DBC rank walk — and prints what
// the market did: book thickness, fill rate, clearing prices, and the
// per-owner incentive spread.  Ends with a determinism self-check: the
// same seed must reproduce the run bit-for-bit.

#include <cstdio>

#include "core/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace gridfed;

  auto cfg = core::make_config(core::SchedulingMode::kAuction, 90210);
  cfg.auction.clearing = market::ClearingRule::kVickrey;
  cfg.auction.bid_pricing = market::BidPricingStrategy::kLoadAdaptive;
  cfg.auction.max_bidders = 4;

  std::printf("mode: %s  clearing: %s  bidding: %s  max bidders: %u\n\n",
              to_string(cfg.mode), to_string(cfg.auction.clearing),
              to_string(cfg.auction.bid_pricing), cfg.auction.max_bidders);

  const auto result = core::run_experiment(cfg, 8, 30);

  const auto& a = result.auctions;
  std::printf("auctions held:    %llu (%.1f%% filled, %llu cleared empty)\n",
              static_cast<unsigned long long>(a.held),
              100.0 * a.fill_rate(),
              static_cast<unsigned long long>(a.unfilled));
  std::printf("bids per auction: %.2f solicited %.2f received %.2f feasible\n",
              a.solicited_per_auction.mean(), a.bids_per_auction.mean(),
              a.feasible_per_auction.mean());
  std::printf("clearing price:   mean %.1f G$ (winner surplus %.1f G$)\n\n",
              a.clearing_price.mean(), a.winner_surplus.mean());

  stats::Table t({"Resource", "Util %", "Accept %", "Remote jobs",
                  "Incentive (G$)"});
  for (const auto& row : result.resources) {
    t.add_row({row.name, stats::Table::num(100.0 * row.utilization, 2),
               stats::Table::num(row.acceptance_pct(), 2),
               std::to_string(row.remote_processed),
               stats::Table::sci(row.incentive, 3)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("jobs: %llu accepted / %llu total;  %.2f messages per job\n",
              static_cast<unsigned long long>(result.total_accepted),
              static_cast<unsigned long long>(result.total_jobs),
              result.msgs_per_job.mean());

  // Determinism self-check: identical seed, identical market.
  const auto replay = core::run_experiment(cfg, 8, 30);
  const bool identical =
      replay.total_messages == result.total_messages &&
      replay.total_accepted == result.total_accepted &&
      replay.total_incentive == result.total_incentive &&
      replay.auctions.held == result.auctions.held;
  std::printf("deterministic replay: %s\n", identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
