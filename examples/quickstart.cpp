// Quickstart — build a three-cluster Grid-Federation, submit a handful of
// deadline-and-budget-constrained jobs, and inspect where the economy
// placed them.
//
//   $ ./build/examples/quickstart
//
// This walks the whole public API surface: resource specs, commodity
// pricing (Eq. 6), the federation driver, population profiles, and the
// per-job outcome records.

#include <cstdio>
#include <vector>

#include "core/federation.hpp"
#include "economy/pricing.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace gridfed;

  // 1. Describe three autonomous clusters: R_i = (p_i, mu_i, gamma_i).
  std::vector<cluster::ResourceSpec> specs = {
      {"BudgetFarm", 256, 400.0, 1.0, 0.0},  // big, slow, cheap
      {"Campus", 64, 700.0, 2.0, 0.0},       // mid-range
      {"Speedster", 16, 1000.0, 4.0, 0.0},   // small, fast, expensive
  };
  // Owners price proportionally to speed (Eq. 6): the fastest charges 6 G$.
  economy::apply_commodity_pricing(specs, 6.0);
  for (const auto& s : specs) {
    std::printf("cluster %-10s  %4u procs  %6.0f MIPS  quote %.2f G$/s\n",
                s.name.c_str(), s.processors, s.mips, s.quote);
  }

  // 2. Stand up the federation (economy mode is the default config).
  core::FederationConfig cfg;
  cfg.window = 4.0 * 3600.0;  // a four-hour scenario
  core::Federation fed(cfg, specs);

  // 3. Hand-craft a small workload: each cluster's users submit jobs.
  //    (Real studies use workload::generate_federation_workload or an SWF
  //    trace — see the other examples.)
  std::vector<workload::ResourceTrace> traces(3);
  for (std::uint32_t k = 0; k < 3; ++k) traces[k].resource = k;
  auto submit = [&](std::uint32_t home, double at, double runtime,
                    std::uint32_t procs, std::uint32_t user) {
    traces[home].jobs.push_back(workload::TraceJob{at, runtime, procs, user});
  };
  submit(0, 0.0, 1800.0, 64, 0);   // BudgetFarm local crunch
  submit(1, 60.0, 900.0, 16, 0);   // Campus job
  submit(1, 120.0, 3600.0, 64, 1); // Campus job bigger than Speedster
  submit(2, 180.0, 600.0, 8, 0);   // Speedster local
  submit(2, 240.0, 2400.0, 16, 1); // fills Speedster; overflow candidate
  submit(2, 300.0, 1200.0, 16, 2); // must negotiate elsewhere

  // 4. 40% of users optimize for time, 60% for cost.
  fed.load_workload(traces, workload::PopulationProfile{40});

  // 5. Run to completion and inspect the outcome of every job.
  const auto result = fed.run();
  std::printf("\njobs: %llu accepted, %llu rejected; %llu protocol messages\n",
              static_cast<unsigned long long>(result.total_accepted),
              static_cast<unsigned long long>(result.total_rejected),
              static_cast<unsigned long long>(result.total_messages));
  for (const auto& o : fed.outcomes()) {
    if (o.accepted) {
      std::printf(
          "  job %llu (%s, home %s) -> ran on %-10s  response %6.0f s  "
          "cost %8.1f G$  (%u negotiations)\n",
          static_cast<unsigned long long>(o.job.id),
          o.job.opt == cluster::Optimization::kTime ? "OFT" : "OFC",
          specs[o.job.origin].name.c_str(),
          specs[o.executed_on].name.c_str(), o.response_time(), o.cost,
          o.negotiations);
    } else {
      std::printf("  job %llu (home %s) -> REJECTED after %u negotiations\n",
                  static_cast<unsigned long long>(o.job.id),
                  specs[o.job.origin].name.c_str(), o.negotiations);
    }
  }

  // 6. Owner incentives from the GridBank ledger.
  std::printf("\nowner incentives:\n");
  for (std::uint32_t k = 0; k < 3; ++k) {
    std::printf("  %-10s earned %10.1f G$\n", specs[k].name.c_str(),
                fed.bank().incentive(k));
  }
  return 0;
}
