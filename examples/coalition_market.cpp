// Coalition market walkthrough: a 50-cluster auction federation over
// the tree transport, once with every cluster bidding solo and once
// with latency-proximity coalitions enabled — ring-adjacent buckets of
// four that bid as ONE participant through their representative, place
// awards on the member with the best guarantee, and split the surplus
// proportional to contributed capacity through the GridBank.
//
// What to look for: the call-for-bids fan-out and the bid convergecast
// now address ~n/4 participants instead of n providers (group-addressed
// dissemination), so wire msgs/job drops well past 20% while acceptance
// and response stay put; the representative fan-out the wire saved
// reappears — much cheaper — as intra-coalition local messages; and the
// double-entry bank stays balanced even though every coalition award
// settles as one share per member.
//
// Exits nonzero unless coalition mode beats solo auction on wire
// msgs/job by >= 20%, the bank balances, every split is budget-balanced
// and individually rational, and mean response regresses < 2%.

#include <cmath>
#include <cstdio>

#include "cluster/catalog.hpp"
#include "core/experiment.hpp"
#include "core/federation.hpp"
#include "stats/table.hpp"
#include "workload/synthetic.hpp"

namespace {

struct RunOutput {
  gridfed::core::FederationResult result;
  bool balanced = false;
  bool splits_sound = true;  ///< budget balance + individual rationality
};

RunOutput run(const gridfed::core::FederationConfig& cfg,
              std::size_t n_clusters, std::uint32_t oft_percent) {
  using namespace gridfed;
  auto specs = cluster::replicated_specs(n_clusters);
  core::Federation fed(cfg, specs);
  const auto traces =
      workload::generate_federation_workload(specs, cfg.window, cfg.seed);
  fed.load_workload(traces, workload::PopulationProfile{oft_percent});
  RunOutput out{fed.run(), fed.bank().balanced(), true};
  if (const coalition::CoalitionManager* manager = fed.coalitions()) {
    for (const coalition::SplitRecord& split : manager->splits()) {
      double sum = 0.0;
      double executor_share = 0.0;
      const auto members = manager->registry().members(split.coalition);
      for (std::size_t i = 0; i < split.shares.size(); ++i) {
        sum += split.shares[i];
        if (split.shares[i] < 0.0) out.splits_sound = false;
        if (members[i] == split.executor) executor_share = split.shares[i];
      }
      // Budget balance: the shares settle exactly the cleared payment.
      if (std::abs(sum - split.payment) > 1e-6) out.splits_sound = false;
      // Individual rationality: the executing member earns at least its
      // own solo ask (capped by the payment).
      const double solo = std::min(split.executor_ask, split.payment);
      if (executor_share + 1e-9 < solo) out.splits_sound = false;
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace gridfed;

  auto cfg = core::make_config(core::SchedulingMode::kAuction, 90210);
  cfg.auction.scoring = market::ScoringRule::kPerJob;
  // Vickrey payments exceed the winning ask, so coalition wins carry a
  // real surplus for the SurplusRule to distribute.
  cfg.auction.clearing = market::ClearingRule::kVickrey;
  cfg.auction.batch_solicitations = true;
  cfg.auction.solicit_batch_window = 300.0;
  cfg.transport.kind = transport::TransportKind::kTree;  // PR 4 baseline

  constexpr std::size_t kClusters = 50;
  constexpr std::uint32_t kOftPercent = 30;

  std::printf("mode: %s  transport: tree(fanout %u)  clusters: %zu  "
              "population: OFC%u/OFT%u\n\n",
              to_string(cfg.mode), cfg.transport.tree_fanout, kClusters,
              100 - kOftPercent, kOftPercent);

  const RunOutput solo = run(cfg, kClusters, kOftPercent);

  cfg.coalitions.enabled = true;
  cfg.coalitions.bucket_size = 4;
  cfg.coalitions.surplus = coalition::SurplusRuleKind::kProportional;
  std::printf("coalitions: ring buckets of %u, %s surplus split\n\n",
              cfg.coalitions.bucket_size, to_string(cfg.coalitions.surplus));
  const RunOutput coop = run(cfg, kClusters, kOftPercent);

  stats::Table t({"Metric", "Solo auction", "Coalitions"});
  t.add_row({"wire msgs/job",
             stats::Table::num(solo.result.wire_msgs_per_job(), 2),
             stats::Table::num(coop.result.wire_msgs_per_job(), 2)});
  t.add_row({"total wire messages",
             std::to_string(solo.result.total_messages),
             std::to_string(coop.result.total_messages)});
  t.add_row({"coalitions formed",
             std::to_string(solo.result.coalitions_formed),
             std::to_string(coop.result.coalitions_formed)});
  t.add_row({"intra-coalition local msgs",
             std::to_string(solo.result.coalition_local_messages),
             std::to_string(coop.result.coalition_local_messages)});
  t.add_row({"coalition awards settled",
             std::to_string(solo.result.coalition_awards),
             std::to_string(coop.result.coalition_awards)});
  t.add_row({"surplus distributed (G$)",
             stats::Table::num(solo.result.coalition_surplus, 1),
             stats::Table::num(coop.result.coalition_surplus, 1)});
  t.add_row({"acceptance %",
             stats::Table::num(solo.result.acceptance_pct(), 2),
             stats::Table::num(coop.result.acceptance_pct(), 2)});
  t.add_row({"mean response (s)",
             stats::Table::num(solo.result.fed_response_excl.mean(), 1),
             stats::Table::num(coop.result.fed_response_excl.mean(), 1)});
  t.add_row({"bank balanced", solo.balanced ? "yes" : "NO",
             coop.balanced ? "yes" : "NO"});
  std::printf("%s\n", t.str().c_str());

  const double cut = 100.0 * (1.0 - coop.result.wire_msgs_per_job() /
                                        solo.result.wire_msgs_per_job());
  const double response_drift =
      100.0 * (coop.result.fed_response_excl.mean() /
                   solo.result.fed_response_excl.mean() -
               1.0);
  std::printf("coalitions cut wire messages/job by %.1f%% "
              "(response drift %+.2f%%)\n",
              cut, response_drift);
  std::printf("every surplus split budget-balanced and individually "
              "rational: %s\n",
              coop.splits_sound ? "yes" : "NO");

  const bool ok = cut >= 20.0 && response_drift < 2.0 && solo.balanced &&
                  coop.balanced && coop.splits_sound &&
                  coop.result.coalition_awards > 0;
  return ok ? 0 : 1;
}
