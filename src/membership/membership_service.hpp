#pragma once
// The membership runtime: ground truth + detection.
//
// The service is the epidemic sibling of the delivery transports: it
// owns one MembershipView per member and drives the push-pull
// anti-entropy rounds over the same wire (kGossip messages ride the
// transport's point-to-point legs — recorded in the ledger, subject to
// the loss lottery and latency like any enquiry).  It also owns the
// run's ground truth: which members have crashed, left, or rejoined per
// the ChurnSchedule.  Ground truth drives the *mechanics* (a crashed
// site neither sends nor receives); the gossip views drive the
// *decisions* (eviction from the directory, tree repair, coalition
// re-formation fire only when the failure detector confirms a death).
//
// Confirmation = the first live view that declares a genuinely crashed
// member dead.  A false suspicion of a live member never confirms — the
// member refutes it with a higher incarnation — so the federation never
// evicts a working cluster on rumor alone.

#include <cstdint>
#include <vector>

#include "cluster/resource.hpp"
#include "core/config.hpp"
#include "core/message.hpp"
#include "membership/membership_config.hpp"
#include "membership/membership_view.hpp"
#include "obs/observer.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace gridfed::membership {

/// Environment the service operates in, implemented by the Federation
/// driver.  The churn_* hooks apply the mechanical consequences of a
/// scheduled event (LRMS shutdown, GFA drain, directory changes);
/// member_confirmed_dead fires once per crash when the failure detector
/// converges (tree repair, coalition re-formation, orphan sweeps).
class MembershipContext {
 public:
  virtual ~MembershipContext() = default;

  [[nodiscard]] virtual const core::FederationConfig& config() const = 0;
  [[nodiscard]] virtual sim::Simulation& sim() = 0;
  [[nodiscard]] virtual std::size_t sites() const = 0;

  /// Sends one kGossip digest over the run's transport.
  virtual void gossip_send(core::Message msg) = 0;

  virtual void churn_join(cluster::ResourceIndex site) = 0;
  virtual void churn_leave(cluster::ResourceIndex site) = 0;
  virtual void churn_crash(cluster::ResourceIndex site) = 0;
  virtual void member_confirmed_dead(cluster::ResourceIndex site) = 0;

  [[nodiscard]] virtual obs::Observer* observer() { return nullptr; }
};

class MembershipService {
 public:
  struct Telemetry {
    std::uint64_t rounds = 0;
    std::uint64_t gossip_messages = 0;
    std::uint64_t suspicions = 0;
    std::uint64_t confirmations = 0;
    std::uint64_t churn_applied = 0;
  };

  explicit MembershipService(MembershipContext& ctx);

  /// Schedules the churn events and the gossip rounds.  Rounds run until
  /// max(window, last churn event) + confirmation_bound so every injected
  /// crash is detected before the event stream drains.
  void start();

  // ---- ground truth ---------------------------------------------------------
  [[nodiscard]] bool crashed(cluster::ResourceIndex i) const {
    return crashed_[i] != 0;
  }
  [[nodiscard]] bool left(cluster::ResourceIndex i) const {
    return left_[i] != 0;
  }
  [[nodiscard]] bool live(cluster::ResourceIndex i) const {
    return crashed_[i] == 0 && left_[i] == 0;
  }
  [[nodiscard]] bool confirmed_dead(cluster::ResourceIndex i) const {
    return confirmed_[i] != 0;
  }
  [[nodiscard]] std::size_t live_count() const;

  /// One kGossip message arrived at its (live) destination.
  void on_gossip(const core::Message& msg);

  [[nodiscard]] const MembershipView& view(cluster::ResourceIndex i) const {
    return views_[i];
  }
  [[nodiscard]] const Telemetry& telemetry() const noexcept { return tel_; }

 private:
  void run_round();
  void apply(const ChurnEvent& ev);
  void send_digest(cluster::ResourceIndex from, cluster::ResourceIndex to,
                   bool pull_reply);
  /// Pushes this round's digest from `from` to `fanout` distinct
  /// partners `from` believes reachable.
  void push_to_partners(cluster::ResourceIndex from);
  /// Meters the transitions scratch_transitions_ holds (observed at
  /// `observer_site`) and confirms any genuine death.
  void note_transitions(cluster::ResourceIndex observer_site);
  void maybe_confirm(cluster::ResourceIndex subject);

  MembershipContext& ctx_;
  MembershipOptions opts_;
  std::vector<MembershipView> views_;
  std::vector<std::uint8_t> crashed_;
  std::vector<std::uint8_t> left_;
  std::vector<std::uint8_t> confirmed_;
  std::vector<MembershipView::Transition> scratch_transitions_;
  std::vector<cluster::ResourceIndex> scratch_candidates_;
  sim::Rng rng_;
  std::uint64_t round_ = 0;
  sim::SimTime horizon_ = 0.0;
  Telemetry tel_;
};

}  // namespace gridfed::membership
