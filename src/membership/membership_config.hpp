#pragma once
// Dynamic-membership configuration.  The seed federation (and the paper)
// fixes the roster at construction; this header adds the knobs that let a
// run inject joins, cooperative leaves, and crashes mid-window, plus the
// gossip cadence used to detect them (membership_view.hpp).
//
// Kept dependency-free below sim/cluster so core/config.hpp can embed a
// MembershipOptions by value: everything membership-related in a run is
// declared up front, which is what keeps churn-off runs bit-identical to
// the static seed (no schedule, no gossip events, no extra RNG draws).

#include <cstdint>
#include <vector>

#include "cluster/resource.hpp"
#include "sim/types.hpp"

namespace gridfed::membership {

enum class ChurnKind : std::uint8_t {
  kJoin = 0,   ///< a previously departed member re-enters the federation
  kLeave = 1,  ///< cooperative departure: announced, in-flight work drains
  kCrash = 2,  ///< fail-stop: the site goes silent, peers must detect it
};

[[nodiscard]] constexpr const char* to_string(ChurnKind kind) noexcept {
  switch (kind) {
    case ChurnKind::kJoin:
      return "join";
    case ChurnKind::kLeave:
      return "leave";
    case ChurnKind::kCrash:
      return "crash";
  }
  return "?";
}

/// One scripted membership change.  Times are absolute simulation
/// seconds; events at the same instant apply in schedule order.
struct ChurnEvent {
  sim::SimTime time = 0.0;
  cluster::ResourceIndex site = 0;
  ChurnKind kind = ChurnKind::kCrash;
};

/// The run's scripted churn.  Deterministic by construction — the
/// schedule is part of the config, not drawn at runtime — so a churn run
/// replays exactly like any other gridfed experiment.
struct ChurnSchedule {
  std::vector<ChurnEvent> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  [[nodiscard]] sim::SimTime last_event_time() const noexcept {
    sim::SimTime last = 0.0;
    for (const ChurnEvent& ev : events) {
      if (ev.time > last) last = ev.time;
    }
    return last;
  }
};

/// Gossip/failure-detector knobs plus the churn script.
struct MembershipOptions {
  /// Run the gossip rounds even with an empty churn schedule (lets a
  /// test observe pure dissemination).  A non-empty schedule implies
  /// the subsystem regardless.
  bool enabled = false;

  /// Seconds between anti-entropy rounds.
  sim::SimTime gossip_period = 120.0;

  /// Distinct partners each member pushes its digest to per round (the
  /// partner pulls back, SWIM-style push-pull).
  std::uint32_t gossip_fanout = 2;

  /// Rounds without a fresher heartbeat before a member is suspected.
  std::uint32_t suspect_after = 4;

  /// Further stale rounds before a suspect is declared dead.
  std::uint32_t dead_after = 3;

  ChurnSchedule churn;

  [[nodiscard]] bool active() const noexcept {
    return enabled || !churn.empty();
  }

  /// Upper bound on crash → federation-wide confirmation: every live
  /// view's own staleness clock trips within suspect_after + dead_after
  /// rounds of the last heartbeat it heard, plus slack for round
  /// alignment and heartbeat propagation.
  [[nodiscard]] sim::SimTime confirmation_bound() const noexcept {
    return static_cast<sim::SimTime>(suspect_after + dead_after + 4) *
           gossip_period;
  }
};

}  // namespace gridfed::membership
