#include "membership/membership_service.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace gridfed::membership {

MembershipService::MembershipService(MembershipContext& ctx)
    : ctx_(ctx),
      opts_(ctx.config().membership),
      crashed_(ctx.sites(), 0),
      left_(ctx.sites(), 0),
      confirmed_(ctx.sites(), 0),
      rng_(sim::Rng::stream(ctx.config().seed, "membership")) {
  GF_EXPECTS(opts_.active());
  GF_EXPECTS(opts_.gossip_period > 0.0);
  GF_EXPECTS(opts_.gossip_fanout >= 1);
  GF_EXPECTS(opts_.suspect_after >= 1 && opts_.dead_after >= 1);
  const std::size_t n = ctx.sites();
  views_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    views_.emplace_back(n, static_cast<cluster::ResourceIndex>(i));
  }
}

void MembershipService::start() {
  sim::SimTime last_churn = 0.0;
  for (const ChurnEvent& ev : opts_.churn.events) {
    GF_EXPECTS(ev.site < views_.size());
    GF_EXPECTS(ev.time > 0.0);
    last_churn = std::max(last_churn, ev.time);
    const ChurnEvent event = ev;
    ctx_.sim().schedule_at(ev.time, sim::EventPriority::kControl,
                           [this, event] { apply(event); });
  }
  horizon_ = std::max(ctx_.config().window, last_churn) +
             opts_.confirmation_bound();
  ctx_.sim().schedule_at(opts_.gossip_period, sim::EventPriority::kControl,
                         [this] { run_round(); });
}

std::size_t MembershipService::live_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < crashed_.size(); ++i) {
    if (live(static_cast<cluster::ResourceIndex>(i))) ++n;
  }
  return n;
}

void MembershipService::run_round() {
  ++round_;
  ++tel_.rounds;
  GF_OBS(ctx_.observer(), count(obs::Counter::kGossipRounds));
  const std::size_t n = views_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto site = static_cast<cluster::ResourceIndex>(i);
    if (!live(site)) continue;
    views_[i].beat(round_);
    scratch_transitions_.clear();
    views_[i].advance(round_, opts_.suspect_after, opts_.dead_after,
                      scratch_transitions_);
    note_transitions(site);
    push_to_partners(site);
  }
  const sim::SimTime next = ctx_.sim().now() + opts_.gossip_period;
  if (next <= horizon_) {
    ctx_.sim().schedule_at(next, sim::EventPriority::kControl,
                           [this] { run_round(); });
  }
}

void MembershipService::push_to_partners(cluster::ResourceIndex from) {
  const MembershipView& view = views_[from];
  scratch_candidates_.clear();
  for (std::size_t j = 0; j < view.size(); ++j) {
    const auto peer = static_cast<cluster::ResourceIndex>(j);
    if (peer == from) continue;
    const MemberStatus believed = view.status(peer);
    if (believed == MemberStatus::kAlive ||
        believed == MemberStatus::kSuspect) {
      scratch_candidates_.push_back(peer);
    }
  }
  const std::size_t picks = std::min<std::size_t>(opts_.gossip_fanout,
                                                  scratch_candidates_.size());
  for (std::size_t k = 0; k < picks; ++k) {
    // Partial Fisher–Yates: distinct partners, uniform, one draw each.
    const std::size_t limit = scratch_candidates_.size() - 1 - k;
    const auto at = static_cast<std::size_t>(rng_.uniform_int(0, limit));
    std::swap(scratch_candidates_[at], scratch_candidates_[limit]);
    send_digest(from, scratch_candidates_[limit], /*pull_reply=*/false);
  }
}

void MembershipService::send_digest(cluster::ResourceIndex from,
                                    cluster::ResourceIndex to,
                                    bool pull_reply) {
  core::Message msg;
  msg.type = core::MessageType::kGossip;
  msg.from = from;
  msg.to = to;
  // The answering half of push-pull carries accept=true so the receiver
  // does not answer again.
  msg.accept = pull_reply;
  // The ledger classifies by job.origin; a digest is the sender's own
  // traffic.
  msg.job.origin = from;
  views_[from].fill_digest(msg.gossip);
  ++tel_.gossip_messages;
  ctx_.gossip_send(std::move(msg));
}

void MembershipService::on_gossip(const core::Message& msg) {
  GF_EXPECTS(msg.type == core::MessageType::kGossip);
  GF_EXPECTS(msg.to < views_.size());
  if (!live(msg.to)) return;  // departed members are out of the protocol
  scratch_transitions_.clear();
  views_[msg.to].merge(msg.gossip, round_, scratch_transitions_);
  note_transitions(msg.to);
  // Pull half of push-pull anti-entropy: answer a push with our digest
  // (delivery to a since-crashed pusher is suppressed at the sink).
  if (!msg.accept) send_digest(msg.to, msg.from, /*pull_reply=*/true);
}

void MembershipService::note_transitions(
    cluster::ResourceIndex observer_site) {
  for (const auto& [subject, status] : scratch_transitions_) {
    ++tel_.suspicions;
    GF_OBS(ctx_.observer(), count(obs::Counter::kSuspicions));
    GF_OBS(ctx_.observer(),
           instant(ctx_.sim().now(), obs::SpanKind::kSuspicion,
                   observer_site, subject, subject,
                   status == MemberStatus::kSuspect ? 1 : 2));
    if (status == MemberStatus::kDead) maybe_confirm(subject);
  }
}

void MembershipService::maybe_confirm(cluster::ResourceIndex subject) {
  if (confirmed_[subject] != 0) return;
  // Only a genuine crash confirms: a live member refutes the rumor with
  // a higher incarnation, a left member already departed cooperatively.
  if (crashed_[subject] == 0) return;
  confirmed_[subject] = 1;
  ++tel_.confirmations;
  GF_OBS(ctx_.observer(), count(obs::Counter::kDeadConfirmed));
  ctx_.member_confirmed_dead(subject);
}

void MembershipService::apply(const ChurnEvent& ev) {
  ++tel_.churn_applied;
  GF_OBS(ctx_.observer(), count(obs::Counter::kChurnEvents));
  GF_OBS(ctx_.observer(),
         instant(ctx_.sim().now(), obs::SpanKind::kChurn, ev.site, ev.site,
                 ev.site, static_cast<std::uint64_t>(ev.kind)));
  switch (ev.kind) {
    case ChurnKind::kCrash: {
      if (!live(ev.site)) return;  // already gone: nothing to kill
      crashed_[ev.site] = 1;
      ctx_.churn_crash(ev.site);
      return;
    }
    case ChurnKind::kLeave: {
      if (!live(ev.site)) return;
      left_[ev.site] = 1;
      // Courtesy announcement: the leaver pushes its kLeft record (with
      // a bumped incarnation, beating circulating alive records) to its
      // partners on the way out.
      views_[ev.site].declare_left();
      const cluster::ResourceIndex from = ev.site;
      const MembershipView& view = views_[from];
      scratch_candidates_.clear();
      for (std::size_t j = 0; j < view.size(); ++j) {
        const auto peer = static_cast<cluster::ResourceIndex>(j);
        if (peer != from && view.status(peer) == MemberStatus::kAlive) {
          scratch_candidates_.push_back(peer);
        }
      }
      const std::size_t picks = std::min<std::size_t>(
          opts_.gossip_fanout, scratch_candidates_.size());
      for (std::size_t k = 0; k < picks; ++k) {
        const std::size_t limit = scratch_candidates_.size() - 1 - k;
        const auto at = static_cast<std::size_t>(rng_.uniform_int(0, limit));
        std::swap(scratch_candidates_[at], scratch_candidates_[limit]);
        send_digest(from, scratch_candidates_[limit], /*pull_reply=*/true);
      }
      ctx_.churn_leave(ev.site);
      return;
    }
    case ChurnKind::kJoin: {
      if (live(ev.site)) return;  // never departed: nothing to do
      crashed_[ev.site] = 0;
      left_[ev.site] = 0;
      confirmed_[ev.site] = 0;
      // Rejoin under an incarnation above anything any view has seen, so
      // the fresh alive record beats every circulating dead/left one.
      std::uint32_t seen = 0;
      for (const MembershipView& view : views_) {
        seen = std::max(seen, view.incarnation(ev.site));
      }
      views_[ev.site].resurrect(seen + 1, round_);
      ctx_.churn_join(ev.site);
      return;
    }
  }
}

}  // namespace gridfed::membership
