#include "membership/membership_view.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace gridfed::membership {

MembershipView::MembershipView(std::size_t sites,
                               cluster::ResourceIndex self)
    : states_(sites), self_(self) {
  GF_EXPECTS(self < sites);
}

void MembershipView::beat(std::uint64_t round) {
  MemberState& self = states_[self_];
  ++self.heartbeat;
  self.heard_round = round;
}

void MembershipView::advance(std::uint64_t round,
                             std::uint32_t suspect_after,
                             std::uint32_t dead_after,
                             std::vector<Transition>& transitions) {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (i == self_) continue;
    MemberState& state = states_[i];
    if (state.status == MemberStatus::kDead ||
        state.status == MemberStatus::kLeft) {
      continue;
    }
    const std::uint64_t stale =
        round - std::min(round, state.heard_round);
    const auto subject = static_cast<cluster::ResourceIndex>(i);
    if (state.status == MemberStatus::kAlive && stale > suspect_after) {
      state.status = MemberStatus::kSuspect;
      transitions.emplace_back(subject, MemberStatus::kSuspect);
    } else if (state.status == MemberStatus::kSuspect &&
               stale > static_cast<std::uint64_t>(suspect_after) +
                           dead_after) {
      state.status = MemberStatus::kDead;
      transitions.emplace_back(subject, MemberStatus::kDead);
    }
  }
}

bool MembershipView::merge_record(const GossipRecord& record,
                                  std::uint64_t round,
                                  std::vector<Transition>& transitions) {
  GF_EXPECTS(record.site < states_.size());
  MemberState& state = states_[record.site];
  if (record.site == self_) {
    // A rumor of our own suspicion or death while we are demonstrably
    // running: refute with a higher incarnation (the SWIM alive).
    if (state.status == MemberStatus::kAlive &&
        record.status != MemberStatus::kAlive &&
        record.incarnation >= state.incarnation) {
      state.incarnation = record.incarnation + 1;
      ++state.heartbeat;
      state.heard_round = round;
      return true;
    }
    return false;
  }
  const MemberStatus before = state.status;
  bool advanced = false;
  if (record.incarnation > state.incarnation) {
    // A fresh incarnation resets the entry outright: only the member
    // itself bumps incarnations, so this is first-hand news.
    state.incarnation = record.incarnation;
    state.heartbeat = record.heartbeat;
    state.status = record.status;
    state.heard_round = round;
    advanced = true;
  } else if (record.incarnation == state.incarnation) {
    if (status_rank(record.status) > status_rank(state.status)) {
      state.status = record.status;
      advanced = true;
    }
    if (record.heartbeat > state.heartbeat) {
      state.heartbeat = record.heartbeat;
      state.heard_round = round;
      // A fresher heartbeat at the same incarnation lifts a local
      // staleness suspicion — but never a terminal verdict.
      if (state.status == MemberStatus::kSuspect &&
          record.status == MemberStatus::kAlive) {
        state.status = MemberStatus::kAlive;
      }
      advanced = true;
    }
  }
  if (state.status != before && (state.status == MemberStatus::kSuspect ||
                                 state.status == MemberStatus::kDead)) {
    transitions.emplace_back(record.site, state.status);
  }
  return advanced;
}

std::size_t MembershipView::merge(std::span<const GossipRecord> records,
                                  std::uint64_t round,
                                  std::vector<Transition>& transitions) {
  std::size_t advanced = 0;
  for (const GossipRecord& record : records) {
    if (merge_record(record, round, transitions)) ++advanced;
  }
  return advanced;
}

void MembershipView::fill_digest(std::vector<GossipRecord>& out) const {
  out.clear();
  out.reserve(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const MemberState& state = states_[i];
    out.push_back(GossipRecord{static_cast<cluster::ResourceIndex>(i),
                               state.incarnation, state.heartbeat,
                               state.status});
  }
}

void MembershipView::declare_left() {
  MemberState& self = states_[self_];
  ++self.incarnation;
  self.status = MemberStatus::kLeft;
}

void MembershipView::resurrect(std::uint32_t incarnation,
                               std::uint64_t round) {
  MemberState& self = states_[self_];
  GF_EXPECTS(incarnation > self.incarnation);
  self.incarnation = incarnation;
  self.status = MemberStatus::kAlive;
  ++self.heartbeat;
  self.heard_round = round;
}

MemberStatus MembershipView::status(cluster::ResourceIndex i) const {
  GF_EXPECTS(i < states_.size());
  return states_[i].status;
}

std::uint32_t MembershipView::incarnation(cluster::ResourceIndex i) const {
  GF_EXPECTS(i < states_.size());
  return states_[i].incarnation;
}

std::uint64_t MembershipView::heartbeat(cluster::ResourceIndex i) const {
  GF_EXPECTS(i < states_.size());
  return states_[i].heartbeat;
}

std::size_t MembershipView::alive_count() const {
  std::size_t n = 0;
  for (const MemberState& state : states_) {
    if (state.status == MemberStatus::kAlive) ++n;
  }
  return n;
}

}  // namespace gridfed::membership
