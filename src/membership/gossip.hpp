#pragma once
// The gossip wire record.  A digest is one GossipRecord per federation
// member: (incarnation, heartbeat, status).  Incarnations are monotonic
// per member and only the member itself bumps them — which is what makes
// merging commutative and rumors refutable (membership_view.hpp).

#include <cstdint>

#include "cluster/resource.hpp"

namespace gridfed::membership {

enum class MemberStatus : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,  ///< locally stale; refutable by a fresher heartbeat
  kDead = 2,     ///< failure-detector verdict; sticky per incarnation
  kLeft = 3,     ///< cooperative departure, announced by the member
};

[[nodiscard]] constexpr const char* to_string(MemberStatus status) noexcept {
  switch (status) {
    case MemberStatus::kAlive:
      return "alive";
    case MemberStatus::kSuspect:
      return "suspect";
    case MemberStatus::kDead:
      return "dead";
    case MemberStatus::kLeft:
      return "left";
  }
  return "?";
}

/// Merge precedence at equal incarnation: dead > left > suspect > alive.
/// Terminal states win ties so a rumor of death cannot be undone by a
/// stale alive record — only a higher incarnation (the member itself
/// refuting, or rejoining) overrides.
[[nodiscard]] constexpr int status_rank(MemberStatus status) noexcept {
  switch (status) {
    case MemberStatus::kAlive:
      return 0;
    case MemberStatus::kSuspect:
      return 1;
    case MemberStatus::kLeft:
      return 2;
    case MemberStatus::kDead:
      return 3;
  }
  return 0;
}

struct GossipRecord {
  cluster::ResourceIndex site = 0;
  std::uint32_t incarnation = 0;
  std::uint64_t heartbeat = 0;
  MemberStatus status = MemberStatus::kAlive;
};

/// Modeled wire size of one digest record: site (4) + incarnation (4) +
/// heartbeat (8) + status and padding (8).
inline constexpr std::uint64_t kGossipRecordBytes = 24;

}  // namespace gridfed::membership
