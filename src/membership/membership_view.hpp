#pragma once
// One member's local belief about the whole roster — the SWIM-flavoured
// half of the membership subsystem.  Each view tracks, per member, a
// (incarnation, heartbeat, status) triple plus the last gossip round the
// heartbeat moved.  Detection is purely local: a member whose heartbeat
// goes stale for suspect_after rounds becomes a suspect, and dead_after
// further stale rounds make the verdict terminal — no oracle, so even a
// run where every gossip message is dropped still converges on a crash
// (each survivor's own staleness clock trips).
//
// Merge rules (commutative, idempotent):
//   * higher incarnation wins outright — the member itself is the only
//     writer of its incarnation, so this is the refutation channel;
//   * at equal incarnation, status_rank breaks ties (dead/left sticky),
//     and a fresher heartbeat refreshes the staleness clock, lifting a
//     *local* suspicion but never a disseminated terminal verdict;
//   * a member that hears a rumor of its own demise while demonstrably
//     running refutes by bumping its incarnation.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "cluster/resource.hpp"
#include "membership/gossip.hpp"

namespace gridfed::membership {

struct MemberState {
  std::uint32_t incarnation = 0;
  std::uint64_t heartbeat = 0;
  std::uint64_t heard_round = 0;  ///< round the heartbeat last advanced
  MemberStatus status = MemberStatus::kAlive;
};

class MembershipView {
 public:
  /// (subject, new status) — emitted whenever a member's status changes
  /// to suspect or dead, so the service can meter and confirm.
  using Transition = std::pair<cluster::ResourceIndex, MemberStatus>;

  MembershipView(std::size_t sites, cluster::ResourceIndex self);

  /// Self heartbeat for this round.
  void beat(std::uint64_t round);

  /// Staleness sweep: suspect / declare dead members whose heartbeat
  /// stopped moving.  Appends transitions.
  void advance(std::uint64_t round, std::uint32_t suspect_after,
               std::uint32_t dead_after,
               std::vector<Transition>& transitions);

  /// Merges one record; returns true when it changed the entry.
  bool merge_record(const GossipRecord& record, std::uint64_t round,
                    std::vector<Transition>& transitions);

  /// Merges a full digest; returns the number of entries advanced.
  std::size_t merge(std::span<const GossipRecord> records,
                    std::uint64_t round,
                    std::vector<Transition>& transitions);

  /// Fills `out` (cleared first) with this view's full digest.
  void fill_digest(std::vector<GossipRecord>& out) const;

  /// Cooperative self-departure: bumps the incarnation so the kLeft
  /// record beats every circulating alive record.
  void declare_left();

  /// Self-rejoin under a fresh incarnation (strictly above anything the
  /// federation has seen for this member).
  void resurrect(std::uint32_t incarnation, std::uint64_t round);

  [[nodiscard]] MemberStatus status(cluster::ResourceIndex i) const;
  [[nodiscard]] std::uint32_t incarnation(cluster::ResourceIndex i) const;
  [[nodiscard]] std::uint64_t heartbeat(cluster::ResourceIndex i) const;
  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] cluster::ResourceIndex self() const noexcept { return self_; }
  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }

 private:
  std::vector<MemberState> states_;
  cluster::ResourceIndex self_;
};

}  // namespace gridfed::membership
