#pragma once
// GFA — the Grid Federation Agent (paper §2.0.3), the new RMS layer that
// turns an autonomous cluster into a federation member.  It is a two-layer
// system:
//
//  * the *distributed information manager* talks to the shared federation
//    directory (subscribe/quote/query) to discover the r-th
//    cheapest/fastest cluster for a job;
//  * the *resource manager* performs local superscheduling, runs the
//    admission-control negotiation with remote GFAs, and manages remote
//    jobs on the local LRMS.
//
// Since the policy extraction, the Gfa itself is only the *protocol
// engine*: it routes messages, parks in-flight enquiries and arms their
// timeouts, holds remote reservations between negotiate-accept and
// payload arrival, and keeps the per-job message accounting honest.  WHERE
// a job goes — the paper's DBC rank walk (§2.2), the no-economy
// fastest-first walk, the local-only baseline, or the market extension's
// sealed-bid reverse auction — is decided by a policy::SchedulingPolicy
// constructed from the configured mode (policy/scheduling_policy.hpp).
// The Gfa hands the policy its services by implementing
// policy::SchedulerContext, and the policy hands jobs back through the
// placement actions (execute_here / send_negotiate / send_award /
// reject).
//
// Admission control: the remote resource manager asks its LRMS for an
// exact completion-time estimate; on acceptance it *reserves* the
// processors immediately, which is what makes the returned guarantee
// binding even with nonzero message latency.

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "cluster/lrms.hpp"
#include "coalition/coalition_manager.hpp"
#include "core/config.hpp"
#include "core/message.hpp"
#include "core/outcome.hpp"
#include "core/pending.hpp"
#include "directory/federation_directory.hpp"
#include "federation/participant.hpp"
#include "obs/observer.hpp"
#include "policy/scheduling_policy.hpp"
#include "sim/entity.hpp"

namespace gridfed::core {

/// Environment a GFA operates in, implemented by the Federation driver:
/// message routing, the peer catalog, configuration, and outcome sinks.
class GfaHost {
 public:
  virtual ~GfaHost() = default;

  /// Routes a message to its destination GFA (records it in the message
  /// ledger and applies the configured network latency).
  virtual void send(Message msg) = 0;

  /// Routes one payload to every target through the configured
  /// transport (msg.to is overwritten per target).  `not_after` bounds
  /// any fan-out batching the transport applies.  Returns the wire
  /// messages charged to the sender immediately (one per target on the
  /// direct transport; 0 on the tree, whose shared edge messages land
  /// in the ledger's relay counters).
  virtual std::uint64_t multicast(Message msg,
                                  std::span<const cluster::ResourceIndex>
                                      targets,
                                  sim::SimTime not_after) = 0;

  /// Resource description of any federation member.
  [[nodiscard]] virtual const cluster::ResourceSpec& spec_of(
      cluster::ResourceIndex index) const = 0;

  [[nodiscard]] virtual const FederationConfig& config() const = 0;

  /// Staging delay before `job`'s input data is available at `site`
  /// (0 without the WAN model or for the job's own origin).  The remote
  /// resource manager folds this into its admission estimate — a job
  /// cannot start before its data lands (Eq. 1).
  [[nodiscard]] virtual sim::SimTime payload_staging_time(
      const cluster::Job& job, cluster::ResourceIndex site) const = 0;

  /// A job finished (successfully scheduled earlier).
  virtual void job_completed(const JobOutcome& outcome) = 0;

  /// A job was dropped: no cluster in the federation could satisfy it.
  virtual void job_rejected(const cluster::Job& job,
                            std::uint32_t negotiations,
                            std::uint64_t messages) = 0;

  /// Auction-mode telemetry: one call per cleared book (kAuction only).
  virtual void auction_report(const market::ClearingReport& report) {
    (void)report;
  }

  /// The coalition layer of this run, or null when coalitions are off
  /// (every participant a singleton — the solo market).
  [[nodiscard]] virtual coalition::CoalitionManager* coalitions() {
    return nullptr;
  }

  /// The observability umbrella of this run (obs/observer.hpp), or null
  /// when disabled.  Instrumentation goes through the GF_OBS macro, so
  /// the null path is a single branch per site.
  [[nodiscard]] virtual obs::Observer* observer() { return nullptr; }

  /// Reputation input signals (the reputation-weighted bidding
  /// follow-on attaches to participants): an award `provider` declined
  /// or let time out, and a completed job that missed the completion
  /// guarantee `provider` gave at admission.
  virtual void award_declined(federation::ParticipantId provider) {
    (void)provider;
  }
  virtual void guarantee_missed(federation::ParticipantId provider) {
    (void)provider;
  }
};

/// The Grid Federation Agent for one cluster: the protocol engine the
/// configured SchedulingPolicy schedules through.
class Gfa final : public sim::Entity, public policy::SchedulerContext {
 public:
  Gfa(sim::Simulation& sim, sim::EntityId id, cluster::ResourceIndex index,
      cluster::Lrms& lrms, directory::FederationDirectory& dir, GfaHost& host);

  [[nodiscard]] cluster::ResourceIndex index() const noexcept {
    return index_;
  }
  [[nodiscard]] const cluster::Lrms& lrms() const noexcept { return lrms_; }

  /// Entry point for the local user population: schedule this job per the
  /// configured mode.  Must be invoked at job.submit (the federation
  /// driver schedules the arrival event).
  void submit_local(cluster::Job job);

  /// Message delivery (called by the host's router).
  void receive(const Message& msg);

  /// Wired by the federation driver to the LRMS completion callback.
  void on_lrms_completion(const cluster::CompletedJob& done);

  /// Publishes the current instantaneous load into the directory (the
  /// §2.3 coordination extension; driven periodically by the federation).
  void publish_load_hint();

  /// Jobs this GFA accepted on behalf of remote GFAs (Table 3's "remote
  /// jobs processed" is derived from outcomes; this counter cross-checks).
  [[nodiscard]] std::uint64_t remote_jobs_accepted() const noexcept {
    return remote_accepted_;
  }

  // -- membership churn (driven by the Federation's churn hooks) ----------
  /// Fail-stop: this cluster crashed.  Every job the engine holds in
  /// flight dies with the machine — pending enquiries, open policy state
  /// (auction books, held awards), placed-and-awaiting jobs, and remote
  /// holds — and each of OUR origin jobs still produces exactly one
  /// (rejected) outcome; the run-level outcome accounting depends on it.
  /// Later arrivals from this cluster's users bounce until a rejoin.
  void on_crash();
  /// Graceful departure: in-flight work runs to completion, but new local
  /// submissions bounce and new remote admissions are refused.
  void on_leave();
  /// A kJoin churn event brought the cluster back (after a crash or a
  /// leave): lift the gates.  The engine's maps were drained at crash
  /// time, so the rejoin starts clean.
  void on_rejoin();
  /// The failure detector confirmed `peer` dead: abandon enquiries parked
  /// on it (the job resumes its policy walk) and re-schedule jobs placed
  /// there whose completion will never come (kJobsOrphaned).
  void on_peer_dead(cluster::ResourceIndex peer);
  [[nodiscard]] bool down() const noexcept { return down_; }
  [[nodiscard]] bool leaving() const noexcept { return leaving_; }

  /// The policy scheduling this agent's jobs (telemetry, tests).
  [[nodiscard]] const policy::SchedulingPolicy& scheduling_policy()
      const noexcept {
    return *policy_;
  }

 private:
  /// A reservation held on behalf of a remote GFA between negotiate-accept
  /// and payload arrival (cancelled if the payload never comes).  The
  /// token distinguishes successive reservations for the same job — a
  /// lossy network can re-deliver the enquiry after our reply was lost,
  /// and the superseded reservation's timeout must not touch the live
  /// hold.
  struct RemoteHold {
    cluster::Reservation reservation;
    std::uint64_t token = 0;
    bool submitted = false;
  };
  /// A scheduled job awaiting its completion notification.
  struct Awaiting {
    cluster::Job job;
    std::uint32_t negotiations = 0;
    std::uint64_t messages = 0;
    double cost = 0.0;
    cluster::ResourceIndex exec = 0;
    /// Completion guarantee given at admission (infinity when none was
    /// promised, e.g. local execution), compared at finalize for the
    /// guarantee-miss reputation signal.
    sim::SimTime promise = sim::kTimeInfinity;
    /// The promise came from an auction award (misses are booked only
    /// against awarded providers, keeping AuctionStats auction-only).
    bool via_award = false;
    /// The placement went through a coalition's internal dispatch (see
    /// JobOutcome::via_coalition — this gates the surplus split).
    bool via_coalition = false;
  };

  // -- policy::SchedulerContext -------------------------------------------
  [[nodiscard]] cluster::ResourceIndex self() const override {
    return index_;
  }
  [[nodiscard]] const FederationConfig& config() const override {
    return host_.config();
  }
  [[nodiscard]] const cluster::ResourceSpec& spec_of(
      cluster::ResourceIndex index) const override {
    return host_.spec_of(index);
  }
  [[nodiscard]] directory::FederationDirectory& directory() override {
    return dir_;
  }
  [[nodiscard]] cluster::Lrms& lrms() override { return lrms_; }
  [[nodiscard]] sim::Simulation& sim() override { return simulation(); }
  [[nodiscard]] sim::SimTime now() const noexcept override {
    return Entity::now();
  }
  [[nodiscard]] sim::SimTime payload_staging_time(
      const cluster::Job& job, cluster::ResourceIndex site) const override {
    return host_.payload_staging_time(job, site);
  }
  /// True when this cluster can complete the job within its deadline.
  [[nodiscard]] bool local_deadline_ok(
      const cluster::Job& job) const override;
  /// Cost of running `job` on the cluster advertised by `quote` (uses only
  /// information the quote carries — this is the static budget check a GFA
  /// can do without any negotiation).
  [[nodiscard]] double cost_from_quote(
      const cluster::Job& job, const directory::Quote& quote) const override;
  /// Reserves the job on the local LRMS and records it as awaiting.  The
  /// settled amount is the posted-price cost unless `price` >= 0 overrides
  /// it (auction self-award: the cleared payment).
  void execute_here(Pending p, double price) override;
  void send_negotiate(Pending p, cluster::ResourceIndex target) override;
  void send_award(Pending p, cluster::ResourceIndex target,
                  double payment) override;
  void park_award(Pending p, cluster::ResourceIndex target) override;
  void place_in_coalition(Pending p, federation::ParticipantId coalition,
                          double payment) override;
  void reject(Pending p) override;
  [[nodiscard]] coalition::CoalitionManager* coalitions() override {
    return host_.coalitions();
  }
  void send(Message msg) override { host_.send(std::move(msg)); }
  std::uint64_t multicast(Message msg,
                          std::span<const cluster::ResourceIndex> targets,
                          sim::SimTime not_after) override {
    return host_.multicast(std::move(msg), targets, not_after);
  }
  void admit_enquiry(const Message& msg) override { admit_and_reply(msg); }
  void auction_report(const market::ClearingReport& report) override {
    host_.auction_report(report);
  }
  [[nodiscard]] obs::Observer* observer() override {
    return host_.observer();
  }

  // -- enquiry seam (DBC negotiate + auction award) -----------------------
  /// Shared enquiry plumbing: parks the job in pending_, sends `type`
  /// (kNegotiate or kAward) to `target` unless the award already rode a
  /// piggybacked solicitation (`on_wire` false), and arms the reply
  /// timeout when the config enables it.  Replies resume in handle_reply.
  void park_enquiry(Pending p, cluster::ResourceIndex target,
                    MessageType type, double price, bool on_wire);
  /// Fires when no reply arrived in time: abandon the enquiry, hand the
  /// job back to the policy.
  void on_negotiate_timeout(cluster::JobId id, std::uint64_t attempt);
  /// Fires when a held reservation saw no payload: cancel it.  `token`
  /// pins the timeout to the reservation it was armed for.
  void on_hold_timeout(cluster::JobId id, std::uint64_t token);

  // -- message handlers ----------------------------------------------------
  void handle_reply(const Message& msg);
  void handle_submission(const Message& msg);
  void handle_completion(const Message& msg);

  /// Provider-side admission shared by kNegotiate and kAward: exact LRMS
  /// estimate, reserve on acceptance, answer with a kReply.  A kAward
  /// addressed to a coalition this cluster represents instead places the
  /// job internally (best member guarantee) and answers for the group.
  void admit_and_reply(const Message& msg);

 public:
  /// The reserve-and-hold half of admission, wire-reply-free: exact LRMS
  /// estimate for `job`, reservation + remote hold on acceptance.
  /// Returns the completion guarantee, or sim::kTimeInfinity on
  /// rejection.  Called for wire enquiries by admit_and_reply and for
  /// intra-coalition placement by the federation driver on behalf of the
  /// coalition manager (the member-side admission of a group award).
  sim::SimTime admit_remote(const cluster::Job& job);

  /// This cluster's solo sealed bid for `job` (the policy's pricing);
  /// the coalition manager aggregates member bids through this.
  [[nodiscard]] market::Bid provider_bid(const cluster::Job& job) {
    return policy_->make_bid(job);
  }

  /// Drops the policy's cached pricing after a coalition placement
  /// reserved capacity here behind the policy's back (see
  /// SchedulingPolicy::invalidate_bid_cache).
  void invalidate_provider_cache() { policy_->invalidate_bid_cache(); }

 private:
  /// The participant `resource` acts as (its singleton without a
  /// coalition layer) — reputation signals attach to participants.
  [[nodiscard]] federation::ParticipantId participant_of(
      cluster::ResourceIndex resource) const;

  void finalize(cluster::JobId id, cluster::ResourceIndex exec,
                sim::SimTime start, sim::SimTime completion);

  cluster::ResourceIndex index_;
  cluster::Lrms& lrms_;
  directory::FederationDirectory& dir_;
  GfaHost& host_;
  /// The configured mode's brain (constructed last: it schedules through
  /// the members above).
  std::unique_ptr<policy::SchedulingPolicy> policy_;

  std::unordered_map<cluster::JobId, Pending> pending_;
  std::unordered_map<cluster::JobId, Awaiting> awaiting_;
  std::unordered_map<cluster::JobId, RemoteHold> holds_;
  std::uint64_t next_hold_token_ = 0;
  std::uint64_t remote_accepted_ = 0;
  bool down_ = false;     ///< crashed (kCrash churn); lifts on rejoin
  bool leaving_ = false;  ///< departing gracefully (kLeave churn)
};

}  // namespace gridfed::core
