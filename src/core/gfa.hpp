#pragma once
// GFA — the Grid Federation Agent (paper §2.0.3), the new RMS layer that
// turns an autonomous cluster into a federation member.  It is a two-layer
// system:
//
//  * the *distributed information manager* talks to the shared federation
//    directory (subscribe/quote/query) to discover the r-th
//    cheapest/fastest cluster for a job;
//  * the *resource manager* performs local superscheduling, runs the
//    admission-control negotiation with remote GFAs, and manages remote
//    jobs on the local LRMS.
//
// Scheduling follows the paper's DBC algorithm (§2.2): walk the directory
// ranking (cheapest order for OFC users, fastest for OFT), skip clusters
// that statically cannot satisfy the job (too small, or the quoted price
// would blow the budget — both computable from the quote alone), negotiate
// the deadline guarantee with the rest, and dispatch to the first
// accepting cluster; a job whose every rank fails is dropped.
//
// The market extension adds a fourth mode (SchedulingMode::kAuction): the
// origin broadcasts a call-for-bids, providers answer with sealed asks
// priced by their bidding strategy (market/bid_pricing.hpp), and the
// auction engine clears the book into a deterministic award ranking
// (market/auction_engine.hpp).  An award is delivered through the same
// enquiry machinery as a DBC negotiate — the winner re-runs admission
// control, reserves, and replies — so the pending/awaiting/timeout state
// and the ship/completion legs are shared between both modes.
//
// Admission control: the remote resource manager asks its LRMS for an
// exact completion-time estimate; on acceptance it *reserves* the
// processors immediately, which is what makes the returned guarantee
// binding even with nonzero message latency.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/lrms.hpp"
#include "core/config.hpp"
#include "core/message.hpp"
#include "core/outcome.hpp"
#include "directory/federation_directory.hpp"
#include "market/auction_engine.hpp"
#include "market/book_pool.hpp"
#include "sim/entity.hpp"

namespace gridfed::core {

/// Environment a GFA operates in, implemented by the Federation driver:
/// message routing, the peer catalog, configuration, and outcome sinks.
class GfaHost {
 public:
  virtual ~GfaHost() = default;

  /// Routes a message to its destination GFA (records it in the message
  /// ledger and applies the configured network latency).
  virtual void send(Message msg) = 0;

  /// Resource description of any federation member.
  [[nodiscard]] virtual const cluster::ResourceSpec& spec_of(
      cluster::ResourceIndex index) const = 0;

  [[nodiscard]] virtual const FederationConfig& config() const = 0;

  /// Staging delay before `job`'s input data is available at `site`
  /// (0 without the WAN model or for the job's own origin).  The remote
  /// resource manager folds this into its admission estimate — a job
  /// cannot start before its data lands (Eq. 1).
  [[nodiscard]] virtual sim::SimTime payload_staging_time(
      const cluster::Job& job, cluster::ResourceIndex site) const = 0;

  /// A job finished (successfully scheduled earlier).
  virtual void job_completed(const JobOutcome& outcome) = 0;

  /// A job was dropped: no cluster in the federation could satisfy it.
  virtual void job_rejected(const cluster::Job& job,
                            std::uint32_t negotiations,
                            std::uint64_t messages) = 0;

  /// Auction-mode telemetry: one call per cleared book (kAuction only).
  virtual void auction_report(const market::ClearingReport& report) {
    (void)report;
  }
};

/// The Grid Federation Agent for one cluster.
class Gfa : public sim::Entity {
 public:
  Gfa(sim::Simulation& sim, sim::EntityId id, cluster::ResourceIndex index,
      cluster::Lrms& lrms, directory::FederationDirectory& dir, GfaHost& host);

  [[nodiscard]] cluster::ResourceIndex index() const noexcept {
    return index_;
  }
  [[nodiscard]] cluster::Lrms& lrms() noexcept { return lrms_; }
  [[nodiscard]] const cluster::Lrms& lrms() const noexcept { return lrms_; }

  /// Entry point for the local user population: schedule this job per the
  /// configured mode.  Must be invoked at job.submit (the federation
  /// driver schedules the arrival event).
  void submit_local(cluster::Job job);

  /// Message delivery (called by the host's router).
  void receive(const Message& msg);

  /// Wired by the federation driver to the LRMS completion callback.
  void on_lrms_completion(const cluster::CompletedJob& done);

  /// Publishes the current instantaneous load into the directory (the
  /// §2.3 coordination extension; driven periodically by the federation).
  void publish_load_hint();

  /// Jobs this GFA accepted on behalf of remote GFAs (Table 3's "remote
  /// jobs processed" is derived from outcomes; this counter cross-checks).
  [[nodiscard]] std::uint64_t remote_jobs_accepted() const noexcept {
    return remote_accepted_;
  }

 private:
  /// In-flight scheduling state for a job this GFA originated.
  struct Pending {
    cluster::Job job;
    std::uint32_t next_rank = 1;     ///< next directory rank to try
    std::uint32_t negotiations = 0;  ///< remote enquiries so far
    std::uint64_t messages = 0;      ///< protocol messages so far
    /// The GFA currently being negotiated with (kNoResource = none).  Used
    /// to discard stale replies after a timeout abandoned the enquiry.
    cluster::ResourceIndex current_target = cluster::kNoResource;
    /// Monotone enquiry counter so a timeout only fires for its own
    /// enquiry, never a later one.
    std::uint64_t attempt = 0;

    // -- auction-mode state (empty outside kAuction) ----------------------
    /// Cleared award ranking still to try; awards[next_award] is next.
    std::vector<market::Award> awards;
    std::size_t next_award = 0;
    /// Payment agreed for the in-flight award; settled instead of the
    /// posted-price cost when the winner accepts.
    double award_payment = 0.0;
    /// Book cleared empty or every award declined: finish via the DBC
    /// walk (when the config allows) rather than re-auctioning.
    bool dbc_fallback = false;

    /// True while an auction award (not a DBC negotiate) is in flight.
    [[nodiscard]] bool awarding() const noexcept {
      return !awards.empty() && !dbc_fallback;
    }
  };

  /// A reservation held on behalf of a remote GFA between negotiate-accept
  /// and payload arrival (cancelled if the payload never comes).
  struct RemoteHold {
    cluster::Reservation reservation;
    bool submitted = false;
  };
  /// A scheduled job awaiting its completion notification.
  struct Awaiting {
    cluster::Job job;
    std::uint32_t negotiations = 0;
    std::uint64_t messages = 0;
    double cost = 0.0;
    cluster::ResourceIndex exec = 0;
  };
  /// An auction round collecting bids (origin side).
  struct OpenAuction {
    Pending pending;
    market::AuctionBook book;
  };

  // -- origin-side scheduling -------------------------------------------
  void advance(Pending p);
  void schedule_economy(Pending p);
  void schedule_no_economy(Pending p);
  void schedule_independent(Pending p);
  /// True when this cluster can complete the job within its deadline.
  [[nodiscard]] bool local_deadline_ok(const cluster::Job& job) const;
  /// Reserves the job on the local LRMS and records it as awaiting.  The
  /// settled amount is the posted-price cost unless `price` overrides it
  /// (auction self-award: the cleared payment).
  void execute_here(Pending p, double price = -1.0);
  void reject(Pending p);

  /// Cost of running `job` on the cluster advertised by `quote` (uses only
  /// information the quote carries — this is the static budget check a GFA
  /// can do without any negotiation).
  [[nodiscard]] double cost_from_quote(const cluster::Job& job,
                                       const directory::Quote& quote) const;

  /// Shared enquiry seam: sends `type` (kNegotiate or kAward) to `target`,
  /// parks the job in pending_, and arms the reply timeout when the config
  /// enables it.  Both DBC and auction awards resume in handle_reply.
  void send_enquiry(Pending p, cluster::ResourceIndex target,
                    MessageType type, double price);
  void send_negotiate(Pending p, cluster::ResourceIndex target);
  /// Fires when no reply arrived in time: abandon the enquiry, walk on.
  void on_negotiate_timeout(cluster::JobId id, std::uint64_t attempt);
  /// Fires when a held reservation saw no payload: cancel it.
  void on_hold_timeout(cluster::JobId id);

  // -- auction mode (origin side) ----------------------------------------
  /// Opens the book: solicits bids from every eligible provider (cheapest
  /// directory order, capped at max_bidders, fetched with ONE metered
  /// query_top_k instead of a per-rank query walk) and enters the
  /// origin's own message-free bid when configured.  With
  /// batch_solicitations the call-for-bids go through the solicit queue
  /// instead of the wire.
  void schedule_auction(Pending p);
  /// Batched solicitation: parks the job's call-for-bids until the flush
  /// deadline (bounded by the batch window and the job's deadline slack).
  void queue_solicitation(cluster::JobId id);
  /// Flush wake-up; a no-op unless the earliest queued deadline is due.
  void maybe_flush_solicitations();
  /// Sends one coalesced kCallForBids per provider covering every queued
  /// job, then arms the per-job bid timeouts.
  void flush_solicitations();
  /// Closes the book, clears it through the engine, reports telemetry and
  /// starts awarding (or falls back / rejects on an empty ranking).
  void clear_auction(cluster::JobId id);
  /// Tries the next award in the cleared ranking; exhausted = fallback.
  void advance_auction(Pending p);
  void on_bid_timeout(cluster::JobId id);
  /// Exhausted every auction avenue: DBC walk or rejection per config.
  void auction_fallback(Pending p);

  // -- auction mode (provider side) --------------------------------------
  /// This cluster's sealed bid for `job` (also used for the origin's own
  /// local bid): admission-style completion estimate plus the configured
  /// bid-pricing strategy.
  [[nodiscard]] market::Bid make_bid(const cluster::Job& job) const;

  // -- message handlers ---------------------------------------------------
  void handle_reply(const Message& msg);
  void handle_submission(const Message& msg);
  void handle_completion(const Message& msg);
  void handle_call_for_bids(const Message& msg);
  void handle_bid(const Message& msg);

  /// Provider-side admission shared by kNegotiate and kAward: exact LRMS
  /// estimate, reserve on acceptance, answer with a kReply.
  void admit_and_reply(const Message& msg);

  void finalize(cluster::JobId id, cluster::ResourceIndex exec,
                sim::SimTime start, sim::SimTime completion);

  cluster::ResourceIndex index_;
  cluster::Lrms& lrms_;
  directory::FederationDirectory& dir_;
  GfaHost& host_;

  std::unordered_map<cluster::JobId, Pending> pending_;
  std::unordered_map<cluster::JobId, Awaiting> awaiting_;
  std::unordered_map<cluster::JobId, RemoteHold> holds_;
  std::unordered_map<cluster::JobId, OpenAuction> auctions_;
  std::uint64_t remote_accepted_ = 0;

  // -- batched solicitation state (kAuction + batch_solicitations) -------
  /// Jobs whose call-for-bids await the next flush, in submission order.
  std::vector<cluster::JobId> solicit_queue_;
  /// Earliest flush deadline among queued jobs (infinity when empty).
  sim::SimTime flush_deadline_ = sim::kTimeInfinity;

  /// Cleared books are recycled here instead of reallocating per job.
  market::BookPool book_pool_;
  // Scratch buffers reused across auctions (hot path: one per job).
  std::vector<directory::Quote> scratch_quotes_;
  std::vector<cluster::ResourceIndex> scratch_entrants_;
  std::vector<cluster::ResourceIndex> scratch_providers_;
  /// Per-provider job buckets built by flush_solicitations; parallel to
  /// scratch_providers_, capacity retained across flushes.
  std::vector<std::vector<const cluster::Job*>> scratch_buckets_;
};

}  // namespace gridfed::core
