#pragma once
// Per-job outcome records.  The federation driver collects one JobOutcome
// per trace job; every table and figure of the evaluation is an
// aggregation over these records.

#include <cstdint>

#include "cluster/job.hpp"
#include "cluster/resource.hpp"
#include "sim/types.hpp"

namespace gridfed::core {

/// Final fate of one job.
struct JobOutcome {
  cluster::Job job;
  bool accepted = false;

  // Valid when accepted:
  cluster::ResourceIndex executed_on = 0;
  sim::SimTime start = 0.0;
  sim::SimTime completion = 0.0;
  double cost = 0.0;  ///< Grid Dollars settled

  /// Remote negotiate rounds performed (accepted + rejected enquiries).
  std::uint32_t negotiations = 0;
  /// Protocol messages attributable to this job
  /// (2 * negotiations [+ submission + completion when migrated]).
  std::uint64_t messages = 0;

  /// The job was placed through a coalition's internal dispatch (a
  /// representative accepted on the group's behalf, or the origin's own
  /// coalition won).  Gates the surplus-split settlement: a job that
  /// ultimately ran through a solo path must settle solo even when a
  /// stale coalition placement note exists for it (lossy-network
  /// re-schedules).  Always false in the solo market.
  bool via_coalition = false;

  /// The market participant the settlement was credited to: the
  /// coalition's id when the payment was split across a group, otherwise
  /// the executing cluster itself.  Filled at settlement so the outcome
  /// CSV can be re-analyzed offline without the bank.
  std::uint32_t settled_participant = 0;
  /// The executing member's share of a coalition split (its ask plus its
  /// cut of the surplus); equals `cost` for solo settlements.
  double surplus_share = 0.0;

  /// Response time experienced by the user (queue wait + execution).
  [[nodiscard]] sim::SimTime response_time() const noexcept {
    return completion - job.submit;
  }
  /// True when the job ran on a cluster other than its origin.
  [[nodiscard]] bool migrated() const noexcept {
    return accepted && executed_on != job.origin;
  }
  /// QoS verdict: completed within both deadline and budget (paper §2.1).
  [[nodiscard]] bool qos_satisfied() const noexcept {
    return accepted && completion <= job.absolute_deadline() &&
           cost <= job.budget;
  }
};

}  // namespace gridfed::core
