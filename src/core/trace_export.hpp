#pragma once
// Outcome export.  Research workflows want the raw per-job records, not
// just the aggregated tables: this writes the full JobOutcome set as CSV
// (one row per job) so schedules can be re-analyzed or re-plotted without
// re-running the simulation.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/outcome.hpp"

namespace gridfed::core {

/// Column header of the outcome CSV (stable, documented order).
[[nodiscard]] std::vector<std::string> outcome_csv_header();

/// One outcome as CSV cells, matching outcome_csv_header().
[[nodiscard]] std::vector<std::string> outcome_csv_row(
    const JobOutcome& outcome);

/// Writes header + all outcomes to `out` as RFC-4180 CSV.
void write_outcomes_csv(std::ostream& out,
                        const std::vector<JobOutcome>& outcomes);

/// Convenience file writer; throws std::runtime_error on failure.
void save_outcomes_csv(const std::string& path,
                       const std::vector<JobOutcome>& outcomes);

}  // namespace gridfed::core
