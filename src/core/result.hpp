#pragma once
// Aggregated results of one federation run.  Every table/figure bench is a
// projection of these records (see DESIGN.md §2 for the mapping).

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/message.hpp"
#include "directory/query_cost.hpp"
#include "stats/accumulator.hpp"
#include "stats/auction_stats.hpp"

namespace gridfed::core {

/// Per-resource statistics (one row of Tables 2/3; one bar of Figs 2-9).
struct ResourceStats {
  std::string name;

  // Job accounting for jobs *originating* here.
  std::uint32_t total_jobs = 0;
  std::uint32_t accepted = 0;
  std::uint32_t rejected = 0;
  std::uint32_t processed_locally = 0;  ///< origin == executor == here
  std::uint32_t migrated = 0;           ///< originated here, executed away

  /// Jobs executed here on behalf of other clusters (Table 3 last column,
  /// Fig 3(b)).
  std::uint32_t remote_processed = 0;

  /// Mean utilization over the experiment window, fraction in [0, 1].
  double utilization = 0.0;

  /// Grid Dollars earned by this owner (Fig 3(a)).
  double incentive = 0.0;
  /// Grid Dollars spent by users whose home is this cluster.
  double spent_by_home = 0.0;

  // User QoS metrics for jobs originating here (Figs 7/8): excluding
  // rejected jobs, and including them at their origin-cluster estimate.
  stats::Accumulator response_excl;
  stats::Accumulator budget_excl;
  stats::Accumulator response_incl;
  stats::Accumulator budget_incl;

  // Message split at this GFA (Fig 9).
  std::uint64_t local_messages = 0;
  std::uint64_t remote_messages = 0;

  [[nodiscard]] double acceptance_pct() const noexcept {
    return total_jobs ? 100.0 * accepted / total_jobs : 0.0;
  }
  [[nodiscard]] double rejection_pct() const noexcept {
    return total_jobs ? 100.0 * rejected / total_jobs : 0.0;
  }
};

/// Whole-run aggregate.
struct FederationResult {
  SchedulingMode mode = SchedulingMode::kEconomy;
  std::uint32_t oft_percent = 0;  ///< population profile of this run
  std::size_t system_size = 0;

  std::vector<ResourceStats> resources;

  // Message complexity (Experiments 4/5).
  stats::Accumulator msgs_per_job;          ///< over every originated job
  stats::Accumulator negotiations_per_job;  ///< remote enquiries per job
  stats::Accumulator msgs_per_gfa;          ///< local+remote(+relay) per GFA
  std::uint64_t total_messages = 0;
  std::uint64_t total_message_bytes = 0;  ///< under the wire-size model
  std::uint64_t messages_by_type[kMessageTypeCount] = {};
  std::uint64_t bytes_by_type[kMessageTypeCount] = {};
  /// Overlay relay wire messages (TreeTransport edge messages; included
  /// in total_messages, 0 on the direct transport).
  std::uint64_t overlay_relay_messages = 0;
  /// Bid entries the overlay tombstoned in-network (convergecast
  /// score-and-prune; 0 on the direct transport or with pruning off).
  std::uint64_t bids_pruned = 0;
  /// Wire bytes the convergecast prune + delta encoding saved against
  /// forwarding every bid payload whole on every tree edge.
  std::uint64_t bid_prune_bytes_saved = 0;
  directory::DirectoryTraffic directory_traffic;

  // Economy aggregate.
  double total_incentive = 0.0;

  // Auction-mode aggregate (all-zero outside kAuction runs).
  stats::AuctionStats auctions;

  // Coalition-mode aggregate (all-zero with the participant layer's
  // coalition extension disabled).
  std::size_t coalitions_formed = 0;
  /// Intra-coalition control messages on the members' local links
  /// (pricing enquiries and placement RPCs behind the representative);
  /// never part of the wire ledger — this is the representative-fan-out
  /// cost the group-addressed dissemination trades wire messages for.
  std::uint64_t coalition_local_messages = 0;
  /// Awards won by a coalition and settled through a surplus split.
  std::uint64_t coalition_awards = 0;
  /// Grid Dollars of surplus (payment above the executing member's own
  /// ask) distributed across coalition members by the SurplusRule.
  double coalition_surplus = 0.0;

  // Federation-wide user QoS.
  stats::Accumulator fed_response_excl;
  stats::Accumulator fed_budget_excl;
  stats::Accumulator fed_response_incl;
  stats::Accumulator fed_budget_incl;

  std::uint64_t total_jobs = 0;
  std::uint64_t total_accepted = 0;
  std::uint64_t total_rejected = 0;

  [[nodiscard]] double acceptance_pct() const noexcept {
    return total_jobs ? 100.0 * static_cast<double>(total_accepted) /
                            static_cast<double>(total_jobs)
                      : 0.0;
  }

  /// Ledger-based messages per job: every wire message the run cost —
  /// overlay relay messages included — over every originated job.  On
  /// the direct transport this equals msgs_per_job.mean() (per-job
  /// counters sum to the ledger); on the tree transport the shared edge
  /// messages are not attributable to single jobs, so THIS is the
  /// apples-to-apples scaling metric (fig10's transport comparison).
  [[nodiscard]] double wire_msgs_per_job() const noexcept {
    return total_jobs ? static_cast<double>(total_messages) /
                            static_cast<double>(total_jobs)
                      : 0.0;
  }

  /// Ledger-based wire bytes per job under the wire-size model — the
  /// byte-cost companion to wire_msgs_per_job(), gated per transport by
  /// bench/check_messages.py.
  [[nodiscard]] double wire_bytes_per_job() const noexcept {
    return total_jobs ? static_cast<double>(total_message_bytes) /
                            static_cast<double>(total_jobs)
                      : 0.0;
  }
};

}  // namespace gridfed::core
