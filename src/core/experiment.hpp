#pragma once
// Experiment drivers: one-call reproductions of the paper's five
// experiments.  Each bench binary is a thin printer over these functions;
// tests exercise them directly.

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/federation.hpp"
#include "core/result.hpp"

namespace gridfed::core {

/// Default config for one of the paper's three environments.
[[nodiscard]] FederationConfig make_config(
    SchedulingMode mode, std::uint64_t seed = FederationConfig{}.seed);

/// Runs one federation over the calibrated synthetic workload.
/// `n_resources` replicates Table 1 round-robin (8 = the paper's set);
/// `oft_percent` selects the population profile (ignored outside economy
/// mode).
[[nodiscard]] FederationResult run_experiment(const FederationConfig& config,
                                              std::size_t n_resources = 8,
                                              std::uint32_t oft_percent = 0);

/// Experiment 3/4: the population sweep OFT = 0, 10, ..., 100 (11 runs).
[[nodiscard]] std::vector<FederationResult> run_profile_sweep(
    const FederationConfig& config, std::size_t n_resources = 8);

/// Experiment 5: message complexity vs system size.  Returns one result
/// per (size, profile) pair, ordered size-major.
[[nodiscard]] std::vector<FederationResult> run_scaling_study(
    const FederationConfig& config, const std::vector<std::size_t>& sizes,
    const std::vector<std::uint32_t>& oft_percents);

}  // namespace gridfed::core
