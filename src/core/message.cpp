#include "core/message.hpp"

#include "sim/check.hpp"

namespace gridfed::core {

MessageLedger::MessageLedger(std::size_t n_gfas)
    : local_(n_gfas, 0), remote_(n_gfas, 0) {
  GF_EXPECTS(n_gfas > 0);
}

void MessageLedger::record(const Message& msg) {
  GF_EXPECTS(msg.from < local_.size() && msg.to < local_.size());
  GF_EXPECTS(msg.from != msg.to);  // self-messages are free (no network)
  const cluster::ResourceIndex origin = msg.job.origin;
  // The origin endpoint books the message as local scheduling work; the
  // counterpart books it as remote.  Exactly one endpoint is the origin:
  // every protocol message has the origin GFA on one side.
  const cluster::ResourceIndex other = (msg.from == origin) ? msg.to : msg.from;
  GF_EXPECTS(msg.from == origin || msg.to == origin);
  local_[origin] += 1;
  remote_[other] += 1;
  by_type_[static_cast<std::size_t>(msg.type)] += 1;
  total_ += 1;
}

std::uint64_t MessageLedger::local_at(cluster::ResourceIndex gfa) const {
  GF_EXPECTS(gfa < local_.size());
  return local_[gfa];
}

std::uint64_t MessageLedger::remote_at(cluster::ResourceIndex gfa) const {
  GF_EXPECTS(gfa < remote_.size());
  return remote_[gfa];
}

std::uint64_t MessageLedger::total_at(cluster::ResourceIndex gfa) const {
  return local_at(gfa) + remote_at(gfa);
}

std::uint64_t MessageLedger::count_of(MessageType t) const {
  return by_type_[static_cast<std::size_t>(t)];
}

}  // namespace gridfed::core
