#include "core/message.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace gridfed::core {

std::uint64_t wire_bytes(const Message& msg) noexcept {
  if (msg.type == MessageType::kGossip) {
    // A digest carries no job payload: header + one record per member.
    return kMessageHeaderBytes +
           membership::kGossipRecordBytes * msg.gossip.size();
  }
  // A pruned (tombstoned) bid entry costs its marker, not a full quote;
  // only TreeTransport's convergecast pruning produces them, so direct
  // messages take the branch-free multiply below.
  std::uint64_t bid_bytes = kBidWireBytes * msg.batch_bids.size();
  if (msg.type == MessageType::kBid) {
    for (const BatchedBid& bid : msg.batch_bids) {
      if (bid.pruned) bid_bytes -= kBidWireBytes - kBidTombstoneBytes;
    }
  }
  return kMessageHeaderBytes +
         kJobWireBytes *
             std::max<std::uint64_t>(1, msg.batch_jobs.size()) +
         bid_bytes + kAwardWireBytes * msg.batch_awards.size();
}

std::uint64_t encoded_bid_frame_bytes(std::uint64_t sources,
                                      std::uint64_t bases,
                                      std::uint64_t deltas,
                                      std::uint64_t tombstones) noexcept {
  return kBidFrameBytes + kBidSourceBytes * sources +
         kBidQuoteBytes * bases + kBidDeltaBytes * deltas +
         kBidTombstoneBytes * tombstones;
}

MessageLedger::MessageLedger(std::size_t n_gfas)
    : local_(n_gfas, 0), remote_(n_gfas, 0), relay_(n_gfas, 0) {
  GF_EXPECTS(n_gfas > 0);
}

void MessageLedger::record(const Message& msg) {
  GF_EXPECTS(msg.from < local_.size() && msg.to < local_.size());
  GF_EXPECTS(msg.from != msg.to);  // self-messages are free (no network)
  const cluster::ResourceIndex origin = msg.job.origin;
  // The origin endpoint books the message as local scheduling work; the
  // counterpart books it as remote.  Exactly one endpoint is the origin:
  // every protocol message has the origin GFA on one side.
  const cluster::ResourceIndex other = (msg.from == origin) ? msg.to : msg.from;
  GF_EXPECTS(msg.from == origin || msg.to == origin);
  local_[origin] += 1;
  remote_[other] += 1;
  by_type_[static_cast<std::size_t>(msg.type)] += 1;
  const std::uint64_t bytes = wire_bytes(msg);
  bytes_by_type_[static_cast<std::size_t>(msg.type)] += bytes;
  total_bytes_ += bytes;
  total_ += 1;
}

void MessageLedger::record_relay(cluster::ResourceIndex from,
                                 cluster::ResourceIndex to, MessageType type,
                                 std::uint64_t bytes) {
  GF_EXPECTS(from < relay_.size() && to < relay_.size());
  GF_EXPECTS(from != to);
  relay_[from] += 1;
  relay_[to] += 1;
  by_type_[static_cast<std::size_t>(type)] += 1;
  bytes_by_type_[static_cast<std::size_t>(type)] += bytes;
  total_bytes_ += bytes;
  relay_total_ += 1;
  total_ += 1;
}

std::uint64_t MessageLedger::local_at(cluster::ResourceIndex gfa) const {
  GF_EXPECTS(gfa < local_.size());
  return local_[gfa];
}

std::uint64_t MessageLedger::remote_at(cluster::ResourceIndex gfa) const {
  GF_EXPECTS(gfa < remote_.size());
  return remote_[gfa];
}

std::uint64_t MessageLedger::relay_at(cluster::ResourceIndex gfa) const {
  GF_EXPECTS(gfa < relay_.size());
  return relay_[gfa];
}

std::uint64_t MessageLedger::total_at(cluster::ResourceIndex gfa) const {
  return local_at(gfa) + remote_at(gfa) + relay_at(gfa);
}

std::uint64_t MessageLedger::count_of(MessageType t) const {
  return by_type_[static_cast<std::size_t>(t)];
}

std::uint64_t MessageLedger::bytes_of(MessageType t) const {
  return bytes_by_type_[static_cast<std::size_t>(t)];
}

void MessageLedger::merge_from(const MessageLedger& other) {
  GF_EXPECTS(other.local_.size() == local_.size());
  for (std::size_t i = 0; i < local_.size(); ++i) {
    local_[i] += other.local_[i];
    remote_[i] += other.remote_[i];
    relay_[i] += other.relay_[i];
  }
  for (std::size_t t = 0; t < kMessageTypeCount; ++t) {
    by_type_[t] += other.by_type_[t];
    bytes_by_type_[t] += other.bytes_by_type_[t];
  }
  total_ += other.total_;
  total_bytes_ += other.total_bytes_;
  relay_total_ += other.relay_total_;
}

}  // namespace gridfed::core
