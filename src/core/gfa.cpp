#include "core/gfa.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "economy/cost_model.hpp"
#include "sim/check.hpp"

namespace gridfed::core {

namespace {
// Service (unloaded execution) time promised by a quote: Eq. 3 computed
// from the advertised mu/gamma instead of a ResourceSpec.
sim::SimTime service_time_from_quote(const cluster::Job& job,
                                     const cluster::ResourceSpec& origin,
                                     const directory::Quote& quote) {
  const sim::SimTime compute =
      job.length_mi / (quote.mips * static_cast<double>(job.processors));
  const sim::SimTime comm =
      job.comm_overhead * origin.bandwidth / quote.bandwidth;
  return compute + comm;
}
}  // namespace

Gfa::Gfa(sim::Simulation& sim, sim::EntityId id, cluster::ResourceIndex index,
         cluster::Lrms& lrms, directory::FederationDirectory& dir,
         GfaHost& host)
    : Entity(sim, id, "GFA(" + lrms.spec().name + ")"),
      index_(index),
      lrms_(lrms),
      dir_(dir),
      host_(host),
      policy_(policy::make_policy(host.config().mode, *this)) {}

void Gfa::submit_local(cluster::Job job) {
  GF_EXPECTS(job.origin == index_);
  GF_OBS(host_.observer(),
         begin(now(), obs::SpanKind::kJob, index_, job.id, job.processors,
               static_cast<std::uint64_t>(job.user), job.length_mi));
  GF_OBS(host_.observer(), count(obs::Counter::kJobsSubmitted));
  Pending p;
  p.job = std::move(job);
  if (down_ || leaving_) {
    // The cluster is gone (or winding down): its users' jobs bounce, but
    // each still produces exactly one outcome.
    reject(std::move(p));
    return;
  }
  policy_->schedule(std::move(p));
}

bool Gfa::local_deadline_ok(const cluster::Job& job) const {
  const auto& cfg = host_.config();
  if (job.processors > lrms_.spec().processors) return false;
  if (!cfg.enforce_deadline) return true;
  const sim::SimTime exec = cluster::execution_time(
      job, host_.spec_of(job.origin), lrms_.spec());
  return lrms_.estimate_completion(job, exec) <= job.absolute_deadline();
}

double Gfa::cost_from_quote(const cluster::Job& job,
                            const directory::Quote& quote) const {
  const auto& cfg = host_.config();
  const auto& origin = host_.spec_of(job.origin);
  switch (cfg.cost_model) {
    case economy::CostModel::kComputeOnly:
      return quote.price * job.length_mi /
             (quote.mips * static_cast<double>(job.processors));
    case economy::CostModel::kWallTime:
      return quote.price * service_time_from_quote(job, origin, quote);
    case economy::CostModel::kPerMi:
    default:
      return quote.price * job.length_mi / economy::kMiPerChargeUnit;
  }
}

// ---- enquiry seam (DBC negotiate + auction award) ---------------------------

void Gfa::park_enquiry(Pending p, cluster::ResourceIndex target,
                       MessageType type, double price, bool on_wire) {
  GF_EXPECTS(type == MessageType::kNegotiate || type == MessageType::kAward);
  ++p.negotiations;
  if (on_wire) ++p.messages;  // the enquiry (piggybacked awards ride free)
  p.current_target = target;
  p.award_in_flight = type == MessageType::kAward;
  ++p.attempt;
  // Enquiry span arg convention: a0 = target, a1 = 1 for an award leg.
  // The matching end lands in handle_reply (a1 = 0 declined / 1
  // accepted) or on_negotiate_timeout (a1 = 2), exactly once per begin.
  GF_OBS(host_.observer(),
         begin(now(), obs::SpanKind::kEnquiry, index_, p.job.id, target,
               p.award_in_flight ? 1 : 0));
  GF_OBS(host_.observer(), count(obs::Counter::kEnquiriesStarted));
  const cluster::JobId id = p.job.id;
  const std::uint64_t attempt = p.attempt;
  if (on_wire) {
    Message enquiry{type, index_, target, p.job};
    enquiry.price = price;
    pending_.insert_or_assign(id, std::move(p));
    host_.send(std::move(enquiry));
  } else {
    // The enquiry text travels on a piggybacked solicitation; only the
    // state and the timeout are needed here.
    pending_.insert_or_assign(id, std::move(p));
  }

  const auto& cfg = host_.config();
  if (cfg.negotiate_timeout > 0.0) {
    simulation().schedule_in(
        cfg.negotiate_timeout, sim::EventPriority::kControl,
        [this, id, attempt] { on_negotiate_timeout(id, attempt); });
  }
}

void Gfa::send_negotiate(Pending p, cluster::ResourceIndex target) {
  park_enquiry(std::move(p), target, MessageType::kNegotiate, 0.0, true);
}

void Gfa::send_award(Pending p, cluster::ResourceIndex target,
                     double payment) {
  park_enquiry(std::move(p), target, MessageType::kAward, payment, true);
}

void Gfa::park_award(Pending p, cluster::ResourceIndex target) {
  // The award text travels on a piggybacked solicitation the policy sends
  // itself; only the enquiry state and the timeout are needed here.
  park_enquiry(std::move(p), target, MessageType::kAward, 0.0, false);
}

void Gfa::on_negotiate_timeout(cluster::JobId id, std::uint64_t attempt) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;            // reply already handled
  if (it->second.attempt != attempt) return;   // a later enquiry is live
  if (it->second.current_target == cluster::kNoResource) return;
  // No reply: abandon this enquiry (the remote may have reserved — its own
  // hold timeout will release the processors) and hand the job back.  An
  // award the winner never honoured counts against its reputation like
  // an explicit decline.
  Pending p = std::move(it->second);
  pending_.erase(it);
  GF_OBS(host_.observer(), end(now(), obs::SpanKind::kEnquiry, index_, id,
                               p.current_target, 2));
  if (p.award_in_flight) {
    host_.award_declined(participant_of(p.current_target));
  }
  p.current_target = cluster::kNoResource;
  policy_->schedule(std::move(p));
}

federation::ParticipantId Gfa::participant_of(
    cluster::ResourceIndex resource) const {
  return coalition::participant_of(host_.coalitions(), resource);
}

void Gfa::place_in_coalition(Pending p, federation::ParticipantId coalition,
                             double payment) {
  // The origin's own coalition won the auction: placement is a local
  // fan-out over the cheap intra-coalition links (the manager counts
  // them), never a wire enquiry.  The chosen member reserved through
  // admit_remote, so shipping the payload directly is as safe as after
  // an accepted kReply.
  coalition::CoalitionManager* manager = host_.coalitions();
  GF_EXPECTS(manager != nullptr);
  const coalition::Placement placed = manager->place_award(coalition, p.job);
  if (!placed.accepted) {
    // Every member declined (queues moved since bidding): hand the job
    // back like a declined reply — the policy tries the next award.
    host_.award_declined(coalition);
    policy_->schedule(std::move(p));
    return;
  }
  ++p.messages;  // the payload transfer to the executing member
  Message submission{MessageType::kJobSubmission, index_, placed.member,
                     p.job, true, placed.estimate};
  Awaiting info{std::move(p.job), p.negotiations, p.messages, payment,
                placed.member};
  info.promise = placed.estimate;
  info.via_award = true;
  info.via_coalition = true;
  GF_OBS(host_.observer(),
         begin(now(), obs::SpanKind::kPlacement, index_, info.job.id,
               placed.member, coalition.value));
  GF_OBS(host_.observer(),
         instant(now(), obs::SpanKind::kCoalitionPlace, index_, info.job.id,
                 placed.member, coalition.value));
  GF_OBS(host_.observer(), count(obs::Counter::kCoalitionPlacements));
  awaiting_.emplace(info.job.id, std::move(info));
  host_.send(std::move(submission));
}

void Gfa::execute_here(Pending p, double price) {
  const auto& cfg = host_.config();
  const auto& own = lrms_.spec();
  const sim::SimTime exec =
      cluster::execution_time(p.job, host_.spec_of(p.job.origin), own);
  lrms_.submit(p.job, exec);
  const double cost =
      price >= 0.0 ? price
                   : economy::job_cost(p.job, host_.spec_of(p.job.origin),
                                       own, cfg.cost_model);
  GF_OBS(host_.observer(), begin(now(), obs::SpanKind::kPlacement, index_,
                                 p.job.id, index_, 0, cost));
  awaiting_.emplace(p.job.id, Awaiting{p.job, p.negotiations, p.messages,
                                       cost, index_});
}

void Gfa::reject(Pending p) {
  GF_OBS(host_.observer(),
         end(now(), obs::SpanKind::kJob, index_, p.job.id, 0));
  host_.job_rejected(p.job, p.negotiations, p.messages);
}

void Gfa::receive(const Message& msg) {
  GF_EXPECTS(msg.to == index_);
  switch (msg.type) {
    case MessageType::kNegotiate:
    case MessageType::kAward:
      admit_and_reply(msg);
      break;
    case MessageType::kReply:
      handle_reply(msg);
      break;
    case MessageType::kJobSubmission:
      handle_submission(msg);
      break;
    case MessageType::kJobCompletion:
      handle_completion(msg);
      break;
    case MessageType::kCallForBids:
      policy_->on_call_for_bids(msg);
      break;
    case MessageType::kBid:
      policy_->on_bid(msg);
      break;
    case MessageType::kGossip:
      // Membership gossip is intercepted by the Federation's router and
      // handed to the MembershipService; it never reaches a GFA.
      break;
  }
}

void Gfa::admit_and_reply(const Message& msg) {
  // Resource-manager side of admission control, shared by the DBC
  // negotiate and the auction award: ask the LRMS for the exact completion
  // time; accept iff it honours the deadline.  On acceptance we reserve
  // immediately so the guarantee stays binding until the job payload
  // arrives.
  const cluster::Job& job = msg.job;
  coalition::CoalitionManager* manager = host_.coalitions();
  if (msg.type == MessageType::kAward && manager != nullptr) {
    const federation::ParticipantId pid =
        manager->registry().participant_of(index_);
    if (pid.is_coalition() &&
        manager->registry().representative(pid) == index_) {
      // An award addressed to the coalition this cluster speaks for:
      // internal placement picks the member with the earliest completion
      // guarantee (that member reserves through the same admit_remote
      // seam), and the reply names the executing member so the origin
      // ships the payload straight to it.
      const coalition::Placement placed = manager->place_award(pid, job);
      if (placed.accepted) {
        GF_OBS(host_.observer(),
               instant(now(), obs::SpanKind::kCoalitionPlace, index_, job.id,
                       placed.member, pid.value));
        GF_OBS(host_.observer(), count(obs::Counter::kCoalitionPlacements));
      }
      Message reply{MessageType::kReply, index_, msg.from, job,
                    placed.accepted,
                    placed.accepted ? placed.estimate : sim::kTimeInfinity};
      if (placed.accepted) reply.exec_site = placed.member;
      host_.send(std::move(reply));
      return;
    }
  }
  const sim::SimTime estimate = admit_remote(job);
  host_.send(Message{MessageType::kReply, index_, msg.from, job,
                     estimate != sim::kTimeInfinity, estimate});
}

sim::SimTime Gfa::admit_remote(const cluster::Job& job) {
  const auto& cfg = host_.config();
  const auto& own = lrms_.spec();
  // A crashed or departing cluster admits nothing new.  (A crashed one
  // should never even be asked — the router suppresses its deliveries —
  // but coalition-internal placement reaches members directly.)
  if (down_ || leaving_) return sim::kTimeInfinity;
  if (job.processors > own.processors) return sim::kTimeInfinity;
  // A lossy network can re-deliver an enquiry for a job we already
  // hold a reservation for (our reply was lost; the origin's walk
  // came back around).  Release the superseded reservation when it
  // has not started yet, so the fresh estimate prices the queue
  // honestly; a reservation that already started is sunk capacity and
  // its completion will be swallowed by the identity check in
  // on_lrms_completion.
  const auto stale = holds_.find(job.id);
  if (stale != holds_.end() && !stale->second.submitted &&
      now() < stale->second.reservation.start) {
    GF_OBS(host_.observer(), end(now(), obs::SpanKind::kHold, index_,
                                 stale->second.token, job.id, 2));
    lrms_.cancel(stale->second.reservation);
    holds_.erase(stale);
  }
  const sim::SimTime exec =
      cluster::execution_time(job, host_.spec_of(job.origin), own);
  // The job cannot start before its input data lands here (Eq. 1 volume
  // over the WAN model; 0 under the paper's free-network assumption).
  const sim::SimTime staged = now() + host_.payload_staging_time(job, index_);
  const sim::SimTime estimate = lrms_.estimate_completion(job, exec, staged);
  if (cfg.enforce_deadline && estimate > job.absolute_deadline()) {
    return sim::kTimeInfinity;
  }
  const cluster::Reservation res = lrms_.submit(job, exec, staged);
  ++remote_accepted_;
  const std::uint64_t token = ++next_hold_token_;
#if GRIDFED_TRACE
  // Hold spans are keyed by their unique token so they stay balanced
  // through every lossy-network contortion.  A started-but-unsubmitted
  // stale hold survives the cancel window above yet is overwritten here:
  // its span must close as superseded (a1 = 2) before the new one opens.
  if (obs::Observer* o = host_.observer(); o != nullptr) {
    const auto prior = holds_.find(job.id);
    if (prior != holds_.end()) {
      o->end(now(), obs::SpanKind::kHold, index_, prior->second.token,
             job.id, 2);
    }
    o->begin(now(), obs::SpanKind::kHold, index_, token, job.id);
    o->count(obs::Counter::kHoldsPlaced);
  }
#endif
  holds_.insert_or_assign(job.id, RemoteHold{res, token, false});
  if (cfg.negotiate_timeout > 0.0) {
    // If the payload never arrives (reply or submission lost), release
    // the processors.  2x the enquiry timeout comfortably covers the
    // origin's reply wait plus the submission leg.
    simulation().schedule_in(
        2.0 * cfg.negotiate_timeout, sim::EventPriority::kControl,
        [this, id = job.id, token] { on_hold_timeout(id, token); });
  }
  return estimate;
}

void Gfa::on_hold_timeout(cluster::JobId id, std::uint64_t token) {
  const auto it = holds_.find(id);
  if (it == holds_.end()) return;      // completed (short job) — fine
  if (it->second.token != token) return;  // a later reservation is live
  if (it->second.submitted) return;    // payload arrived; hold is live
  // Cancellation is only sound strictly before the reservation starts —
  // at the start instant the LRMS has already dispatched it (completions
  // and starts run before control events).  If the phantom already
  // started (reply lost + a fast queue), keep the hold in place:
  // on_lrms_completion uses it to recognize the phantom and swallow the
  // completion instead of mailing output nobody is waiting for.
  if (now() < it->second.reservation.start) {
    GF_OBS(host_.observer(), end(now(), obs::SpanKind::kHold, index_,
                                 it->second.token, id, 1));
    GF_OBS(host_.observer(), count(obs::Counter::kHoldsCancelled));
    lrms_.cancel(it->second.reservation);
    holds_.erase(it);
  }
}

void Gfa::handle_reply(const Message& msg) {
  const auto it = pending_.find(msg.job.id);
  if (it == pending_.end()) return;  // a timeout already abandoned this job
  if (it->second.current_target != msg.from) return;  // stale (older enquiry)
  Pending p = std::move(it->second);
  pending_.erase(it);
  p.current_target = cluster::kNoResource;
  ++p.messages;  // the reply we just received
  GF_OBS(host_.observer(), end(now(), obs::SpanKind::kEnquiry, index_,
                               msg.job.id, msg.from, msg.accept ? 1 : 0));

  if (!msg.accept) {
    GF_OBS(host_.observer(), count(obs::Counter::kEnquiriesDeclined));
    // An award the winner declined is a reputation signal against the
    // awarded participant (the coalition when its representative spoke).
    if (p.award_in_flight) host_.award_declined(participant_of(msg.from));
    policy_->schedule(std::move(p));  // continue the policy's walk
    return;
  }
  // Accepted: ship the job.  The remote reserved at enquiry time, so the
  // submission is the payload transfer the ledger must count.  What gets
  // settled is the policy's call: an auction award its cleared payment, a
  // DBC negotiate the posted price.  A coalition representative may have
  // accepted on behalf of another member (exec_site): the payload goes
  // straight to the member that actually reserved.
  ++p.messages;
  const cluster::ResourceIndex exec =
      msg.exec_site == cluster::kNoResource ? msg.from : msg.exec_site;
  const double cost = policy_->settled_cost(p, exec);
  Message submission{MessageType::kJobSubmission, index_, exec, p.job,
                     true, msg.completion_estimate};
  Awaiting info{std::move(p.job), p.negotiations, p.messages, cost, exec};
  info.promise = msg.completion_estimate;
  info.via_award = p.award_in_flight;
  info.via_coalition = msg.exec_site != cluster::kNoResource;
  GF_OBS(host_.observer(), begin(now(), obs::SpanKind::kPlacement, index_,
                                 info.job.id, exec, 0, cost));
  awaiting_.emplace(info.job.id, std::move(info));
  host_.send(std::move(submission));
}

void Gfa::handle_submission(const Message& msg) {
  // Payload arrival for a job reserved at negotiate-accept; the LRMS
  // already has it.  Mark the hold live so its timeout (if armed) knows
  // the reservation is backed by a real job.
  GF_EXPECTS(msg.job.origin != index_);
  const auto it = holds_.find(msg.job.id);
  if (it != holds_.end()) it->second.submitted = true;
}

void Gfa::handle_completion(const Message& msg) {
  finalize(msg.job.id, msg.from, msg.start_time, msg.completion_estimate);
}

void Gfa::on_lrms_completion(const cluster::CompletedJob& done) {
  if (done.job.origin == index_) {
    // Our own user's job finished here.
    finalize(done.job.id, index_, done.reservation.start,
             done.reservation.completion);
    return;
  }
  // A remote job finished.  A hold whose payload never arrived (the reply
  // was lost and its start slipped past the hold timeout's cancel window)
  // is a phantom: it consumed the reservation but there is no one to send
  // output to — the origin rescheduled elsewhere long ago.
  const auto hold = holds_.find(done.job.id);
  if (hold == holds_.end()) {
    // No hold at all: a superseded reservation outliving its replacement
    // (the replacement's hold was cancelled after the origin re-enquired
    // and lost that reply too).  Nobody awaits this output either.
    return;
  }
  if (hold->second.reservation.serial != done.reservation.serial) {
    // A superseded reservation for a re-enquired job (see
    // admit_and_reply): sunk capacity, nobody waits for its output, and
    // the live hold must stay in place.
    return;
  }
  const bool phantom = !hold->second.submitted;
  GF_OBS(host_.observer(), end(now(), obs::SpanKind::kHold, index_,
                               hold->second.token, done.job.id,
                               phantom ? 3 : 0));
  if (phantom) {
    GF_OBS(host_.observer(), count(obs::Counter::kHoldsPhantom));
  }
  holds_.erase(hold);
  if (phantom) return;
  // Send the output home with the definite execution window.
  host_.send(Message{MessageType::kJobCompletion, index_, done.job.origin,
                     done.job, true, done.reservation.completion,
                     done.reservation.start});
}

void Gfa::finalize(cluster::JobId id, cluster::ResourceIndex exec,
                   sim::SimTime start, sim::SimTime completion) {
  const auto it = awaiting_.find(id);
  if (it == awaiting_.end()) {
    // Only reachable under churn: on_peer_dead swept this placement (the
    // executor was confirmed dead while the completion was already in
    // flight home) and the job was re-scheduled — its outcome is
    // accounted on the replacement path, so this late copy is swallowed.
    GF_EXPECTS(host_.config().membership.active());
    return;
  }
  Awaiting info = std::move(it->second);
  awaiting_.erase(it);

  // A completed job that blew the guarantee its provider gave at
  // admission is the second reputation input signal.  Only awarded
  // providers are booked (via_award), keeping AuctionStats auction-only;
  // the tolerance absorbs floating-point drift between the admission
  // estimate and the reservation's settled completion.
  if (info.via_award && completion > info.promise + 1e-6) {
    host_.guarantee_missed(participant_of(exec));
  }

  GF_OBS(host_.observer(), end(now(), obs::SpanKind::kPlacement, index_, id,
                               exec, 0, info.cost));
  GF_OBS(host_.observer(),
         end(now(), obs::SpanKind::kJob, index_, id, 1, exec, info.cost));

  JobOutcome outcome;
  outcome.job = std::move(info.job);
  outcome.accepted = true;
  outcome.executed_on = exec;
  outcome.start = start;
  outcome.completion = completion;
  outcome.cost = info.cost;
  outcome.negotiations = info.negotiations;
  outcome.via_coalition = info.via_coalition;
  // A migrated job's record gains the completion message that just
  // arrived; local jobs finish without network traffic.
  outcome.messages = info.messages + (exec == index_ ? 0 : 1);
  host_.job_completed(outcome);
}

// ---- membership churn -------------------------------------------------------

namespace {
/// Sorted snapshot of a job-keyed map's ids: the engine's maps are
/// unordered, and every churn drain must replay in identical order run
/// to run (outcome order feeds the digests).
template <typename Map>
std::vector<cluster::JobId> sorted_ids(const Map& map) {
  std::vector<cluster::JobId> ids;
  ids.reserve(map.size());
  for (const auto& [id, value] : map) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}
}  // namespace

void Gfa::on_crash() {
  if (down_) return;
  down_ = true;
  // Enquiries on the wire: nobody is left to handle the reply.  End the
  // enquiry span (a1 = 3: origin died) and bounce the job.
  for (const cluster::JobId id : sorted_ids(pending_)) {
    const auto it = pending_.find(id);
    Pending p = std::move(it->second);
    pending_.erase(it);
    if (p.current_target != cluster::kNoResource) {
      GF_OBS(host_.observer(), end(now(), obs::SpanKind::kEnquiry, index_,
                                   id, p.current_target, 3));
    }
    reject(std::move(p));
  }
  // Open auction books and undispatched held awards die with us; their
  // armed bid timeouts and flush wake-ups find nothing afterwards.
  policy_->drain_in_flight([this](Pending p) { reject(std::move(p)); });
  // Placed jobs: a local placement's completion was killed by the LRMS
  // shutdown, a remote one's completion message will be addressed to a
  // dead site and suppressed.  Either way the outcome lands now.
  for (const cluster::JobId id : sorted_ids(awaiting_)) {
    const auto it = awaiting_.find(id);
    Awaiting info = std::move(it->second);
    awaiting_.erase(it);
    GF_OBS(host_.observer(), end(now(), obs::SpanKind::kPlacement, index_,
                                 id, info.exec, 3, info.cost));
    GF_OBS(host_.observer(),
           end(now(), obs::SpanKind::kJob, index_, id, 0));
    host_.job_rejected(info.job, info.negotiations, info.messages);
  }
  // Remote holds: the reservations themselves were killed by the LRMS
  // shutdown (their finish events fire silently); close the books here.
  // Their origins re-place through on_peer_dead at confirmation.
  for (const cluster::JobId id : sorted_ids(holds_)) {
    GF_OBS(host_.observer(), end(now(), obs::SpanKind::kHold, index_,
                                 holds_.find(id)->second.token, id, 4));
  }
  holds_.clear();
}

void Gfa::on_leave() { leaving_ = true; }

void Gfa::on_rejoin() {
  down_ = false;
  leaving_ = false;
}

void Gfa::on_peer_dead(cluster::ResourceIndex peer) {
  GF_EXPECTS(peer != index_);
  if (down_) return;
  // Enquiries parked on the dead peer will never be answered: abandon
  // them like a negotiate timeout (a1 = 3 distinguishes the cause) and
  // resume the policy walk — the directory dropped the peer already.
  std::vector<cluster::JobId> ids;
  for (const auto& [id, p] : pending_) {
    if (p.current_target == peer) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const cluster::JobId id : ids) {
    const auto it = pending_.find(id);
    // Re-check: an earlier drain's re-schedule may have moved this job.
    if (it == pending_.end() || it->second.current_target != peer) continue;
    Pending p = std::move(it->second);
    pending_.erase(it);
    GF_OBS(host_.observer(), end(now(), obs::SpanKind::kEnquiry, index_,
                                 id, peer, 3));
    if (p.award_in_flight) host_.award_declined(participant_of(peer));
    p.current_target = cluster::kNoResource;
    policy_->schedule(std::move(p));
  }
  // Jobs placed on the dead peer: its LRMS killed them, no completion is
  // coming.  Re-enter the scheduling walk with the accounting carried
  // over — the job terminates exactly once, just somewhere else.
  ids.clear();
  for (const auto& [id, info] : awaiting_) {
    if (info.exec == peer) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const cluster::JobId id : ids) {
    const auto it = awaiting_.find(id);
    if (it == awaiting_.end() || it->second.exec != peer) continue;
    Awaiting info = std::move(it->second);
    awaiting_.erase(it);
    GF_OBS(host_.observer(), end(now(), obs::SpanKind::kPlacement, index_,
                                 id, peer, 3, info.cost));
    GF_OBS(host_.observer(), count(obs::Counter::kJobsOrphaned));
    Pending p;
    p.job = std::move(info.job);
    p.negotiations = info.negotiations;
    p.messages = info.messages;
    policy_->schedule(std::move(p));
  }
}

void Gfa::publish_load_hint() {
  dir_.update_load_hint(index_, lrms_.instantaneous_load(), now());
}

}  // namespace gridfed::core
