#include "core/gfa.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "economy/cost_model.hpp"
#include "market/bid_pricing.hpp"
#include "sim/check.hpp"

namespace gridfed::core {

namespace {
// Service (unloaded execution) time promised by a quote: Eq. 3 computed
// from the advertised mu/gamma instead of a ResourceSpec.
sim::SimTime service_time_from_quote(const cluster::Job& job,
                                     const cluster::ResourceSpec& origin,
                                     const directory::Quote& quote) {
  const sim::SimTime compute =
      job.length_mi / (quote.mips * static_cast<double>(job.processors));
  const sim::SimTime comm =
      job.comm_overhead * origin.bandwidth / quote.bandwidth;
  return compute + comm;
}
}  // namespace

Gfa::Gfa(sim::Simulation& sim, sim::EntityId id, cluster::ResourceIndex index,
         cluster::Lrms& lrms, directory::FederationDirectory& dir,
         GfaHost& host)
    : Entity(sim, id, "GFA(" + lrms.spec().name + ")"),
      index_(index),
      lrms_(lrms),
      dir_(dir),
      host_(host) {}

void Gfa::submit_local(cluster::Job job) {
  GF_EXPECTS(job.origin == index_);
  Pending p;
  p.job = std::move(job);
  advance(std::move(p));
}

void Gfa::advance(Pending p) {
  switch (host_.config().mode) {
    case SchedulingMode::kIndependent:
      schedule_independent(std::move(p));
      break;
    case SchedulingMode::kFederationNoEconomy:
      schedule_no_economy(std::move(p));
      break;
    case SchedulingMode::kEconomy:
      schedule_economy(std::move(p));
      break;
    case SchedulingMode::kAuction:
      // Lifecycle: open an auction, then work through the cleared award
      // ranking, then (if everything declined) the DBC fallback walk.
      if (p.dbc_fallback) {
        schedule_economy(std::move(p));
      } else if (!p.awards.empty()) {
        advance_auction(std::move(p));
      } else {
        schedule_auction(std::move(p));
      }
      break;
  }
}

bool Gfa::local_deadline_ok(const cluster::Job& job) const {
  const auto& cfg = host_.config();
  if (job.processors > lrms_.spec().processors) return false;
  if (!cfg.enforce_deadline) return true;
  const sim::SimTime exec = cluster::execution_time(
      job, host_.spec_of(job.origin), lrms_.spec());
  return lrms_.estimate_completion(job, exec) <= job.absolute_deadline();
}

double Gfa::cost_from_quote(const cluster::Job& job,
                            const directory::Quote& quote) const {
  const auto& cfg = host_.config();
  const auto& origin = host_.spec_of(job.origin);
  switch (cfg.cost_model) {
    case economy::CostModel::kComputeOnly:
      return quote.price * job.length_mi /
             (quote.mips * static_cast<double>(job.processors));
    case economy::CostModel::kWallTime:
      return quote.price * service_time_from_quote(job, origin, quote);
    case economy::CostModel::kPerMi:
    default:
      return quote.price * job.length_mi / economy::kMiPerChargeUnit;
  }
}

void Gfa::schedule_independent(Pending p) {
  // Experiment 1: the cluster is alone in the world.  Accept iff the local
  // LRMS can honour the deadline.
  if (local_deadline_ok(p.job)) {
    execute_here(std::move(p));
  } else {
    reject(std::move(p));
  }
}

void Gfa::schedule_no_economy(Pending p) {
  // Experiment 2: process locally when possible; otherwise walk the
  // federation in decreasing order of computational speed (paper §3.3).
  if (p.next_rank == 1 && p.negotiations == 0 && local_deadline_ok(p.job)) {
    execute_here(std::move(p));
    return;
  }
  const auto& cfg = host_.config();
  while (true) {
    const auto quote =
        cfg.use_load_hints
            ? dir_.query_filtered(directory::OrderBy::kFastest, p.next_rank,
                                  cfg.load_hint_threshold)
            : dir_.query(directory::OrderBy::kFastest, p.next_rank);
    if (!quote) {
      reject(std::move(p));
      return;
    }
    ++p.next_rank;
    if (quote->resource == index_) continue;  // local already checked
    if (quote->processors < p.job.processors) continue;  // statically too small
    // Dynamic feasibility needs the remote queue: negotiate.
    send_negotiate(std::move(p), quote->resource);
    return;  // resume in handle_reply (or the timeout)
  }
}

void Gfa::schedule_economy(Pending p) {
  // Experiments 3-5: the DBC algorithm of §2.2.  OFC walks the cheapest
  // ranking, OFT the fastest; the origin cluster competes at its natural
  // rank (negotiating with ourselves costs no network messages).  Also the
  // auction mode's fallback walk (p.dbc_fallback).
  const auto& cfg = host_.config();
  const auto order = p.job.opt == cluster::Optimization::kTime
                         ? directory::OrderBy::kFastest
                         : directory::OrderBy::kCheapest;
  while (true) {
    const auto quote =
        cfg.use_load_hints
            ? dir_.query_filtered(order, p.next_rank, cfg.load_hint_threshold)
            : dir_.query(order, p.next_rank);
    if (!quote) {
      reject(std::move(p));
      return;
    }
    ++p.next_rank;
    if (quote->processors < p.job.processors) continue;
    if (cfg.enforce_budget && cost_from_quote(p.job, *quote) > p.job.budget) {
      continue;  // the quote alone rules this site out
    }
    if (quote->resource == index_) {
      if (local_deadline_ok(p.job)) {
        execute_here(std::move(p));
        return;
      }
      continue;
    }
    send_negotiate(std::move(p), quote->resource);
    return;  // resume in handle_reply (or the timeout)
  }
}

// ---- auction mode (origin side) --------------------------------------------

void Gfa::schedule_auction(Pending p) {
  const auto& cfg = host_.config();
  const auto& acfg = cfg.auction;
  // Candidate providers in cheapest-first directory order: deterministic
  // and compatible with the load-hint filter.  One metered bulk query
  // replaces the old per-rank query walk (the results ride back on a
  // single overlay route), which is what keeps directory traffic per
  // auction flat as the federation grows.
  directory::QueryFilter filter;
  filter.min_processors = p.job.processors;
  filter.exclude = index_;  // origin enters for free below
  if (cfg.use_load_hints) filter.max_load_hint = cfg.load_hint_threshold;
  dir_.query_top_k(directory::OrderBy::kCheapest, acfg.max_bidders, filter,
                   scratch_quotes_);

  const bool origin_enters =
      acfg.origin_bids && p.job.processors <= lrms_.spec().processors;

  scratch_entrants_.clear();
  for (const directory::Quote& quote : scratch_quotes_) {
    scratch_entrants_.push_back(quote.resource);
  }
  const std::size_t n_remote = scratch_entrants_.size();
  if (origin_enters) scratch_entrants_.push_back(index_);
  market::AuctionBook book = book_pool_.acquire(p.job.id, scratch_entrants_);
  if (origin_enters) book.add(make_bid(p.job));  // message-free local bid

  p.negotiations += static_cast<std::uint32_t>(n_remote);  // remote enquiries
  const bool batched = acfg.batch_solicitations && n_remote > 0;
  if (!batched) {
    for (std::size_t i = 0; i < n_remote; ++i) {
      ++p.messages;
      host_.send(Message{MessageType::kCallForBids, index_,
                         book.solicited_list()[i], p.job});
    }
  }

  const cluster::JobId id = p.job.id;
  const auto [it, inserted] =
      auctions_.emplace(id, OpenAuction{std::move(p), std::move(book)});
  GF_EXPECTS(inserted);  // a job runs at most one auction round
  if (it->second.book.complete()) {
    // No outstanding bidders (possibly an empty book): clear in place.
    clear_auction(id);
    return;
  }
  if (batched) {
    // The call-for-bids leave in the next flush; the bid timeout arms
    // there too (the book is not on the wire yet).
    queue_solicitation(id);
    return;
  }
  if (acfg.bid_timeout > 0.0) {
    simulation().schedule_in(acfg.bid_timeout, sim::EventPriority::kControl,
                             [this, id] { on_bid_timeout(id); });
  }
}

void Gfa::queue_solicitation(cluster::JobId id) {
  const auto& acfg = host_.config().auction;
  const auto it = auctions_.find(id);
  GF_EXPECTS(it != auctions_.end());
  // Hold back at most the batch window, and never more than a fraction
  // of the job's remaining deadline slack: tight jobs flush (almost)
  // immediately — and carry every other queued job out with them.
  const sim::SimTime slack =
      std::max(0.0, it->second.pending.job.absolute_deadline() - now());
  const sim::SimTime hold = std::min(
      acfg.solicit_batch_window, acfg.solicit_hold_slack_fraction * slack);
  const sim::SimTime deadline = now() + hold;
  solicit_queue_.push_back(id);
  if (deadline < flush_deadline_) flush_deadline_ = deadline;
  simulation().schedule_at(deadline, sim::EventPriority::kControl,
                           [this] { maybe_flush_solicitations(); });
}

void Gfa::maybe_flush_solicitations() {
  // Each queued job arms its own wake-up; only the one at the earliest
  // deadline flushes (stale wake-ups find the deadline moved or the
  // queue already empty).
  if (solicit_queue_.empty()) return;
  if (now() < flush_deadline_) return;
  flush_solicitations();
}

void Gfa::flush_solicitations() {
  const auto& acfg = host_.config().auction;
  // One pass over the queue builds per-provider job buckets; providers
  // keep first-seen (cheapest-first) order so the wire order stays
  // deterministic.  scratch_providers_[i] is the provider of
  // scratch_buckets_[i]; the buckets are members so flushes reuse their
  // capacity instead of reallocating.
  scratch_providers_.clear();
  for (auto& bucket : scratch_buckets_) bucket.clear();
  for (const cluster::JobId id : solicit_queue_) {
    const auto it = auctions_.find(id);
    if (it == auctions_.end()) continue;  // cleared while queued
    for (const cluster::ResourceIndex r : it->second.book.solicited_list()) {
      if (r == index_) continue;
      const auto pos = std::find(scratch_providers_.begin(),
                                 scratch_providers_.end(), r);
      const auto bucket =
          static_cast<std::size_t>(pos - scratch_providers_.begin());
      if (pos == scratch_providers_.end()) {
        scratch_providers_.push_back(r);
        if (scratch_buckets_.size() < scratch_providers_.size()) {
          scratch_buckets_.emplace_back();
        }
      }
      scratch_buckets_[bucket].push_back(&it->second.pending.job);
    }
  }
  for (std::size_t i = 0; i < scratch_providers_.size(); ++i) {
    Message msg;
    msg.type = MessageType::kCallForBids;
    msg.from = index_;
    msg.to = scratch_providers_[i];
    msg.batch_jobs.reserve(scratch_buckets_[i].size());
    for (const cluster::Job* job : scratch_buckets_[i]) {
      msg.batch_jobs.push_back(*job);
    }
    msg.job = msg.batch_jobs.front();
    // One wire message for the whole batch: attribute it to the first
    // job so the per-job counters still sum to the ledger total.
    ++auctions_.find(msg.batch_jobs.front().id)->second.pending.messages;
    host_.send(std::move(msg));
  }
  if (acfg.bid_timeout > 0.0) {
    for (const cluster::JobId id : solicit_queue_) {
      if (auctions_.find(id) == auctions_.end()) continue;
      simulation().schedule_in(acfg.bid_timeout, sim::EventPriority::kControl,
                               [this, id] { on_bid_timeout(id); });
    }
  }
  solicit_queue_.clear();
  flush_deadline_ = sim::kTimeInfinity;
}

void Gfa::on_bid_timeout(cluster::JobId id) {
  // Deadline for the book: clear with whatever arrived.  A no-op when every
  // bid beat the timeout (the book already cleared and erased itself).
  clear_auction(id);
}

void Gfa::clear_auction(cluster::JobId id) {
  const auto it = auctions_.find(id);
  if (it == auctions_.end()) return;  // already cleared
  OpenAuction auction = std::move(it->second);
  auctions_.erase(it);

  const auto& cfg = host_.config();
  const market::AuctionEngine engine(cfg.auction.clearing, cfg.enforce_budget,
                                     cfg.enforce_deadline);
  Pending p = std::move(auction.pending);
  p.awards = engine.clear(p.job, auction.book.bids());
  p.next_award = 0;

  market::ClearingReport report;
  report.job = p.job.id;
  report.solicited = auction.book.solicited();
  report.bids = auction.book.bids().size();
  report.feasible = p.awards.size();
  report.awarded = !p.awards.empty();
  if (report.awarded) {
    report.winner = p.awards.front().bid.bidder;
    report.winner_ask = p.awards.front().bid.ask;
    report.payment = p.awards.front().payment;
  }
  host_.auction_report(report);

  // The book's allocations go back to the pool for the next job of the
  // same shape.
  book_pool_.release(std::move(auction.book));

  if (p.awards.empty()) {
    auction_fallback(std::move(p));
  } else {
    advance_auction(std::move(p));
  }
}

void Gfa::advance_auction(Pending p) {
  while (p.next_award < p.awards.size()) {
    const market::Award award = p.awards[p.next_award++];
    if (award.bid.bidder == index_) {
      // Won our own auction: admission is a free local re-check, and the
      // cleared payment (not the posted price) is what gets settled.
      if (local_deadline_ok(p.job)) {
        execute_here(std::move(p), award.payment);
        return;
      }
      continue;  // queue filled up since bidding: next award
    }
    // The award is an admission enquiry through the shared seam: the
    // winner re-checks, reserves, and answers with a kReply.
    p.award_payment = award.payment;
    send_enquiry(std::move(p), award.bid.bidder, MessageType::kAward,
                 award.payment);
    return;  // resume in handle_reply (or the timeout)
  }
  auction_fallback(std::move(p));
}

void Gfa::auction_fallback(Pending p) {
  if (host_.config().auction.fallback_to_dbc) {
    p.dbc_fallback = true;
    p.awards.clear();
    p.next_award = 0;
    p.next_rank = 1;  // fresh DBC walk; cluster state moved on since bidding
    schedule_economy(std::move(p));
  } else {
    reject(std::move(p));
  }
}

market::Bid Gfa::make_bid(const cluster::Job& job) const {
  const auto& cfg = host_.config();
  const auto& own = lrms_.spec();
  market::Bid bid;
  bid.bidder = index_;
  if (job.processors > own.processors) return bid;  // infeasible
  const sim::SimTime exec =
      cluster::execution_time(job, host_.spec_of(job.origin), own);
  const sim::SimTime staged = now() + host_.payload_staging_time(job, index_);
  bid.completion_estimate = lrms_.estimate_completion(job, exec, staged);
  bid.feasible = !cfg.enforce_deadline ||
                 bid.completion_estimate <= job.absolute_deadline();
  const double true_cost =
      economy::job_cost(job, host_.spec_of(job.origin), own, cfg.cost_model);
  bid.ask =
      market::bid_price(cfg.auction.bid_pricing, true_cost,
                        lrms_.instantaneous_load(), cfg.auction.markup,
                        cfg.pricing);
  return bid;
}

// ---- enquiry seam (DBC negotiate + auction award) ---------------------------

void Gfa::send_enquiry(Pending p, cluster::ResourceIndex target,
                       MessageType type, double price) {
  GF_EXPECTS(type == MessageType::kNegotiate || type == MessageType::kAward);
  ++p.negotiations;
  ++p.messages;  // the enquiry
  p.current_target = target;
  ++p.attempt;
  Message enquiry{type, index_, target, p.job};
  enquiry.price = price;
  const cluster::JobId id = p.job.id;
  const std::uint64_t attempt = p.attempt;
  pending_.insert_or_assign(id, std::move(p));
  host_.send(std::move(enquiry));

  const auto& cfg = host_.config();
  if (cfg.negotiate_timeout > 0.0) {
    simulation().schedule_in(
        cfg.negotiate_timeout, sim::EventPriority::kControl,
        [this, id, attempt] { on_negotiate_timeout(id, attempt); });
  }
}

void Gfa::send_negotiate(Pending p, cluster::ResourceIndex target) {
  send_enquiry(std::move(p), target, MessageType::kNegotiate, 0.0);
}

void Gfa::on_negotiate_timeout(cluster::JobId id, std::uint64_t attempt) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;            // reply already handled
  if (it->second.attempt != attempt) return;   // a later enquiry is live
  if (it->second.current_target == cluster::kNoResource) return;
  // No reply: abandon this enquiry (the remote may have reserved — its own
  // hold timeout will release the processors) and walk on.
  Pending p = std::move(it->second);
  pending_.erase(it);
  p.current_target = cluster::kNoResource;
  advance(std::move(p));
}

void Gfa::execute_here(Pending p, double price) {
  const auto& cfg = host_.config();
  const auto& own = lrms_.spec();
  const sim::SimTime exec =
      cluster::execution_time(p.job, host_.spec_of(p.job.origin), own);
  lrms_.submit(p.job, exec);
  const double cost =
      price >= 0.0 ? price
                   : economy::job_cost(p.job, host_.spec_of(p.job.origin),
                                       own, cfg.cost_model);
  awaiting_.emplace(p.job.id, Awaiting{p.job, p.negotiations, p.messages,
                                       cost, index_});
}

void Gfa::reject(Pending p) {
  host_.job_rejected(p.job, p.negotiations, p.messages);
}

void Gfa::receive(const Message& msg) {
  GF_EXPECTS(msg.to == index_);
  switch (msg.type) {
    case MessageType::kNegotiate:
    case MessageType::kAward:
      admit_and_reply(msg);
      break;
    case MessageType::kReply:
      handle_reply(msg);
      break;
    case MessageType::kJobSubmission:
      handle_submission(msg);
      break;
    case MessageType::kJobCompletion:
      handle_completion(msg);
      break;
    case MessageType::kCallForBids:
      handle_call_for_bids(msg);
      break;
    case MessageType::kBid:
      handle_bid(msg);
      break;
  }
}

void Gfa::admit_and_reply(const Message& msg) {
  // Resource-manager side of admission control, shared by the DBC
  // negotiate and the auction award: ask the LRMS for the exact completion
  // time; accept iff it honours the deadline.  On acceptance we reserve
  // immediately so the guarantee stays binding until the job payload
  // arrives.
  const auto& cfg = host_.config();
  const auto& own = lrms_.spec();
  const cluster::Job& job = msg.job;

  bool accept = job.processors <= own.processors;
  sim::SimTime estimate = sim::kTimeInfinity;
  if (accept) {
    const sim::SimTime exec =
        cluster::execution_time(job, host_.spec_of(job.origin), own);
    // The job cannot start before its input data lands here (Eq. 1 volume
    // over the WAN model; 0 under the paper's free-network assumption).
    const sim::SimTime staged =
        now() + host_.payload_staging_time(job, index_);
    estimate = lrms_.estimate_completion(job, exec, staged);
    if (cfg.enforce_deadline && estimate > job.absolute_deadline()) {
      accept = false;
    }
    if (accept) {
      const cluster::Reservation res = lrms_.submit(job, exec, staged);
      ++remote_accepted_;
      holds_.insert_or_assign(job.id, RemoteHold{res, false});
      if (cfg.negotiate_timeout > 0.0) {
        // If the payload never arrives (reply or submission lost), release
        // the processors.  2x the enquiry timeout comfortably covers the
        // origin's reply wait plus the submission leg.
        simulation().schedule_in(2.0 * cfg.negotiate_timeout,
                                 sim::EventPriority::kControl,
                                 [this, id = job.id] { on_hold_timeout(id); });
      }
    }
  }
  host_.send(Message{MessageType::kReply, index_, msg.from, job, accept,
                     estimate});
}

void Gfa::on_hold_timeout(cluster::JobId id) {
  const auto it = holds_.find(id);
  if (it == holds_.end()) return;      // completed (short job) — fine
  if (it->second.submitted) return;    // payload arrived; hold is live
  // Cancellation is only sound before the reservation starts.  If the
  // phantom already started (reply lost + a fast queue), keep the hold in
  // place: on_lrms_completion uses it to recognize the phantom and swallow
  // the completion instead of mailing output nobody is waiting for.
  if (now() <= it->second.reservation.start) {
    lrms_.cancel(it->second.reservation);
    holds_.erase(it);
  }
}

void Gfa::handle_reply(const Message& msg) {
  const auto it = pending_.find(msg.job.id);
  if (it == pending_.end()) return;  // a timeout already abandoned this job
  if (it->second.current_target != msg.from) return;  // stale (older enquiry)
  Pending p = std::move(it->second);
  pending_.erase(it);
  p.current_target = cluster::kNoResource;
  ++p.messages;  // the reply we just received

  if (!msg.accept) {
    advance(std::move(p));  // continue the rank walk / award ranking
    return;
  }
  // Accepted: ship the job.  The remote reserved at enquiry time, so the
  // submission is the payload transfer the ledger must count.  An auction
  // award settles its cleared payment; a DBC negotiate the posted price.
  ++p.messages;
  const double cost =
      p.awarding() ? p.award_payment
                   : economy::job_cost(p.job, host_.spec_of(p.job.origin),
                                       host_.spec_of(msg.from),
                                       host_.config().cost_model);
  Message submission{MessageType::kJobSubmission, index_, msg.from, p.job,
                     true, msg.completion_estimate};
  awaiting_.emplace(p.job.id, Awaiting{std::move(p.job), p.negotiations,
                                       p.messages, cost, msg.from});
  host_.send(std::move(submission));
}

void Gfa::handle_submission(const Message& msg) {
  // Payload arrival for a job reserved at negotiate-accept; the LRMS
  // already has it.  Mark the hold live so its timeout (if armed) knows
  // the reservation is backed by a real job.
  GF_EXPECTS(msg.job.origin != index_);
  const auto it = holds_.find(msg.job.id);
  if (it != holds_.end()) it->second.submitted = true;
}

void Gfa::handle_completion(const Message& msg) {
  finalize(msg.job.id, msg.from, msg.start_time, msg.completion_estimate);
}

void Gfa::handle_call_for_bids(const Message& msg) {
  // Provider side: answer with a sealed ask.  Bidding is non-binding (no
  // reservation); the award re-runs admission, so a stale estimate only
  // costs the origin a declined award, never a broken guarantee.
  if (!msg.batch_jobs.empty()) {
    // Batched solicitation: one sealed ask per carried job, all riding
    // home in a single wire message.
    Message answer;
    answer.type = MessageType::kBid;
    answer.from = index_;
    answer.to = msg.from;
    answer.job = msg.batch_jobs.front();
    answer.batch_bids.reserve(msg.batch_jobs.size());
    for (const cluster::Job& job : msg.batch_jobs) {
      const market::Bid bid = make_bid(job);
      answer.batch_bids.push_back(
          BatchedBid{job.id, bid.ask, bid.completion_estimate, bid.feasible});
    }
    host_.send(std::move(answer));
    return;
  }
  const market::Bid bid = make_bid(msg.job);
  Message answer{MessageType::kBid, index_, msg.from, msg.job, bid.feasible,
                 bid.completion_estimate};
  answer.price = bid.ask;
  host_.send(std::move(answer));
}

void Gfa::handle_bid(const Message& msg) {
  if (!msg.batch_bids.empty()) {
    // One wire message, several books: count it once (toward the first
    // still-open auction it feeds) and enter every ask.
    bool counted = false;
    for (const BatchedBid& entry : msg.batch_bids) {
      const auto it = auctions_.find(entry.job);
      if (it == auctions_.end()) continue;  // cleared at the timeout: stale
      if (!counted) {
        ++it->second.pending.messages;
        counted = true;
      }
      it->second.book.add(market::Bid{msg.from, entry.ask,
                                      entry.completion_estimate,
                                      entry.feasible});
      if (it->second.book.complete()) clear_auction(entry.job);
    }
    return;
  }
  const auto it = auctions_.find(msg.job.id);
  if (it == auctions_.end()) return;  // book cleared at the timeout: stale bid
  OpenAuction& auction = it->second;
  ++auction.pending.messages;
  auction.book.add(market::Bid{msg.from, msg.price, msg.completion_estimate,
                               msg.accept});
  if (auction.book.complete()) clear_auction(msg.job.id);
}

void Gfa::on_lrms_completion(const cluster::CompletedJob& done) {
  if (done.job.origin == index_) {
    // Our own user's job finished here.
    finalize(done.job.id, index_, done.reservation.start,
             done.reservation.completion);
    return;
  }
  // A remote job finished.  A hold whose payload never arrived (the reply
  // was lost and its start slipped past the hold timeout's cancel window)
  // is a phantom: it consumed the reservation but there is no one to send
  // output to — the origin rescheduled elsewhere long ago.
  const auto hold = holds_.find(done.job.id);
  const bool phantom = hold != holds_.end() && !hold->second.submitted;
  if (hold != holds_.end()) holds_.erase(hold);
  if (phantom) return;
  // Send the output home with the definite execution window.
  host_.send(Message{MessageType::kJobCompletion, index_, done.job.origin,
                     done.job, true, done.reservation.completion,
                     done.reservation.start});
}

void Gfa::finalize(cluster::JobId id, cluster::ResourceIndex exec,
                   sim::SimTime start, sim::SimTime completion) {
  const auto it = awaiting_.find(id);
  GF_EXPECTS(it != awaiting_.end());
  Awaiting info = std::move(it->second);
  awaiting_.erase(it);

  JobOutcome outcome;
  outcome.job = std::move(info.job);
  outcome.accepted = true;
  outcome.executed_on = exec;
  outcome.start = start;
  outcome.completion = completion;
  outcome.cost = info.cost;
  outcome.negotiations = info.negotiations;
  // A migrated job's record gains the completion message that just
  // arrived; local jobs finish without network traffic.
  outcome.messages = info.messages + (exec == index_ ? 0 : 1);
  host_.job_completed(outcome);
}

void Gfa::publish_load_hint() {
  dir_.update_load_hint(index_, lrms_.instantaneous_load(), now());
}

}  // namespace gridfed::core
