#include "core/gfa.hpp"

#include <utility>

#include "sim/check.hpp"

namespace gridfed::core {

namespace {
// Service (unloaded execution) time promised by a quote: Eq. 3 computed
// from the advertised mu/gamma instead of a ResourceSpec.
sim::SimTime service_time_from_quote(const cluster::Job& job,
                                     const cluster::ResourceSpec& origin,
                                     const directory::Quote& quote) {
  const sim::SimTime compute =
      job.length_mi / (quote.mips * static_cast<double>(job.processors));
  const sim::SimTime comm =
      job.comm_overhead * origin.bandwidth / quote.bandwidth;
  return compute + comm;
}
}  // namespace

Gfa::Gfa(sim::Simulation& sim, sim::EntityId id, cluster::ResourceIndex index,
         cluster::Lrms& lrms, directory::FederationDirectory& dir,
         GfaHost& host)
    : Entity(sim, id, "GFA(" + lrms.spec().name + ")"),
      index_(index),
      lrms_(lrms),
      dir_(dir),
      host_(host) {}

void Gfa::submit_local(cluster::Job job) {
  GF_EXPECTS(job.origin == index_);
  advance(Pending{std::move(job), 1, 0, 0});
}

void Gfa::advance(Pending p) {
  switch (host_.config().mode) {
    case SchedulingMode::kIndependent:
      schedule_independent(std::move(p));
      break;
    case SchedulingMode::kFederationNoEconomy:
      schedule_no_economy(std::move(p));
      break;
    case SchedulingMode::kEconomy:
      schedule_economy(std::move(p));
      break;
  }
}

bool Gfa::local_deadline_ok(const cluster::Job& job) const {
  const auto& cfg = host_.config();
  if (job.processors > lrms_.spec().processors) return false;
  if (!cfg.enforce_deadline) return true;
  const sim::SimTime exec = cluster::execution_time(
      job, host_.spec_of(job.origin), lrms_.spec());
  return lrms_.estimate_completion(job, exec) <= job.absolute_deadline();
}

double Gfa::cost_from_quote(const cluster::Job& job,
                            const directory::Quote& quote) const {
  const auto& cfg = host_.config();
  const auto& origin = host_.spec_of(job.origin);
  switch (cfg.cost_model) {
    case economy::CostModel::kComputeOnly:
      return quote.price * job.length_mi /
             (quote.mips * static_cast<double>(job.processors));
    case economy::CostModel::kWallTime:
      return quote.price * service_time_from_quote(job, origin, quote);
    case economy::CostModel::kPerMi:
    default:
      return quote.price * job.length_mi / economy::kMiPerChargeUnit;
  }
}

void Gfa::schedule_independent(Pending p) {
  // Experiment 1: the cluster is alone in the world.  Accept iff the local
  // LRMS can honour the deadline.
  if (local_deadline_ok(p.job)) {
    execute_here(std::move(p));
  } else {
    reject(std::move(p));
  }
}

void Gfa::schedule_no_economy(Pending p) {
  // Experiment 2: process locally when possible; otherwise walk the
  // federation in decreasing order of computational speed (paper §3.3).
  if (p.next_rank == 1 && p.negotiations == 0 && local_deadline_ok(p.job)) {
    execute_here(std::move(p));
    return;
  }
  const auto& cfg = host_.config();
  while (true) {
    const auto quote =
        cfg.use_load_hints
            ? dir_.query_filtered(directory::OrderBy::kFastest, p.next_rank,
                                  cfg.load_hint_threshold)
            : dir_.query(directory::OrderBy::kFastest, p.next_rank);
    if (!quote) {
      reject(std::move(p));
      return;
    }
    ++p.next_rank;
    if (quote->resource == index_) continue;  // local already checked
    if (quote->processors < p.job.processors) continue;  // statically too small
    // Dynamic feasibility needs the remote queue: negotiate.
    send_negotiate(std::move(p), quote->resource);
    return;  // resume in handle_reply (or the timeout)
  }
}

void Gfa::schedule_economy(Pending p) {
  // Experiments 3-5: the DBC algorithm of §2.2.  OFC walks the cheapest
  // ranking, OFT the fastest; the origin cluster competes at its natural
  // rank (negotiating with ourselves costs no network messages).
  const auto& cfg = host_.config();
  const auto order = p.job.opt == cluster::Optimization::kTime
                         ? directory::OrderBy::kFastest
                         : directory::OrderBy::kCheapest;
  while (true) {
    const auto quote =
        cfg.use_load_hints
            ? dir_.query_filtered(order, p.next_rank, cfg.load_hint_threshold)
            : dir_.query(order, p.next_rank);
    if (!quote) {
      reject(std::move(p));
      return;
    }
    ++p.next_rank;
    if (quote->processors < p.job.processors) continue;
    if (cfg.enforce_budget && cost_from_quote(p.job, *quote) > p.job.budget) {
      continue;  // the quote alone rules this site out
    }
    if (quote->resource == index_) {
      if (local_deadline_ok(p.job)) {
        execute_here(std::move(p));
        return;
      }
      continue;
    }
    send_negotiate(std::move(p), quote->resource);
    return;  // resume in handle_reply (or the timeout)
  }
}

void Gfa::send_negotiate(Pending p, cluster::ResourceIndex target) {
  ++p.negotiations;
  ++p.messages;  // the negotiate
  p.current_target = target;
  ++p.attempt;
  Message negotiate{MessageType::kNegotiate, index_, target, p.job, false,
                    0.0};
  const cluster::JobId id = p.job.id;
  const std::uint64_t attempt = p.attempt;
  pending_.insert_or_assign(id, std::move(p));
  host_.send(std::move(negotiate));

  const auto& cfg = host_.config();
  if (cfg.negotiate_timeout > 0.0) {
    simulation().schedule_in(
        cfg.negotiate_timeout, sim::EventPriority::kControl,
        [this, id, attempt] { on_negotiate_timeout(id, attempt); });
  }
}

void Gfa::on_negotiate_timeout(cluster::JobId id, std::uint64_t attempt) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;            // reply already handled
  if (it->second.attempt != attempt) return;   // a later enquiry is live
  if (it->second.current_target == kNoTarget) return;
  // No reply: abandon this enquiry (the remote may have reserved — its own
  // hold timeout will release the processors) and walk on.
  Pending p = std::move(it->second);
  pending_.erase(it);
  p.current_target = kNoTarget;
  advance(std::move(p));
}

void Gfa::execute_here(Pending p) {
  const auto& cfg = host_.config();
  const auto& own = lrms_.spec();
  const sim::SimTime exec =
      cluster::execution_time(p.job, host_.spec_of(p.job.origin), own);
  lrms_.submit(p.job, exec);
  const double cost =
      economy::job_cost(p.job, host_.spec_of(p.job.origin), own,
                        cfg.cost_model);
  awaiting_.emplace(p.job.id, Awaiting{p.job, p.negotiations, p.messages,
                                       cost, index_});
}

void Gfa::reject(Pending p) {
  host_.job_rejected(p.job, p.negotiations, p.messages);
}

void Gfa::receive(const Message& msg) {
  GF_EXPECTS(msg.to == index_);
  switch (msg.type) {
    case MessageType::kNegotiate:
      handle_negotiate(msg);
      break;
    case MessageType::kReply:
      handle_reply(msg);
      break;
    case MessageType::kJobSubmission:
      handle_submission(msg);
      break;
    case MessageType::kJobCompletion:
      handle_completion(msg);
      break;
  }
}

void Gfa::handle_negotiate(const Message& msg) {
  // Resource-manager side of admission control: ask the LRMS for the exact
  // completion time; accept iff it honours the deadline.  On acceptance we
  // reserve immediately so the guarantee stays binding until the job
  // payload arrives.
  const auto& cfg = host_.config();
  const auto& own = lrms_.spec();
  const cluster::Job& job = msg.job;

  bool accept = job.processors <= own.processors;
  sim::SimTime estimate = sim::kTimeInfinity;
  if (accept) {
    const sim::SimTime exec =
        cluster::execution_time(job, host_.spec_of(job.origin), own);
    // The job cannot start before its input data lands here (Eq. 1 volume
    // over the WAN model; 0 under the paper's free-network assumption).
    const sim::SimTime staged =
        now() + host_.payload_staging_time(job, index_);
    estimate = lrms_.estimate_completion(job, exec, staged);
    if (cfg.enforce_deadline && estimate > job.absolute_deadline()) {
      accept = false;
    }
    if (accept) {
      const cluster::Reservation res = lrms_.submit(job, exec, staged);
      ++remote_accepted_;
      holds_.insert_or_assign(job.id, RemoteHold{res, false});
      if (cfg.negotiate_timeout > 0.0) {
        // If the payload never arrives (reply or submission lost), release
        // the processors.  2x the enquiry timeout comfortably covers the
        // origin's reply wait plus the submission leg.
        simulation().schedule_in(2.0 * cfg.negotiate_timeout,
                                 sim::EventPriority::kControl,
                                 [this, id = job.id] { on_hold_timeout(id); });
      }
    }
  }
  host_.send(Message{MessageType::kReply, index_, msg.from, job, accept,
                     estimate});
}

void Gfa::on_hold_timeout(cluster::JobId id) {
  const auto it = holds_.find(id);
  if (it == holds_.end()) return;      // completed (short job) — fine
  if (it->second.submitted) return;    // payload arrived; hold is live
  // Cancellation is only sound before the reservation starts.  If the
  // phantom already started (reply lost + a fast queue), keep the hold in
  // place: on_lrms_completion uses it to recognize the phantom and swallow
  // the completion instead of mailing output nobody is waiting for.
  if (now() <= it->second.reservation.start) {
    lrms_.cancel(it->second.reservation);
    holds_.erase(it);
  }
}

void Gfa::handle_reply(const Message& msg) {
  const auto it = pending_.find(msg.job.id);
  if (it == pending_.end()) return;  // a timeout already abandoned this job
  if (it->second.current_target != msg.from) return;  // stale (older enquiry)
  Pending p = std::move(it->second);
  pending_.erase(it);
  p.current_target = kNoTarget;
  ++p.messages;  // the reply we just received

  if (!msg.accept) {
    advance(std::move(p));  // continue the rank walk
    return;
  }
  // Accepted: ship the job.  The remote reserved at negotiate time, so the
  // submission is the payload transfer the ledger must count.
  ++p.messages;
  const double cost = economy::job_cost(p.job, host_.spec_of(p.job.origin),
                                        host_.spec_of(msg.from),
                                        host_.config().cost_model);
  Message submission{MessageType::kJobSubmission, index_, msg.from, p.job,
                     true, msg.completion_estimate};
  awaiting_.emplace(p.job.id, Awaiting{std::move(p.job), p.negotiations,
                                       p.messages, cost, msg.from});
  host_.send(std::move(submission));
}

void Gfa::handle_submission(const Message& msg) {
  // Payload arrival for a job reserved at negotiate-accept; the LRMS
  // already has it.  Mark the hold live so its timeout (if armed) knows
  // the reservation is backed by a real job.
  GF_EXPECTS(msg.job.origin != index_);
  const auto it = holds_.find(msg.job.id);
  if (it != holds_.end()) it->second.submitted = true;
}

void Gfa::handle_completion(const Message& msg) {
  finalize(msg.job.id, msg.from, msg.start_time, msg.completion_estimate);
}

void Gfa::on_lrms_completion(const cluster::CompletedJob& done) {
  if (done.job.origin == index_) {
    // Our own user's job finished here.
    finalize(done.job.id, index_, done.reservation.start,
             done.reservation.completion);
    return;
  }
  // A remote job finished.  A hold whose payload never arrived (the reply
  // was lost and its start slipped past the hold timeout's cancel window)
  // is a phantom: it consumed the reservation but there is no one to send
  // output to — the origin rescheduled elsewhere long ago.
  const auto hold = holds_.find(done.job.id);
  const bool phantom = hold != holds_.end() && !hold->second.submitted;
  if (hold != holds_.end()) holds_.erase(hold);
  if (phantom) return;
  // Send the output home with the definite execution window.
  host_.send(Message{MessageType::kJobCompletion, index_, done.job.origin,
                     done.job, true, done.reservation.completion,
                     done.reservation.start});
}

void Gfa::finalize(cluster::JobId id, cluster::ResourceIndex exec,
                   sim::SimTime start, sim::SimTime completion) {
  const auto it = awaiting_.find(id);
  GF_EXPECTS(it != awaiting_.end());
  Awaiting info = std::move(it->second);
  awaiting_.erase(it);

  JobOutcome outcome;
  outcome.job = std::move(info.job);
  outcome.accepted = true;
  outcome.executed_on = exec;
  outcome.start = start;
  outcome.completion = completion;
  outcome.cost = info.cost;
  outcome.negotiations = info.negotiations;
  // A migrated job's record gains the completion message that just
  // arrived; local jobs finish without network traffic.
  outcome.messages = info.messages + (exec == index_ ? 0 : 1);
  host_.job_completed(outcome);
}

void Gfa::publish_load_hint() {
  dir_.update_load_hint(index_, lrms_.instantaneous_load(), now());
}

}  // namespace gridfed::core
