#pragma once
// The Grid-Federation driver: owns the simulation engine, the clusters,
// the agents, the directory, the bank and the ledgers; feeds a workload;
// runs it to completion; and aggregates the per-job outcomes into a
// FederationResult.
//
// Typical use (this is the public API the examples exercise):
//
// ```
// auto specs = cluster::table1_specs();
// core::FederationConfig cfg;                       // economy mode
// core::Federation fed(cfg, specs);
// auto traces = workload::generate_federation_workload(specs, cfg.window,
//                                                      cfg.seed);
// fed.load_workload(traces, workload::PopulationProfile{30});
// core::FederationResult result = fed.run();
// ```

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/lrms.hpp"
#include "coalition/coalition_manager.hpp"
#include "core/config.hpp"
#include "core/gfa.hpp"
#include "core/message.hpp"
#include "core/outcome.hpp"
#include "core/result.hpp"
#include "directory/federation_directory.hpp"
#include "economy/dynamic_pricing.hpp"
#include "economy/grid_bank.hpp"
#include "federation/shard_plan.hpp"
#include "membership/membership_service.hpp"
#include "obs/observer.hpp"
#include "sim/parallel.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "stats/auction_stats.hpp"
#include "transport/transport.hpp"
#include "workload/population.hpp"
#include "workload/trace.hpp"

namespace gridfed::core {

/// One federation instance: construction wires every entity, subscribes
/// quotes, and arms the periodic extension behaviours the config enables.
/// Message delivery is delegated to the configured transport
/// (config.transport.kind); the Federation is the transport's
/// environment (transport::TransportContext) and its delivery sink.
class Federation final : public GfaHost,
                         private transport::TransportContext,
                         private coalition::CoalitionContext,
                         private membership::MembershipContext {
 public:
  Federation(FederationConfig config,
             std::vector<cluster::ResourceSpec> specs);
  ~Federation() override;
  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// Converts raw traces into federation jobs (Eqs. 1-3 split, Eqs. 7/8
  /// QoS fabrication), applies the population profile (economy runs), and
  /// schedules every arrival.  May be called multiple times before run().
  void load_workload(const std::vector<workload::ResourceTrace>& traces,
                     std::optional<workload::PopulationProfile> profile);

  /// Runs the simulation until every accepted job has completed, then
  /// aggregates.  Call once.
  [[nodiscard]] FederationResult run();

  // ---- GfaHost ----------------------------------------------------------
  void send(Message msg) override;
  std::uint64_t multicast(Message msg,
                          std::span<const cluster::ResourceIndex> targets,
                          sim::SimTime not_after) override;
  /// Satisfies both GfaHost and TransportContext.
  [[nodiscard]] const cluster::ResourceSpec& spec_of(
      cluster::ResourceIndex index) const override;
  [[nodiscard]] const FederationConfig& config() const override {
    return cfg_;
  }
  [[nodiscard]] sim::SimTime payload_staging_time(
      const cluster::Job& job, cluster::ResourceIndex site) const override;
  void job_completed(const JobOutcome& outcome) override;
  void job_rejected(const cluster::Job& job, std::uint32_t negotiations,
                    std::uint64_t messages) override;
  void auction_report(const market::ClearingReport& report) override;
  /// The coalition layer of this run (null with the extension disabled:
  /// every participant is a singleton and the market runs solo,
  /// bit-identical to the pre-participant code).
  [[nodiscard]] coalition::CoalitionManager* coalitions() override {
    return coalitions_.get();
  }
  void award_declined(federation::ParticipantId provider) override {
    lane_auction_stats().record_decline(provider.value);
    GF_OBS(observer(), count_decline(provider.is_coalition()
                                         ? sites()
                                         : provider.value));
  }
  void guarantee_missed(federation::ParticipantId provider) override {
    lane_auction_stats().record_miss(provider.value);
    GF_OBS(observer(), count_miss(provider.is_coalition()
                                      ? sites()
                                      : provider.value));
  }
  /// One Observer per run, satisfying the seam on GfaHost,
  /// TransportContext and CoalitionContext at once.  Null when
  /// config.obs is all-off (the dark path) or the instrumentation is
  /// compiled out.  Under the parallel kernel each worker lane gets its
  /// own Observer (merged into the main one in sim order at run end), so
  /// GF_OBS sites never race across shards.
  [[nodiscard]] obs::Observer* observer() override {
#if GRIDFED_TRACE
    if (parallel_active()) {
      const int lane = sim::ParallelEngine::current_lane();
      if (lane >= 0) {
        return parallel_->lanes[static_cast<std::size_t>(lane)]
            .observer.get();
      }
    }
    return observer_.get();
#else
    return nullptr;
#endif
  }

  // ---- introspection (examples, tests) -----------------------------------
  [[nodiscard]] std::size_t size() const noexcept { return gfas_.size(); }
  [[nodiscard]] sim::Simulation& simulation() noexcept { return sim_; }
  [[nodiscard]] Gfa& gfa(cluster::ResourceIndex i);
  [[nodiscard]] cluster::Lrms& lrms(cluster::ResourceIndex i);
  [[nodiscard]] const directory::FederationDirectory& directory()
      const noexcept {
    return dir_;
  }
  [[nodiscard]] const economy::GridBank& bank() const noexcept {
    return bank_;
  }
  [[nodiscard]] const MessageLedger& ledger() const noexcept {
    return ledger_;
  }
  /// The delivery substrate this run was wired with (tests inspect the
  /// tree topology through it).
  [[nodiscard]] const transport::Transport& transport() const noexcept {
    return *transport_;
  }
  /// Raw per-job outcomes (accepted and rejected) after run().
  [[nodiscard]] const std::vector<JobOutcome>& outcomes() const noexcept {
    return outcomes_;
  }

  /// Messages lost to the failure-injection channel (0 unless
  /// config.message_drop_rate > 0).
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept {
    return messages_dropped_.load(std::memory_order_relaxed);
  }

  /// Worker shards the conservative-parallel kernel runs on: 0 when the
  /// run uses the seed's sequential engine (config.threads <= 1, a
  /// zero-lookahead network, or too few clusters to shard).
  [[nodiscard]] std::uint32_t parallel_shards() const noexcept {
    return parallel_ ? parallel_->plan.shards : 0;
  }
  /// Safe windows the parallel kernel executed (0 sequentially).
  [[nodiscard]] std::uint64_t parallel_windows() const noexcept {
    return parallel_ ? parallel_->engine->windows() : 0;
  }
  /// Events dispatched across every lane (== the sequential engine's
  /// count for the same run, up to boundary-tie scheduling).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return parallel_ ? parallel_->engine->events_executed()
                     : sim_.events_executed();
  }

  /// Per-auction accumulators (all-zero outside kAuction runs).
  [[nodiscard]] const stats::AuctionStats& auction_stats() const noexcept {
    return auction_stats_;
  }

  /// The membership runtime of this run, or null when
  /// config.membership.active() is false (static membership — the
  /// bit-identical golden path).
  [[nodiscard]] const membership::MembershipService* membership()
      const noexcept {
    return membership_.get();
  }

 private:
  void arm_periodic_behaviours();
  [[nodiscard]] FederationResult aggregate() const;

  // ---- conservative-parallel kernel (sim/parallel.hpp) -------------------
  /// One terminal job event deferred by a lane.  Settlement mutates the
  /// shared GridBank and the outcome vector, so the parallel run defers
  /// every terminal event and replays them in job-id order after the
  /// engine drains — a total order independent of the worker count and
  /// of the nondeterministic cross-shard completion interleaving, which
  /// keeps bank balances and outcome digests bitwise identical for every
  /// thread count.
  struct DeferredOutcome {
    JobOutcome outcome;
    sim::SimTime at = 0.0;  ///< lane clock at the terminal event
    bool accepted = false;
  };
  /// Mergeable per-worker-lane sinks.  The global lane writes the main
  /// ledger_/auction_stats_/observer_ directly; each shard lane gets its
  /// own copies here and they collapse into the main ones at run end
  /// (every column is a sum or a sim-time-sortable record stream).
  struct LaneState {
    explicit LaneState(std::size_t n_sites) : ledger(n_sites) {}
    MessageLedger ledger;
    stats::AuctionStats stats;
    std::vector<DeferredOutcome> deferred;
#if GRIDFED_TRACE
    std::unique_ptr<obs::Observer> observer;
#endif
  };
  struct ParallelRuntime {
    federation::ShardPlan plan;
    std::unique_ptr<sim::ParallelEngine> engine;
    std::vector<LaneState> lanes;  ///< one per shard
    std::vector<DeferredOutcome> global_deferred;
    /// Per-site lottery streams: concurrent shards must never race on
    /// the shared drop/dup generators, and a site's draw sequence (its
    /// own sends, in its own execution order) is worker-count-invariant.
    std::vector<sim::Rng> site_drop;
    std::vector<sim::Rng> site_dup;
    /// Set once the lane sinks merged into the main ones at run end;
    /// from then on the accessors read the main sinks only.
    bool collapsed = false;
  };

  [[nodiscard]] bool parallel_active() const noexcept {
    return parallel_ != nullptr && !parallel_->collapsed;
  }
  /// The engine lane that owns `site`'s agent and LRMS.
  [[nodiscard]] sim::Simulation& site_sim(std::size_t site) noexcept {
    if (parallel_ == nullptr) return sim_;
    return parallel_->engine->shard(parallel_->plan.shard_of[site]);
  }
  [[nodiscard]] MessageLedger& lane_ledger() noexcept;
  [[nodiscard]] stats::AuctionStats& lane_auction_stats() noexcept;
  /// The seed's job_completed body: coalition split / solo settlement,
  /// forensics, and the outcome append, stamped with sim-time `at`.
  void settle_completion(const JobOutcome& outcome, sim::SimTime at);
  /// The seed's job_rejected tail: stale-note cleanup + outcome append.
  void record_rejection(JobOutcome outcome);
  /// Replays every lane's deferred terminal events in job-id order.
  void apply_deferred();
#if GRIDFED_TRACE
  /// Ledger columns + gauges for one metrics sample, summed over every
  /// live lane ledger (the merged main ledger alone once collapsed).
  void fill_ledger_sample(obs::MetricsSample& sample);
#endif

  // ---- transport::TransportContext --------------------------------------
  // (config() and spec_of() above satisfy both interfaces.)  sim() is the
  // GLOBAL lane: everything the transports schedule through it directly
  // (tree flushes, repair replays) is centralized state that the parallel
  // kernel keeps on the coordinator.  Shard-originated wire traffic comes
  // through post_delivery / post_transport_op instead, which route by the
  // calling lane.
  [[nodiscard]] sim::Simulation& sim() override { return sim_; }
  [[nodiscard]] MessageLedger& ledger() override { return lane_ledger(); }
  [[nodiscard]] std::size_t sites() const override { return specs_.size(); }
  void deliver(const Message& msg) override;
  void message_dropped() override {
    messages_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] sim::Rng& drop_rng() override { return drop_rng_; }
  [[nodiscard]] sim::Rng& duplicate_rng() override { return dup_rng_; }
  [[nodiscard]] sim::Rng& drop_rng(cluster::ResourceIndex from) override;
  [[nodiscard]] sim::Rng& duplicate_rng(cluster::ResourceIndex from) override;
  void post_delivery(Message msg, sim::SimTime delay) override;
  void post_transport_op(cluster::ResourceIndex from,
                         sim::EventPriority priority,
                         sim::InlineFunction op) override;
  /// Ground truth for the transports: a crashed site's edges are down.
  /// Left members stay reachable endpoints (their in-flight work drains
  /// gracefully); membership off degenerates to the base's constant true.
  [[nodiscard]] bool site_up(cluster::ResourceIndex i) const override {
    return membership_ == nullptr || !membership_->crashed(i);
  }

  // ---- membership::MembershipContext --------------------------------------
  // (config(), sim(), sites() and observer() above satisfy this interface
  // too.)  The churn hooks apply ground truth the instant an event fires;
  // member_confirmed_dead applies the detection-driven consequences when
  // the gossip views converge on a genuine crash.
  void gossip_send(Message msg) override;
  void churn_join(cluster::ResourceIndex site) override;
  void churn_leave(cluster::ResourceIndex site) override;
  void churn_crash(cluster::ResourceIndex site) override;
  void member_confirmed_dead(cluster::ResourceIndex site) override;

  // ---- coalition::CoalitionContext ---------------------------------------
  // (sites() and spec_of() above satisfy this interface too.)  The
  // manager reaches each member's per-cluster machinery through the
  // owning agent: its solo pricing for joint bids, and the reserve-and-
  // hold half of admission for internal placement.
  [[nodiscard]] market::Bid member_bid(cluster::ResourceIndex member,
                                       const cluster::Job& job) override;
  sim::SimTime member_admit(cluster::ResourceIndex member,
                            const cluster::Job& job) override;

  FederationConfig cfg_;
  std::vector<cluster::ResourceSpec> specs_;
  /// The global (coordinator) lane — the seed's single engine, and the
  /// only engine at all when `parallel_` is null.
  sim::Simulation sim_;
  /// The sharded kernel runtime (null = sequential run).  Declared right
  /// after sim_ so the worker pool outlives every entity scheduled on
  /// its shard engines and is joined only after all of them are gone.
  std::unique_ptr<ParallelRuntime> parallel_;
  directory::FederationDirectory dir_;
  MessageLedger ledger_;
  economy::GridBank bank_;
  std::vector<std::unique_ptr<cluster::Lrms>> lrms_;
  std::vector<std::unique_ptr<Gfa>> gfas_;
  /// The delivery substrate; owns the WAN model.  Constructed after the
  /// agents (it delivers into them).
  std::unique_ptr<transport::Transport> transport_;
  /// The coalition extension (null unless config.coalitions.enabled in
  /// auction mode).  Constructed after the agents (joint bids and
  /// internal placement reach members through them).
  std::unique_ptr<coalition::CoalitionManager> coalitions_;
  /// The membership runtime (null when config.membership is inactive).
  /// Constructed after the transport — gossip rides its unicast legs.
  std::unique_ptr<membership::MembershipService> membership_;
  std::vector<economy::DynamicPricer> pricers_;
  std::vector<double> pricer_last_area_;

#if GRIDFED_TRACE
  /// The observability umbrella (null unless config.obs enables a
  /// facility).  Constructed before arm_periodic_behaviours() so the
  /// metrics sampler can be armed alongside the other periodic events.
  std::unique_ptr<obs::Observer> observer_;
#endif
  std::vector<JobOutcome> outcomes_;
  stats::AuctionStats auction_stats_;
  std::vector<double> util_at_window_;
  sim::Rng drop_rng_;
  sim::Rng dup_rng_;
  /// Relaxed atomic: a pure total, bumped from concurrent shard lanes.
  std::atomic<std::uint64_t> messages_dropped_{0};
  cluster::JobId next_job_id_ = 1;
  std::uint64_t jobs_loaded_ = 0;
  bool ran_ = false;
};

}  // namespace gridfed::core
