#pragma once
// The Grid-Federation driver: owns the simulation engine, the clusters,
// the agents, the directory, the bank and the ledgers; feeds a workload;
// runs it to completion; and aggregates the per-job outcomes into a
// FederationResult.
//
// Typical use (this is the public API the examples exercise):
//
// ```
// auto specs = cluster::table1_specs();
// core::FederationConfig cfg;                       // economy mode
// core::Federation fed(cfg, specs);
// auto traces = workload::generate_federation_workload(specs, cfg.window,
//                                                      cfg.seed);
// fed.load_workload(traces, workload::PopulationProfile{30});
// core::FederationResult result = fed.run();
// ```

#include <memory>
#include <optional>
#include <vector>

#include "cluster/lrms.hpp"
#include "coalition/coalition_manager.hpp"
#include "core/config.hpp"
#include "core/gfa.hpp"
#include "core/message.hpp"
#include "core/outcome.hpp"
#include "core/result.hpp"
#include "directory/federation_directory.hpp"
#include "economy/dynamic_pricing.hpp"
#include "economy/grid_bank.hpp"
#include "membership/membership_service.hpp"
#include "obs/observer.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "stats/auction_stats.hpp"
#include "transport/transport.hpp"
#include "workload/population.hpp"
#include "workload/trace.hpp"

namespace gridfed::core {

/// One federation instance: construction wires every entity, subscribes
/// quotes, and arms the periodic extension behaviours the config enables.
/// Message delivery is delegated to the configured transport
/// (config.transport.kind); the Federation is the transport's
/// environment (transport::TransportContext) and its delivery sink.
class Federation final : public GfaHost,
                         private transport::TransportContext,
                         private coalition::CoalitionContext,
                         private membership::MembershipContext {
 public:
  Federation(FederationConfig config,
             std::vector<cluster::ResourceSpec> specs);
  ~Federation() override;
  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// Converts raw traces into federation jobs (Eqs. 1-3 split, Eqs. 7/8
  /// QoS fabrication), applies the population profile (economy runs), and
  /// schedules every arrival.  May be called multiple times before run().
  void load_workload(const std::vector<workload::ResourceTrace>& traces,
                     std::optional<workload::PopulationProfile> profile);

  /// Runs the simulation until every accepted job has completed, then
  /// aggregates.  Call once.
  [[nodiscard]] FederationResult run();

  // ---- GfaHost ----------------------------------------------------------
  void send(Message msg) override;
  std::uint64_t multicast(Message msg,
                          std::span<const cluster::ResourceIndex> targets,
                          sim::SimTime not_after) override;
  /// Satisfies both GfaHost and TransportContext.
  [[nodiscard]] const cluster::ResourceSpec& spec_of(
      cluster::ResourceIndex index) const override;
  [[nodiscard]] const FederationConfig& config() const override {
    return cfg_;
  }
  [[nodiscard]] sim::SimTime payload_staging_time(
      const cluster::Job& job, cluster::ResourceIndex site) const override;
  void job_completed(const JobOutcome& outcome) override;
  void job_rejected(const cluster::Job& job, std::uint32_t negotiations,
                    std::uint64_t messages) override;
  void auction_report(const market::ClearingReport& report) override;
  /// The coalition layer of this run (null with the extension disabled:
  /// every participant is a singleton and the market runs solo,
  /// bit-identical to the pre-participant code).
  [[nodiscard]] coalition::CoalitionManager* coalitions() override {
    return coalitions_.get();
  }
  void award_declined(federation::ParticipantId provider) override {
    auction_stats_.record_decline(provider.value);
    GF_OBS(observer(), count_decline(provider.is_coalition()
                                         ? sites()
                                         : provider.value));
  }
  void guarantee_missed(federation::ParticipantId provider) override {
    auction_stats_.record_miss(provider.value);
    GF_OBS(observer(), count_miss(provider.is_coalition()
                                      ? sites()
                                      : provider.value));
  }
  /// One Observer per run, satisfying the seam on GfaHost,
  /// TransportContext and CoalitionContext at once.  Null when
  /// config.obs is all-off (the dark path) or the instrumentation is
  /// compiled out.
  [[nodiscard]] obs::Observer* observer() override {
#if GRIDFED_TRACE
    return observer_.get();
#else
    return nullptr;
#endif
  }

  // ---- introspection (examples, tests) -----------------------------------
  [[nodiscard]] std::size_t size() const noexcept { return gfas_.size(); }
  [[nodiscard]] sim::Simulation& simulation() noexcept { return sim_; }
  [[nodiscard]] Gfa& gfa(cluster::ResourceIndex i);
  [[nodiscard]] cluster::Lrms& lrms(cluster::ResourceIndex i);
  [[nodiscard]] const directory::FederationDirectory& directory()
      const noexcept {
    return dir_;
  }
  [[nodiscard]] const economy::GridBank& bank() const noexcept {
    return bank_;
  }
  [[nodiscard]] const MessageLedger& ledger() const noexcept {
    return ledger_;
  }
  /// The delivery substrate this run was wired with (tests inspect the
  /// tree topology through it).
  [[nodiscard]] const transport::Transport& transport() const noexcept {
    return *transport_;
  }
  /// Raw per-job outcomes (accepted and rejected) after run().
  [[nodiscard]] const std::vector<JobOutcome>& outcomes() const noexcept {
    return outcomes_;
  }

  /// Messages lost to the failure-injection channel (0 unless
  /// config.message_drop_rate > 0).
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept {
    return messages_dropped_;
  }

  /// Per-auction accumulators (all-zero outside kAuction runs).
  [[nodiscard]] const stats::AuctionStats& auction_stats() const noexcept {
    return auction_stats_;
  }

  /// The membership runtime of this run, or null when
  /// config.membership.active() is false (static membership — the
  /// bit-identical golden path).
  [[nodiscard]] const membership::MembershipService* membership()
      const noexcept {
    return membership_.get();
  }

 private:
  void arm_periodic_behaviours();
  [[nodiscard]] FederationResult aggregate() const;

  // ---- transport::TransportContext --------------------------------------
  // (config() and spec_of() above satisfy both interfaces.)
  [[nodiscard]] sim::Simulation& sim() override { return sim_; }
  [[nodiscard]] MessageLedger& ledger() override { return ledger_; }
  [[nodiscard]] std::size_t sites() const override { return specs_.size(); }
  void deliver(const Message& msg) override;
  void message_dropped() override { ++messages_dropped_; }
  [[nodiscard]] sim::Rng& drop_rng() override { return drop_rng_; }
  [[nodiscard]] sim::Rng& duplicate_rng() override { return dup_rng_; }
  /// Ground truth for the transports: a crashed site's edges are down.
  /// Left members stay reachable endpoints (their in-flight work drains
  /// gracefully); membership off degenerates to the base's constant true.
  [[nodiscard]] bool site_up(cluster::ResourceIndex i) const override {
    return membership_ == nullptr || !membership_->crashed(i);
  }

  // ---- membership::MembershipContext --------------------------------------
  // (config(), sim(), sites() and observer() above satisfy this interface
  // too.)  The churn hooks apply ground truth the instant an event fires;
  // member_confirmed_dead applies the detection-driven consequences when
  // the gossip views converge on a genuine crash.
  void gossip_send(Message msg) override;
  void churn_join(cluster::ResourceIndex site) override;
  void churn_leave(cluster::ResourceIndex site) override;
  void churn_crash(cluster::ResourceIndex site) override;
  void member_confirmed_dead(cluster::ResourceIndex site) override;

  // ---- coalition::CoalitionContext ---------------------------------------
  // (sites() and spec_of() above satisfy this interface too.)  The
  // manager reaches each member's per-cluster machinery through the
  // owning agent: its solo pricing for joint bids, and the reserve-and-
  // hold half of admission for internal placement.
  [[nodiscard]] market::Bid member_bid(cluster::ResourceIndex member,
                                       const cluster::Job& job) override;
  sim::SimTime member_admit(cluster::ResourceIndex member,
                            const cluster::Job& job) override;

  FederationConfig cfg_;
  std::vector<cluster::ResourceSpec> specs_;
  sim::Simulation sim_;
  directory::FederationDirectory dir_;
  MessageLedger ledger_;
  economy::GridBank bank_;
  std::vector<std::unique_ptr<cluster::Lrms>> lrms_;
  std::vector<std::unique_ptr<Gfa>> gfas_;
  /// The delivery substrate; owns the WAN model.  Constructed after the
  /// agents (it delivers into them).
  std::unique_ptr<transport::Transport> transport_;
  /// The coalition extension (null unless config.coalitions.enabled in
  /// auction mode).  Constructed after the agents (joint bids and
  /// internal placement reach members through them).
  std::unique_ptr<coalition::CoalitionManager> coalitions_;
  /// The membership runtime (null when config.membership is inactive).
  /// Constructed after the transport — gossip rides its unicast legs.
  std::unique_ptr<membership::MembershipService> membership_;
  std::vector<economy::DynamicPricer> pricers_;
  std::vector<double> pricer_last_area_;

#if GRIDFED_TRACE
  /// The observability umbrella (null unless config.obs enables a
  /// facility).  Constructed before arm_periodic_behaviours() so the
  /// metrics sampler can be armed alongside the other periodic events.
  std::unique_ptr<obs::Observer> observer_;
#endif
  std::vector<JobOutcome> outcomes_;
  stats::AuctionStats auction_stats_;
  std::vector<double> util_at_window_;
  sim::Rng drop_rng_;
  sim::Rng dup_rng_;
  std::uint64_t messages_dropped_ = 0;
  cluster::JobId next_job_id_ = 1;
  std::uint64_t jobs_loaded_ = 0;
  bool ran_ = false;
};

}  // namespace gridfed::core
