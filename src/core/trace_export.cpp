#include "core/trace_export.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "stats/csv.hpp"
#include "stats/table.hpp"

namespace gridfed::core {

std::vector<std::string> outcome_csv_header() {
  return {"job",         "origin",     "user",        "processors",
          "length_mi",   "submit",     "deadline",    "budget",
          "optimization", "accepted",  "executed_on", "start",
          "completion",  "response",   "cost",        "negotiations",
          "messages",    "qos_satisfied",
          "via_coalition", "settled_participant", "surplus_share"};
}

std::vector<std::string> outcome_csv_row(const JobOutcome& o) {
  const auto& j = o.job;
  return {std::to_string(j.id),
          std::to_string(j.origin),
          std::to_string(j.user),
          std::to_string(j.processors),
          stats::Table::num(j.length_mi, 0),
          stats::Table::num(j.submit, 3),
          stats::Table::num(j.deadline, 3),
          stats::Table::num(j.budget, 3),
          j.opt == cluster::Optimization::kTime ? "OFT" : "OFC",
          o.accepted ? "1" : "0",
          o.accepted ? std::to_string(o.executed_on) : "",
          o.accepted ? stats::Table::num(o.start, 3) : "",
          o.accepted ? stats::Table::num(o.completion, 3) : "",
          o.accepted ? stats::Table::num(o.response_time(), 3) : "",
          o.accepted ? stats::Table::num(o.cost, 3) : "",
          std::to_string(o.negotiations),
          std::to_string(o.messages),
          o.qos_satisfied() ? "1" : "0",
          o.via_coalition ? "1" : "0",
          o.accepted ? std::to_string(o.settled_participant) : "",
          o.accepted ? stats::Table::num(o.surplus_share, 3) : ""};
}

void write_outcomes_csv(std::ostream& out,
                        const std::vector<JobOutcome>& outcomes) {
  auto emit = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ',';
      out << stats::CsvWriter::escape(cells[i]);
    }
    out << '\n';
  };
  emit(outcome_csv_header());
  for (const auto& o : outcomes) emit(outcome_csv_row(o));
}

void save_outcomes_csv(const std::string& path,
                       const std::vector<JobOutcome>& outcomes) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_outcomes_csv: cannot open " + path);
  }
  write_outcomes_csv(out, outcomes);
}

}  // namespace gridfed::core
