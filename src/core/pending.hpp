#pragma once
// In-flight origin-side scheduling state.  A Pending record travels with a
// job from submission until it is placed (locally or remotely) or
// rejected: the protocol engine (core/gfa.hpp) parks it while an enquiry
// is on the wire, and the scheduling policy (policy/) carries it between
// candidate attempts.
//
// The record itself holds only the mode-independent fields every policy
// and the protocol engine share.  Mode-specific state (an auction's award
// ranking, for example) hangs off `policy_state`: an opaque extension the
// owning SchedulingPolicy allocates, downcasts, and mutates — so the state
// moves with the job through the engine's pending map without the engine
// knowing any mode's internals.

#include <cstdint>
#include <memory>

#include "cluster/job.hpp"
#include "cluster/resource.hpp"

namespace gridfed::core {

/// Base for policy-owned per-job extension state (see file comment).
struct PolicyState {
  virtual ~PolicyState() = default;
};

/// In-flight scheduling state for a job its origin GFA is placing.
struct Pending {
  cluster::Job job;
  std::uint32_t next_rank = 1;     ///< next directory rank to try
  std::uint32_t negotiations = 0;  ///< remote enquiries so far
  std::uint64_t messages = 0;      ///< protocol messages so far
  /// The GFA currently being negotiated with (kNoResource = none).  Used
  /// to discard stale replies after a timeout abandoned the enquiry.
  cluster::ResourceIndex current_target = cluster::kNoResource;
  /// Monotone enquiry counter so a timeout only fires for its own
  /// enquiry, never a later one.
  std::uint64_t attempt = 0;
  /// True while the parked enquiry is an auction award (not a DBC
  /// negotiate) — the protocol engine uses it to book award declines
  /// and guarantee misses against the awarded provider (the reputation
  /// input signals) without inspecting policy state.
  bool award_in_flight = false;
  /// Mode-specific extension owned by the scheduling policy (null until
  /// the policy needs one; dies with the record).
  std::unique_ptr<PolicyState> policy_state;
};

}  // namespace gridfed::core
