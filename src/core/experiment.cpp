#include "core/experiment.hpp"

#include "cluster/catalog.hpp"
#include "workload/synthetic.hpp"

namespace gridfed::core {

FederationConfig make_config(SchedulingMode mode, std::uint64_t seed) {
  FederationConfig config;
  config.mode = mode;
  config.seed = seed;
  return config;
}

FederationResult run_experiment(const FederationConfig& config,
                                std::size_t n_resources,
                                std::uint32_t oft_percent) {
  auto specs = cluster::replicated_specs(n_resources);
  Federation fed(config, specs);
  const auto traces = workload::generate_federation_workload(
      specs, config.window, config.seed);
  std::optional<workload::PopulationProfile> profile;
  if (config.mode == SchedulingMode::kEconomy ||
      config.mode == SchedulingMode::kAuction) {
    profile = workload::PopulationProfile{oft_percent};
  }
  fed.load_workload(traces, profile);
  FederationResult result = fed.run();
  result.oft_percent = oft_percent;
  return result;
}

std::vector<FederationResult> run_profile_sweep(const FederationConfig& config,
                                                std::size_t n_resources) {
  std::vector<FederationResult> results;
  results.reserve(11);
  for (std::uint32_t oft = 0; oft <= 100; oft += 10) {
    results.push_back(run_experiment(config, n_resources, oft));
  }
  return results;
}

std::vector<FederationResult> run_scaling_study(
    const FederationConfig& config, const std::vector<std::size_t>& sizes,
    const std::vector<std::uint32_t>& oft_percents) {
  std::vector<FederationResult> results;
  results.reserve(sizes.size() * oft_percents.size());
  for (const std::size_t n : sizes) {
    for (const std::uint32_t oft : oft_percents) {
      results.push_back(run_experiment(config, n, oft));
    }
  }
  return results;
}

}  // namespace gridfed::core
