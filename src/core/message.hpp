#pragma once
// Inter-GFA scheduling messages and their accounting.
//
// The paper's protocol uses four message types (§3.5): `negotiate` (the
// admission-control enquiry), `reply` (accept/reject with the completion
// guarantee), `job-submission` (the job itself) and `job-completion` (the
// output coming home).  Experiments 4 and 5 are entirely about counting
// these messages, split per the paper's definition:
//
//   * a message is *local* at the GFA whose own job it concerns (the
//     home/origin GFA scheduling its user's job), and
//   * *remote* at the counterpart GFA (working on a foreigner's job).
//
// Every message therefore contributes exactly one local count and one
// remote count; federation-wide, sum(local) == sum(remote) == total
// messages (the Fig 9(c) series counts each message once).

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "cluster/job.hpp"
#include "cluster/resource.hpp"
#include "membership/gossip.hpp"
#include "sim/types.hpp"
#include "transport/message_arena.hpp"

namespace gridfed::core {

/// The four scheduling message types of §3.5, extended with the three
/// auction-mode messages (market/): the call-for-bids broadcast, the
/// sealed bid coming back, and the award notifying the winner.  The award
/// doubles as an admission enquiry — the winner re-checks and answers with
/// a kReply, so the ship/completion legs are shared with DBC.
enum class MessageType : std::uint8_t {
  kNegotiate,      ///< admission-control enquiry (can you meet s+d?)
  kReply,          ///< accept/reject + completion-time guarantee
  kJobSubmission,  ///< the job payload
  kJobCompletion,  ///< the job output returning to the origin
  kCallForBids,    ///< auction: solicitation broadcast to providers
  kBid,            ///< auction: sealed ask + completion estimate
  kAward,          ///< auction: winner notification (admission re-check)
  kGossip,         ///< membership: push-pull anti-entropy digest
};

/// Number of MessageType values (sizes the per-type counters).  Derived
/// from the last enumerator so it cannot drift from the enum.
inline constexpr std::size_t kMessageTypeCount =
    static_cast<std::size_t>(MessageType::kGossip) + 1;

[[nodiscard]] constexpr const char* to_string(MessageType t) noexcept {
  switch (t) {
    case MessageType::kNegotiate:
      return "negotiate";
    case MessageType::kReply:
      return "reply";
    case MessageType::kJobSubmission:
      return "job-submission";
    case MessageType::kJobCompletion:
      return "job-completion";
    case MessageType::kCallForBids:
      return "call-for-bids";
    case MessageType::kBid:
      return "bid";
    case MessageType::kAward:
      return "award";
    case MessageType::kGossip:
      return "gossip";
  }
  return "?";
}

/// One sealed ask inside a batched kBid message: the provider's answer
/// for one of the jobs a batched call-for-bids carried.
struct BatchedBid {
  cluster::JobId job = 0;
  double ask = 0.0;
  sim::SimTime completion_estimate = 0.0;
  bool feasible = false;
  /// In-network prune tombstone: an overlay relay scored this bid out of
  /// the decision-relevant rank prefix (TreeTransport convergecast
  /// pruning) and forwarded only the answer marker.  The quote fields
  /// above are zeroed; the origin's book records the bidder as answered
  /// without entering a bid.
  bool pruned = false;
};

/// One award riding on a batched call-for-bids instead of its own kAward
/// wire message (AuctionConfig::piggyback_awards): the full job (the
/// winner re-runs admission on it) plus the cleared payment.
struct PiggybackedAward {
  cluster::Job job;
  double payment = 0.0;
};

/// One inter-GFA message.  The full Job rides along: negotiate needs the
/// QoS parameters for the remote estimate, submission needs the payload,
/// and reply/completion use it for identification/accounting.
///
/// Batched solicitation (AuctionConfig::batch_solicitations) coalesces
/// same-window call-for-bids per (origin, provider) pair: one kCallForBids
/// carries several jobs in `batch_jobs`, answered by one kBid carrying
/// one BatchedBid per job.  `job` still holds the first batched job so
/// the ledger's local/remote classification (batches never mix origins)
/// and the routing asserts keep working unchanged.
struct Message {
  Message() = default;
  /// The common construction prefix; the remaining payload fields are
  /// assigned after the fact by the protocol legs that use them.
  Message(MessageType type, cluster::ResourceIndex from,
          cluster::ResourceIndex to, cluster::Job job, bool accept = false,
          sim::SimTime completion_estimate = 0.0, sim::SimTime start_time = 0.0)
      : type(type),
        from(from),
        to(to),
        job(std::move(job)),
        accept(accept),
        completion_estimate(completion_estimate),
        start_time(start_time) {}

  MessageType type = MessageType::kNegotiate;
  cluster::ResourceIndex from = 0;
  cluster::ResourceIndex to = 0;
  cluster::Job job;

  // Reply payload.
  bool accept = false;
  sim::SimTime completion_estimate = 0.0;

  // Job-completion payload: the definite execution window, so the origin
  // records the true completion instant rather than the (latency-delayed)
  // arrival of this message.
  sim::SimTime start_time = 0.0;

  // Auction payload: the sealed ask (kBid) or the cleared payment the
  // origin commits to settle (kAward).
  double price = 0.0;

  /// kReply payload (coalition extension): the member cluster that will
  /// actually execute the job when a coalition's representative accepted
  /// on the group's behalf — the origin ships the payload straight to
  /// it.  kNoResource (the default, and always in the solo market) means
  /// the replier itself executes.
  cluster::ResourceIndex exec_site = cluster::kNoResource;

  // Batched-solicitation payloads (empty outside batched auction mode).
  /// kCallForBids: all jobs asked.  The jobs live in a shared
  /// MessageArena (one per solicitation flush, `arena` below keeps it
  /// alive); every provider's copy of the message views the same
  /// storage, so a 50-provider flush writes the job list once instead
  /// of once per provider.
  std::span<const cluster::Job> batch_jobs;
  /// Keep-alive for `batch_jobs` (null when the span is empty).
  transport::ArenaHandle arena;
  std::vector<BatchedBid> batch_bids;  ///< kBid: one ask per asked job
  /// kCallForBids: awards to this provider riding the flush for free
  /// (AuctionConfig::piggyback_awards); processed before the bids.
  std::vector<PiggybackedAward> batch_awards;

  /// kGossip: the sender's full membership digest (empty otherwise).
  /// `accept` doubles as the push-pull flag — true marks the answering
  /// pull leg, which is not answered again.
  std::vector<membership::GossipRecord> gossip;

  /// Set on payloads delivered through an overlay relay (TreeTransport):
  /// the wire cost was booked by the transport as shared edge messages,
  /// so per-job policy counters must not book the delivery again.
  bool via_overlay = false;

  /// Single-bid kBid counterpart of BatchedBid::pruned: the whole bid
  /// was tombstoned in-network; price/completion_estimate/accept are
  /// zeroed and only the answer marker reaches the origin.
  bool bid_pruned = false;
};

// ---- wire-size model --------------------------------------------------------
// Deliberately coarse serialized sizes, used by the per-type byte
// counters and the size-aware WAN control delay: what matters is that a
// batched message carrying 40 jobs is costed ~40x a single-job one, not
// the exact marshalling format.

inline constexpr std::uint64_t kMessageHeaderBytes = 64;  ///< fixed fields
inline constexpr std::uint64_t kJobWireBytes = 96;        ///< one Job record
inline constexpr std::uint64_t kBidWireBytes = 32;        ///< one BatchedBid
inline constexpr std::uint64_t kAwardWireBytes =
    kJobWireBytes + 16;  ///< PiggybackedAward: job + payment

// Compact convergecast frame (TreeTransport bid aggregation): an edge
// message that merges every bid payload crossing one tree edge in one
// instant pays the message header ONCE, identifies each merged
// provider→origin stream by a fixed stub instead of a full header + Job
// record, and carries each surviving quote either whole (the first of
// its job-shape group on the edge) or as a quantum delta against that
// base (same log-bucket shape keys as the provider-side bid TTL cache).
// A pruned bid shrinks to a tombstone: job + bidder reference, enough
// for the origin's book to mark the bidder answered.
inline constexpr std::uint64_t kBidFrameBytes =
    kMessageHeaderBytes;  ///< per merged edge message
inline constexpr std::uint64_t kBidSourceBytes =
    16;  ///< per provider→origin stream: provider, origin, count
inline constexpr std::uint64_t kBidQuoteBytes =
    kBidWireBytes;  ///< first quote of a shape group: full BatchedBid
inline constexpr std::uint64_t kBidDeltaBytes =
    12;  ///< same-shape follower: job ref + quantized ask/estimate deltas
inline constexpr std::uint64_t kBidTombstoneBytes =
    8;  ///< pruned bid: job ref + bidder ref

/// Serialized size of one message under the model above.  Every message
/// carries at least one Job (the identification/payload field); batched
/// messages replace it with their batch.
[[nodiscard]] std::uint64_t wire_bytes(const Message& msg) noexcept;

/// Serialized size of one compact convergecast edge frame: `sources`
/// merged provider streams carrying `bases` full quotes, `deltas`
/// same-shape delta quotes, and `tombstones` prune markers.
[[nodiscard]] std::uint64_t encoded_bid_frame_bytes(
    std::uint64_t sources, std::uint64_t bases, std::uint64_t deltas,
    std::uint64_t tombstones) noexcept;

/// Per-GFA local/remote message counters plus per-type message and byte
/// totals.  Overlay relay traffic (TreeTransport edge messages, which
/// carry payloads for many origins at once) is booked separately: each
/// wire message still counts once federation-wide, but per-GFA it is
/// load at *both* endpoints and fits neither the local nor the remote
/// classification.
class MessageLedger {
 public:
  explicit MessageLedger(std::size_t n_gfas);

  /// Records one point-to-point message.  Classification: the endpoint
  /// that equals msg.job.origin counts it as local traffic, the other as
  /// remote.
  void record(const Message& msg);

  /// Records one overlay wire message on the tree edge (from, to):
  /// counted once federation-wide (total / per-type / bytes) and as
  /// relay load at both endpoints.
  void record_relay(cluster::ResourceIndex from, cluster::ResourceIndex to,
                    MessageType type, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t local_at(cluster::ResourceIndex gfa) const;
  [[nodiscard]] std::uint64_t remote_at(cluster::ResourceIndex gfa) const;
  [[nodiscard]] std::uint64_t relay_at(cluster::ResourceIndex gfa) const;

  /// local + remote + relay at one GFA (the Fig 11 per-GFA series).
  [[nodiscard]] std::uint64_t total_at(cluster::ResourceIndex gfa) const;

  /// Federation-wide message count (each message counted once).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Federation-wide payload bytes under the wire-size model.
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return total_bytes_;
  }
  /// Overlay relay wire messages (0 outside TreeTransport runs).
  [[nodiscard]] std::uint64_t relay_total() const noexcept {
    return relay_total_;
  }

  [[nodiscard]] std::uint64_t count_of(MessageType t) const;
  [[nodiscard]] std::uint64_t bytes_of(MessageType t) const;

  /// Folds another ledger in, element-wise.  Every column is an integer
  /// count, so merging per-shard ledgers at the end of a parallel run
  /// reproduces the sequential totals exactly regardless of the order
  /// the shards booked their messages in.  Both ledgers must cover the
  /// same federation (equal gfas()).
  void merge_from(const MessageLedger& other);

  [[nodiscard]] std::size_t gfas() const noexcept { return local_.size(); }

 private:
  std::vector<std::uint64_t> local_;
  std::vector<std::uint64_t> remote_;
  std::vector<std::uint64_t> relay_;
  std::uint64_t by_type_[kMessageTypeCount] = {};
  std::uint64_t bytes_by_type_[kMessageTypeCount] = {};
  std::uint64_t total_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t relay_total_ = 0;
};

}  // namespace gridfed::core
