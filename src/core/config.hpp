#pragma once
// Federation-wide configuration.  One FederationConfig fully determines a
// simulation run (together with the workload traces and the population
// profile), covering the three resource-sharing environments of the
// paper's evaluation and the extension toggles.

#include <cstdint>
#include <optional>

#include "cluster/lrms.hpp"
#include "coalition/coalition_config.hpp"
#include "economy/cost_model.hpp"
#include "economy/dynamic_pricing.hpp"
#include "market/auction_config.hpp"
#include "membership/membership_config.hpp"
#include "network/latency_model.hpp"
#include "obs/obs_config.hpp"
#include "sim/fel.hpp"
#include "sim/types.hpp"
#include "transport/transport_options.hpp"
#include "workload/calibration.hpp"
#include "workload/trace.hpp"

namespace gridfed::core {

/// The paper's three resource-sharing environments (§3.1) plus the market
/// extension's per-job reverse auction (market/).
enum class SchedulingMode : std::uint8_t {
  kIndependent,          ///< Experiment 1: no federation, local-only
  kFederationNoEconomy,  ///< Experiment 2: local first, then fastest-first
  kEconomy,              ///< Experiments 3-5: DBC superscheduling (OFC/OFT)
  kAuction,              ///< market extension: sealed-bid reverse auctions
};

[[nodiscard]] constexpr const char* to_string(SchedulingMode mode) noexcept {
  // Exhaustive: -Wswitch flags any mode added without a name here.
  switch (mode) {
    case SchedulingMode::kIndependent:
      return "independent";
    case SchedulingMode::kFederationNoEconomy:
      return "federation";
    case SchedulingMode::kEconomy:
      return "federation+economy";
    case SchedulingMode::kAuction:
      return "federation+auction";
  }
  __builtin_unreachable();
}

/// Everything that parameterizes one federation run.
struct FederationConfig {
  SchedulingMode mode = SchedulingMode::kEconomy;

  /// How owners charge (see economy/cost_model.hpp for why per-MI is the
  /// default).
  economy::CostModel cost_model = economy::CostModel::kPerMi;

  /// Eqs. 7/8 fabrication factors (2x in the paper).
  economy::QosFactors qos = {};

  /// Fraction of measured runtime that is communication (paper: 10%).
  double comm_fraction = workload::kDefaultCommFraction;

  /// QoS constraints the admission control actually enforces.  The paper
  /// enforces the deadline via negotiation and the budget via the quote.
  bool enforce_deadline = true;
  bool enforce_budget = true;

  /// LRMS dispatch discipline (FCFS in the paper; backfilling is X3).
  cluster::QueuePolicy queue_policy = cluster::QueuePolicy::kFcfs;

  /// Workload window; statistics (utilization) are evaluated at this
  /// horizon while jobs in flight run to completion.
  sim::SimTime window = workload::kTwoDays;

  /// One-way inter-GFA message latency in seconds (0 = the paper's
  /// instantaneous-negotiation assumption).  Ignored when `wan` is set.
  sim::SimTime network_latency = 0.0;

  /// WAN model extension: per-pair control latencies plus Eq. 1 payload
  /// transfer times; a migrated job's execution cannot start before its
  /// input data lands (the admission estimate accounts for it).  Unset =
  /// the paper's zero-cost network.
  std::optional<network::NetworkConfig> wan;

  /// Failure-injection extension: probability that a negotiate or reply
  /// message is lost in transit.  Payload transfers (job-submission and
  /// job-completion) are modelled as reliable (TCP-style retransmission);
  /// only the best-effort enquiry channel drops.  Requires
  /// negotiate_timeout > 0 when nonzero.
  double message_drop_rate = 0.0;

  /// How long a GFA waits for a negotiation reply before abandoning the
  /// enquiry and walking to the next rank; also bounds how long a remote
  /// GFA holds a negotiate-accept reservation awaiting the job payload
  /// (it cancels at 2x this value).  0 disables timeouts (the paper's
  /// lossless setting).
  sim::SimTime negotiate_timeout = 0.0;

  /// Coordination extension (paper §2.3 future work): GFAs periodically
  /// publish load hints; the rank walk skips sites hinted above the
  /// threshold.
  bool use_load_hints = false;
  double load_hint_threshold = 0.95;
  sim::SimTime load_hint_period = 600.0;

  /// Dynamic-pricing extension (paper §5 future work).
  bool dynamic_pricing = false;
  economy::DynamicPricingConfig pricing = {};

  /// Auction-mode knobs (only read when mode == kAuction).  A lossy
  /// network (message_drop_rate > 0) additionally requires
  /// auction.bid_timeout > 0 so a book missing a dropped bid still clears.
  market::AuctionConfig auction = {};

  /// Coalition extension (participant layer): latency-proximity groups
  /// of clusters bid as one participant, place awards internally and
  /// split the surplus (only read in auction mode).  Disabled = every
  /// participant is a singleton, bit-identical to the solo market.
  coalition::CoalitionConfig coalitions = {};

  /// Delivery substrate (transport/): kDirect reproduces the paper's
  /// point-to-point messaging bit-identically; kTree rides the
  /// call-for-bids fan-out over a k-ary overlay tree with epoch-batched
  /// dissemination and convergecast-aggregated bids.  In auction mode a
  /// nonzero bid_timeout must then also outlast the fan-out epoch.
  transport::TransportOptions transport = {};

  /// Dynamic membership (src/membership/): a gossip failure detector
  /// plus a scripted ChurnSchedule injecting join/leave/crash events
  /// mid-run.  Inactive (the default) keeps the static-roster path
  /// bit-identical to the seed: no gossip events, no extra RNG draws.
  /// When active, negotiate_timeout must be nonzero outside
  /// kIndependent (and auction.bid_timeout nonzero in auction mode):
  /// dead-provider recovery rides the timeout machinery.
  membership::MembershipOptions membership = {};

  /// Observability (src/obs/): sim-time tracing, the metrics
  /// time-series, and the auction forensics ledger.  All off by default;
  /// the dark path is bit-identical to a build without the subsystem
  /// (and GRIDFED_TRACE=0 compiles the instrumentation out entirely).
  obs::ObsConfig obs = {};

  /// Worker threads for the conservative-parallel kernel
  /// (sim/parallel.hpp).  0 or 1 = the seed's single-threaded engine,
  /// bit-identical to every golden.  >= 2 shards the clusters across
  /// worker threads under the safe-window protocol; this requires a
  /// nonzero WAN delay floor (network_latency > 0 or a wan model — the
  /// lookahead), otherwise the run silently falls back to the sequential
  /// engine.  Parallel runs reproduce the same *outcomes* for any thread
  /// count, but are not bit-identical to the sequential event order (FP
  /// accumulation order differs in aggregates).
  std::uint32_t threads = 0;

  /// Future-event-list selection for every simulation lane (global and
  /// per-shard alike): the heap/ladder hybrid by default, or a forced
  /// pure structure for A/B benchmarking.  Both structures pop in the
  /// identical (time, priority, seq) total order, so this knob never
  /// changes outcomes or digests — only push/pop cost at scale (see
  /// sim/fel.hpp and bench/README.md "Future-event list").
  sim::FelConfig fel = {};

  /// Master seed for workload generation and population assignment.
  std::uint64_t seed = 0x9042005ULL;
};

}  // namespace gridfed::core
