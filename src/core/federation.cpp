#include "core/federation.hpp"

#include <algorithm>
#include <utility>

#include "economy/cost_model.hpp"
#include "overlay/node_id.hpp"
#include "sim/check.hpp"

namespace gridfed::core {

Federation::Federation(FederationConfig config,
                       std::vector<cluster::ResourceSpec> specs)
    : cfg_(config),
      specs_(std::move(specs)),
      sim_(config.fel),
      ledger_(specs_.empty() ? 1 : specs_.size()),
      bank_(specs_.empty() ? 1 : specs_.size()),
      util_at_window_(specs_.size(), 0.0),
      drop_rng_(sim::Rng::stream(config.seed, "message-drop")),
      dup_rng_(sim::Rng::stream(config.seed, "message-dup")) {
  GF_EXPECTS(!specs_.empty());
  GF_EXPECTS(cfg_.window > 0.0);
  GF_EXPECTS(cfg_.message_drop_rate >= 0.0 && cfg_.message_drop_rate < 1.0);
  GF_EXPECTS(cfg_.transport.duplicate_rate >= 0.0 &&
             cfg_.transport.duplicate_rate < 1.0);
  GF_EXPECTS(cfg_.transport.tree_fanout >= 1);
  GF_EXPECTS(cfg_.transport.tree_epoch >= 0.0);
  // The WAN model moves into the transport below; it is built first so
  // the timeout sanity checks can see the worst-case latency.
  std::optional<network::LatencyModel> wan;
  if (cfg_.wan) {
    wan.emplace(*cfg_.wan, specs_);
  }
  // Lossy enquiries need timeouts to make progress, and the timeout must
  // outlast an enquiry+reply round trip.  In auction mode over the tree
  // transport a piggybacked award's enquiry leg rides the call-for-bids
  // relay path (up to 2 * depth hops to the LCA and back down) before
  // its reply returns point-to-point, so the bound is hop-aware there.
  GF_EXPECTS(cfg_.message_drop_rate == 0.0 || cfg_.negotiate_timeout > 0.0);
  const sim::SimTime worst_latency =
      wan ? wan->max_latency() : cfg_.network_latency;
  const bool tree =
      cfg_.transport.kind == transport::TransportKind::kTree;
  const double tree_depth = static_cast<double>(std::max(
      1u, transport::tree_depth(specs_.size(), cfg_.transport.tree_fanout)));
  const bool auction = cfg_.mode == SchedulingMode::kAuction;
  const double enquiry_hops = auction && tree ? 2.0 * tree_depth + 1.0 : 2.0;
  // On the tree in auction mode a piggybacked award's enquiry can also
  // sit out a full fan-out epoch before the relay flushes it, so the
  // timeout must clear the hold ON TOP of the hop round trip — a
  // timeout inside the epoch would systematically expire every held
  // enquiry before it even left the origin.
  const sim::SimTime enquiry_hold =
      auction && tree ? cfg_.transport.tree_epoch : 0.0;
  GF_EXPECTS(cfg_.negotiate_timeout == 0.0 ||
             cfg_.negotiate_timeout >
                 enquiry_hops * worst_latency + enquiry_hold);
  // Auction books close on completeness; a dropped bid would hold one open
  // forever unless the bid timeout clears it.  A nonzero timeout must also
  // outlast a call-for-bids + bid round trip — including the tree
  // transport's fan-out epoch, which may hold the call-for-bids back,
  // and the relayed hops of both legs — or every book clears empty.
  if (auction) {
    GF_EXPECTS(cfg_.message_drop_rate == 0.0 || cfg_.auction.bid_timeout > 0.0);
    const sim::SimTime fanout_hold = tree ? cfg_.transport.tree_epoch : 0.0;
    const double round_trip_hops = tree ? 4.0 * tree_depth : 2.0;
    GF_EXPECTS(cfg_.auction.bid_timeout == 0.0 ||
               cfg_.auction.bid_timeout >
                   round_trip_hops * worst_latency + fanout_hold);
  }

  // Overlay ring keys order both coalition formation and the shard
  // partition (computed once, used by both below).
  std::vector<std::uint64_t> ring_keys;
  ring_keys.reserve(specs_.size());
  for (const auto& spec : specs_) {
    ring_keys.push_back(overlay::ring_hash(spec.name));
  }
  const bool want_coalitions =
      cfg_.coalitions.enabled && cfg_.mode == SchedulingMode::kAuction;

  // The conservative-parallel kernel.  Eligibility: >= 2 worker threads
  // requested AND a nonzero lookahead (the safe-window protocol needs a
  // positive WAN delay floor — see sim/parallel.hpp) AND a partition
  // that actually yields >= 2 shards.  Anything else silently falls back
  // to the sequential engine, bit-identical to the seed.
  const sim::SimTime lookahead =
      wan ? wan->min_latency() : cfg_.network_latency;
  if (cfg_.threads >= 2 && specs_.size() >= 2 && lookahead > 0.0) {
    // Shard blocks align to the coalition ring buckets so a coalition
    // never spans shards (member_bid / member_admit stay lane-local).
    const std::uint32_t block =
        want_coalitions ? cfg_.coalitions.bucket_size : 1;
    federation::ShardPlan plan =
        federation::build_shard_plan(ring_keys, block, cfg_.threads);
    if (plan.shards >= 2) {
      parallel_ = std::make_unique<ParallelRuntime>();
      parallel_->plan = std::move(plan);
      parallel_->engine = std::make_unique<sim::ParallelEngine>(
          parallel_->plan.shards, sim_, lookahead, specs_.size(), cfg_.fel);
      parallel_->lanes.reserve(parallel_->plan.shards);
      for (std::uint32_t s = 0; s < parallel_->plan.shards; ++s) {
        parallel_->lanes.emplace_back(specs_.size());
      }
      parallel_->site_drop.reserve(specs_.size());
      parallel_->site_dup.reserve(specs_.size());
      for (const auto& spec : specs_) {
        parallel_->site_drop.push_back(
            sim::Rng::stream(cfg_.seed, "message-drop/" + spec.name));
        parallel_->site_dup.push_back(
            sim::Rng::stream(cfg_.seed, "message-dup/" + spec.name));
      }
    }
  }

#if GRIDFED_TRACE
  // The observability umbrella goes up before any instrumented layer is
  // wired (the coalition manager emits formation records from its
  // constructor).  One extra per-participant slot aggregates coalition
  // participants, whose ids live outside the cluster index space.
  GF_EXPECTS(!cfg_.obs.metrics || cfg_.obs.metrics_epoch > 0.0);
  if (cfg_.obs.any()) {
    std::vector<std::string> tracks;
    tracks.reserve(specs_.size());
    for (const auto& spec : specs_) tracks.push_back(spec.name);
    observer_ = std::make_unique<obs::Observer>(cfg_.obs, tracks,
                                                specs_.size() + 1);
    if (obs::MetricsRegistry* metrics = observer_->metrics()) {
      // Each sample's message/byte columns come straight from the
      // authoritative ledger (never double-counted by instrumentation),
      // so the closing sample equals FederationResult's totals exactly.
      metrics->set_ledger_sampler(
          [this](obs::MetricsSample& sample) { fill_ledger_sample(sample); });
    }
    // Per-worker-lane observers: GF_OBS sites fire on whatever lane the
    // instrumented event runs on, so each shard records into its own
    // tracer/registry/ledger (merged into observer_ in sim order at run
    // end).  Lane observers never epoch-sample — only the main registry
    // carries the time series.
    if (parallel_ != nullptr) {
      for (LaneState& lane : parallel_->lanes) {
        lane.observer = std::make_unique<obs::Observer>(cfg_.obs, tracks,
                                                        specs_.size() + 1);
      }
    }
  }
#endif

  lrms_.reserve(specs_.size());
  gfas_.reserve(specs_.size());
  sim::EntityId next_id = 0;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const auto index = static_cast<cluster::ResourceIndex>(i);
    // Sequentially every entity lives on sim_; under the parallel kernel
    // each cluster's LRMS + agent live on their shard's engine.
    sim::Simulation& engine = site_sim(i);
    lrms_.push_back(std::make_unique<cluster::Lrms>(
        engine, next_id++, specs_[i], index, cfg_.queue_policy));
    gfas_.push_back(std::make_unique<Gfa>(engine, next_id++, index,
                                          *lrms_.back(), dir_, *this));
    // Wire cluster completions into the owning agent.
    Gfa* agent = gfas_.back().get();
    lrms_.back()->set_completion_handler(
        [agent](const cluster::CompletedJob& done) {
          agent->on_lrms_completion(done);
        });
    // subscribe: the agent joins the federation and advertises its quote.
    dir_.subscribe(directory::Quote::from_spec(index, specs_[i]));
  }
  // The coalition extension: latency-proximity buckets over the overlay
  // ring keys — the same ChordRing order the TreeTransport lays its heap
  // over, so ring-adjacent (and thus coalesced) clusters are exactly the
  // ones sharing cheap tree edges.  Only meaningful in auction mode; the
  // registry also feeds the transports' group-addressed dissemination.
  if (want_coalitions) {
    // The base conversion must happen here (the base is private, so
    // make_unique's forwarding could not perform it).
    coalition::CoalitionContext& coalition_ctx = *this;
    coalitions_ = std::make_unique<coalition::CoalitionManager>(
        coalition_ctx, cfg_.coalitions, ring_keys);
  }
  // The delivery substrate, wired last: it delivers into the agents and
  // owns the WAN model from here on.
  transport_ = transport::make_transport(*this, std::move(wan));
  if (coalitions_) {
    transport_->set_group_registry(&coalitions_->registry());
  }
  // The membership runtime (gossip dissemination + scripted churn).
  // Dynamic membership needs timeouts to make progress the same way a
  // lossy network does: an enquiry parked on a crashed peer is only
  // ever resolved by its negotiate timeout, and an auction book
  // soliciting one only closes on its bid timeout.
  if (cfg_.membership.active()) {
    GF_EXPECTS(cfg_.membership.gossip_period > 0.0);
    GF_EXPECTS(cfg_.membership.gossip_fanout >= 1);
    GF_EXPECTS(cfg_.membership.suspect_after >= 1);
    GF_EXPECTS(cfg_.membership.dead_after >= 1);
    for (const membership::ChurnEvent& ev : cfg_.membership.churn.events) {
      GF_EXPECTS(ev.site < specs_.size());
      GF_EXPECTS(ev.time > 0.0);
    }
    GF_EXPECTS(cfg_.mode == SchedulingMode::kIndependent ||
               cfg_.negotiate_timeout > 0.0);
    if (auction) GF_EXPECTS(cfg_.auction.bid_timeout > 0.0);
    membership::MembershipContext& membership_ctx = *this;
    membership_ =
        std::make_unique<membership::MembershipService>(membership_ctx);
    membership_->start();
  }

  if (cfg_.dynamic_pricing) {
    pricers_.reserve(specs_.size());
    pricer_last_area_.assign(specs_.size(), 0.0);
    for (const auto& spec : specs_) {
      pricers_.emplace_back(spec.quote, cfg_.pricing);
    }
  }
  arm_periodic_behaviours();
}

Federation::~Federation() = default;

Gfa& Federation::gfa(cluster::ResourceIndex i) {
  GF_EXPECTS(i < gfas_.size());
  return *gfas_[i];
}

cluster::Lrms& Federation::lrms(cluster::ResourceIndex i) {
  GF_EXPECTS(i < lrms_.size());
  return *lrms_[i];
}

void Federation::arm_periodic_behaviours() {
  // Utilization snapshot at the window boundary (jobs keep running, but
  // Tables 2/3 and Fig 4 report utilization over the window).
  sim_.schedule_at(cfg_.window, sim::EventPriority::kControl, [this] {
    for (std::size_t i = 0; i < lrms_.size(); ++i) {
      util_at_window_[i] = lrms_[i]->utilization().utilization(cfg_.window);
    }
  });

  // Coordination extension: periodic load-hint refresh.  Members that
  // crashed or left stop publishing (and may already be unsubscribed).
  if (cfg_.use_load_hints) {
    for (sim::SimTime t = cfg_.load_hint_period; t <= cfg_.window;
         t += cfg_.load_hint_period) {
      sim_.schedule_at(t, sim::EventPriority::kControl, [this] {
        for (std::size_t i = 0; i < gfas_.size(); ++i) {
          const auto index = static_cast<cluster::ResourceIndex>(i);
          if (membership_ && !membership_->live(index)) continue;
          gfas_[i]->publish_load_hint();
        }
      });
    }
  }

#if GRIDFED_TRACE
  // Metrics epoch sampler.  Pure reads: the extra control events shift
  // event sequence numbers but never reorder or perturb the existing
  // stream, so enabled runs still reproduce the golden outcomes.  A
  // final sample after the run drains closes the series (see run()).
  if (observer_ && observer_->metrics() != nullptr) {
    for (sim::SimTime t = cfg_.obs.metrics_epoch; t <= cfg_.window;
         t += cfg_.obs.metrics_epoch) {
      sim_.schedule_at(t, sim::EventPriority::kControl, [this] {
        observer_->metrics()->take_sample(sim_.now());
      });
    }
  }
#endif

  // Dynamic-pricing extension: periodic repricing from recent load.
  if (cfg_.dynamic_pricing) {
    const sim::SimTime period = cfg_.pricing.period;
    for (sim::SimTime t = period; t <= cfg_.window; t += period) {
      sim_.schedule_at(t, sim::EventPriority::kControl, [this, period] {
        for (std::size_t i = 0; i < lrms_.size(); ++i) {
          if (membership_ &&
              !membership_->live(static_cast<cluster::ResourceIndex>(i))) {
            continue;  // a gone member republishes nothing
          }
          const double area = lrms_[i]->utilization().busy_area(sim_.now());
          const double window_area =
              static_cast<double>(specs_[i].processors) * period;
          const double recent_load = std::min(
              1.0, (area - pricer_last_area_[i]) / window_area);
          pricer_last_area_[i] = area;
          const double new_quote = pricers_[i].reprice(recent_load);
          specs_[i].quote = new_quote;
          dir_.update_price(static_cast<cluster::ResourceIndex>(i),
                            new_quote);
        }
      });
    }
  }
}

void Federation::load_workload(
    const std::vector<workload::ResourceTrace>& traces,
    std::optional<workload::PopulationProfile> profile) {
  GF_EXPECTS(!ran_);
  for (const auto& trace : traces) {
    GF_EXPECTS(trace.resource < specs_.size());
    const auto& origin_spec = specs_[trace.resource];
    for (const auto& raw : trace.jobs) {
      cluster::Job job = workload::to_job(raw, next_job_id_++, trace.resource,
                                          origin_spec, cfg_.comm_fraction);
      economy::fabricate_qos(job, origin_spec, cfg_.cost_model, cfg_.qos);
      if (profile) {
        job.opt = profile->preference(job.origin, job.user, cfg_.seed);
      }
      ++jobs_loaded_;
      Gfa* agent = gfas_[trace.resource].get();
      // Arrivals land on the origin's own lane (sim_ sequentially).
      site_sim(trace.resource)
          .schedule_at(job.submit, sim::EventPriority::kArrival,
                       [agent, job = std::move(job)] {
                         agent->submit_local(job);
                       });
    }
  }
}

FederationResult Federation::run() {
  GF_EXPECTS(!ran_);
  ran_ = true;
  outcomes_.reserve(jobs_loaded_);
#if GRIDFED_TRACE
  // The kernel dispatch probe: a captureless shim forwarding to the
  // metrics registry, so the kernel never learns about the obs layer.
  // Installed only when metrics are on — the dark run keeps the probe
  // null and pays one predicted branch per event.
  const auto probe = [](void* ctx, sim::SimTime) {
    static_cast<obs::MetricsRegistry*>(ctx)->count(
        obs::Counter::kEventsDispatched);
  };
  if (observer_ && observer_->metrics() != nullptr) {
    sim_.set_dispatch_probe(probe, observer_->metrics());
  }
  // Each shard engine probes into its OWN lane registry: the probe path
  // stays allocation-free and never shares a counter across threads.
  if (parallel_ != nullptr) {
    for (std::size_t s = 0; s < parallel_->lanes.size(); ++s) {
      obs::Observer* lane_obs = parallel_->lanes[s].observer.get();
      if (lane_obs != nullptr && lane_obs->metrics() != nullptr) {
        parallel_->engine->shard(s).set_dispatch_probe(probe,
                                                       lane_obs->metrics());
      }
    }
  }
#endif
  if (parallel_ != nullptr) {
    parallel_->engine->run();
    // Terminal job events were deferred by every lane; replay them in
    // job-id order (see DeferredOutcome) on the coordinator.
    apply_deferred();
  } else {
    sim_.run();
  }
  GF_ENSURES(outcomes_.size() == jobs_loaded_);
  // Fold every agent's policy counters in once, so the accessor and the
  // aggregate see the same totals.
  for (const auto& agent : gfas_) {
    const policy::PolicyCounters counters =
        agent->scheduling_policy().counters();
    auction_stats_.bid_cache_lookups += counters.bid_cache_lookups;
    auction_stats_.bid_cache_hits += counters.bid_cache_hits;
    auction_stats_.awards_piggybacked += counters.awards_piggybacked;
  }
  if (parallel_ != nullptr) {
    // Collapse the per-lane sinks into the main ones.  Every ledger and
    // stats column is a plain sum; observer records merge in sim order.
    for (LaneState& lane : parallel_->lanes) {
      ledger_.merge_from(lane.ledger);
      auction_stats_.merge_from(lane.stats);
#if GRIDFED_TRACE
      if (observer_ != nullptr && lane.observer != nullptr) {
        observer_->merge_from(*lane.observer);
      }
#endif
    }
    parallel_->collapsed = true;
  }
#if GRIDFED_TRACE
  // The closing sample: the queue has drained, so the series ends on
  // ledger columns equal to aggregate()'s FederationResult totals.
  if (observer_ && observer_->metrics() != nullptr) {
    observer_->metrics()->take_sample(sim_.now());
  }
#endif
  return aggregate();
}

void Federation::send(Message msg) {
  GF_EXPECTS(msg.to < gfas_.size());
  transport_->unicast(std::move(msg));
}

std::uint64_t Federation::multicast(
    Message msg, std::span<const cluster::ResourceIndex> targets,
    sim::SimTime not_after) {
  for (const cluster::ResourceIndex target : targets) {
    GF_EXPECTS(target < gfas_.size());
  }
  return transport_->multicast(std::move(msg), targets, not_after);
}

void Federation::deliver(const Message& msg) {
  GF_EXPECTS(msg.to < gfas_.size());
  if (membership_ != nullptr) {
    // A crashed destination receives nothing — the bytes were charged
    // (they crossed the wire) but they land in the void.  Left members
    // keep receiving: their in-flight work drains gracefully.
    if (membership_->crashed(msg.to)) return;
    if (msg.type == MessageType::kGossip) {
      membership_->on_gossip(msg);
      return;
    }
  }
  gfas_[msg.to]->receive(msg);
}

const cluster::ResourceSpec& Federation::spec_of(
    cluster::ResourceIndex index) const {
  GF_EXPECTS(index < specs_.size());
  return specs_[index];
}

sim::SimTime Federation::payload_staging_time(
    const cluster::Job& job, cluster::ResourceIndex site) const {
  const network::LatencyModel* wan = transport_->wan();
  if (wan == nullptr || site == job.origin) return 0.0;
  return wan->transfer_time(job.origin, site,
                            cluster::data_transferred(job,
                                                      specs_[job.origin]));
}

market::Bid Federation::member_bid(cluster::ResourceIndex member,
                                   const cluster::Job& job) {
  GF_EXPECTS(member < gfas_.size());
  if (membership_ != nullptr && !membership_->live(member)) {
    market::Bid bid;  // a gone member prices nothing: infeasible
    bid.bidder = member;
    return bid;
  }
  return gfas_[member]->provider_bid(job);
}

sim::SimTime Federation::member_admit(cluster::ResourceIndex member,
                                      const cluster::Job& job) {
  GF_EXPECTS(member < gfas_.size());
  if (membership_ != nullptr && !membership_->live(member)) {
    return sim::kTimeInfinity;  // a gone member admits nothing
  }
  const sim::SimTime estimate = gfas_[member]->admit_remote(job);
  if (estimate != sim::kTimeInfinity) {
    // The placement just reserved capacity the member's own policy never
    // saw: drop its cached pricing so the coalition's next joint bid
    // prices the thicker queue honestly.
    gfas_[member]->invalidate_provider_cache();
  }
  return estimate;
}

// ---- membership::MembershipContext ------------------------------------------

void Federation::gossip_send(Message msg) {
  GF_EXPECTS(msg.to < gfas_.size());
  transport_->unicast(std::move(msg));
}

void Federation::churn_crash(cluster::ResourceIndex site) {
  // Fail-stop, applied the instant the event fires: the agent drains its
  // in-flight state (each of its jobs still terminates exactly once) and
  // the LRMS kills every reservation in place.  Directory eviction and
  // the peers' orphan sweeps wait for the failure detector — until
  // confirmation, peers keep soliciting the dead site and eat the
  // timeouts, which is exactly the degradation the churn sweep measures.
  gfas_[site]->on_crash();
  lrms_[site]->shutdown();
}

void Federation::churn_leave(cluster::ResourceIndex site) {
  // Graceful departure: announced, so the consequences apply at once —
  // no advertisement, no coalition seat, no relay duty.  In-flight work
  // involving the leaver drains normally (it stays a reachable
  // endpoint).
  gfas_[site]->on_leave();
  dir_.unsubscribe(site);
  if (coalitions_) coalitions_->on_member_departed(site, sim_.now());
  transport_->on_member_left(site);
}

void Federation::churn_join(cluster::ResourceIndex site) {
  lrms_[site]->restart();
  gfas_[site]->on_rejoin();
  dir_.subscribe(directory::Quote::from_spec(site, specs_[site]));
  if (coalitions_) coalitions_->on_member_rejoined(site, sim_.now());
  transport_->on_member_joined(site);
}

void Federation::member_confirmed_dead(cluster::ResourceIndex site) {
  // Detection converged on a genuine crash: evict the advertisement,
  // repair the overlay (replaying the solicitations the dead relay ate),
  // re-form its coalition, and let every live peer sweep the work it had
  // parked on the corpse.  Ascending peer order keeps the sweep
  // deterministic.
  if (!membership_->left(site)) dir_.unsubscribe(site);
  transport_->on_member_dead(site);
  if (coalitions_) coalitions_->on_member_departed(site, sim_.now());
  for (std::size_t i = 0; i < gfas_.size(); ++i) {
    const auto peer = static_cast<cluster::ResourceIndex>(i);
    if (peer == site) continue;
    gfas_[i]->on_peer_dead(site);
  }
}

void Federation::job_completed(const JobOutcome& outcome) {
  if (parallel_active()) {
    const int lane = sim::ParallelEngine::current_lane();
    if (lane >= 0) {
      auto& shard_lane = parallel_->lanes[static_cast<std::size_t>(lane)];
      shard_lane.deferred.push_back(DeferredOutcome{
          outcome, parallel_->engine->shard(static_cast<std::size_t>(lane)).now(),
          true});
    } else {
      parallel_->global_deferred.push_back(
          DeferredOutcome{outcome, sim_.now(), true});
    }
    return;
  }
  settle_completion(outcome, sim_.now());
}

void Federation::settle_completion(const JobOutcome& outcome,
                                   sim::SimTime at) {
  // A job the coalition layer placed settles as one share per member
  // (the SurplusRule split, budget-balanced by construction); everything
  // else settles solo.  via_coalition gates the split — a stale
  // placement note (the origin abandoned a lossy coalition award and
  // re-scheduled, possibly onto the very same member through a solo
  // path) must not divert a solo settlement — and the manager further
  // declines jobs whose note no longer matches the executor.
  const bool split =
      coalitions_ != nullptr && outcome.via_coalition &&
      coalitions_->settle(bank_, outcome.job.id, outcome.executed_on,
                          outcome.job.origin, outcome.job.user, outcome.cost);
  JobOutcome settled = outcome;
  settled.settled_participant = outcome.executed_on;
  settled.surplus_share = outcome.cost;
  if (split) {
    const coalition::SplitRecord& record = coalitions_->splits().back();
    // The record's own member snapshot, NOT the live registry: churn may
    // have re-formed the coalition between placement and settlement.
    const auto& members = record.members;
    settled.settled_participant = record.coalition.value;
    for (std::size_t m = 0; m < members.size(); ++m) {
      if (members[m] == record.executor) {
        settled.surplus_share = record.shares[m];
        break;
      }
    }
    GF_OBS(observer(), count(obs::Counter::kCoalitionSplits));
#if GRIDFED_TRACE
    if (observer_ != nullptr && observer_->forensics() != nullptr) {
      obs::SplitDecision decision;
      decision.t = at;
      decision.job = record.job;
      decision.coalition = record.coalition.value;
      decision.executor = record.executor;
      decision.executor_ask = record.executor_ask;
      decision.payment = record.payment;
      decision.shares.reserve(members.size());
      for (std::size_t m = 0; m < members.size(); ++m) {
        decision.shares.emplace_back(members[m], record.shares[m]);
      }
      observer_->forensics()->record_split(std::move(decision));
    }
#endif
  } else {
    bank_.settle(economy::Settlement{outcome.job.id, outcome.job.origin,
                                     outcome.executed_on, outcome.cost,
                                     outcome.job.user});
    // A job that settled outside the coalition path may still carry a
    // stale placement note (abandoned lossy award): drop it so notes
    // do not accumulate over the run.
    if (coalitions_ != nullptr) coalitions_->forget(outcome.job.id);
  }
  GF_OBS(observer(), count(obs::Counter::kJobsAccepted));
  outcomes_.push_back(std::move(settled));
}

void Federation::auction_report(const market::ClearingReport& report) {
  lane_auction_stats().record(report);
}

void Federation::job_rejected(const cluster::Job& job,
                              std::uint32_t negotiations,
                              std::uint64_t messages) {
  JobOutcome outcome;
  outcome.job = job;
  outcome.accepted = false;
  outcome.negotiations = negotiations;
  outcome.messages = messages;
  if (parallel_active()) {
    const int lane = sim::ParallelEngine::current_lane();
    if (lane >= 0) {
      auto& shard_lane = parallel_->lanes[static_cast<std::size_t>(lane)];
      shard_lane.deferred.push_back(DeferredOutcome{
          std::move(outcome),
          parallel_->engine->shard(static_cast<std::size_t>(lane)).now(),
          false});
    } else {
      parallel_->global_deferred.push_back(
          DeferredOutcome{std::move(outcome), sim_.now(), false});
    }
    return;
  }
  record_rejection(std::move(outcome));
}

void Federation::record_rejection(JobOutcome outcome) {
  // A rejection may leave a stale coalition placement note behind (an
  // abandoned lossy award): drop it so notes do not accumulate.
  if (coalitions_ != nullptr) coalitions_->forget(outcome.job.id);
  GF_OBS(observer(), count(obs::Counter::kJobsRejected));
  outcomes_.push_back(std::move(outcome));
}

void Federation::apply_deferred() {
  std::vector<DeferredOutcome> all = std::move(parallel_->global_deferred);
  for (LaneState& lane : parallel_->lanes) {
    all.insert(all.end(), std::make_move_iterator(lane.deferred.begin()),
               std::make_move_iterator(lane.deferred.end()));
    lane.deferred.clear();
  }
  // Job ids are unique, so this is a total order — independent of both
  // the worker count and the cross-shard completion interleaving.
  std::sort(all.begin(), all.end(),
            [](const DeferredOutcome& a, const DeferredOutcome& b) {
              return a.outcome.job.id < b.outcome.job.id;
            });
  for (DeferredOutcome& d : all) {
    if (d.accepted) {
      settle_completion(d.outcome, d.at);
    } else {
      record_rejection(std::move(d.outcome));
    }
  }
}

MessageLedger& Federation::lane_ledger() noexcept {
  if (parallel_active()) {
    const int lane = sim::ParallelEngine::current_lane();
    if (lane >= 0) return parallel_->lanes[static_cast<std::size_t>(lane)].ledger;
  }
  return ledger_;
}

stats::AuctionStats& Federation::lane_auction_stats() noexcept {
  if (parallel_active()) {
    const int lane = sim::ParallelEngine::current_lane();
    if (lane >= 0) return parallel_->lanes[static_cast<std::size_t>(lane)].stats;
  }
  return auction_stats_;
}

sim::Rng& Federation::drop_rng(cluster::ResourceIndex from) {
  if (parallel_ != nullptr) {
    GF_EXPECTS(from < parallel_->site_drop.size());
    return parallel_->site_drop[from];
  }
  return drop_rng_;
}

sim::Rng& Federation::duplicate_rng(cluster::ResourceIndex from) {
  if (parallel_ != nullptr) {
    GF_EXPECTS(from < parallel_->site_dup.size());
    return parallel_->site_dup[from];
  }
  return dup_rng_;
}

void Federation::post_delivery(Message msg, sim::SimTime delay) {
  if (!parallel_active()) {
    transport::TransportContext::post_delivery(std::move(msg), delay);
    return;
  }
  const int lane = sim::ParallelEngine::current_lane();
  sim::Simulation& src =
      lane >= 0 ? parallel_->engine->shard(static_cast<std::size_t>(lane))
                : sim_;
  const sim::SimTime at = src.now() + delay;
  // Gossip is membership state — global lane; everything else lands on
  // the destination agent's shard.  Same-lane deliveries ride the
  // mailbox too (not a direct schedule): every delivery then carries a
  // causal token, so two arrivals at one destination with an identical
  // (time, priority) key order by token — worker-count invariant —
  // instead of by which window boundary each happened to drain at.
  const int target =
      msg.type == MessageType::kGossip
          ? sim::kGlobalLane
          : static_cast<int>(parallel_->plan.shard_of[msg.to]);
  const cluster::ResourceIndex from = msg.from;
  parallel_->engine->post(target, at, sim::EventPriority::kMessage, from,
                          [this, msg = std::move(msg)] { deliver(msg); });
}

void Federation::post_transport_op(cluster::ResourceIndex from,
                                   sim::EventPriority priority,
                                   sim::InlineFunction op) {
  const int lane =
      parallel_active() ? sim::ParallelEngine::current_lane() : sim::kGlobalLane;
  if (lane < 0) {
    // Sequential runs and the global lane itself: the centralized
    // transport state is the calling context — run inline, as the seed
    // did.
    op();
    return;
  }
  parallel_->engine->post(
      sim::kGlobalLane,
      parallel_->engine->shard(static_cast<std::size_t>(lane)).now(), priority,
      from, std::move(op));
}

#if GRIDFED_TRACE
void Federation::fill_ledger_sample(obs::MetricsSample& sample) {
  const auto add = [&sample](const MessageLedger& led) {
    for (std::size_t t = 0; t < kMessageTypeCount; ++t) {
      sample.msgs_by_type[t] += led.count_of(static_cast<MessageType>(t));
      sample.bytes_by_type[t] += led.bytes_of(static_cast<MessageType>(t));
    }
    sample.total_msgs += led.total();
    sample.total_bytes += led.total_bytes();
    sample.relay_msgs += led.relay_total();
  };
  add(ledger_);
  // Mid-run parallel samples fold the live shard-lane ledgers in (read
  // at a window barrier, so no lane is mutating them); once collapsed
  // the main ledger already holds every column.
  if (parallel_active()) {
    for (const LaneState& lane : parallel_->lanes) add(lane.ledger);
  }
  std::uint64_t open = 0;
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  for (const auto& agent : gfas_) {
    open += agent->scheduling_policy().open_auctions();
    const policy::PolicyCounters counters =
        agent->scheduling_policy().counters();
    lookups += counters.bid_cache_lookups;
    hits += counters.bid_cache_hits;
  }
  sample.gauges[static_cast<std::size_t>(obs::Gauge::kOpenBooks)] = open;
  sample.gauges[static_cast<std::size_t>(obs::Gauge::kBidCacheLookups)] =
      lookups;
  sample.gauges[static_cast<std::size_t>(obs::Gauge::kBidCacheHits)] = hits;
}
#endif

FederationResult Federation::aggregate() const {
  FederationResult result;
  result.mode = cfg_.mode;
  result.system_size = specs_.size();
  result.resources.resize(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    auto& row = result.resources[i];
    row.name = specs_[i].name;
    row.utilization = util_at_window_[i];
    row.incentive = bank_.incentive(static_cast<cluster::ResourceIndex>(i));
    row.spent_by_home =
        bank_.spent_by_home(static_cast<cluster::ResourceIndex>(i));
    row.local_messages =
        ledger_.local_at(static_cast<cluster::ResourceIndex>(i));
    row.remote_messages =
        ledger_.remote_at(static_cast<cluster::ResourceIndex>(i));
    result.msgs_per_gfa.add(static_cast<double>(
        ledger_.total_at(static_cast<cluster::ResourceIndex>(i))));
  }

  for (const auto& outcome : outcomes_) {
    auto& row = result.resources[outcome.job.origin];
    const auto& origin_spec = specs_[outcome.job.origin];
    row.total_jobs += 1;
    result.total_jobs += 1;
    result.msgs_per_job.add(static_cast<double>(outcome.messages));
    result.negotiations_per_job.add(
        static_cast<double>(outcome.negotiations));

    if (outcome.accepted) {
      row.accepted += 1;
      result.total_accepted += 1;
      if (outcome.executed_on == outcome.job.origin) {
        row.processed_locally += 1;
      } else {
        row.migrated += 1;
        result.resources[outcome.executed_on].remote_processed += 1;
      }
      const double response = outcome.response_time();
      row.response_excl.add(response);
      row.budget_excl.add(outcome.cost);
      row.response_incl.add(response);
      row.budget_incl.add(outcome.cost);
      result.fed_response_excl.add(response);
      result.fed_budget_excl.add(outcome.cost);
      result.fed_response_incl.add(response);
      result.fed_budget_incl.add(outcome.cost);
    } else {
      row.rejected += 1;
      result.total_rejected += 1;
      // Paper Fig 8: rejected jobs contribute their *expected* response and
      // cost as if executed on the unloaded originating resource.
      const double est_response =
          cluster::execution_time(outcome.job, origin_spec, origin_spec);
      const double est_cost = economy::job_cost(outcome.job, origin_spec,
                                                origin_spec, cfg_.cost_model);
      row.response_incl.add(est_response);
      row.budget_incl.add(est_cost);
      result.fed_response_incl.add(est_response);
      result.fed_budget_incl.add(est_cost);
    }
  }

  result.total_messages = ledger_.total();
  result.total_message_bytes = ledger_.total_bytes();
  result.overlay_relay_messages = ledger_.relay_total();
  result.bids_pruned = transport_->bids_pruned();
  result.bid_prune_bytes_saved = transport_->bid_prune_bytes_saved();
  for (std::size_t t = 0; t < kMessageTypeCount; ++t) {
    result.messages_by_type[t] =
        ledger_.count_of(static_cast<MessageType>(t));
    result.bytes_by_type[t] = ledger_.bytes_of(static_cast<MessageType>(t));
  }
  result.directory_traffic = dir_.traffic();
  result.total_incentive = bank_.total();
  result.auctions = auction_stats_;
  if (coalitions_) {
    result.coalitions_formed = coalitions_->registry().coalitions();
    result.coalition_local_messages = coalitions_->local_messages();
    result.coalition_awards = coalitions_->splits().size();
    for (const auto& split : coalitions_->splits()) {
      result.coalition_surplus +=
          split.payment - std::min(split.executor_ask, split.payment);
    }
  }
  return result;
}

}  // namespace gridfed::core
