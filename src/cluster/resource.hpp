#pragma once
// Cluster resource description.  A cluster is a homogeneous collection of
// machines with a single system image (paper §2.0.1); for scheduling
// purposes it is fully described by the paper's resource set
// R_i = (p_i, mu_i, gamma_i) plus the owner's access quote c_i.

#include <cstdint>
#include <string>

namespace gridfed::cluster {

/// Index of a cluster within a federation (k in J_{i,j,k}).
using ResourceIndex = std::uint32_t;

/// Sentinel for "no cluster": negotiation targets between enquiries, unset
/// auction winners, and any other optional ResourceIndex slot.
inline constexpr ResourceIndex kNoResource = static_cast<ResourceIndex>(-1);

/// R_i = (p_i, mu_i, gamma_i) with the owner's quote.
///
/// * `processors` — p_i, number of (homogeneous) processors.
/// * `mips`       — mu_i, per-processor speed in MIPS.
/// * `bandwidth`  — gamma_i, NIC-to-network bandwidth in Gb/s.
/// * `quote`      — c_i, access price in Grid Dollars per unit time,
///                  normally derived from Eq. 6 (economy::quote_for) but
///                  owners may configure any value (site autonomy).
struct ResourceSpec {
  std::string name;
  std::uint32_t processors = 0;
  double mips = 0.0;
  double bandwidth = 0.0;
  double quote = 0.0;

  [[nodiscard]] bool valid() const noexcept {
    return processors > 0 && mips > 0.0 && bandwidth > 0.0 && quote >= 0.0;
  }

  /// Aggregate MIPS of the whole cluster (p_i * mu_i).
  [[nodiscard]] double total_mips() const noexcept {
    return static_cast<double>(processors) * mips;
  }
};

}  // namespace gridfed::cluster
