#include "cluster/resource.hpp"

// ResourceSpec is a plain aggregate; this TU exists to give the module a
// stable object file and a place for future out-of-line helpers.
namespace gridfed::cluster {}
