#pragma once
// Processor-availability profile.  The LRMS answers "when could a job
// needing p processors for duration T start?" exactly, by maintaining the
// future availability of its processors as a step function under all
// reservations made so far.  This is the mechanism behind the paper's
// admission-control negotiation: a remote GFA can be given an exact FCFS
// completion-time guarantee.

#include <cstdint>
#include <map>

#include "sim/types.hpp"

namespace gridfed::cluster {

/// Step function: available processors over future time, under reservation.
///
/// Invariants (checked by `valid()` and the property tests):
///  * every step value is in [0, capacity];
///  * the final step (extending to +infinity) has value == capacity
///    (all reservations are finite).
class AvailabilityProfile {
 public:
  explicit AvailabilityProfile(std::uint32_t capacity);

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Available processors at instant `t`.
  [[nodiscard]] std::uint32_t available_at(sim::SimTime t) const;

  /// Earliest start s >= not_before such that at least `procs` processors
  /// are available throughout [s, s + duration).  Always exists when
  /// procs <= capacity because all reservations are finite.
  /// Precondition: 0 < procs <= capacity, duration >= 0.
  [[nodiscard]] sim::SimTime earliest_start(sim::SimTime not_before,
                                            std::uint32_t procs,
                                            sim::SimTime duration) const;

  /// Removes `procs` processors from availability over [start, end).
  /// Precondition: the window really has `procs` available (use
  /// earliest_start first); violating this throws ContractViolation.
  void reserve(sim::SimTime start, sim::SimTime end, std::uint32_t procs);

  /// Returns `procs` processors to availability over [start, end) — the
  /// inverse of a prior reserve() with the same window (reservation
  /// cancellation).  Precondition: releasing must not push any step above
  /// capacity.
  void release(sim::SimTime start, sim::SimTime end, std::uint32_t procs);

  /// Drops steps strictly before `now` (history compaction).  The value in
  /// force at `now` is preserved.  Call as the simulation clock advances to
  /// keep the profile O(pending work).
  void trim(sim::SimTime now);

  /// Number of internal steps (for tests / capacity planning).
  [[nodiscard]] std::size_t step_count() const noexcept {
    return steps_.size();
  }

  /// Full invariant check; O(steps).  Used by property tests.
  [[nodiscard]] bool valid() const;

 private:
  // Ensures a step boundary exists exactly at time t (splitting the
  // enclosing segment); returns the iterator to it.
  std::map<sim::SimTime, std::uint32_t>::iterator ensure_boundary(
      sim::SimTime t);

  std::uint32_t capacity_;
  // time -> processors available from that time until the next entry.
  // Always non-empty; the last entry extends to +infinity.
  std::map<sim::SimTime, std::uint32_t> steps_;
};

}  // namespace gridfed::cluster
