#include "cluster/lrms.hpp"

#include <utility>

#include "sim/check.hpp"

namespace gridfed::cluster {

Lrms::Lrms(sim::Simulation& sim, sim::EntityId id, ResourceSpec spec,
           ResourceIndex index, QueuePolicy policy)
    : Entity(sim, id, spec.name),
      spec_(std::move(spec)),
      index_(index),
      policy_(policy),
      profile_(spec_.processors),
      util_(spec_.processors) {
  GF_EXPECTS(spec_.valid());
}

sim::SimTime Lrms::feasible_start(std::uint32_t procs,
                                  sim::SimTime exec_time,
                                  sim::SimTime earliest) const {
  sim::SimTime not_before = std::max(now(), earliest);
  if (policy_ == QueuePolicy::kFcfs) {
    not_before = std::max(not_before, last_fcfs_start_);
  }
  return profile_.earliest_start(not_before, procs, exec_time);
}

sim::SimTime Lrms::estimate_completion(const Job& job, sim::SimTime exec_time,
                                       sim::SimTime earliest) const {
  if (job.processors > spec_.processors) return sim::kTimeInfinity;
  return feasible_start(job.processors, exec_time, earliest) + exec_time;
}

sim::SimTime Lrms::expected_wait(std::uint32_t procs,
                                 sim::SimTime exec_time) const {
  if (procs > spec_.processors) return sim::kTimeInfinity;
  return feasible_start(procs, exec_time, 0.0) - now();
}

Reservation Lrms::submit(const Job& job, sim::SimTime exec_time,
                         sim::SimTime earliest) {
  GF_EXPECTS(!down_);  // the owning agent gates submissions while down
  GF_EXPECTS(job.processors > 0 && job.processors <= spec_.processors);
  GF_EXPECTS(exec_time >= 0.0);

  const sim::SimTime start =
      feasible_start(job.processors, exec_time, earliest);
  const sim::SimTime completion = start + exec_time;
  profile_.reserve(start, completion, job.processors);
  if (policy_ == QueuePolicy::kFcfs) last_fcfs_start_ = start;

  Reservation res{job.id, start, completion, job.processors,
                  ++next_serial_};
  ++accepted_;
  ++queued_;

  // Start and completion are definite: schedule both now.  Completion runs
  // at kCompletion priority so freed processors are visible to same-instant
  // arrivals (see EventPriority).
  simulation().schedule_at(
      start, sim::EventPriority::kCompletion,
      [this, serial = res.serial, procs = res.processors] {
        on_start(serial, procs);
      });
  simulation().schedule_at(completion, sim::EventPriority::kCompletion,
                           [this, job, res] { on_finish(job, res); });
  return res;
}

void Lrms::cancel(const Reservation& reservation) {
  // Sound only while the start event has not executed.  Time alone
  // cannot express that at the boundary: at now == start the start has
  // already run IF the caller sits in a lower-priority event (starts
  // run at kCompletion, first in the instant), but has not if the
  // caller acts before the simulation reaches the instant's events.
  // Callers firing from control events must therefore test
  // now() < start themselves (as Gfa::on_hold_timeout and
  // Gfa::admit_and_reply do); this precondition catches the
  // unambiguous misuse.
  GF_EXPECTS(now() <= reservation.start);
  GF_EXPECTS(!cancelled_.contains(reservation.serial));
  profile_.release(reservation.start, reservation.completion,
                   reservation.processors);
  cancelled_.insert(reservation.serial);
  GF_ENSURES(queued_ > 0);
  --queued_;
  ++cancelled_count_;
  // Note: last_fcfs_start_ may still point at the cancelled reservation;
  // later jobs then start no earlier than the cancelled slot would have —
  // a conservative but sound FCFS interpretation.
}

void Lrms::on_start(std::uint64_t serial, std::uint32_t procs) {
  if (cancelled_.contains(serial)) return;  // cancelled before start
  GF_ENSURES(queued_ > 0);
  --queued_;
  ++running_;
  busy_ += procs;
  GF_ENSURES(busy_ <= spec_.processors);
  util_.set_busy(now(), busy_);
  profile_.trim(now());
}

void Lrms::shutdown() {
  down_ = true;
  // Everything reserved so far dies with the machine.  The events stay
  // scheduled — they keep queued_/running_/busy_ and the profile
  // consistent as they fire — but on_finish never reports a killed
  // reservation to the completion handler.
  kill_below_ = next_serial_ + 1;
}

void Lrms::on_finish(const Job& job, const Reservation& res) {
  if (cancelled_.erase(res.serial) > 0) return;  // cancelled reservation
  GF_ENSURES(running_ > 0);
  --running_;
  GF_ENSURES(busy_ >= res.processors);
  busy_ -= res.processors;
  util_.set_busy(now(), busy_);
  if (res.serial < kill_below_) {
    // Killed by shutdown(): the machine went down mid-reservation, so
    // the output never materializes.  The origin's sweep (or its own
    // crash drain) accounts for the job.
    ++killed_;
    return;
  }
  ++completed_;
  if (on_completion_) {
    on_completion_(CompletedJob{job, res, index_});
  }
}

}  // namespace gridfed::cluster
