#pragma once
// LRMS — the Local Resource Management System (the paper's PBS/SGE
// stand-in, §2.0.2).  gridfed's LRMS is a space-shared scheduler over a
// reservation-based availability profile:
//
//  * FCFS (default): each accepted job is reserved at the earliest start
//    not before the previous job's start — strict arrival-order dispatch,
//    the behaviour of GridSim's SpaceShared policy the authors extended.
//  * Conservative backfilling (option): a job may be reserved in any
//    earlier hole it fits in; reservations never move, so completion
//    guarantees made at admission still hold.
//
// Because runtimes are known exactly in trace replay, the completion time
// computed at admission is exact; this is the property that makes the
// paper's one-to-one admission-control negotiation sound.

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "cluster/availability_profile.hpp"
#include "cluster/job.hpp"
#include "cluster/resource.hpp"
#include "sim/entity.hpp"
#include "stats/utilization.hpp"

namespace gridfed::cluster {

/// Dispatch discipline of the space-shared queue.
enum class QueuePolicy : std::uint8_t {
  kFcfs,                     ///< strict arrival order (GridSim SpaceShared)
  kConservativeBackfilling,  ///< fill earlier holes; reservations immutable
};

/// Outcome of accepting a job: its definite schedule on this cluster.
struct Reservation {
  JobId job = 0;
  sim::SimTime start = 0.0;       ///< instant processors are granted
  sim::SimTime completion = 0.0;  ///< start + execution time
  std::uint32_t processors = 0;
  /// Per-LRMS monotone identity.  A lossy network can cancel and
  /// re-reserve the SAME job with the SAME start on one LRMS (the slot
  /// the cancel freed is exactly what the re-enquiry gets), so job and
  /// times cannot distinguish a reservation from its replacement — the
  /// serial can.
  std::uint64_t serial = 0;
};

/// A completed job as reported to the owning agent.
struct CompletedJob {
  Job job;
  Reservation reservation;
  ResourceIndex executed_on = 0;
};

/// Space-shared cluster scheduler (one per cluster).
class Lrms : public sim::Entity {
 public:
  using CompletionHandler = std::function<void(const CompletedJob&)>;

  Lrms(sim::Simulation& sim, sim::EntityId id, ResourceSpec spec,
       ResourceIndex index, QueuePolicy policy = QueuePolicy::kFcfs);

  [[nodiscard]] const ResourceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] ResourceIndex index() const noexcept { return index_; }
  [[nodiscard]] QueuePolicy policy() const noexcept { return policy_; }

  /// Invoked (synchronously, at completion time) for every finished job.
  void set_completion_handler(CompletionHandler handler) {
    on_completion_ = std::move(handler);
  }

  /// Admission-control query (no side effects): the exact completion time
  /// this LRMS would guarantee if `job` (running for `exec_time` on this
  /// cluster) were accepted right now, starting no earlier than `earliest`
  /// (e.g. when its input data is still in flight over the WAN).  Returns
  /// kTimeInfinity when the job cannot run here at all (p > processors).
  [[nodiscard]] sim::SimTime estimate_completion(
      const Job& job, sim::SimTime exec_time,
      sim::SimTime earliest = 0.0) const;

  /// Expected queue wait for a hypothetical job (diagnostic metric; the
  /// NASA-superscheduler baseline uses this as its AWT signal).
  [[nodiscard]] sim::SimTime expected_wait(std::uint32_t procs,
                                           sim::SimTime exec_time) const;

  /// Accepts `job` and reserves processors, starting no earlier than
  /// `earliest`.  Precondition: the job fits (p <= processors).  Schedules
  /// start/completion events and returns the definite reservation.  The
  /// guarantee equals the last estimate_completion made in the same event
  /// (single-threaded engine).
  Reservation submit(const Job& job, sim::SimTime exec_time,
                     sim::SimTime earliest = 0.0);

  /// Cancels a reservation made by submit() before its start instant: the
  /// processors return to the availability profile and neither the start
  /// nor the completion callback fires.  Used by the failure-injection
  /// extension when a remote GFA reserved at negotiate-accept but the job
  /// payload never arrived (reply or submission lost).
  /// Precondition: now() <= reservation.start and the job has not already
  /// been cancelled.
  void cancel(const Reservation& reservation);

  /// Reservations cancelled so far.
  [[nodiscard]] std::uint64_t jobs_cancelled() const noexcept {
    return cancelled_count_;
  }

  /// Fail-stop (membership churn): every reservation made so far —
  /// queued or running — is killed in place.  Their already-scheduled
  /// start/finish events still fire and keep the counters and the
  /// availability profile consistent, but the completion handler is
  /// never invoked for them: the machine went down, the output is lost.
  /// New submissions are the owning agent's responsibility to gate
  /// (submit() asserts !down()).
  void shutdown();

  /// The machine rebooted (a kJoin churn event).  Reservations from
  /// before the shutdown stay killed; the profile still carries them
  /// until their original completion instants — the conservative
  /// "rebooted but the old bookings block the queue" model.
  void restart() noexcept { down_ = false; }

  [[nodiscard]] bool down() const noexcept { return down_; }

  /// Reservations killed by shutdown() whose finish already fired.
  [[nodiscard]] std::uint64_t jobs_killed() const noexcept {
    return killed_;
  }

  /// Jobs currently occupying processors.
  [[nodiscard]] std::uint32_t running_jobs() const noexcept {
    return running_;
  }
  /// Jobs accepted but not yet started.
  [[nodiscard]] std::uint32_t queued_jobs() const noexcept { return queued_; }
  /// Busy processors right now.
  [[nodiscard]] std::uint32_t busy_processors() const noexcept {
    return busy_;
  }
  /// Fraction of processors busy right now, in [0,1].
  [[nodiscard]] double instantaneous_load() const noexcept {
    return static_cast<double>(busy_) / spec_.processors;
  }

  /// Exact utilization integral (Tables 2/3, Fig 4).
  [[nodiscard]] const stats::UtilizationIntegrator& utilization()
      const noexcept {
    return util_;
  }

  /// Total jobs ever accepted by this LRMS.
  [[nodiscard]] std::uint64_t jobs_accepted() const noexcept {
    return accepted_;
  }
  /// Total jobs completed so far.
  [[nodiscard]] std::uint64_t jobs_completed() const noexcept {
    return completed_;
  }

  /// The underlying profile (tests / diagnostics).
  [[nodiscard]] const AvailabilityProfile& profile() const noexcept {
    return profile_;
  }

 private:
  // Earliest feasible start for (procs, exec_time) under the queue policy,
  // not before `earliest`.
  [[nodiscard]] sim::SimTime feasible_start(std::uint32_t procs,
                                            sim::SimTime exec_time,
                                            sim::SimTime earliest) const;

  // Scalar parameters keep the start event's capture inside the event
  // kernel's 32-byte inline buffer (no allocation per job start).
  void on_start(std::uint64_t serial, std::uint32_t procs);
  void on_finish(const Job& job, const Reservation& res);

  ResourceSpec spec_;
  ResourceIndex index_;
  QueuePolicy policy_;
  AvailabilityProfile profile_;
  stats::UtilizationIntegrator util_;
  CompletionHandler on_completion_;

  sim::SimTime last_fcfs_start_ = 0.0;  // FCFS: starts are non-decreasing
  std::uint32_t busy_ = 0;
  std::uint32_t running_ = 0;
  std::uint32_t queued_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t cancelled_count_ = 0;
  std::uint64_t next_serial_ = 0;  // reservation identities (see above)
  bool down_ = false;
  /// Serials strictly below this were killed by shutdown(); their finish
  /// events decrement counters but never reach the completion handler.
  std::uint64_t kill_below_ = 0;
  std::uint64_t killed_ = 0;
  // Reservations cancelled before start; their events no-op on firing.
  std::unordered_set<std::uint64_t> cancelled_;  // by Reservation::serial
};

}  // namespace gridfed::cluster
