#include "cluster/catalog.hpp"

#include <stdexcept>

namespace gridfed::cluster {

const std::vector<CatalogEntry>& table1() {
  // Quotes are the paper's printed values; they equal Eq. 6 with
  // c = 5.3 G$ and mu_max = 930 MIPS to the printed precision (verified by
  // tests/economy tests).
  static const std::vector<CatalogEntry> entries = {
      {{"CTC SP2", 512, 850.0, 2.0, 4.84}, "June96-May97", 79302, 417, 53.492,
       96.642},
      {{"KTH SP2", 100, 900.0, 1.6, 5.12}, "Sep96-Aug97", 28490, 163, 50.064,
       93.865},
      {{"LANL CM5", 1024, 700.0, 1.0, 3.98}, "Oct94-Sep96", 201387, 215,
       47.103, 83.72},
      {{"LANL Origin", 2048, 630.0, 1.6, 3.59}, "Nov99-Apr2000", 121989, 817,
       44.550, 93.757},
      {{"NASA iPSC", 128, 930.0, 4.0, 5.3}, "Oct93-Dec93", 42264, 535, 62.347,
       100.0},
      {{"SDSC Par96", 416, 710.0, 1.0, 4.04}, "Dec95-Dec96", 38719, 189,
       48.179, 98.941},
      {{"SDSC Blue", 1152, 730.0, 2.0, 4.16}, "Apr2000-Jan2003", 250440, 215,
       82.088, 57.67},
      {{"SDSC SP2", 128, 920.0, 4.0, 5.24}, "Apr98-Apr2000", 73496, 111,
       79.492, 50.45},
  };
  return entries;
}

std::vector<ResourceSpec> table1_specs() {
  std::vector<ResourceSpec> specs;
  specs.reserve(table1().size());
  for (const auto& entry : table1()) specs.push_back(entry.spec);
  return specs;
}

std::vector<ResourceSpec> replicated_specs(std::size_t n) {
  const auto base = table1_specs();
  std::vector<ResourceSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ResourceSpec spec = base[i % base.size()];
    const std::size_t replica = i / base.size();
    if (replica > 0) {
      spec.name += " #" + std::to_string(replica + 1);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

ResourceIndex catalog_index(const std::string& name) {
  const auto& entries = table1();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].spec.name == name) return static_cast<ResourceIndex>(i);
  }
  throw std::out_of_range("catalog_index: unknown resource " + name);
}

}  // namespace gridfed::cluster
