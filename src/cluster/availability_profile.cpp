#include "cluster/availability_profile.hpp"

#include "sim/check.hpp"

namespace gridfed::cluster {

AvailabilityProfile::AvailabilityProfile(std::uint32_t capacity)
    : capacity_(capacity) {
  GF_EXPECTS(capacity > 0);
  steps_.emplace(0.0, capacity);
}

std::uint32_t AvailabilityProfile::available_at(sim::SimTime t) const {
  auto it = steps_.upper_bound(t);
  if (it == steps_.begin()) return capacity_;  // before recorded history
  return std::prev(it)->second;
}

sim::SimTime AvailabilityProfile::earliest_start(sim::SimTime not_before,
                                                 std::uint32_t procs,
                                                 sim::SimTime duration) const {
  GF_EXPECTS(procs > 0 && procs <= capacity_);
  GF_EXPECTS(duration >= 0.0);

  sim::SimTime candidate = not_before;
  // Walk the steps; whenever a step inside the candidate window dips below
  // `procs`, restart the window just after that step.
  auto it = steps_.upper_bound(candidate);
  if (it != steps_.begin()) --it;  // step in force at `candidate`
  while (it != steps_.end()) {
    const sim::SimTime seg_start = std::max(it->first, candidate);
    if (seg_start >= candidate + duration) break;  // window fully verified
    if (it->second < procs) {
      // Window fails here; candidate moves past this segment.
      auto next = std::next(it);
      GF_ENSURES(next != steps_.end());  // last segment has full capacity
      candidate = next->first;
      it = next;
      continue;
    }
    ++it;
  }
  return candidate;
}

std::map<sim::SimTime, std::uint32_t>::iterator
AvailabilityProfile::ensure_boundary(sim::SimTime t) {
  auto it = steps_.lower_bound(t);
  if (it != steps_.end() && it->first == t) return it;
  // Value in force just before t.
  const std::uint32_t value =
      (it == steps_.begin()) ? capacity_ : std::prev(it)->second;
  return steps_.emplace_hint(it, t, value);
}

void AvailabilityProfile::reserve(sim::SimTime start, sim::SimTime end,
                                  std::uint32_t procs) {
  GF_EXPECTS(procs > 0 && procs <= capacity_);
  GF_EXPECTS(start <= end);
  if (start == end) return;  // zero-length reservation is a no-op

  auto first = ensure_boundary(start);
  ensure_boundary(end);
  for (auto it = first; it != steps_.end() && it->first < end; ++it) {
    GF_EXPECTS(it->second >= procs);  // caller must have verified the window
    it->second -= procs;
  }
}

void AvailabilityProfile::release(sim::SimTime start, sim::SimTime end,
                                  std::uint32_t procs) {
  GF_EXPECTS(procs > 0 && procs <= capacity_);
  GF_EXPECTS(start <= end);
  if (start == end) return;

  auto first = ensure_boundary(start);
  ensure_boundary(end);
  for (auto it = first; it != steps_.end() && it->first < end; ++it) {
    GF_EXPECTS(it->second + procs <= capacity_);  // must match a reserve
    it->second += procs;
  }
}

void AvailabilityProfile::trim(sim::SimTime now) {
  auto it = steps_.upper_bound(now);
  if (it == steps_.begin()) return;
  --it;  // step in force at `now`
  if (it == steps_.begin()) return;
  // Re-anchor the in-force step at `now` and drop everything earlier.
  const std::uint32_t value = it->second;
  steps_.erase(steps_.begin(), std::next(it));
  steps_.emplace(now, value);
}

bool AvailabilityProfile::valid() const {
  if (steps_.empty()) return false;
  for (const auto& [t, avail] : steps_) {
    if (avail > capacity_) return false;
  }
  return steps_.rbegin()->second == capacity_;
}

}  // namespace gridfed::cluster
