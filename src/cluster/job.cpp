#include "cluster/job.hpp"

namespace gridfed::cluster {

double data_transferred(const Job& job, const ResourceSpec& origin) noexcept {
  return job.comm_overhead * origin.bandwidth;
}

sim::SimTime compute_time(const Job& job, const ResourceSpec& exec) noexcept {
  return job.length_mi /
         (exec.mips * static_cast<double>(job.processors));
}

sim::SimTime comm_time(const Job& job, const ResourceSpec& origin,
                       const ResourceSpec& exec) noexcept {
  return job.comm_overhead * origin.bandwidth / exec.bandwidth;
}

sim::SimTime execution_time(const Job& job, const ResourceSpec& origin,
                            const ResourceSpec& exec) noexcept {
  return compute_time(job, exec) + comm_time(job, origin, exec);
}

double compute_only_cost(const Job& job, const ResourceSpec& exec) noexcept {
  return exec.quote * compute_time(job, exec);
}

double wall_time_cost(const Job& job, const ResourceSpec& origin,
                      const ResourceSpec& exec) noexcept {
  return exec.quote * execution_time(job, origin, exec);
}

}  // namespace gridfed::cluster
