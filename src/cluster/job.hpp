#pragma once
// Jobs and the paper's timing/cost equations (Eqs. 1-4).
//
// A job J_{i,j,k} is the i-th job of user j whose home cluster is k.  It
// carries the processor requirement p, total length l in million
// instructions (MI), communication overhead alpha (seconds of network time
// on the origin cluster), and the user's QoS constraints: budget b (Grid
// Dollars) and deadline d (seconds, relative to submission).

#include <cstdint>

#include "cluster/resource.hpp"
#include "sim/types.hpp"

namespace gridfed::cluster {

/// Globally unique job identifier.
using JobId = std::uint64_t;

/// QoS optimization strategy chosen by the job's owner (paper §2.2).
enum class Optimization : std::uint8_t {
  kCost,  ///< OFC — minimum cost within the deadline
  kTime,  ///< OFT — minimum response time within the budget
};

/// J_{i,j,k} = (p, l, b, d, alpha) plus identity and submission metadata.
struct Job {
  JobId id = 0;
  ResourceIndex origin = 0;  ///< k — the user's home cluster
  std::uint32_t user = 0;    ///< j — user index within the home cluster

  std::uint32_t processors = 0;  ///< p_{i,j,k}, processors required
  double length_mi = 0.0;        ///< l_{i,j,k}, total MI across processors
  double comm_overhead = 0.0;    ///< alpha_{i,j,k}, seconds on the origin

  double budget = 0.0;          ///< b_{i,j,k}, Grid Dollars
  sim::SimTime deadline = 0.0;  ///< d_{i,j,k}, seconds after submission
  sim::SimTime submit = 0.0;    ///< s_{i,j,k}, submission instant

  Optimization opt = Optimization::kCost;

  /// Absolute latest acceptable completion instant (s + d).
  [[nodiscard]] sim::SimTime absolute_deadline() const noexcept {
    return submit + deadline;
  }
};

/// Eq. 1 — total data transferred during execution: Gamma = alpha * gamma_k
/// (Gb).  Communication overhead scales with the origin's interconnect.
[[nodiscard]] double data_transferred(const Job& job,
                                      const ResourceSpec& origin) noexcept;

/// Pure computation time of `job` on `exec`: l / (mu_m * p).
[[nodiscard]] sim::SimTime compute_time(const Job& job,
                                        const ResourceSpec& exec) noexcept;

/// Communication time of `job` on `exec` when its data was sized for
/// `origin`: alpha * gamma_k / gamma_m (second term of Eq. 3).
[[nodiscard]] sim::SimTime comm_time(const Job& job,
                                     const ResourceSpec& origin,
                                     const ResourceSpec& exec) noexcept;

/// Eq. 2/3 — unloaded execution (service) time of `job` on `exec`:
/// D(J, R_m) = l/(mu_m p) + alpha gamma_k / gamma_m.
[[nodiscard]] sim::SimTime execution_time(const Job& job,
                                          const ResourceSpec& origin,
                                          const ResourceSpec& exec) noexcept;

/// Eq. 4, literal form — cost charged for computation only:
/// B(J, R_m) = c_m * l / (mu_m p).  See economy::CostModel for why the
/// default charging model is wall-time instead.
[[nodiscard]] double compute_only_cost(const Job& job,
                                       const ResourceSpec& exec) noexcept;

/// Wall-time charging — quote applied to the full occupancy (Eq. 3 time):
/// B(J, R_m) = c_m * D(J, R_m).
[[nodiscard]] double wall_time_cost(const Job& job, const ResourceSpec& origin,
                                    const ResourceSpec& exec) noexcept;

}  // namespace gridfed::cluster
