#pragma once
// Table 1 of the paper: the eight Parallel-Workloads-Archive resources the
// evaluation federates, with their processor counts, MIPS ratings, quotes
// and NIC bandwidths, plus the per-resource workload facts of Tables 2/3
// used to calibrate the synthetic traces (see workload/calibration).

#include <cstdint>
#include <vector>

#include "cluster/resource.hpp"

namespace gridfed::cluster {

/// One row of Table 1 (augmented with Table 2's two-day job counts and the
/// paper's measured independent-case statistics, which the synthetic
/// workload generator targets).
struct CatalogEntry {
  ResourceSpec spec;
  const char* trace_period = "";
  std::uint64_t full_trace_jobs = 0;  ///< Table 1 "Jobs" column
  std::uint32_t two_day_jobs = 0;     ///< Table 2 "Total Job" column
  double paper_independent_utilization = 0.0;  ///< Table 2 "%", target shape
  double paper_independent_accept_pct = 0.0;   ///< Table 2 "%", target shape
};

/// The eight Table 1 resources, in paper order (index 0 = CTC SP2 ...
/// index 7 = SDSC SP2).
[[nodiscard]] const std::vector<CatalogEntry>& table1();

/// Just the ResourceSpecs of Table 1.
[[nodiscard]] std::vector<ResourceSpec> table1_specs();

/// Experiment 5's scaled federation: the Table 1 set replicated round-robin
/// to `n` resources (replicas get a "#r" name suffix).  n need not be a
/// multiple of 8.
[[nodiscard]] std::vector<ResourceSpec> replicated_specs(std::size_t n);

/// Index into table1() by resource name; throws std::out_of_range if the
/// name is unknown.
[[nodiscard]] ResourceIndex catalog_index(const std::string& name);

}  // namespace gridfed::cluster
