#include "directory/quote.hpp"

// Quote is a plain aggregate; TU anchors the module's object file.
namespace gridfed::directory {}
