#pragma once
// Directory message-cost model.  The paper assumes the shared federation
// directory is realized over a structured P2P overlay (Pastry/MAAN-like)
// where a query resolves in O(log n) routing hops, and its experiments
// count only the *scheduling* messages on top of that.  gridfed meters
// directory traffic under the same O(log n) model in a separate ledger so
// the coordination ablation (X2) can reason about total network cost.

#include <cstddef>
#include <cstdint>

namespace gridfed::directory {

/// Messages consumed by one directory query against an n-GFA federation:
/// ceil(log2 n), minimum 1 (the paper's O(log n) assumption, [15]).
[[nodiscard]] std::uint64_t query_message_cost(std::size_t n) noexcept;

/// Messages consumed by publishing/refreshing a quote: same routing cost
/// as a query (one overlay insertion).
[[nodiscard]] std::uint64_t publish_message_cost(std::size_t n) noexcept;

/// Running totals of overlay traffic.
struct DirectoryTraffic {
  std::uint64_t queries = 0;
  std::uint64_t publishes = 0;
  std::uint64_t query_messages = 0;
  std::uint64_t publish_messages = 0;

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return query_messages + publish_messages;
  }
};

}  // namespace gridfed::directory
