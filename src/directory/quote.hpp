#pragma once
// Resource quotes.  A quote is the advertisement a GFA publishes into the
// shared federation directory (paper §2.0.3): the resource description R_i
// together with the owner-configured access price c_i.  The optional load
// hint implements the paper's future-work coordination extension (§2.3):
// agents may refresh their advertised utilization so other agents can skip
// saturated sites without a negotiation round-trip.

#include <cstdint>

#include "cluster/job.hpp"
#include "cluster/resource.hpp"
#include "sim/types.hpp"

namespace gridfed::directory {

/// A GFA's advertisement in the federation directory.
struct Quote {
  cluster::ResourceIndex resource = 0;
  double price = 0.0;            ///< c_i, Grid Dollars per unit time
  double mips = 0.0;             ///< mu_i
  std::uint32_t processors = 0;  ///< p_i
  double bandwidth = 0.0;        ///< gamma_i

  /// Coordination extension: advertised instantaneous load in [0, 1]
  /// (fraction of processors committed).  Negative = no hint published.
  double load_hint = -1.0;
  /// When the hint was last refreshed (staleness diagnostics).
  sim::SimTime hint_time = 0.0;

  [[nodiscard]] bool has_load_hint() const noexcept { return load_hint >= 0.0; }

  /// Builds the static part of a quote from a resource spec.
  [[nodiscard]] static Quote from_spec(cluster::ResourceIndex index,
                                       const cluster::ResourceSpec& spec) {
    return Quote{index, spec.quote, spec.mips, spec.processors,
                 spec.bandwidth, -1.0, 0.0};
  }
};

/// Ranking criteria the directory can answer "r-th best" queries for.
enum class OrderBy : std::uint8_t {
  kCheapest,  ///< ascending price (OFC walks this order)
  kFastest,   ///< descending MIPS (OFT walks this order)
};

/// The ranking a QoS preference walks (paper §2.2): OFC users chase the
/// cheapest order, OFT users the fastest.  Scheduling policies select
/// their candidate ranking through this mapping.
[[nodiscard]] constexpr OrderBy order_for(cluster::Optimization opt) noexcept {
  return opt == cluster::Optimization::kTime ? OrderBy::kFastest
                                             : OrderBy::kCheapest;
}

}  // namespace gridfed::directory
