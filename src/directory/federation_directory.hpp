#pragma once
// The shared federation directory (paper Fig. 1).  A decentralized
// database of quotes supporting the four primitives subscribe / quote /
// unsubscribe / query; gridfed simulates it as a consistent in-process
// index while metering message costs under the O(log n) overlay model
// (see query_cost.hpp).  "Query" answers the superscheduler's central
// question: *which is the r-th cheapest (or fastest) cluster?*
//
// Rankings are maintained incrementally: a hash index replaces the old
// linear resource scan, and every mutation repositions exactly one entry
// in each ordered ranking (binary search + memmove) instead of
// invalidating and re-sorting the whole directory.  Load-hint refreshes —
// the highest-frequency publish under the §2.3 coordination extension —
// no longer touch the rankings at all.

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "directory/query_cost.hpp"
#include "directory/quote.hpp"
#include "sim/types.hpp"

namespace gridfed::directory {

/// Filter for ranked bulk queries (query_top_k).  Default-constructed =
/// no filtering.
struct QueryFilter {
  /// Quotes advertising fewer processors are skipped.
  std::uint32_t min_processors = 0;
  /// This resource is skipped (the querier itself, typically).
  cluster::ResourceIndex exclude = cluster::kNoResource;
  /// Quotes whose advertised load exceeds this are skipped (quotes
  /// without a hint are never skipped) — the §2.3 coordination filter.
  double max_load_hint = std::numeric_limits<double>::infinity();
};

/// Decentralized quote index with ranked queries.
///
/// Rankings are total orders: price ties (and MIPS ties between replicas)
/// break by resource index, so walks are deterministic.
class FederationDirectory {
 public:
  FederationDirectory() = default;
  // The atomic counters delete the implicit moves; restore them (tests
  // build directories in factory helpers).  Single-threaded operation —
  // nobody meters a directory mid-move.
  FederationDirectory(FederationDirectory&& other) noexcept {
    *this = std::move(other);
  }
  FederationDirectory& operator=(FederationDirectory&& other) noexcept {
    quotes_ = std::move(other.quotes_);
    index_ = std::move(other.index_);
    by_price_ = std::move(other.by_price_);
    by_speed_ = std::move(other.by_speed_);
    queries_.store(other.queries_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    publishes_.store(other.publishes_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    query_messages_.store(
        other.query_messages_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    publish_messages_.store(
        other.publish_messages_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }

  /// subscribe — a GFA joins the federation and publishes its quote.
  /// Re-subscribing an existing resource refreshes its quote.
  void subscribe(const Quote& quote);

  /// unsubscribe — removes the resource's advertisement.
  void unsubscribe(cluster::ResourceIndex resource);

  /// quote — refreshes the advertised price (owner repricing; used by the
  /// dynamic-pricing extension).
  void update_price(cluster::ResourceIndex resource, double price);

  /// Coordination extension (paper §2.3): refreshes the advertised load.
  void update_load_hint(cluster::ResourceIndex resource, double load,
                        sim::SimTime now);

  /// query — the r-th best quote under `order` (r is 1-based, the paper's
  /// "r-th cheapest / r-th fastest").  Meters one O(log n) query.
  /// Returns nullopt when r exceeds the number of subscribed resources.
  [[nodiscard]] std::optional<Quote> query(OrderBy order, std::uint32_t r);

  /// Like query(), but skips resources whose advertised load exceeds
  /// `load_threshold` (resources without a hint are never skipped).  The
  /// coordination extension uses this to avoid negotiating with saturated
  /// sites.  Rank r counts *after* filtering.
  [[nodiscard]] std::optional<Quote> query_filtered(OrderBy order,
                                                    std::uint32_t r,
                                                    double load_threshold);

  /// Bulk ranked query: fills `out` (cleared first) with the best quotes
  /// under `order` that pass `filter`, best first, stopping after `k`
  /// results (k == 0 means no cap).  Meters ONE O(log n) query — the
  /// results ride back on the same overlay route — which is what makes a
  /// ranked walk over the whole candidate set (auction solicitation)
  /// affordable.  Reusing one `out` buffer across calls avoids
  /// allocation.
  void query_top_k(OrderBy order, std::uint32_t k, const QueryFilter& filter,
                   std::vector<Quote>& out);

  /// Current quote of one resource (no message cost: local cache peek).
  [[nodiscard]] std::optional<Quote> peek(
      cluster::ResourceIndex resource) const;

  [[nodiscard]] std::size_t size() const noexcept { return quotes_.size(); }

  /// Overlay traffic metered so far.  Returned as a snapshot by value:
  /// the counters are atomics internally because ranked queries are
  /// metered concurrently from the sharded kernel's worker lanes
  /// (mutating publishes stay on the coordinator lane).
  [[nodiscard]] DirectoryTraffic traffic() const noexcept {
    DirectoryTraffic t;
    t.queries = queries_.load(std::memory_order_relaxed);
    t.publishes = publishes_.load(std::memory_order_relaxed);
    t.query_messages = query_messages_.load(std::memory_order_relaxed);
    t.publish_messages = publish_messages_.load(std::memory_order_relaxed);
    return t;
  }
  void reset_traffic() noexcept {
    queries_.store(0, std::memory_order_relaxed);
    publishes_.store(0, std::memory_order_relaxed);
    query_messages_.store(0, std::memory_order_relaxed);
    publish_messages_.store(0, std::memory_order_relaxed);
  }

  /// Test hook: true when the incrementally maintained rankings equal a
  /// from-scratch re-sort of the quote store.  O(n log n); not metered.
  [[nodiscard]] bool rankings_match_rebuild() const;

 private:
  /// One entry of an ordered ranking.  The sort key is denormalized into
  /// the entry so ordered maintenance never chases the quote store.
  struct RankEntry {
    double key = 0.0;  ///< price (ascending) or -mips (ascending)
    cluster::ResourceIndex resource = cluster::kNoResource;

    [[nodiscard]] friend bool operator<(const RankEntry& a,
                                        const RankEntry& b) {
      if (a.key != b.key) return a.key < b.key;
      return a.resource < b.resource;
    }
    [[nodiscard]] friend bool operator==(const RankEntry& a,
                                         const RankEntry& b) {
      return a.key == b.key && a.resource == b.resource;
    }
  };

  [[nodiscard]] static RankEntry price_entry(const Quote& q) noexcept {
    return {q.price, q.resource};
  }
  // MIPS rank descending; negating the key reuses the ascending order.
  [[nodiscard]] static RankEntry speed_entry(const Quote& q) noexcept {
    return {-q.mips, q.resource};
  }

  /// Inserts/removes one entry keeping the ranking sorted.  O(log n)
  /// search + O(n) element shift — n is the federation size, far cheaper
  /// than the full re-sort this replaces, and stays cache-friendly.
  static void rank_insert(std::vector<RankEntry>& ranking, RankEntry entry);
  static void rank_erase(std::vector<RankEntry>& ranking, RankEntry entry);

  void insert_rankings(const Quote& q);
  void erase_rankings(const Quote& q);

  [[nodiscard]] const Quote& quote_at(cluster::ResourceIndex resource) const;
  void meter_query();

  std::vector<Quote> quotes_;  // unordered storage (swap-and-pop erase)
  std::unordered_map<cluster::ResourceIndex, std::size_t> index_;
  std::vector<RankEntry> by_price_;  // ascending price
  std::vector<RankEntry> by_speed_;  // descending mips
  // Relaxed atomics: totals only — no ordering is communicated through
  // them, and every column is a plain sum, so the end-of-run snapshot
  // is thread-count-invariant.
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> query_messages_{0};
  std::atomic<std::uint64_t> publish_messages_{0};
};

}  // namespace gridfed::directory
