#pragma once
// The shared federation directory (paper Fig. 1).  A decentralized
// database of quotes supporting the four primitives subscribe / quote /
// unsubscribe / query; gridfed simulates it as a consistent in-process
// index while metering message costs under the O(log n) overlay model
// (see query_cost.hpp).  "Query" answers the superscheduler's central
// question: *which is the r-th cheapest (or fastest) cluster?*

#include <cstdint>
#include <optional>
#include <vector>

#include "directory/query_cost.hpp"
#include "directory/quote.hpp"
#include "sim/types.hpp"

namespace gridfed::directory {

/// Decentralized quote index with ranked queries.
///
/// Rankings are total orders: price ties (and MIPS ties between replicas)
/// break by resource index, so walks are deterministic.
class FederationDirectory {
 public:
  /// subscribe — a GFA joins the federation and publishes its quote.
  /// Re-subscribing an existing resource refreshes its quote.
  void subscribe(const Quote& quote);

  /// unsubscribe — removes the resource's advertisement.
  void unsubscribe(cluster::ResourceIndex resource);

  /// quote — refreshes the advertised price (owner repricing; used by the
  /// dynamic-pricing extension).
  void update_price(cluster::ResourceIndex resource, double price);

  /// Coordination extension (paper §2.3): refreshes the advertised load.
  void update_load_hint(cluster::ResourceIndex resource, double load,
                        sim::SimTime now);

  /// query — the r-th best quote under `order` (r is 1-based, the paper's
  /// "r-th cheapest / r-th fastest").  Meters one O(log n) query.
  /// Returns nullopt when r exceeds the number of subscribed resources.
  [[nodiscard]] std::optional<Quote> query(OrderBy order, std::uint32_t r);

  /// Like query(), but skips resources whose advertised load exceeds
  /// `load_threshold` (resources without a hint are never skipped).  The
  /// coordination extension uses this to avoid negotiating with saturated
  /// sites.  Rank r counts *after* filtering.
  [[nodiscard]] std::optional<Quote> query_filtered(OrderBy order,
                                                    std::uint32_t r,
                                                    double load_threshold);

  /// Current quote of one resource (no message cost: local cache peek).
  [[nodiscard]] std::optional<Quote> peek(
      cluster::ResourceIndex resource) const;

  [[nodiscard]] std::size_t size() const noexcept { return quotes_.size(); }

  /// Overlay traffic metered so far.
  [[nodiscard]] const DirectoryTraffic& traffic() const noexcept {
    return traffic_;
  }
  void reset_traffic() noexcept { traffic_ = {}; }

 private:
  void invalidate() noexcept { rankings_valid_ = false; }
  void rebuild_rankings() const;

  std::vector<Quote> quotes_;  // unordered storage
  mutable std::vector<std::size_t> by_price_;  // indices into quotes_
  mutable std::vector<std::size_t> by_speed_;
  mutable bool rankings_valid_ = false;
  DirectoryTraffic traffic_;
};

}  // namespace gridfed::directory
