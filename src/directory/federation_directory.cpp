#include "directory/federation_directory.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace gridfed::directory {

void FederationDirectory::rank_insert(std::vector<RankEntry>& ranking,
                                      RankEntry entry) {
  ranking.insert(std::lower_bound(ranking.begin(), ranking.end(), entry),
                 entry);
}

void FederationDirectory::rank_erase(std::vector<RankEntry>& ranking,
                                     RankEntry entry) {
  const auto it =
      std::lower_bound(ranking.begin(), ranking.end(), entry);
  GF_EXPECTS(it != ranking.end() && *it == entry);
  ranking.erase(it);
}

void FederationDirectory::insert_rankings(const Quote& q) {
  rank_insert(by_price_, price_entry(q));
  rank_insert(by_speed_, speed_entry(q));
}

void FederationDirectory::erase_rankings(const Quote& q) {
  rank_erase(by_price_, price_entry(q));
  rank_erase(by_speed_, speed_entry(q));
}

const Quote& FederationDirectory::quote_at(
    cluster::ResourceIndex resource) const {
  const auto it = index_.find(resource);
  GF_EXPECTS(it != index_.end());
  return quotes_[it->second];
}

void FederationDirectory::subscribe(const Quote& quote) {
  const auto it = index_.find(quote.resource);
  if (it != index_.end()) {
    Quote& existing = quotes_[it->second];
    erase_rankings(existing);
    existing = quote;
    insert_rankings(existing);
  } else {
    index_.emplace(quote.resource, quotes_.size());
    quotes_.push_back(quote);
    insert_rankings(quote);
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
  publish_messages_.fetch_add(publish_message_cost(quotes_.size()),
                              std::memory_order_relaxed);
}

void FederationDirectory::unsubscribe(cluster::ResourceIndex resource) {
  const auto it = index_.find(resource);
  GF_EXPECTS(it != index_.end());
  const std::size_t pos = it->second;
  erase_rankings(quotes_[pos]);
  index_.erase(it);
  // Swap-and-pop keeps the quote store dense; rankings reference quotes
  // by resource, so only the moved quote's index entry needs fixing.
  if (pos + 1 != quotes_.size()) {
    quotes_[pos] = quotes_.back();
    index_[quotes_[pos].resource] = pos;
  }
  quotes_.pop_back();
  publishes_.fetch_add(1, std::memory_order_relaxed);
  publish_messages_.fetch_add(publish_message_cost(quotes_.size() + 1),
                              std::memory_order_relaxed);
}

void FederationDirectory::update_price(cluster::ResourceIndex resource,
                                       double price) {
  const auto it = index_.find(resource);
  GF_EXPECTS(it != index_.end());
  Quote& q = quotes_[it->second];
  rank_erase(by_price_, price_entry(q));
  q.price = price;
  rank_insert(by_price_, price_entry(q));
  // The speed ranking is untouched: repricing does not change MIPS.
  publishes_.fetch_add(1, std::memory_order_relaxed);
  publish_messages_.fetch_add(publish_message_cost(quotes_.size()),
                              std::memory_order_relaxed);
}

void FederationDirectory::update_load_hint(cluster::ResourceIndex resource,
                                           double load, sim::SimTime now) {
  const auto it = index_.find(resource);
  GF_EXPECTS(it != index_.end());
  quotes_[it->second].load_hint = load;
  quotes_[it->second].hint_time = now;
  publishes_.fetch_add(1, std::memory_order_relaxed);
  publish_messages_.fetch_add(publish_message_cost(quotes_.size()),
                              std::memory_order_relaxed);
  // Load refreshes do not change price/speed rankings.
}

void FederationDirectory::meter_query() {
  queries_.fetch_add(1, std::memory_order_relaxed);
  query_messages_.fetch_add(
      query_message_cost(std::max<std::size_t>(quotes_.size(), 1)),
      std::memory_order_relaxed);
}

std::optional<Quote> FederationDirectory::query(OrderBy order,
                                                std::uint32_t r) {
  GF_EXPECTS(r >= 1);
  meter_query();
  if (r > quotes_.size()) return std::nullopt;
  const auto& ranking = order == OrderBy::kCheapest ? by_price_ : by_speed_;
  return quote_at(ranking[r - 1].resource);
}

std::optional<Quote> FederationDirectory::query_filtered(
    OrderBy order, std::uint32_t r, double load_threshold) {
  GF_EXPECTS(r >= 1);
  meter_query();
  // Filtering only ever shrinks the candidate set, so a rank beyond the
  // subscription count can be answered without walking the ranking —
  // mirroring query()'s guard (and its traffic accounting, above).
  if (r > quotes_.size()) return std::nullopt;
  const auto& ranking = order == OrderBy::kCheapest ? by_price_ : by_speed_;
  std::uint32_t seen = 0;
  for (const RankEntry& entry : ranking) {
    const Quote& q = quote_at(entry.resource);
    if (q.has_load_hint() && q.load_hint > load_threshold) continue;
    if (++seen == r) return q;
  }
  return std::nullopt;
}

void FederationDirectory::query_top_k(OrderBy order, std::uint32_t k,
                                      const QueryFilter& filter,
                                      std::vector<Quote>& out) {
  out.clear();
  meter_query();
  const auto& ranking = order == OrderBy::kCheapest ? by_price_ : by_speed_;
  for (const RankEntry& entry : ranking) {
    if (entry.resource == filter.exclude) continue;
    const Quote& q = quote_at(entry.resource);
    if (q.processors < filter.min_processors) continue;
    if (q.has_load_hint() && q.load_hint > filter.max_load_hint) continue;
    out.push_back(q);
    if (k != 0 && out.size() >= k) break;
  }
}

std::optional<Quote> FederationDirectory::peek(
    cluster::ResourceIndex resource) const {
  const auto it = index_.find(resource);
  if (it == index_.end()) return std::nullopt;
  return quotes_[it->second];
}

bool FederationDirectory::rankings_match_rebuild() const {
  std::vector<RankEntry> price;
  std::vector<RankEntry> speed;
  price.reserve(quotes_.size());
  speed.reserve(quotes_.size());
  for (const Quote& q : quotes_) {
    price.push_back(price_entry(q));
    speed.push_back(speed_entry(q));
  }
  std::sort(price.begin(), price.end());
  std::sort(speed.begin(), speed.end());
  return price == by_price_ && speed == by_speed_;
}

}  // namespace gridfed::directory
