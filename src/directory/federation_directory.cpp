#include "directory/federation_directory.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace gridfed::directory {

namespace {
// Locates a quote by resource index; returns quotes.size() when absent.
std::size_t find_quote(const std::vector<Quote>& quotes,
                       cluster::ResourceIndex resource) {
  for (std::size_t i = 0; i < quotes.size(); ++i) {
    if (quotes[i].resource == resource) return i;
  }
  return quotes.size();
}
}  // namespace

void FederationDirectory::subscribe(const Quote& quote) {
  const std::size_t pos = find_quote(quotes_, quote.resource);
  if (pos < quotes_.size()) {
    quotes_[pos] = quote;
  } else {
    quotes_.push_back(quote);
  }
  traffic_.publishes += 1;
  traffic_.publish_messages += publish_message_cost(quotes_.size());
  invalidate();
}

void FederationDirectory::unsubscribe(cluster::ResourceIndex resource) {
  const std::size_t pos = find_quote(quotes_, resource);
  GF_EXPECTS(pos < quotes_.size());
  quotes_.erase(quotes_.begin() + static_cast<std::ptrdiff_t>(pos));
  traffic_.publishes += 1;
  traffic_.publish_messages += publish_message_cost(quotes_.size() + 1);
  invalidate();
}

void FederationDirectory::update_price(cluster::ResourceIndex resource,
                                       double price) {
  const std::size_t pos = find_quote(quotes_, resource);
  GF_EXPECTS(pos < quotes_.size());
  quotes_[pos].price = price;
  traffic_.publishes += 1;
  traffic_.publish_messages += publish_message_cost(quotes_.size());
  invalidate();
}

void FederationDirectory::update_load_hint(cluster::ResourceIndex resource,
                                           double load, sim::SimTime now) {
  const std::size_t pos = find_quote(quotes_, resource);
  GF_EXPECTS(pos < quotes_.size());
  quotes_[pos].load_hint = load;
  quotes_[pos].hint_time = now;
  traffic_.publishes += 1;
  traffic_.publish_messages += publish_message_cost(quotes_.size());
  // Load refreshes do not change price/speed rankings.
}

void FederationDirectory::rebuild_rankings() const {
  by_price_.resize(quotes_.size());
  by_speed_.resize(quotes_.size());
  for (std::size_t i = 0; i < quotes_.size(); ++i) {
    by_price_[i] = i;
    by_speed_[i] = i;
  }
  std::sort(by_price_.begin(), by_price_.end(),
            [&](std::size_t a, std::size_t b) {
              if (quotes_[a].price != quotes_[b].price)
                return quotes_[a].price < quotes_[b].price;
              return quotes_[a].resource < quotes_[b].resource;
            });
  std::sort(by_speed_.begin(), by_speed_.end(),
            [&](std::size_t a, std::size_t b) {
              if (quotes_[a].mips != quotes_[b].mips)
                return quotes_[a].mips > quotes_[b].mips;
              return quotes_[a].resource < quotes_[b].resource;
            });
  rankings_valid_ = true;
}

std::optional<Quote> FederationDirectory::query(OrderBy order,
                                                std::uint32_t r) {
  GF_EXPECTS(r >= 1);
  traffic_.queries += 1;
  traffic_.query_messages += query_message_cost(std::max<std::size_t>(
      quotes_.size(), 1));
  if (r > quotes_.size()) return std::nullopt;
  if (!rankings_valid_) rebuild_rankings();
  const auto& ranking =
      order == OrderBy::kCheapest ? by_price_ : by_speed_;
  return quotes_[ranking[r - 1]];
}

std::optional<Quote> FederationDirectory::query_filtered(
    OrderBy order, std::uint32_t r, double load_threshold) {
  GF_EXPECTS(r >= 1);
  traffic_.queries += 1;
  traffic_.query_messages += query_message_cost(std::max<std::size_t>(
      quotes_.size(), 1));
  if (!rankings_valid_) rebuild_rankings();
  const auto& ranking =
      order == OrderBy::kCheapest ? by_price_ : by_speed_;
  std::uint32_t seen = 0;
  for (const std::size_t idx : ranking) {
    const Quote& q = quotes_[idx];
    if (q.has_load_hint() && q.load_hint > load_threshold) continue;
    if (++seen == r) return q;
  }
  return std::nullopt;
}

std::optional<Quote> FederationDirectory::peek(
    cluster::ResourceIndex resource) const {
  const std::size_t pos = find_quote(quotes_, resource);
  if (pos == quotes_.size()) return std::nullopt;
  return quotes_[pos];
}

}  // namespace gridfed::directory
