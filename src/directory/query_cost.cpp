#include "directory/query_cost.hpp"

#include <bit>

namespace gridfed::directory {

std::uint64_t query_message_cost(std::size_t n) noexcept {
  if (n <= 2) return 1;
  return std::bit_width(n - 1);  // ceil(log2 n)
}

std::uint64_t publish_message_cost(std::size_t n) noexcept {
  return query_message_cost(n);
}

}  // namespace gridfed::directory
