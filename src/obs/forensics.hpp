#pragma once
// Auction decision forensics: one record per cleared book capturing
// exactly what the market saw — the solicited set, every bid with its
// score under the active ScoringRule, the winner, the price paid, and
// the runner-up's losing margin — plus one record per coalition surplus
// split.  Tests query the ledger in-process; benches dump it as JSON so
// a mispriced clearing can be re-examined offline without re-running.

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "cluster/resource.hpp"
#include "market/bid.hpp"
#include "sim/types.hpp"

namespace gridfed::obs {

/// A bid as scored at clearing time.  `bidder` is the participant value
/// (a cluster index, or ≥ kCoalitionBase for a coalition).
struct ScoredBid {
  std::uint32_t bidder = 0;
  double ask = 0.0;
  double completion_estimate = 0.0;
  bool feasible = false;
  double score = 0.0;
};

/// One cleared (or held) auction book.
struct ClearingDecision {
  sim::SimTime t = 0.0;
  std::uint64_t job = 0;
  market::ScoringRule scoring = market::ScoringRule::kPrice;
  market::ClearingRule clearing = market::ClearingRule::kFirstPrice;
  std::vector<std::uint32_t> solicited;  ///< participant values, in order
  std::vector<ScoredBid> bids;
  bool awarded = false;
  std::uint32_t winner = 0;  ///< participant value; meaningful iff awarded
  double winner_ask = 0.0;
  double payment = 0.0;
  /// score(runner-up) − score(winner); ≥ 0 when a runner-up exists,
  /// how close the market came to choosing differently.
  double runner_up_margin = 0.0;
  bool has_runner_up = false;
};

/// One coalition surplus split, recorded when a coalition-placed job
/// completes and the payment is settled across members.
struct SplitDecision {
  sim::SimTime t = 0.0;
  std::uint64_t job = 0;
  std::uint32_t coalition = 0;   ///< ParticipantId::value of the group
  cluster::ResourceIndex executor = 0;
  double executor_ask = 0.0;
  double payment = 0.0;
  /// (member ResourceIndex, share of the payment) per member.
  std::vector<std::pair<cluster::ResourceIndex, double>> shares;
};

class ForensicsLedger {
 public:
  ForensicsLedger() {
    decisions_.reserve(1u << 12);
    splits_.reserve(1u << 8);
  }

  void record(ClearingDecision decision) {
    decisions_.push_back(std::move(decision));
  }
  void record_split(SplitDecision split) {
    splits_.push_back(std::move(split));
  }

  [[nodiscard]] const std::vector<ClearingDecision>& decisions()
      const noexcept {
    return decisions_;
  }
  [[nodiscard]] const std::vector<SplitDecision>& splits() const noexcept {
    return splits_;
  }
  /// All clearing records for one job, in clearing order (re-auctions
  /// after a decline show up as later entries).
  [[nodiscard]] std::vector<const ClearingDecision*> for_job(
      std::uint64_t job) const;

  /// Folds another ledger in and restores global time order (stable
  /// sort, so a job's re-auction sequence keeps its within-shard order
  /// and for_job() still reads in clearing order).  Used to collapse the
  /// sharded kernel's per-lane ledgers at run end.
  void merge_sorted(const ForensicsLedger& other);

  void write_json(std::ostream& out) const;

 private:
  std::vector<ClearingDecision> decisions_;
  std::vector<SplitDecision> splits_;
};

}  // namespace gridfed::obs
