#pragma once
// The observability umbrella: one Observer owns the Tracer, the
// MetricsRegistry, and the ForensicsLedger, and every instrumented layer
// (kernel probe, Gfa, transport, policy, coalition) talks to it through
// a single nullable pointer exposed on its context interface.
//
// Two gates stack:
//
//  * GRIDFED_TRACE — compile-time.  Default ON; build with
//    -DGRIDFED_TRACE=0 (CMake: -DGRIDFED_TRACE=OFF) and every GF_OBS
//    statement vanishes from the binary.
//  * ObsConfig — run-time.  The Federation only constructs an Observer
//    when ObsConfig::any(); with the default (all-off) config the
//    observer pointer is null everywhere and GF_OBS is one predictable
//    branch.  The disabled path is bit-identical to the seed: no extra
//    events, no extra RNG draws, no reordering — pinned by the golden
//    digests in tests/test_observability.cpp.
//
// Instrumentation never *reads back* from the observer to make
// decisions: observation is strictly one-way, which is what makes the
// enabled path outcome-identical too.

#ifndef GRIDFED_TRACE
#define GRIDFED_TRACE 1
#endif

#if GRIDFED_TRACE

#include <memory>
#include <string>
#include <vector>

#include "obs/forensics.hpp"
#include "obs/metrics.hpp"
#include "obs/obs_config.hpp"
#include "obs/tracer.hpp"

namespace gridfed::obs {

class Observer {
 public:
  /// `track_names` labels the trace tracks (one per cluster; the Tracer
  /// appends its own transport track); `participants` sizes the
  /// per-participant metric arrays.
  Observer(const ObsConfig& cfg, std::vector<std::string> track_names,
           std::size_t participants);

  [[nodiscard]] Tracer* trace() noexcept { return tracer_.get(); }
  [[nodiscard]] MetricsRegistry* metrics() noexcept {
    return metrics_.get();
  }
  [[nodiscard]] ForensicsLedger* forensics() noexcept {
    return forensics_.get();
  }
  [[nodiscard]] const Tracer* trace() const noexcept {
    return tracer_.get();
  }
  [[nodiscard]] const MetricsRegistry* metrics() const noexcept {
    return metrics_.get();
  }
  [[nodiscard]] const ForensicsLedger* forensics() const noexcept {
    return forensics_.get();
  }

  [[nodiscard]] std::uint32_t transport_track() const noexcept {
    return tracer_ ? tracer_->transport_track() : 0;
  }

  // ---- guarded conveniences: no-ops when the facility is off ----------------
  void begin(sim::SimTime t, SpanKind kind, std::uint32_t track,
             std::uint64_t id, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
             double v = 0.0) {
    if (tracer_) tracer_->begin(t, kind, track, id, a0, a1, v);
  }
  void end(sim::SimTime t, SpanKind kind, std::uint32_t track,
           std::uint64_t id, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
           double v = 0.0) {
    if (tracer_) tracer_->end(t, kind, track, id, a0, a1, v);
  }
  void instant(sim::SimTime t, SpanKind kind, std::uint32_t track,
               std::uint64_t id, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
               double v = 0.0) {
    if (tracer_) tracer_->instant(t, kind, track, id, a0, a1, v);
  }
  void count(Counter c, std::uint64_t n = 1) {
    if (metrics_) metrics_->count(c, n);
  }
  void set_gauge(Gauge g, std::uint64_t v) {
    if (metrics_) metrics_->set_gauge(g, v);
  }
  void observe(Histo h, double value) {
    if (metrics_) metrics_->observe(h, value);
  }
  void count_decline(std::size_t participant) {
    if (metrics_) metrics_->count_decline(participant);
  }
  void count_miss(std::size_t participant) {
    if (metrics_) metrics_->count_miss(participant);
  }

  [[nodiscard]] bool forensics_on() const noexcept {
    return forensics_ != nullptr;
  }

  /// Folds a per-lane observer in: trace buffers merge in time order,
  /// metric columns add, forensics records interleave by decision time.
  /// The sharded kernel gives every worker lane its own Observer (so
  /// the hot path stays free of locks and false sharing) and collapses
  /// them into the run's main observer here, after the lanes quiesce.
  /// Both observers must be configured identically.
  void merge_from(const Observer& lane);

 private:
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<ForensicsLedger> forensics_;
};

}  // namespace gridfed::obs

/// Call-site shorthand: null-check the observer handle, then invoke a
/// member.  `GF_OBS(ctx_.observer(), begin(now, SpanKind::kJob, ...))`.
/// Compiles to nothing when GRIDFED_TRACE is 0.
#define GF_OBS(obs_expr, call)                                     \
  do {                                                             \
    if (::gridfed::obs::Observer* gf_obs_ = (obs_expr)) {          \
      gf_obs_->call;                                               \
    }                                                              \
  } while (false)

#else  // !GRIDFED_TRACE

namespace gridfed::obs {
class Observer;  // never defined: instrumentation is compiled out
}  // namespace gridfed::obs

#define GF_OBS(obs_expr, call) \
  do {                         \
  } while (false)

#endif  // GRIDFED_TRACE
