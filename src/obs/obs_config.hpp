#pragma once
// Runtime observability toggles.  The compile-time half of the gate is
// GRIDFED_TRACE (obs/observer.hpp): with it compiled out every
// instrumentation statement disappears from the binary; with it compiled
// in (the default) this struct decides at run time which facilities are
// live.  All three default OFF, so a default-constructed FederationConfig
// runs the exact event stream the golden digests pin — enabling any
// facility only ever *reads* simulation state, never perturbs it.

#include "sim/types.hpp"

namespace gridfed::obs {

struct ObsConfig {
  /// Event tracer: sim-time spans over the job lifecycle and the
  /// transport epochs, exported as Chrome trace-event JSON
  /// (ui.perfetto.dev loads it directly).
  bool trace = false;

  /// Metrics registry: counters/gauges/histograms sampled every
  /// `metrics_epoch` sim-seconds into a time-series.
  bool metrics = false;

  /// Auction forensics: one decision record per cleared book (scored
  /// bids, winner, price, losing margin) plus the coalition splits.
  bool forensics = false;

  /// Sampling period of the metrics time-series (sim seconds).  A final
  /// sample is always taken when the run drains, so the last sample's
  /// ledger columns equal the FederationResult totals exactly.
  sim::SimTime metrics_epoch = 3600.0;

  [[nodiscard]] bool any() const noexcept {
    return trace || metrics || forensics;
  }
};

}  // namespace gridfed::obs
