#pragma once
// POD trace vocabulary shared by the Tracer and its exporters.  Records
// are fixed-size and trivially copyable so the hot path is a bounds
// check plus a memcpy into a pre-reserved vector — no strings, no maps,
// no allocation once the buffer has reached its high-water mark.

#include <cstdint>

#include "sim/types.hpp"

namespace gridfed::obs {

/// What a span or instant describes.  The kind names the Perfetto
/// category, so related spans group into one expandable category lane.
enum class SpanKind : std::uint8_t {
  kJob = 0,         ///< submit → finalize/reject (async span, id = job id)
  kEnquiry,         ///< one remote negotiation attempt (id = job id)
  kHold,            ///< provider-side admission hold (id = hold token)
  kPlacement,       ///< award accepted → job completion (id = job id)
  kAuction,         ///< book opened → cleared (id = job id)
  kSolicitFlush,    ///< instant: a solicitation batch left the queue
  kBidAnswered,     ///< instant: a provider priced a call-for-bids
  kFanoutEpoch,     ///< tree multicast epoch: first enqueue → flush
  kRelay,           ///< instant: an interior tree node forwarded a batch
  kConvergecast,    ///< instant: bid aggregation flushed up the tree
  kCoalitionFormed, ///< instant: a coalition was registered
  kCoalitionPlace,  ///< instant: an award was routed into a coalition
  kChurn,           ///< instant: a scripted join/leave/crash applied
  kSuspicion,       ///< instant: a view's suspect→dead transition
  kTreeRepair,      ///< instant: a dead relay excised, losses replayed
  kCoalitionReform, ///< instant: a coalition re-formed after churn
  kBidPrune,        ///< instant: one convergecast flush's score-and-prune
};
inline constexpr std::uint8_t kSpanKindCount =
    static_cast<std::uint8_t>(SpanKind::kBidPrune) + 1;

[[nodiscard]] constexpr const char* to_string(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kJob: return "job";
    case SpanKind::kEnquiry: return "enquiry";
    case SpanKind::kHold: return "hold";
    case SpanKind::kPlacement: return "placement";
    case SpanKind::kAuction: return "auction";
    case SpanKind::kSolicitFlush: return "solicit_flush";
    case SpanKind::kBidAnswered: return "bid";
    case SpanKind::kFanoutEpoch: return "fanout_epoch";
    case SpanKind::kRelay: return "relay";
    case SpanKind::kConvergecast: return "convergecast";
    case SpanKind::kCoalitionFormed: return "coalition_formed";
    case SpanKind::kCoalitionPlace: return "coalition_place";
    case SpanKind::kChurn: return "churn";
    case SpanKind::kSuspicion: return "suspicion";
    case SpanKind::kTreeRepair: return "tree_repair";
    case SpanKind::kCoalitionReform: return "coalition_reform";
    case SpanKind::kBidPrune: return "bid_prune";
  }
  return "?";
}

enum class TracePhase : std::uint8_t {
  kBegin = 0,  ///< async span open  ("b" in the Chrome trace format)
  kEnd,        ///< async span close ("e")
  kInstant,    ///< point event      ("i")
};

/// One trace record.  `track` indexes the Tracer's track table (one per
/// cluster plus one for the transport overlay); `id` pairs begin/end
/// records of the same async span; a0/a1/v are kind-specific arguments
/// carried verbatim into the exported JSON.
struct TraceRecord {
  sim::SimTime t = 0.0;
  TracePhase phase = TracePhase::kInstant;
  SpanKind kind = SpanKind::kJob;
  std::uint32_t track = 0;
  std::uint64_t id = 0;
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  double v = 0.0;
};
static_assert(sizeof(TraceRecord) <= 48, "keep trace records lean");

}  // namespace gridfed::obs
