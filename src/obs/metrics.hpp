#pragma once
// Metrics registry: enum-indexed counters and gauges, fixed-bucket
// power-of-two histograms, and per-participant decline/miss tallies —
// everything backed by flat arrays sized at construction, so the hot
// path (count / set_gauge / observe) is an index and an add with no
// allocation and no hashing.
//
// A sim-time epoch sampler snapshots the registry into a time-series.
// The message/byte columns are not double-instrumented: each sample
// delegates to a Federation-supplied LedgerSampler that copies the
// authoritative MessageLedger totals, so the final sample (taken after
// the run drains) equals FederationResult's per-type totals *exactly* —
// the consistency the observability tests pin.

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "core/message.hpp"
#include "sim/types.hpp"

namespace gridfed::obs {

enum class Counter : std::uint8_t {
  kEventsDispatched = 0,  ///< kernel dispatch probe
  kJobsSubmitted,
  kJobsAccepted,
  kJobsRejected,
  kEnquiriesStarted,      ///< remote negotiations begun
  kEnquiriesDeclined,     ///< replies that refused the job
  kHoldsPlaced,           ///< provider-side admission holds
  kHoldsCancelled,        ///< holds that timed out unused
  kHoldsPhantom,          ///< holds cleared by a phantom completion
  kAuctionsOpened,
  kSolicitFlushes,
  kBidsAnswered,          ///< provider priced a call-for-bids
  kAwardsCleared,         ///< books cleared with a winner
  kCoalitionsFormed,
  kCoalitionPlacements,
  kCoalitionSplits,
  kChurnEvents,            ///< scripted join/leave/crash applied
  kGossipRounds,           ///< anti-entropy rounds run
  kSuspicions,             ///< view transitions to suspect or dead
  kDeadConfirmed,          ///< crashes confirmed by the failure detector
  kTreeRepairs,            ///< dead relays excised from the overlay
  kReplayedSolicitations,  ///< call-for-bids segments replayed by repair
  kCoalitionReforms,       ///< coalitions re-formed after churn
  kJobsOrphaned,           ///< placements swept off a confirmed-dead peer
  kBidsPruned,             ///< bid entries tombstoned by convergecast relays
  kBidPruneBytesSaved,     ///< wire bytes saved by prune + delta encoding
  kCount,
};
inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

[[nodiscard]] constexpr const char* to_string(Counter c) noexcept {
  switch (c) {
    case Counter::kEventsDispatched: return "events_dispatched";
    case Counter::kJobsSubmitted: return "jobs_submitted";
    case Counter::kJobsAccepted: return "jobs_accepted";
    case Counter::kJobsRejected: return "jobs_rejected";
    case Counter::kEnquiriesStarted: return "enquiries_started";
    case Counter::kEnquiriesDeclined: return "enquiries_declined";
    case Counter::kHoldsPlaced: return "holds_placed";
    case Counter::kHoldsCancelled: return "holds_cancelled";
    case Counter::kHoldsPhantom: return "holds_phantom";
    case Counter::kAuctionsOpened: return "auctions_opened";
    case Counter::kSolicitFlushes: return "solicit_flushes";
    case Counter::kBidsAnswered: return "bids_answered";
    case Counter::kAwardsCleared: return "awards_cleared";
    case Counter::kCoalitionsFormed: return "coalitions_formed";
    case Counter::kCoalitionPlacements: return "coalition_placements";
    case Counter::kCoalitionSplits: return "coalition_splits";
    case Counter::kChurnEvents: return "churn_events";
    case Counter::kGossipRounds: return "gossip_rounds";
    case Counter::kSuspicions: return "suspicions";
    case Counter::kDeadConfirmed: return "dead_confirmed";
    case Counter::kTreeRepairs: return "tree_repairs";
    case Counter::kReplayedSolicitations: return "replayed_solicitations";
    case Counter::kCoalitionReforms: return "coalition_reforms";
    case Counter::kJobsOrphaned: return "jobs_orphaned";
    case Counter::kBidsPruned: return "bids_pruned";
    case Counter::kBidPruneBytesSaved: return "bid_prune_bytes_saved";
    case Counter::kCount: break;
  }
  return "?";
}

enum class Gauge : std::uint8_t {
  kOpenBooks = 0,  ///< auction books currently awaiting clearing
  kBidCacheLookups,
  kBidCacheHits,
  kCount,
};
inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(Gauge::kCount);

[[nodiscard]] constexpr const char* to_string(Gauge g) noexcept {
  switch (g) {
    case Gauge::kOpenBooks: return "open_books";
    case Gauge::kBidCacheLookups: return "bid_cache_lookups";
    case Gauge::kBidCacheHits: return "bid_cache_hits";
    case Gauge::kCount: break;
  }
  return "?";
}

enum class Histo : std::uint8_t {
  kBookDepth = 0,   ///< bids present when a book cleared
  kClearingPrice,   ///< payment charged at clearing (G$, floored)
  kFanoutTargets,   ///< targets per tree multicast epoch
  kCount,
};
inline constexpr std::size_t kHistoCount =
    static_cast<std::size_t>(Histo::kCount);

[[nodiscard]] constexpr const char* to_string(Histo h) noexcept {
  switch (h) {
    case Histo::kBookDepth: return "book_depth";
    case Histo::kClearingPrice: return "clearing_price";
    case Histo::kFanoutTargets: return "fanout_targets";
    case Histo::kCount: break;
  }
  return "?";
}

/// Power-of-two bucket histogram: bucket i counts values in
/// [2^(i-1), 2^i), bucket 0 counts zeros, the last bucket is open.
struct Histogram {
  static constexpr std::size_t kBuckets = 16;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t total = 0;
  double sum = 0.0;

  void observe(double value) {
    const auto u =
        value <= 0.0 ? 0ull : static_cast<std::uint64_t>(value);
    std::size_t b = 0;
    while (b + 1 < kBuckets && (1ull << b) <= u) ++b;
    ++buckets[u == 0 ? 0 : b];
    ++total;
    sum += value;
  }
};

/// One epoch snapshot of the registry plus the ledger totals.
struct MetricsSample {
  sim::SimTime t = 0.0;
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kGaugeCount> gauges{};
  std::array<std::uint64_t, core::kMessageTypeCount> msgs_by_type{};
  std::array<std::uint64_t, core::kMessageTypeCount> bytes_by_type{};
  std::uint64_t total_msgs = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t relay_msgs = 0;
};

class MetricsRegistry {
 public:
  /// Fills a sample's ledger columns from the authoritative
  /// MessageLedger; installed by the Federation at construction.
  using LedgerSampler = std::function<void(MetricsSample&)>;

  MetricsRegistry(std::size_t participants, sim::SimTime epoch);

  // ---- hot path -------------------------------------------------------------
  void count(Counter c, std::uint64_t n = 1) noexcept {
    counters_[static_cast<std::size_t>(c)] += n;
  }
  void set_gauge(Gauge g, std::uint64_t v) noexcept {
    gauges_[static_cast<std::size_t>(g)] = v;
  }
  void observe(Histo h, double value) {
    histograms_[static_cast<std::size_t>(h)].observe(value);
  }
  void count_decline(std::size_t participant) noexcept {
    if (participant < declines_.size()) ++declines_[participant];
  }
  void count_miss(std::size_t participant) noexcept {
    if (participant < misses_.size()) ++misses_[participant];
  }

  // ---- sampling -------------------------------------------------------------
  void set_ledger_sampler(LedgerSampler sampler) {
    ledger_sampler_ = std::move(sampler);
  }
  /// Snapshots counters/gauges/ledger at sim-time `t` onto the series.
  void take_sample(sim::SimTime t);

  /// Folds another registry in: counters, gauges, histograms and the
  /// per-participant tallies add element-wise; the series is untouched
  /// (only the run's main registry is epoch-sampled).  Used to collapse
  /// the sharded kernel's per-lane registries at run end — every column
  /// is a sum, so the merged totals equal a sequential run's.
  void merge_from(const MetricsRegistry& other);

  [[nodiscard]] sim::SimTime epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
    return counters_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t gauge(Gauge g) const noexcept {
    return gauges_[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] const Histogram& histogram(Histo h) const noexcept {
    return histograms_[static_cast<std::size_t>(h)];
  }
  [[nodiscard]] const std::vector<MetricsSample>& series() const noexcept {
    return series_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& declines() const noexcept {
    return declines_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& misses() const noexcept {
    return misses_;
  }

  /// Renders the whole registry — series, histograms, per-participant
  /// tallies — as a single JSON document.
  void write_json(std::ostream& out) const;

 private:
  sim::SimTime epoch_;
  std::array<std::uint64_t, kCounterCount> counters_{};
  std::array<std::uint64_t, kGaugeCount> gauges_{};
  std::array<Histogram, kHistoCount> histograms_{};
  std::vector<std::uint64_t> declines_;
  std::vector<std::uint64_t> misses_;
  std::vector<MetricsSample> series_;
  LedgerSampler ledger_sampler_;
};

}  // namespace gridfed::obs
