#include "obs/tracer.hpp"

#include <algorithm>
#include <ostream>

namespace gridfed::obs {
namespace {

// The trace format's ts unit is microseconds; the simulation clock is
// seconds.  One multiply keeps relative ordering exact for the integral
// second timestamps the DES mostly produces.
double to_us(sim::SimTime t) { return t * 1e6; }

const char* phase_letter(TracePhase phase) {
  switch (phase) {
    case TracePhase::kBegin: return "b";
    case TracePhase::kEnd: return "e";
    case TracePhase::kInstant: return "i";
  }
  return "i";
}

void write_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

Tracer::Tracer(std::vector<std::string> track_names)
    : track_names_(std::move(track_names)) {
  track_names_.emplace_back("transport");
  records_.reserve(1u << 16);
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Process-name metadata gives every track a human label in the UI.
  for (std::size_t i = 0; i < track_names_.size(); ++i) {
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << (i + 1)
        << ",\"tid\":0,\"args\":{\"name\":\"";
    write_escaped(out, track_names_[i]);
    out << "\"}}";
  }
  for (const TraceRecord& r : records_) {
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"" << phase_letter(r.phase) << "\",\"cat\":\""
        << to_string(r.kind) << "\",\"name\":\"" << to_string(r.kind)
        << "\",\"pid\":" << (r.track + 1) << ",\"tid\":0,\"ts\":"
        << to_us(r.t);
    if (r.phase != TracePhase::kInstant) {
      out << ",\"id\":\"0x" << std::hex << r.id << std::dec << "\"";
    } else {
      out << ",\"s\":\"p\"";
    }
    out << ",\"args\":{\"id\":" << r.id << ",\"a0\":" << r.a0
        << ",\"a1\":" << r.a1 << ",\"v\":" << r.v << "}}";
  }
  out << "]}";
}

void Tracer::merge_sorted(const Tracer& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
  std::stable_sort(
      records_.begin(), records_.end(),
      [](const TraceRecord& a, const TraceRecord& b) { return a.t < b.t; });
}

}  // namespace gridfed::obs
