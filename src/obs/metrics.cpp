#include "obs/metrics.hpp"

#include <ostream>

namespace gridfed::obs {
namespace {

template <typename Array>
void write_u64_array(std::ostream& out, const Array& values) {
  out << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out << ",";
    out << values[i];
  }
  out << "]";
}

}  // namespace

MetricsRegistry::MetricsRegistry(std::size_t participants, sim::SimTime epoch)
    : epoch_(epoch), declines_(participants, 0), misses_(participants, 0) {
  series_.reserve(256);
}

void MetricsRegistry::take_sample(sim::SimTime t) {
  MetricsSample sample;
  sample.t = t;
  sample.counters = counters_;
  sample.gauges = gauges_;
  if (ledger_sampler_) ledger_sampler_(sample);
  series_.push_back(sample);
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n  \"epoch\": " << epoch_ << ",\n  \"samples\": [";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const MetricsSample& s = series_[i];
    out << (i ? ",\n    {" : "\n    {") << "\"t\": " << s.t;
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      out << ", \"" << to_string(static_cast<Counter>(c))
          << "\": " << s.counters[c];
    }
    for (std::size_t g = 0; g < kGaugeCount; ++g) {
      out << ", \"" << to_string(static_cast<Gauge>(g))
          << "\": " << s.gauges[g];
    }
    out << ", \"msgs_by_type\": ";
    write_u64_array(out, s.msgs_by_type);
    out << ", \"bytes_by_type\": ";
    write_u64_array(out, s.bytes_by_type);
    out << ", \"total_msgs\": " << s.total_msgs
        << ", \"total_bytes\": " << s.total_bytes
        << ", \"relay_msgs\": " << s.relay_msgs << "}";
  }
  out << "\n  ],\n  \"histograms\": {";
  for (std::size_t h = 0; h < kHistoCount; ++h) {
    const Histogram& hist = histograms_[h];
    out << (h ? ",\n    \"" : "\n    \"")
        << to_string(static_cast<Histo>(h)) << "\": {\"total\": "
        << hist.total << ", \"sum\": " << hist.sum << ", \"buckets\": ";
    write_u64_array(out, hist.buckets);
    out << "}";
  }
  out << "\n  },\n  \"per_participant\": {\"declines\": ";
  write_u64_array(out, declines_);
  out << ", \"misses\": ";
  write_u64_array(out, misses_);
  out << "}\n}\n";
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    counters_[i] += other.counters_[i];
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    gauges_[i] += other.gauges_[i];
  }
  for (std::size_t i = 0; i < kHistoCount; ++i) {
    auto& h = histograms_[i];
    const auto& o = other.histograms_[i];
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      h.buckets[b] += o.buckets[b];
    }
    h.total += o.total;
    h.sum += o.sum;
  }
  for (std::size_t i = 0; i < declines_.size(); ++i) {
    declines_[i] += other.declines_[i];
    misses_[i] += other.misses_[i];
  }
}

}  // namespace gridfed::obs
