#include "obs/forensics.hpp"

#include <algorithm>
#include <ostream>

namespace gridfed::obs {

std::vector<const ClearingDecision*> ForensicsLedger::for_job(
    std::uint64_t job) const {
  std::vector<const ClearingDecision*> out;
  for (const ClearingDecision& d : decisions_) {
    if (d.job == job) out.push_back(&d);
  }
  return out;
}

void ForensicsLedger::write_json(std::ostream& out) const {
  out << "{\n  \"clearings\": [";
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    const ClearingDecision& d = decisions_[i];
    out << (i ? ",\n    {" : "\n    {") << "\"t\": " << d.t
        << ", \"job\": " << d.job << ", \"scoring\": \""
        << market::to_string(d.scoring) << "\", \"clearing\": \""
        << market::to_string(d.clearing) << "\", \"solicited\": [";
    for (std::size_t s = 0; s < d.solicited.size(); ++s) {
      out << (s ? "," : "") << d.solicited[s];
    }
    out << "], \"bids\": [";
    for (std::size_t b = 0; b < d.bids.size(); ++b) {
      const ScoredBid& bid = d.bids[b];
      out << (b ? ",{" : "{") << "\"bidder\": " << bid.bidder
          << ", \"ask\": " << bid.ask << ", \"completion\": "
          << bid.completion_estimate << ", \"feasible\": "
          << (bid.feasible ? "true" : "false")
          << ", \"score\": " << bid.score << "}";
    }
    out << "], \"awarded\": " << (d.awarded ? "true" : "false")
        << ", \"winner\": " << d.winner << ", \"winner_ask\": "
        << d.winner_ask << ", \"payment\": " << d.payment
        << ", \"runner_up_margin\": " << d.runner_up_margin
        << ", \"has_runner_up\": " << (d.has_runner_up ? "true" : "false")
        << "}";
  }
  out << "\n  ],\n  \"splits\": [";
  for (std::size_t i = 0; i < splits_.size(); ++i) {
    const SplitDecision& s = splits_[i];
    out << (i ? ",\n    {" : "\n    {") << "\"t\": " << s.t
        << ", \"job\": " << s.job << ", \"coalition\": " << s.coalition
        << ", \"executor\": " << s.executor << ", \"executor_ask\": "
        << s.executor_ask << ", \"payment\": " << s.payment
        << ", \"shares\": [";
    for (std::size_t m = 0; m < s.shares.size(); ++m) {
      out << (m ? ",{" : "{") << "\"member\": " << s.shares[m].first
          << ", \"share\": " << s.shares[m].second << "}";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

void ForensicsLedger::merge_sorted(const ForensicsLedger& other) {
  decisions_.insert(decisions_.end(), other.decisions_.begin(),
                    other.decisions_.end());
  std::stable_sort(decisions_.begin(), decisions_.end(),
                   [](const ClearingDecision& a, const ClearingDecision& b) {
                     return a.t < b.t;
                   });
  splits_.insert(splits_.end(), other.splits_.begin(), other.splits_.end());
  std::stable_sort(
      splits_.begin(), splits_.end(),
      [](const SplitDecision& a, const SplitDecision& b) { return a.t < b.t; });
}

}  // namespace gridfed::obs
