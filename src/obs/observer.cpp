#include "obs/observer.hpp"

#if GRIDFED_TRACE

namespace gridfed::obs {

Observer::Observer(const ObsConfig& cfg,
                   std::vector<std::string> track_names,
                   std::size_t participants) {
  if (cfg.trace) tracer_ = std::make_unique<Tracer>(std::move(track_names));
  if (cfg.metrics) {
    metrics_ =
        std::make_unique<MetricsRegistry>(participants, cfg.metrics_epoch);
  }
  if (cfg.forensics) forensics_ = std::make_unique<ForensicsLedger>();
}

}  // namespace gridfed::obs

#endif  // GRIDFED_TRACE
