#include "obs/observer.hpp"

#if GRIDFED_TRACE

namespace gridfed::obs {

Observer::Observer(const ObsConfig& cfg,
                   std::vector<std::string> track_names,
                   std::size_t participants) {
  if (cfg.trace) tracer_ = std::make_unique<Tracer>(std::move(track_names));
  if (cfg.metrics) {
    metrics_ =
        std::make_unique<MetricsRegistry>(participants, cfg.metrics_epoch);
  }
  if (cfg.forensics) forensics_ = std::make_unique<ForensicsLedger>();
}

void Observer::merge_from(const Observer& lane) {
  if (tracer_ && lane.tracer_) tracer_->merge_sorted(*lane.tracer_);
  if (metrics_ && lane.metrics_) metrics_->merge_from(*lane.metrics_);
  if (forensics_ && lane.forensics_) {
    forensics_->merge_sorted(*lane.forensics_);
  }
}

}  // namespace gridfed::obs

#endif  // GRIDFED_TRACE
