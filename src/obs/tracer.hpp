#pragma once
// Sim-time event tracer.  Instrumentation sites append fixed-size POD
// records (trace_event.hpp); at the end of a run the buffer is rendered
// to Chrome trace-event JSON — async "b"/"e" span pairs and "i"
// instants — which ui.perfetto.dev and chrome://tracing load directly.
//
// Design constraints, in order:
//   1. Disabled-path purity: the Tracer is only ever constructed when
//      ObsConfig::trace is set, and call sites go through the null-
//      checked GF_OBS macro, so a dark run touches none of this.
//   2. Hot-path cost: begin/end/instant are a branch + struct append
//      into a pre-reserved vector.  No strings, no formatting, no
//      timestamps other than the sim clock the caller already holds.
//   3. Export fidelity: records are appended in simulation order, so
//      timestamps are globally monotone by construction and span pairs
//      (same kind + id + track) always balance b-before-e.
//
// Track model: one Perfetto "process" per cluster (pid = track + 1, so
// pid 0 is never used) plus a dedicated transport track for overlay
// epochs/relays.  Sim seconds export as microseconds (ts = t * 1e6)
// because the trace format's ts unit is microseconds.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"
#include "sim/types.hpp"

namespace gridfed::obs {

class Tracer {
 public:
  /// `track_names[i]` labels track i in the exported trace; call sites
  /// use cluster ResourceIndex values as track ids directly.  An extra
  /// "transport" track is appended after the cluster tracks.
  explicit Tracer(std::vector<std::string> track_names);

  /// The appended overlay track, for transport-layer records.
  [[nodiscard]] std::uint32_t transport_track() const noexcept {
    return static_cast<std::uint32_t>(track_names_.size() - 1);
  }

  void begin(sim::SimTime t, SpanKind kind, std::uint32_t track,
             std::uint64_t id, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
             double v = 0.0) {
    append(t, TracePhase::kBegin, kind, track, id, a0, a1, v);
  }
  void end(sim::SimTime t, SpanKind kind, std::uint32_t track,
           std::uint64_t id, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
           double v = 0.0) {
    append(t, TracePhase::kEnd, kind, track, id, a0, a1, v);
  }
  void instant(sim::SimTime t, SpanKind kind, std::uint32_t track,
               std::uint64_t id, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
               double v = 0.0) {
    append(t, TracePhase::kInstant, kind, track, id, a0, a1, v);
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Folds another tracer's buffer in and restores global time order
  /// (stable sort: same-time records keep their per-source append
  /// order, so b/e span pairs from one shard still balance).  The
  /// sharded kernel merges per-shard tracers into the run's main tracer
  /// with this — track ids are federation-wide, so the merged trace is
  /// indistinguishable from a sequential one.
  void merge_sorted(const Tracer& other);

  /// Renders the whole buffer as a Chrome trace-event JSON object:
  /// process_name metadata per track, then every record in append
  /// (= simulation) order.
  void write_chrome_trace(std::ostream& out) const;

 private:
  void append(sim::SimTime t, TracePhase phase, SpanKind kind,
              std::uint32_t track, std::uint64_t id, std::uint64_t a0,
              std::uint64_t a1, double v) {
    records_.push_back(TraceRecord{t, phase, kind, track, id, a0, a1, v});
  }

  std::vector<std::string> track_names_;
  std::vector<TraceRecord> records_;
};

}  // namespace gridfed::obs
