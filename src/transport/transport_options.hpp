#pragma once
// Configuration of the message-delivery substrate (see transport.hpp for
// the layer itself).  Kept dependency-free so core/config.hpp can embed a
// TransportOptions without pulling the transport implementations in.

#include <cstdint>

#include "sim/types.hpp"

namespace gridfed::transport {

/// Which delivery substrate couples the GFAs.
enum class TransportKind : std::uint8_t {
  kDirect,  ///< point-to-point unicast per message (the paper's model)
  kTree,    ///< k-ary overlay tree: epoch-batched call-for-bids fan-out
            ///< with convergecast-aggregated bids
};

[[nodiscard]] constexpr const char* to_string(TransportKind kind) noexcept {
  // Exhaustive: -Wswitch flags any kind added without a name here.
  switch (kind) {
    case TransportKind::kDirect:
      return "direct";
    case TransportKind::kTree:
      return "tree";
  }
  __builtin_unreachable();
}

/// Knobs of the delivery substrate.  Only `kind` matters for kDirect.
struct TransportOptions {
  TransportKind kind = TransportKind::kDirect;

  /// Branching factor of the dissemination tree (kTree).  The tree is a
  /// k-ary heap layout over the federation's overlay ring keys
  /// (overlay::ring_hash of the resource names), so it is deterministic,
  /// balanced, and every node's degree is at most fanout + 1.
  std::uint32_t tree_fanout = 4;

  /// Fan-out batching epoch (kTree): queued call-for-bids multicasts are
  /// released at epoch boundaries, so floods from *different origins*
  /// share tree-edge wire messages — the cross-origin aggregation that
  /// per-(origin, provider) batching cannot reach.  A job's solicitation
  /// is still never held past the slack bound its origin passes with the
  /// multicast (Transport::multicast's not_after).  0 collapses the
  /// epoch to same-instant coalescing only.
  sim::SimTime tree_epoch = 120.0;

  /// In-network bid pruning (kTree): interior relays score the buffered
  /// bids of each job under the federation's active market::ScoringRule
  /// and forward only the best `bid_prune_k` per (job, edge); the rest
  /// shrink to answer tombstones, so the origin's book still completes
  /// without waiting out the bid timeout.  The surviving set on every
  /// edge is a superset of the clearing engine's rank prefix (the
  /// relays rank under the engine's exact total order), so cleared
  /// prices are identical to the unpruned engine as long as the award
  /// walk never declines past the prefix — k >= 2 always keeps
  /// Vickrey's winner AND runner-up, and the default leaves generous
  /// headroom for decline cascades.  Values 1 are clamped up to 2;
  /// 0 disables pruning (every bid is forwarded whole).
  std::uint32_t bid_prune_k = 8;

  /// Delta/quantum encoding of the bid convergecast (kTree): bids
  /// crossing the same tree edge in one instant merge into a single
  /// compact frame — one header per edge message, a fixed stub per
  /// provider stream, and one full quote per job-shape group with
  /// followers encoded as quantized deltas (core/message.hpp's
  /// kBidFrameBytes model).  Pure byte accounting: delivered payloads,
  /// loss/duplication lotteries, and event timing under constant
  /// latency are untouched.
  bool bid_delta_encode = true;

  /// Failure injection: probability that an idempotent acknowledgement
  /// (kReply or kBid) is delivered twice.  Those two legs are safe to
  /// duplicate by construction — a second reply finds its enquiry gone,
  /// a second bid is rejected by the book — which is exactly the claim
  /// the transport-seam duplication tests pin down.
  double duplicate_rate = 0.0;
};

/// Depth of the k-ary heap tree over `n` nodes (0 for a single node).
/// The single source of topology truth shared by TreeTransport's layout
/// (parent(i) = (i-1)/k over the ring order) and the federation's
/// timeout sanity bounds — a relayed round trip crosses up to 4 * depth
/// edges (each leg climbs to the LCA and back down).
[[nodiscard]] constexpr std::uint32_t tree_depth(std::size_t n,
                                                 std::uint32_t fanout)
    noexcept {
  const std::uint32_t k = fanout < 1 ? 1 : fanout;
  std::uint32_t depth = 0;
  for (std::size_t pos = n > 0 ? n - 1 : 0; pos > 0; pos = (pos - 1) / k) {
    ++depth;
  }
  return depth;
}

}  // namespace gridfed::transport
