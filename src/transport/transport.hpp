#pragma once
// The pluggable message-delivery layer.  The paper's GFAs coordinate over
// a P2P substrate, but until this layer existed every message went
// through one hard-wired point-to-point seam in Federation::send(); the
// per-job call-for-bids broadcast therefore stayed the dominant message
// cost at 20-50 clusters even after batched solicitation coalesced it
// per (origin, provider).  This layer makes the delivery path itself a
// swappable component:
//
//  * the *protocol* (Gfa, policies) decides what to say to whom — it
//    hands the transport unicasts and multicast-to-set requests;
//  * a Transport decides how the bits move: per-message point-to-point
//    (DirectTransport, the paper's model, bit-identical to the old
//    seam), or along a k-ary overlay tree with epoch-batched fan-out
//    and convergecast-aggregated replies (TreeTransport).
//
// The transport owns the delivery substrate's whole state: the WAN
// latency model (previously a Federation member), the failure-injection
// lotteries (loss on the best-effort enquiry channel, duplication on
// the idempotent acknowledgement legs), and the ledger bookkeeping for
// every wire message it emits.  The environment it operates in comes
// through TransportContext, implemented by the Federation driver.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/message.hpp"
#include "federation/participant.hpp"
#include "network/latency_model.hpp"
#include "obs/observer.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace gridfed::transport {

/// Environment a transport operates in, implemented by the Federation
/// driver: the event kernel, the message ledger, the peer catalog, and
/// the delivery sink.
class TransportContext {
 public:
  virtual ~TransportContext() = default;

  [[nodiscard]] virtual const core::FederationConfig& config() const = 0;
  [[nodiscard]] virtual sim::Simulation& sim() = 0;
  [[nodiscard]] virtual core::MessageLedger& ledger() = 0;
  [[nodiscard]] virtual std::size_t sites() const = 0;
  [[nodiscard]] virtual const cluster::ResourceSpec& spec_of(
      cluster::ResourceIndex index) const = 0;

  /// Hands a message that reached its destination to the owning GFA.
  virtual void deliver(const core::Message& msg) = 0;

  /// One message lost to the failure-injection channel (telemetry).
  virtual void message_dropped() = 0;

  /// Deterministic lottery streams (loss / duplication injection).
  [[nodiscard]] virtual sim::Rng& drop_rng() = 0;
  [[nodiscard]] virtual sim::Rng& duplicate_rng() = 0;

  /// Per-origin lottery streams.  The defaults ignore `from` and return
  /// the shared streams — bit-identical to the seed.  The parallel
  /// driver overrides these with per-site streams so concurrent shards
  /// never race on one generator and every site's draw sequence is
  /// independent of the worker-thread count.
  [[nodiscard]] virtual sim::Rng& drop_rng(cluster::ResourceIndex from) {
    (void)from;
    return drop_rng();
  }
  [[nodiscard]] virtual sim::Rng& duplicate_rng(cluster::ResourceIndex from) {
    (void)from;
    return duplicate_rng();
  }

  /// Schedules a delivery `delay` seconds from the *caller's* current
  /// time.  The default schedules on sim() — the seed's single engine,
  /// where the caller's clock IS sim().  The parallel driver overrides
  /// this to stamp the caller's shard clock and route the delivery to
  /// the destination's shard mailbox (or directly when shard-local).
  virtual void post_delivery(core::Message msg, sim::SimTime delay) {
    TransportContext* self = this;
    sim().schedule_in(delay, sim::EventPriority::kMessage,
                      [self, msg = std::move(msg)] { self->deliver(msg); });
  }

  /// Runs `op` on the centralized transport lane.  Sequentially that IS
  /// the calling context, so the default invokes `op` inline — identical
  /// to the seed, where TreeTransport mutated its batching state during
  /// the caller's event.  The parallel driver posts `op` to the global
  /// lane stamped with the calling shard's clock, keeping the tree's
  /// shared fan-out/convergecast state single-threaded.  `priority`
  /// orders same-instant ops against the lane's own events (kMessage ops
  /// precede the kControl flushes they arm, as in the seed).
  virtual void post_transport_op(cluster::ResourceIndex from,
                                 sim::EventPriority priority,
                                 sim::InlineFunction op) {
    (void)from;
    (void)priority;
    op();
  }

  /// The observability umbrella, or null when disabled (GF_OBS sites
  /// branch on it; overlay records land on the tracer's transport track).
  [[nodiscard]] virtual obs::Observer* observer() { return nullptr; }

  /// Ground-truth liveness: false once `index` has crashed (membership
  /// churn).  A relay through a crashed site physically fails even
  /// before the failure detector confirms the death.  Always true in
  /// static-roster runs.
  [[nodiscard]] virtual bool site_up(cluster::ResourceIndex index) const {
    (void)index;
    return true;
  }
};

/// One delivery substrate.  Constructed at federation wiring time; owns
/// the WAN model for the run.
class Transport {
 public:
  Transport(TransportContext& ctx, std::optional<network::LatencyModel> wan)
      : ctx_(ctx), wan_(std::move(wan)) {}
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Delivers one point-to-point message (ledger + loss lottery +
  /// latency applied).
  virtual void unicast(core::Message msg) = 0;

  /// Delivers one payload to every target in `targets` (msg.to is
  /// overwritten per target).  `not_after` bounds any delivery batching
  /// the transport applies (TreeTransport's fan-out epoch); kDirect
  /// sends immediately and ignores it.  Returns the wire messages
  /// charged to the caller immediately — one per target for kDirect,
  /// 0 for kTree, whose shared edge messages land in the ledger's relay
  /// counters instead — so per-job message attribution stays honest.
  virtual std::uint64_t multicast(
      core::Message msg, std::span<const cluster::ResourceIndex> targets,
      sim::SimTime not_after) = 0;

  /// The WAN model of this run (null under the paper's constant-latency
  /// assumption).  Federation::payload_staging_time consults it.
  [[nodiscard]] const network::LatencyModel* wan() const noexcept {
    return wan_ ? &*wan_ : nullptr;
  }

  /// Group-addressed dissemination: with a participant registry wired
  /// in, every multicast target set is collapsed to ONE delivery per
  /// participant — a coalition is reached through its representative
  /// alone, and the intra-coalition fan-out rides the coalition layer's
  /// local links instead of the wire.  A null registry (the solo
  /// market, and every non-auction mode) leaves target sets untouched,
  /// so the solo path stays bit-identical.  `registry` must outlive the
  /// transport.
  void set_group_registry(const federation::ParticipantRegistry* registry) {
    groups_ = registry;
  }

  // ---- overlay aggregation telemetry (0 for non-aggregating transports) -----

  /// Bid entries the overlay tombstoned in-network (convergecast
  /// score-and-prune); lands in FederationResult::bids_pruned.
  [[nodiscard]] virtual std::uint64_t bids_pruned() const noexcept {
    return 0;
  }
  /// Wire bytes the convergecast prune + delta encoding saved against
  /// forwarding every payload whole; FederationResult::bid_prune_bytes_saved.
  [[nodiscard]] virtual std::uint64_t bid_prune_bytes_saved() const noexcept {
    return 0;
  }

  // ---- membership churn hooks (no-ops for topology-free transports) ---------

  /// The failure detector confirmed `index` dead: route around it and
  /// replay any in-flight dissemination it swallowed.
  virtual void on_member_dead(cluster::ResourceIndex index) { (void)index; }

  /// `index` departed cooperatively: stop routing through it (it stays
  /// reachable for its own in-flight legs, so nothing needs replay).
  virtual void on_member_left(cluster::ResourceIndex index) { (void)index; }

  /// `index` rejoined: restore it to the topology.
  virtual void on_member_joined(cluster::ResourceIndex index) {
    (void)index;
  }

 protected:
  /// The best-effort enquiry channel: these legs may be lost when
  /// failure injection is on; payload transfers are reliable
  /// (see core/config.hpp).
  [[nodiscard]] static bool droppable(core::MessageType type) noexcept {
    return type == core::MessageType::kNegotiate ||
           type == core::MessageType::kReply ||
           type == core::MessageType::kCallForBids ||
           type == core::MessageType::kBid ||
           type == core::MessageType::kAward ||
           type == core::MessageType::kGossip;
  }

  /// Idempotent acknowledgement legs safe to deliver twice: a second
  /// reply finds its enquiry already resolved, a duplicate bid is
  /// rejected by the book.
  [[nodiscard]] static bool duplicable(core::MessageType type) noexcept {
    return type == core::MessageType::kReply ||
           type == core::MessageType::kBid;
  }

  /// Loss lottery for one wire message (after it was recorded — lost
  /// messages still cost their send, as in the seed).  `from` selects
  /// the per-origin stream under the parallel driver; the sequential
  /// context ignores it.
  [[nodiscard]] bool lost(core::MessageType type,
                          cluster::ResourceIndex from) {
    const auto& cfg = ctx_.config();
    if (!droppable(type) || cfg.message_drop_rate <= 0.0) return false;
    if (!ctx_.drop_rng(from).bernoulli(cfg.message_drop_rate)) return false;
    ctx_.message_dropped();
    return true;
  }

  /// Duplication lottery (see TransportOptions::duplicate_rate).
  [[nodiscard]] bool duplicated(core::MessageType type,
                                cluster::ResourceIndex from) {
    const double rate = ctx_.config().transport.duplicate_rate;
    if (!duplicable(type) || rate <= 0.0) return false;
    return ctx_.duplicate_rng(from).bernoulli(rate);
  }

  /// One-way point-to-point delay for `msg`: constant latency without a
  /// WAN model; under one, the size-aware control delay — or, for the
  /// job payload, Eq. 1's data volume over the bottleneck access link.
  [[nodiscard]] sim::SimTime delay_for(const core::Message& msg) const;

  /// Schedules `msg` to arrive at its destination after `delay`.
  void schedule_delivery(core::Message msg, sim::SimTime delay);

  /// The seed's point-to-point path: record, loss lottery, latency,
  /// deliver — plus the duplication lottery on the idempotent legs.
  /// DirectTransport is exactly this; TreeTransport uses it for every
  /// leg it does not carry over the overlay.
  void direct_unicast(core::Message msg);

  /// The multicast half of group addressing: maps each target to its
  /// participant's representative and dedups (first-seen order kept, so
  /// the wire order stays deterministic).  Identity without a registry.
  /// Idempotent over the AuctionPolicy's own representative mapping —
  /// the policy addresses representatives anyway because its book slots
  /// and piggyback targets are per-participant — so this pass normally
  /// finds nothing to collapse; it exists so group addressing is a
  /// property of the substrate, enforced for every caller, not a
  /// convention each caller must re-implement.  O(targets) per
  /// multicast, and only in coalition runs (null registry returns the
  /// input span untouched).
  /// The returned span views scratch storage valid until the next call
  /// on the same thread (the scratch is thread-local so concurrent
  /// shards collapsing their own multicasts never race).
  [[nodiscard]] std::span<const cluster::ResourceIndex> collapse_groups(
      std::span<const cluster::ResourceIndex> targets);

  TransportContext& ctx_;
  std::optional<network::LatencyModel> wan_;
  const federation::ParticipantRegistry* groups_ = nullptr;
};

/// Builds the transport `options.kind` selects (the only place the kind
/// dispatch lives).
[[nodiscard]] std::unique_ptr<Transport> make_transport(
    TransportContext& ctx, std::optional<network::LatencyModel> wan);

}  // namespace gridfed::transport
