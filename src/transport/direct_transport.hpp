#pragma once
// Point-to-point delivery — the paper's model, and bit-identical to the
// pre-transport Federation::send() seam (pinned by the golden digests in
// tests/test_transport.cpp): every message is recorded, runs the loss
// lottery, and arrives after the configured one-way delay.  A multicast
// is simply one unicast per target, in target order.

#include <optional>

#include "transport/transport.hpp"

namespace gridfed::transport {

class DirectTransport final : public Transport {
 public:
  DirectTransport(TransportContext& ctx,
                  std::optional<network::LatencyModel> wan)
      : Transport(ctx, std::move(wan)) {}

  void unicast(core::Message msg) override { direct_unicast(std::move(msg)); }

  std::uint64_t multicast(core::Message msg,
                          std::span<const cluster::ResourceIndex> targets,
                          sim::SimTime not_after) override;
};

}  // namespace gridfed::transport
