#pragma once
// Overlay-tree delivery: the call-for-bids fan-out rides a k-ary
// dissemination tree built over the federation's Chord ring keys, and
// the bid replies aggregate on the convergecast path — the
// "gossip/tree overlay for the call-for-bids fan-out itself" scale
// follow-on from the ROADMAP.
//
// Why a tree reduces *wire messages* when every provider must still
// receive every solicitation: per-(origin, provider) batching (PR 2)
// cannot merge traffic from different origins, so at 50 clusters each
// flush still costs ~2 messages per (origin, provider) pair.  The tree
// gives all origins one shared edge set (N-1 edges, degree <= k+1), and
// the transport releases queued fan-outs at epoch boundaries
// (TransportOptions::tree_epoch): every payload crossing a tree edge in
// the same instant shares one wire message, so an epoch's whole
// federation-wide solicitation load costs O(edges), not O(origins x
// providers).  Replies come back the same way: all bids for an epoch's
// solicitations leave their providers in the same instant, and relays
// coalesce them per edge-direction on the paths back to their origins.
//
// Topology: nodes are ordered by (overlay::ring_hash(name), index) —
// the ChordRing's node ids — and the tree is the k-ary heap layout over
// that order: parent(i) = (i-1)/k.  Deterministic, balanced (depth
// ceil(log_k n)), and rebuilt trivially because federation membership
// is quasi-static per run (as in the paper's experiments).
//
// Every other protocol leg (negotiate, reply, award, the job payload
// and its completion) stays point-to-point: those are latency-critical
// admission messages, and delaying them is exactly the anticipatory
// holding PR 3 measured to destroy acceptance.
//
// Accounting: edge messages carry payloads of many origins, so they are
// booked through MessageLedger::record_relay (counted once
// federation-wide, relay load at both endpoints) and delivered payloads
// are flagged via_overlay so per-job policy counters do not double-book
// them.  Loss injection applies per *edge message*: a lost edge loses
// the whole subtree behind it, exactly as a real overlay would.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "market/bid_scorer.hpp"
#include "transport/transport.hpp"

namespace gridfed::transport {

class TreeTransport final : public Transport {
 public:
  TreeTransport(TransportContext& ctx,
                std::optional<network::LatencyModel> wan);

  /// kBid joins the same-instant convergecast; everything else goes
  /// point-to-point.  (The call-for-bids fan-out always arrives through
  /// multicast() — both the batched flush and the per-job broadcast —
  /// so a unicast kCallForBids would simply be delivered directly.)
  void unicast(core::Message msg) override;

  /// Queues the fan-out for the next epoch boundary (never past
  /// `not_after`).  Returns 0: the shared edge messages land in the
  /// ledger's relay counters at flush time.
  std::uint64_t multicast(core::Message msg,
                          std::span<const cluster::ResourceIndex> targets,
                          sim::SimTime not_after) override;

  // ---- membership churn: self-repair -------------------------------------
  /// Confirmed death of a relay: excise its position (orphaned subtrees
  /// re-parent on the ring order — consecutive survivors on each path
  /// become the repaired edges) and replay every retained solicitation
  /// the dead relay swallowed, so no call-for-bids from a live origin is
  /// silently lost.
  void on_member_dead(cluster::ResourceIndex index) override;
  /// Cooperative departure: stop routing through the member.  Its own
  /// in-flight relays completed normally, so nothing needs replay.
  void on_member_left(cluster::ResourceIndex index) override;
  void on_member_joined(cluster::ResourceIndex index) override;

  // ---- topology introspection (tests, diagnostics) -----------------------
  /// Tree parent of `owner` (the root returns itself).
  [[nodiscard]] cluster::ResourceIndex parent_of(
      cluster::ResourceIndex owner) const;
  /// Edges on the unique tree path between two nodes.
  [[nodiscard]] std::uint32_t path_hops(cluster::ResourceIndex from,
                                        cluster::ResourceIndex to) const;
  [[nodiscard]] cluster::ResourceIndex root() const { return owner_at_[0]; }
  /// True when `owner` relays for a subtree without being the root —
  /// the interesting crash target for repair tests.
  [[nodiscard]] bool interior_relay(cluster::ResourceIndex owner) const;

  // ---- convergecast aggregation telemetry ----------------------------------
  /// Bid entries scored out of the decision-relevant rank prefix and
  /// forwarded as tombstones (TransportOptions::bid_prune_k).
  [[nodiscard]] std::uint64_t bids_pruned() const noexcept override {
    return bids_pruned_;
  }
  /// Wire bytes the prune + delta encoding saved against forwarding
  /// every bid payload whole on every edge.
  [[nodiscard]] std::uint64_t bid_prune_bytes_saved() const noexcept override {
    return prune_bytes_saved_;
  }

  // ---- repair telemetry ----------------------------------------------------
  [[nodiscard]] std::uint64_t repairs() const noexcept { return repairs_; }
  [[nodiscard]] std::uint64_t replayed_solicitations() const noexcept {
    return replayed_;
  }
  /// Wire (relay edge) messages spent on replays — the repair cost the
  /// bench reports and test_membership.cpp reconciles with the ledger.
  [[nodiscard]] std::uint64_t repair_relay_messages() const noexcept {
    return repair_relay_msgs_;
  }

 private:
  /// One queued fan-out awaiting the epoch flush.
  struct PendingFanout {
    core::Message msg;
    std::vector<cluster::ResourceIndex> targets;
  };
  /// One payload-to-destination segment of a relay flush.  Segments of
  /// one fan-out payload share a payload_id: the payload crosses a
  /// shared edge once however many targets sit behind it.
  struct RelayItem {
    const core::Message* payload = nullptr;
    cluster::ResourceIndex target = cluster::kNoResource;
    std::uint32_t payload_id = 0;
  };
  /// One directed tree edge touched by the current relay flush.
  struct EdgeUse {
    std::uint32_t from_pos = 0;
    std::uint32_t to_pos = 0;
    std::uint64_t bytes = 0;
    std::uint32_t last_payload = 0;  ///< dedups per-payload byte booking
    bool alive = true;
    bool down = false;  ///< dead because an endpoint crashed (not lottery)
  };
  /// One solicitation segment a crashed-but-unconfirmed relay swallowed,
  /// retained until the failure detector confirms the death and
  /// on_member_dead replays it over the repaired topology.
  struct LostSolicitation {
    sim::SimTime at = 0.0;
    core::Message msg;  ///< .to already set to the final target
  };

  // ---- convergecast score-and-prune + delta encoding ----------------------
  /// What a relay knows about a job it forwarded the solicitation for:
  /// the QoS envelope the scorer ranks against, and the log-bucket shape
  /// key the delta encoder groups quotes by.  Harvested from every
  /// kCallForBids that fans out through the tree; retained for the run
  /// (a few dozen bytes per job — the solicitations themselves dwarf
  /// it), because bids for a job may convergecast in several waves.
  struct JobFacts {
    market::JobQos qos;
    std::uint64_t shape = 0;
  };
  /// Per bid entry of a queued convergecast payload: the hop index of
  /// the first edge the entry is pruned on (path-length = never), and
  /// its job's shape key for the per-edge delta grouping.
  struct BidEntryMeta {
    std::uint32_t prune_hop = 0;
    std::uint64_t shape = 0;
  };
  /// Per-edge tallies of the compact convergecast frame, parallel to
  /// scratch_edges_ while an encoded kBid relay is in flight.
  struct EdgeFrame {
    std::uint64_t naive_bytes = 0;  ///< what whole-payload forwarding costs
    std::uint32_t sources = 0;      ///< merged provider→origin streams
    std::uint32_t bases = 0;        ///< first quote of a shape group
    std::uint32_t deltas = 0;       ///< same-shape follower quotes
    std::uint32_t tombstones = 0;   ///< pruned-bid markers
  };

  [[nodiscard]] std::uint32_t parent_pos(std::uint32_t pos) const noexcept {
    return (pos - 1) / fanout_;
  }
  /// Node-position sequence of the unique tree path a -> b (inclusive).
  void path_positions(std::uint32_t a, std::uint32_t b,
                      std::vector<std::uint32_t>& out) const;
  /// path_positions with confirmed-dead interior relays excised:
  /// consecutive survivors form the repaired edges (a dead parent's
  /// children are adopted by the grandparent on the ring order).
  /// Identical to path_positions while no member is dead.
  void relay_path(std::uint32_t a, std::uint32_t b,
                  std::vector<std::uint32_t>& out) const;
  /// Drops retained losses older than the confirmation bound (their
  /// relay's death would have been confirmed and replayed by now).
  void prune_retained();

  /// Transport-lane bodies of unicast(kBid) / multicast: mutate the
  /// centralized convergecast / fan-out state (see post_transport_op).
  void enqueue_bid(core::Message msg);
  void queue_fanout(core::Message msg,
                    std::vector<cluster::ResourceIndex> raw,
                    sim::SimTime not_after);

  void schedule_fanout_wake(sim::SimTime not_after);
  void maybe_flush_fanout();
  void flush_fanout();
  void flush_convergecast();

  /// Remembers every job a call-for-bids carries (QoS envelope + shape
  /// key), so the convergecast relays can score and delta-group the
  /// bids coming back.
  void harvest_job_facts(const core::Message& msg);
  void remember_job(const cluster::Job& job);
  /// The tentpole: ranks each job's queued bids under the engine's
  /// exact total order and computes, per bid, the first path edge it
  /// falls out of the per-edge top-k on (see .cpp for why per-edge
  /// top-k equals top-k of the bids crossing the edge).  Fills
  /// scratch_entry_meta_ and marks pruned deliveries in `queue`.
  void prune_convergecast(std::vector<core::Message>& queue);
  /// Edge count key for the per-(job, edge) rank counters.
  [[nodiscard]] std::uint64_t edge_key(std::uint32_t from_pos,
                                       std::uint32_t to_pos) const noexcept {
    return static_cast<std::uint64_t>(from_pos) * owner_at_.size() + to_pos;
  }

  /// The shared relay machinery: books one wire message per directed
  /// edge used this flush (loss lottery per edge), then delivers every
  /// payload whose whole path survived, after the summed per-hop
  /// latency.
  void relay(std::span<const RelayItem> items, core::MessageType type);

  std::uint32_t fanout_ = 4;
  std::vector<cluster::ResourceIndex> owner_at_;  ///< position -> resource
  std::vector<std::uint32_t> pos_of_;             ///< resource -> position

  // Membership churn state (all empty/false in static-roster runs).
  std::vector<std::uint8_t> dead_pos_;  ///< positions routed around
  bool any_dead_ = false;
  std::vector<LostSolicitation> retained_losses_;
  std::vector<core::Message> replay_storage_;
  std::uint64_t repairs_ = 0;
  std::uint64_t replayed_ = 0;
  std::uint64_t repair_relay_msgs_ = 0;

  std::vector<PendingFanout> fanout_queue_;
  sim::SimTime fanout_due_ = sim::kTimeInfinity;
  /// Trace id of the fan-out epoch currently accumulating (spans the
  /// first queued fan-out to its flush); monotone per run.
  std::uint64_t epoch_seq_ = 0;

  std::vector<core::Message> convergecast_queue_;
  bool convergecast_armed_ = false;

  // Convergecast score-and-prune + delta encoding state.
  std::uint32_t prune_k_ = 0;      ///< 0 = forward every bid whole
  bool encode_bids_ = false;       ///< compact per-edge frame accounting
  double shape_quantum_ = 0.0;     ///< log-bucket width of the shape keys
  market::BidScorer scorer_;       ///< the engine's exact rank order
  std::unordered_map<cluster::JobId, JobFacts> job_facts_;
  std::uint64_t bids_pruned_ = 0;
  std::uint64_t prune_bytes_saved_ = 0;
  /// True while relay() runs on a convergecast flush whose entry meta
  /// (scratch_entry_meta_) is populated — switches the kBid edge byte
  /// accounting to the compact frame model.
  bool bid_frame_relay_ = false;

  // Scratch reused across flushes (hot path at 50 clusters).
  std::vector<RelayItem> scratch_items_;
  std::vector<EdgeUse> scratch_edges_;
  std::unordered_map<std::uint64_t, std::uint32_t> scratch_edge_index_;
  std::vector<std::uint32_t> scratch_path_;
  /// path_positions is logically const (path_hops introspection).
  mutable std::vector<std::uint32_t> scratch_up_;
  // Convergecast scratch: per-payload entry meta (indexed payload_id-1),
  // per-job rank candidates, per-(job, edge) better-ranked counters, and
  // the per-edge shape groups / frame tallies of the current relay.
  std::vector<std::vector<BidEntryMeta>> scratch_entry_meta_;
  std::unordered_map<std::uint64_t, std::uint32_t> scratch_rank_counts_;
  std::vector<EdgeFrame> scratch_edge_frames_;
  std::unordered_set<std::uint64_t> scratch_shape_seen_;
};

}  // namespace gridfed::transport
