#include "transport/direct_transport.hpp"

#include <utility>

namespace gridfed::transport {

std::uint64_t DirectTransport::multicast(
    core::Message msg, std::span<const cluster::ResourceIndex> targets,
    sim::SimTime not_after) {
  (void)not_after;  // point-to-point sends nothing later than now
  targets = collapse_groups(targets);  // one delivery per participant
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (i + 1 == targets.size()) {
      msg.to = targets[i];
      direct_unicast(std::move(msg));
      break;
    }
    core::Message copy = msg;  // shares the arena-backed batch view
    copy.to = targets[i];
    direct_unicast(std::move(copy));
  }
  return targets.size();
}

}  // namespace gridfed::transport
