#include "transport/tree_transport.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "overlay/node_id.hpp"
#include "sim/check.hpp"
#include "sim/hash.hpp"

namespace gridfed::transport {

TreeTransport::TreeTransport(TransportContext& ctx,
                             std::optional<network::LatencyModel> wan)
    : Transport(ctx, std::move(wan)) {
  const std::size_t n = ctx_.sites();
  GF_EXPECTS(n > 0);
  fanout_ = std::max<std::uint32_t>(1, ctx_.config().transport.tree_fanout);
  // Convergecast aggregation: the relays rank bids under the SAME rule
  // the origin's clearing engine will apply — both sides read the one
  // auction config, so they cannot disagree on the rank order (see
  // market/bid_scorer.hpp).  k == 1 is clamped to 2: Vickrey's payment
  // needs the runner-up's ask, so the winner alone is never enough.
  const auto& cfg = ctx_.config();
  prune_k_ = cfg.transport.bid_prune_k;
  if (prune_k_ == 1) prune_k_ = 2;
  encode_bids_ = cfg.transport.bid_delta_encode;
  shape_quantum_ = cfg.auction.bid_cache_quantum;
  scorer_ = market::BidScorer(cfg.auction.scoring,
                              cfg.auction.score_time_weight,
                              cfg.enforce_budget, cfg.enforce_deadline);
  // The tree is the k-ary heap layout over the overlay ring order: sort
  // by (ring key, index) — the same ids a ChordRing would assign the
  // directory peers — so the topology is deterministic and independent
  // of construction order.
  std::vector<std::pair<overlay::RingKey, cluster::ResourceIndex>> keyed;
  keyed.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto index = static_cast<cluster::ResourceIndex>(i);
    keyed.emplace_back(overlay::ring_hash(ctx_.spec_of(index).name), index);
  }
  std::sort(keyed.begin(), keyed.end());
  owner_at_.resize(n);
  pos_of_.resize(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    owner_at_[pos] = keyed[pos].second;
    pos_of_[keyed[pos].second] = static_cast<std::uint32_t>(pos);
  }
  dead_pos_.assign(n, 0);
}

bool TreeTransport::interior_relay(cluster::ResourceIndex owner) const {
  GF_EXPECTS(owner < pos_of_.size());
  const std::uint32_t pos = pos_of_[owner];
  const std::uint64_t first_child =
      static_cast<std::uint64_t>(pos) * fanout_ + 1;
  return pos != 0 && first_child < owner_at_.size();
}

cluster::ResourceIndex TreeTransport::parent_of(
    cluster::ResourceIndex owner) const {
  GF_EXPECTS(owner < pos_of_.size());
  const std::uint32_t pos = pos_of_[owner];
  return pos == 0 ? owner : owner_at_[parent_pos(pos)];
}

std::uint32_t TreeTransport::path_hops(cluster::ResourceIndex from,
                                       cluster::ResourceIndex to) const {
  GF_EXPECTS(from < pos_of_.size() && to < pos_of_.size());
  std::vector<std::uint32_t> path;
  path_positions(pos_of_[from], pos_of_[to], path);
  return static_cast<std::uint32_t>(path.size() - 1);
}

void TreeTransport::path_positions(std::uint32_t a, std::uint32_t b,
                                   std::vector<std::uint32_t>& out) const {
  // Heap indices decrease strictly toward the root, so climbing the
  // numerically larger endpoint converges on the lowest common ancestor
  // without precomputing depths.
  out.clear();
  scratch_up_.clear();
  std::uint32_t x = a;
  std::uint32_t y = b;
  while (x != y) {
    if (x > y) {
      out.push_back(x);
      x = parent_pos(x);
    } else {
      scratch_up_.push_back(y);
      y = parent_pos(y);
    }
  }
  out.push_back(x);  // the LCA
  out.insert(out.end(), scratch_up_.rbegin(), scratch_up_.rend());
}

void TreeTransport::relay_path(std::uint32_t a, std::uint32_t b,
                               std::vector<std::uint32_t>& out) const {
  path_positions(a, b, out);
  if (!any_dead_) return;
  // Excise confirmed-dead interior relays; endpoints stay (a dead
  // endpoint's delivery is suppressed at the sink, not rerouted).
  std::size_t w = 0;
  for (std::size_t r = 0; r < out.size(); ++r) {
    const bool endpoint = r == 0 || r + 1 == out.size();
    if (!endpoint && dead_pos_[out[r]] != 0) continue;
    out[w++] = out[r];
  }
  out.resize(w);
}

void TreeTransport::prune_retained() {
  if (retained_losses_.empty()) return;
  const sim::SimTime cutoff =
      ctx_.sim().now() - ctx_.config().membership.confirmation_bound();
  std::erase_if(retained_losses_, [cutoff](const LostSolicitation& entry) {
    return entry.at < cutoff;
  });
}

void TreeTransport::on_member_dead(cluster::ResourceIndex index) {
  GF_EXPECTS(index < pos_of_.size());
  const std::uint32_t pos = pos_of_[index];
  if (dead_pos_[pos] != 0) return;
  dead_pos_[pos] = 1;
  any_dead_ = true;
  ++repairs_;
  // Replay everything an unconfirmed-dead relay swallowed.  Entries
  // whose path crossed a *different* still-unconfirmed crash die on that
  // edge again and are re-retained by relay() for that member's own
  // confirmation, so nothing from a live origin is ever dropped.
  replay_storage_.clear();
  for (LostSolicitation& entry : retained_losses_) {
    if (!ctx_.site_up(entry.msg.from) || !ctx_.site_up(entry.msg.to)) {
      continue;  // origin or target itself is gone — nobody to serve
    }
    replay_storage_.push_back(std::move(entry.msg));
  }
  retained_losses_.clear();
  const std::uint64_t replayed_now = replay_storage_.size();
  if (replayed_now > 0) {
    std::vector<RelayItem> items;
    items.reserve(replay_storage_.size());
    for (std::size_t i = 0; i < replay_storage_.size(); ++i) {
      items.push_back(RelayItem{&replay_storage_[i], replay_storage_[i].to,
                                static_cast<std::uint32_t>(i + 1)});
    }
    const std::uint64_t relays_before = ctx_.ledger().relay_total();
    relay(items, core::MessageType::kCallForBids);
    repair_relay_msgs_ += ctx_.ledger().relay_total() - relays_before;
    replayed_ += replayed_now;
  }
#if GRIDFED_TRACE
  if (obs::Observer* o = ctx_.observer(); o != nullptr) {
    o->instant(ctx_.sim().now(), obs::SpanKind::kTreeRepair,
               o->transport_track(), index, pos, replayed_now);
    o->count(obs::Counter::kTreeRepairs);
    if (replayed_now > 0) {
      o->count(obs::Counter::kReplayedSolicitations, replayed_now);
    }
  }
#endif
}

void TreeTransport::on_member_left(cluster::ResourceIndex index) {
  GF_EXPECTS(index < pos_of_.size());
  dead_pos_[pos_of_[index]] = 1;
  any_dead_ = true;
}

void TreeTransport::on_member_joined(cluster::ResourceIndex index) {
  GF_EXPECTS(index < pos_of_.size());
  dead_pos_[pos_of_[index]] = 0;
  any_dead_ = false;
  for (const std::uint8_t dead : dead_pos_) {
    if (dead != 0) {
      any_dead_ = true;
      break;
    }
  }
}

void TreeTransport::unicast(core::Message msg) {
  switch (msg.type) {
    case core::MessageType::kBid: {
      // The convergecast queue and its flush scheduling are centralized
      // tree state, so hop onto the transport lane (an inline call in
      // sequential runs; a global-lane post stamped with the bidder's
      // shard clock under the parallel kernel).  kMessage priority keeps
      // same-instant bids ahead of the kControl flush they arm.
      const cluster::ResourceIndex from = msg.from;
      ctx_.post_transport_op(
          from, sim::EventPriority::kMessage,
          [this, msg = std::move(msg)]() mutable { enqueue_bid(std::move(msg)); });
      return;
    }
    default:
      // Latency-critical admission legs and payload transfers stay
      // point-to-point (see file comment in tree_transport.hpp).
      direct_unicast(std::move(msg));
      return;
  }
}

void TreeTransport::enqueue_bid(core::Message msg) {
  convergecast_queue_.push_back(std::move(msg));
  if (!convergecast_armed_) {
    convergecast_armed_ = true;
    // Runs after every delivery of this instant, so all bids the
    // instant produces share the flush.
    ctx_.sim().schedule_at(ctx_.sim().now(), sim::EventPriority::kControl,
                           [this] { flush_convergecast(); });
  }
}

std::uint64_t TreeTransport::multicast(
    core::Message msg, std::span<const cluster::ResourceIndex> targets,
    sim::SimTime not_after) {
  // The fan-out queue, the epoch wake, and the harvested job facts are
  // all centralized tree state: the whole enqueue trampolines to the
  // transport lane (inline sequentially).  Targets are copied out of
  // the caller's scratch span first — it dies with this call.
  const cluster::ResourceIndex from = msg.from;
  std::vector<cluster::ResourceIndex> copied(targets.begin(), targets.end());
  ctx_.post_transport_op(
      from, sim::EventPriority::kMessage,
      [this, msg = std::move(msg), copied = std::move(copied),
       not_after]() mutable {
        queue_fanout(std::move(msg), std::move(copied), not_after);
      });
  return 0;  // shared edge cost lands in the ledger's relay counters
}

void TreeTransport::queue_fanout(core::Message msg,
                                 std::vector<cluster::ResourceIndex> raw,
                                 sim::SimTime not_after) {
  // Group-addressed dissemination: a coalition costs one delivery to
  // its representative — the fan-out behind it rides the coalition
  // layer's local links, never the tree's wire edges.
  const std::span<const cluster::ResourceIndex> targets =
      collapse_groups(raw);
  if (targets.empty()) return;
  // Every solicitation fanning out through the tree teaches the relays
  // the job's QoS envelope and shape key, so the bids coming back can be
  // scored and delta-grouped on the convergecast path.
  if (msg.type == core::MessageType::kCallForBids &&
      (prune_k_ > 0 || encode_bids_)) {
    harvest_job_facts(msg);
  }
#if GRIDFED_TRACE
  if (fanout_queue_.empty()) {
    // First fan-out of a fresh epoch: the span runs until the flush.
    if (obs::Observer* o = ctx_.observer(); o != nullptr) {
      o->begin(ctx_.sim().now(), obs::SpanKind::kFanoutEpoch,
               o->transport_track(), ++epoch_seq_);
    }
  }
#endif
  fanout_queue_.push_back(
      PendingFanout{std::move(msg), {targets.begin(), targets.end()}});
  schedule_fanout_wake(not_after);
}

void TreeTransport::schedule_fanout_wake(sim::SimTime not_after) {
  const sim::SimTime now = ctx_.sim().now();
  const sim::SimTime epoch = ctx_.config().transport.tree_epoch;
  sim::SimTime boundary = now;
  if (epoch > 0.0) boundary = std::ceil(now / epoch) * epoch;
  // Release at the epoch boundary, earlier when the caller's slack
  // bound demands it, and never in the past.
  const sim::SimTime due = std::max(now, std::min(boundary, not_after));
  if (due < fanout_due_) fanout_due_ = due;
  ctx_.sim().schedule_at(due, sim::EventPriority::kControl,
                         [this] { maybe_flush_fanout(); });
}

void TreeTransport::maybe_flush_fanout() {
  // Every queued fan-out arms its own wake; only the one at the
  // earliest due time flushes (stale wakes find the queue empty or the
  // deadline moved), mirroring the policy-level flush pattern.
  if (fanout_queue_.empty()) return;
  if (ctx_.sim().now() < fanout_due_) return;
  flush_fanout();
}

void TreeTransport::flush_fanout() {
  prune_retained();
  std::vector<PendingFanout> queue = std::move(fanout_queue_);
  fanout_queue_.clear();
  fanout_due_ = sim::kTimeInfinity;
  scratch_items_.clear();
  for (std::size_t p = 0; p < queue.size(); ++p) {
    const PendingFanout& entry = queue[p];
    for (const cluster::ResourceIndex target : entry.targets) {
      if (target == entry.msg.from) continue;  // self needs no wire
      scratch_items_.push_back(
          RelayItem{&entry.msg, target, static_cast<std::uint32_t>(p + 1)});
    }
  }
#if GRIDFED_TRACE
  if (obs::Observer* o = ctx_.observer(); o != nullptr) {
    o->end(ctx_.sim().now(), obs::SpanKind::kFanoutEpoch,
           o->transport_track(), epoch_seq_, queue.size(),
           scratch_items_.size());
    o->observe(obs::Histo::kFanoutTargets,
               static_cast<double>(scratch_items_.size()));
  }
#endif
  relay(scratch_items_, core::MessageType::kCallForBids);
}

void TreeTransport::flush_convergecast() {
  convergecast_armed_ = false;
  std::vector<core::Message> queue = std::move(convergecast_queue_);
  convergecast_queue_.clear();
  const bool aggregate = prune_k_ > 0 || encode_bids_;
#if GRIDFED_TRACE
  const std::uint64_t pruned_before = bids_pruned_;
  const std::uint64_t saved_before = prune_bytes_saved_;
#endif
  if (aggregate) prune_convergecast(queue);
  scratch_items_.clear();
  scratch_items_.reserve(queue.size());
  for (std::size_t p = 0; p < queue.size(); ++p) {
    scratch_items_.push_back(RelayItem{&queue[p], queue[p].to,
                                       static_cast<std::uint32_t>(p + 1)});
  }
#if GRIDFED_TRACE
  if (obs::Observer* o = ctx_.observer(); o != nullptr) {
    o->instant(ctx_.sim().now(), obs::SpanKind::kConvergecast,
               o->transport_track(), 0, queue.size());
  }
#endif
  bid_frame_relay_ = aggregate && encode_bids_;
  relay(scratch_items_, core::MessageType::kBid);
  bid_frame_relay_ = false;
#if GRIDFED_TRACE
  if (aggregate) {
    if (obs::Observer* o = ctx_.observer(); o != nullptr) {
      const std::uint64_t pruned_now = bids_pruned_ - pruned_before;
      const std::uint64_t saved_now = prune_bytes_saved_ - saved_before;
      o->instant(ctx_.sim().now(), obs::SpanKind::kBidPrune,
                 o->transport_track(), 0, pruned_now, queue.size(),
                 static_cast<double>(saved_now));
      if (pruned_now > 0) o->count(obs::Counter::kBidsPruned, pruned_now);
      if (saved_now > 0) {
        o->count(obs::Counter::kBidPruneBytesSaved, saved_now);
      }
    }
  }
#endif
}

void TreeTransport::harvest_job_facts(const core::Message& msg) {
  if (msg.batch_jobs.empty()) {
    remember_job(msg.job);
    return;
  }
  for (const cluster::Job& job : msg.batch_jobs) remember_job(job);
}

void TreeTransport::remember_job(const cluster::Job& job) {
  JobFacts facts;
  facts.qos = market::JobQos::of(job);
  // The delta encoder's shape key: jobs whose solicited attributes fall
  // in the same log buckets produce near-identical quotes from one
  // provider (the same buckets the provider-side bid TTL cache reuses
  // quotes across), so their bids on one edge share a base quote.
  std::uint64_t h = sim::kFnvOffsetBasis;
  h = sim::fnv1a_mix(h, job.origin);
  h = sim::fnv1a_mix(h, job.processors);
  h = sim::fnv1a_mix(h, market::shape_bucket(job.length_mi, shape_quantum_));
  h = sim::fnv1a_mix(h,
                     market::shape_bucket(job.comm_overhead, shape_quantum_));
  job_facts_[job.id] = JobFacts{facts.qos, h};
}

void TreeTransport::prune_convergecast(std::vector<core::Message>& queue) {
  // One candidate per bid entry eligible for the rank walk (facts known
  // and admissible); inadmissible entries tombstone unconditionally and
  // facts-less feasible entries are never pruned (without the QoS
  // envelope the relay cannot reproduce the engine's rank order, and a
  // wrong order could prune inside the engine's prefix).
  struct Cand {
    cluster::JobId job = 0;
    std::uint32_t payload = 0;
    std::uint32_t entry = 0;
    market::Bid bid;
    double score = 0.0;
  };
  std::vector<Cand> cands;
  std::vector<std::uint32_t> path_len(queue.size(), 0);
  scratch_entry_meta_.resize(queue.size());
  for (std::size_t p = 0; p < queue.size(); ++p) {
    const core::Message& msg = queue[p];
    relay_path(pos_of_[msg.from], pos_of_[msg.to], scratch_path_);
    const auto plen = static_cast<std::uint32_t>(scratch_path_.size() - 1);
    path_len[p] = plen;
    const federation::ParticipantId bidder =
        groups_ ? groups_->participant_of(msg.from)
                : federation::ParticipantId(msg.from);
    const std::size_t entries =
        msg.batch_bids.empty() ? 1 : msg.batch_bids.size();
    auto& meta = scratch_entry_meta_[p];
    meta.assign(entries, BidEntryMeta{});
    for (std::size_t e = 0; e < entries; ++e) {
      market::Bid bid;
      bid.bidder = bidder;
      cluster::JobId job_id = 0;
      if (msg.batch_bids.empty()) {
        job_id = msg.job.id;
        bid.ask = msg.price;
        bid.completion_estimate = msg.completion_estimate;
        bid.feasible = msg.accept;
      } else {
        const core::BatchedBid& entry = msg.batch_bids[e];
        job_id = entry.job;
        bid.ask = entry.ask;
        bid.completion_estimate = entry.completion_estimate;
        bid.feasible = entry.feasible;
      }
      BidEntryMeta& m = meta[e];
      const auto it = job_facts_.find(job_id);
      m.shape = it != job_facts_.end()
                    ? it->second.shape
                    : sim::fnv1a_mix(sim::kFnvOffsetBasis, job_id);
      m.prune_hop = plen;  // survives every edge unless ranked out below
      if (prune_k_ == 0 || plen == 0) continue;
      const bool inadmissible = it != job_facts_.end()
                                    ? !scorer_.admissible(it->second.qos, bid)
                                    : !bid.feasible;
      if (inadmissible) {
        // The engine drops it before ranking, so no edge needs the
        // quote: tombstone from the very first hop.  It consumes no
        // rank slot — pruning it can never push a rankable bid out.
        m.prune_hop = 0;
      } else if (it != job_facts_.end()) {
        cands.push_back(Cand{job_id, static_cast<std::uint32_t>(p),
                             static_cast<std::uint32_t>(e), bid,
                             scorer_.score(it->second.qos, bid)});
      }
    }
  }

  if (!cands.empty()) {
    // Rank walk.  Per (job, edge), count the better-ranked candidates
    // whose payload path crosses the edge; a candidate falls out of the
    // per-edge top-k on the first edge where that count has reached k.
    // Counting ALL better-ranked crossers — including ones already
    // pruned upstream — is exactly the folded per-node top-k:
    // top-k(U top-k(A_i) u B) = top-k(U A_i u B), because an element
    // dropped inside a subtree was outranked by k elements that cross
    // every downstream edge with it.  Counts are therefore monotone
    // along each path (all of a job's bids funnel to one origin), so
    // the first saturated edge prunes the suffix.
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.job != b.job) return a.job < b.job;
      return market::BidScorer::rank_less(a.score, a.bid, b.score, b.bid);
    });
    scratch_rank_counts_.clear();
    for (const Cand& c : cands) {
      const core::Message& msg = queue[c.payload];
      relay_path(pos_of_[msg.from], pos_of_[msg.to], scratch_path_);
      BidEntryMeta& m = scratch_entry_meta_[c.payload][c.entry];
      for (std::size_t h = 0; h + 1 < scratch_path_.size(); ++h) {
        const std::uint64_t key = sim::fnv1a_mix(
            sim::fnv1a_mix(sim::kFnvOffsetBasis, c.job),
            edge_key(scratch_path_[h], scratch_path_[h + 1]));
        std::uint32_t& count = scratch_rank_counts_[key];
        if (count >= prune_k_ && static_cast<std::uint32_t>(h) < m.prune_hop) {
          m.prune_hop = static_cast<std::uint32_t>(h);
        }
        ++count;
      }
    }
  }

  // Tombstone every entry pruned anywhere on its path.  The entry is
  // still DELIVERED — the origin's book marks the bidder answered and
  // completes on the same instant it would unpruned — but the quote
  // fields are zeroed so any consumer ignoring the pruned flag fails
  // loudly (digest tests) instead of silently reading a quote the wire
  // no longer carries.
  for (std::size_t p = 0; p < queue.size(); ++p) {
    core::Message& msg = queue[p];
    const auto& meta = scratch_entry_meta_[p];
    if (msg.batch_bids.empty()) {
      if (meta[0].prune_hop < path_len[p]) {
        msg.bid_pruned = true;
        msg.price = 0.0;
        msg.completion_estimate = 0.0;
        msg.accept = false;
        ++bids_pruned_;
      }
      continue;
    }
    for (std::size_t e = 0; e < msg.batch_bids.size(); ++e) {
      if (meta[e].prune_hop >= path_len[p]) continue;
      core::BatchedBid& entry = msg.batch_bids[e];
      entry.pruned = true;
      entry.ask = 0.0;
      entry.completion_estimate = 0.0;
      entry.feasible = false;
      ++bids_pruned_;
    }
  }
}

void TreeTransport::relay(std::span<const RelayItem> items,
                          core::MessageType type) {
  if (items.empty()) return;
  const std::size_t n = owner_at_.size();
  scratch_edges_.clear();
  scratch_edge_index_.clear();
  if (bid_frame_relay_) {
    scratch_edge_frames_.clear();
    scratch_shape_seen_.clear();
  }

  // Pass 1 — edge usage.  A payload crosses each edge of the union of
  // its target paths once, however many targets sit behind it, so byte
  // booking dedups per (payload, edge) via the last_payload marker.
  // On an encoded convergecast (bid_frame_relay_) the per-edge cost is
  // the compact frame instead: tally merged sources and, per hop, each
  // entry as base quote / same-shape delta / tombstone, depending on
  // whether it survives to that hop and whether its shape group already
  // has a base on the edge.
  for (const RelayItem& item : items) {
    const std::uint32_t payload_id = item.payload_id;
    const std::uint64_t bytes = core::wire_bytes(*item.payload);
    relay_path(pos_of_[item.payload->from], pos_of_[item.target],
               scratch_path_);
    for (std::size_t h = 0; h + 1 < scratch_path_.size(); ++h) {
      const std::uint64_t key =
          static_cast<std::uint64_t>(scratch_path_[h]) * n +
          scratch_path_[h + 1];
      auto [it, inserted] = scratch_edge_index_.emplace(
          key, static_cast<std::uint32_t>(scratch_edges_.size()));
      if (inserted) {
        scratch_edges_.push_back(EdgeUse{scratch_path_[h],
                                         scratch_path_[h + 1], 0, 0, true,
                                         false});
        if (bid_frame_relay_) scratch_edge_frames_.push_back(EdgeFrame{});
      }
      EdgeUse& edge = scratch_edges_[it->second];
      // Same payload, same edge (shared subpath of two targets): the
      // payload's bytes cross once.
      const bool first_touch = edge.last_payload != payload_id;
      edge.last_payload = payload_id;
      if (!first_touch) continue;
      if (!bid_frame_relay_) {
        edge.bytes += bytes;
        continue;
      }
      EdgeFrame& frame = scratch_edge_frames_[it->second];
      frame.sources += 1;
      // What forwarding this payload whole would have cost the edge:
      // the pre-prune size (tombstones restored to full quotes), so
      // bid_prune_bytes_saved_ measures prune AND encoding together.
      const auto& meta = scratch_entry_meta_[payload_id - 1];
      frame.naive_bytes += core::kMessageHeaderBytes + core::kJobWireBytes +
                           core::kBidWireBytes * meta.size();
      for (const BidEntryMeta& m : meta) {
        if (m.prune_hop <= h) {
          frame.tombstones += 1;
          continue;
        }
        const std::uint64_t shape_key = sim::fnv1a_mix(
            sim::fnv1a_mix(sim::kFnvOffsetBasis,
                           static_cast<std::uint64_t>(it->second)),
            m.shape);
        if (scratch_shape_seen_.insert(shape_key).second) {
          frame.bases += 1;
        } else {
          frame.deltas += 1;
        }
      }
    }
  }

  // Pass 2 — one wire message per directed edge, booked in first-touch
  // order (deterministic), each drawing its own loss verdict.  Lost
  // edge messages are still recorded: a lost send costs its send, as in
  // the point-to-point seed.
  for (std::size_t i = 0; i < scratch_edges_.size(); ++i) {
    EdgeUse& edge = scratch_edges_[i];
    if (bid_frame_relay_) {
      const EdgeFrame& frame = scratch_edge_frames_[i];
      edge.bytes = core::encoded_bid_frame_bytes(frame.sources, frame.bases,
                                                 frame.deltas,
                                                 frame.tombstones);
      // Every component of the frame is <= its naive counterpart (one
      // 64B header amortized over >= one 160B-overhead payload, 16B per
      // further payload, quotes <= 32B), so the difference never
      // underflows.
      prune_bytes_saved_ += frame.naive_bytes - edge.bytes;
    }
    ctx_.ledger().record_relay(owner_at_[edge.from_pos],
                               owner_at_[edge.to_pos], type, edge.bytes);
    // Loss lottery per wire message, keyed by the sending relay.
    edge.alive = !lost(type, owner_at_[edge.from_pos]);
    // Ground-truth churn: a crashed endpoint physically fails the edge
    // even before the failure detector confirms it.  Checked after the
    // lottery so the drop-RNG sequence is unchanged when churn is off.
    if (edge.alive && (!ctx_.site_up(owner_at_[edge.from_pos]) ||
                       !ctx_.site_up(owner_at_[edge.to_pos]))) {
      edge.alive = false;
      edge.down = true;
    }
  }
#if GRIDFED_TRACE
  if (obs::Observer* o = ctx_.observer(); o != nullptr) {
    std::uint64_t relay_bytes = 0;
    for (const EdgeUse& edge : scratch_edges_) relay_bytes += edge.bytes;
    o->instant(ctx_.sim().now(), obs::SpanKind::kRelay, o->transport_track(),
               0, scratch_edges_.size(), items.size(),
               static_cast<double>(relay_bytes));
  }
#endif

  // Pass 3 — deliver every payload whose whole path survived, after the
  // summed per-hop control delay (size-aware under the WAN model, like
  // every direct leg: a relayed payload pays its own transmission time
  // on each store-and-forward hop).
  for (const RelayItem& item : items) {
    const std::uint64_t bytes = core::wire_bytes(*item.payload);
    relay_path(pos_of_[item.payload->from], pos_of_[item.target],
               scratch_path_);
    bool alive = true;
    bool died_down = false;
    sim::SimTime delay = 0.0;
    for (std::size_t h = 0; h + 1 < scratch_path_.size(); ++h) {
      const std::uint64_t key =
          static_cast<std::uint64_t>(scratch_path_[h]) * n +
          scratch_path_[h + 1];
      const EdgeUse& edge = scratch_edges_[scratch_edge_index_.at(key)];
      if (!edge.alive) {
        alive = false;
        died_down = edge.down;
        break;
      }
      const cluster::ResourceIndex a = owner_at_[scratch_path_[h]];
      const cluster::ResourceIndex b = owner_at_[scratch_path_[h + 1]];
      delay += wan_ ? wan_->control_delay(a, b, bytes)
                    : ctx_.config().network_latency;
    }
    if (!alive) {
      // A solicitation swallowed by a crashed (not yet confirmed) relay
      // is retained for replay at confirmation — but only when both the
      // origin and the target are themselves still up: there is nobody
      // to serve otherwise.  Lottery losses keep the seed's semantics.
      if (died_down && type == core::MessageType::kCallForBids &&
          ctx_.config().membership.active() && ctx_.site_up(item.target) &&
          ctx_.site_up(item.payload->from)) {
        core::Message copy = *item.payload;
        copy.to = item.target;
        retained_losses_.push_back(
            LostSolicitation{ctx_.sim().now(), std::move(copy)});
      }
      continue;
    }
    core::Message out = *item.payload;
    out.to = item.target;
    out.via_overlay = true;
    if (duplicated(out.type, out.from)) {
      // The final hop delivered twice: one extra edge message.  Under
      // frame accounting the duplicate is a one-payload frame (every
      // surviving quote is its own base — no cross-payload groups to
      // delta against on a retransmission).
      const std::size_t last = scratch_path_.size() - 1;
      const cluster::ResourceIndex hop_from =
          owner_at_[scratch_path_[last > 0 ? last - 1 : 0]];
      if (hop_from != item.target) {
        std::uint64_t dup_bytes = core::wire_bytes(out);
        if (bid_frame_relay_) {
          const auto& meta = scratch_entry_meta_[item.payload_id - 1];
          std::uint64_t live = 0;
          for (const BidEntryMeta& m : meta) {
            if (m.prune_hop >= last) ++live;
          }
          dup_bytes = core::encoded_bid_frame_bytes(
              1, live, 0, meta.size() - live);
        }
        ctx_.ledger().record_relay(hop_from, item.target, type, dup_bytes);
      }
      schedule_delivery(out, delay);
    }
    schedule_delivery(std::move(out), delay);
  }
}

}  // namespace gridfed::transport
