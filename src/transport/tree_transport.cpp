#include "transport/tree_transport.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "overlay/node_id.hpp"
#include "sim/check.hpp"

namespace gridfed::transport {

TreeTransport::TreeTransport(TransportContext& ctx,
                             std::optional<network::LatencyModel> wan)
    : Transport(ctx, std::move(wan)) {
  const std::size_t n = ctx_.sites();
  GF_EXPECTS(n > 0);
  fanout_ = std::max<std::uint32_t>(1, ctx_.config().transport.tree_fanout);
  // The tree is the k-ary heap layout over the overlay ring order: sort
  // by (ring key, index) — the same ids a ChordRing would assign the
  // directory peers — so the topology is deterministic and independent
  // of construction order.
  std::vector<std::pair<overlay::RingKey, cluster::ResourceIndex>> keyed;
  keyed.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto index = static_cast<cluster::ResourceIndex>(i);
    keyed.emplace_back(overlay::ring_hash(ctx_.spec_of(index).name), index);
  }
  std::sort(keyed.begin(), keyed.end());
  owner_at_.resize(n);
  pos_of_.resize(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    owner_at_[pos] = keyed[pos].second;
    pos_of_[keyed[pos].second] = static_cast<std::uint32_t>(pos);
  }
  dead_pos_.assign(n, 0);
}

bool TreeTransport::interior_relay(cluster::ResourceIndex owner) const {
  GF_EXPECTS(owner < pos_of_.size());
  const std::uint32_t pos = pos_of_[owner];
  const std::uint64_t first_child =
      static_cast<std::uint64_t>(pos) * fanout_ + 1;
  return pos != 0 && first_child < owner_at_.size();
}

cluster::ResourceIndex TreeTransport::parent_of(
    cluster::ResourceIndex owner) const {
  GF_EXPECTS(owner < pos_of_.size());
  const std::uint32_t pos = pos_of_[owner];
  return pos == 0 ? owner : owner_at_[parent_pos(pos)];
}

std::uint32_t TreeTransport::path_hops(cluster::ResourceIndex from,
                                       cluster::ResourceIndex to) const {
  GF_EXPECTS(from < pos_of_.size() && to < pos_of_.size());
  std::vector<std::uint32_t> path;
  path_positions(pos_of_[from], pos_of_[to], path);
  return static_cast<std::uint32_t>(path.size() - 1);
}

void TreeTransport::path_positions(std::uint32_t a, std::uint32_t b,
                                   std::vector<std::uint32_t>& out) const {
  // Heap indices decrease strictly toward the root, so climbing the
  // numerically larger endpoint converges on the lowest common ancestor
  // without precomputing depths.
  out.clear();
  scratch_up_.clear();
  std::uint32_t x = a;
  std::uint32_t y = b;
  while (x != y) {
    if (x > y) {
      out.push_back(x);
      x = parent_pos(x);
    } else {
      scratch_up_.push_back(y);
      y = parent_pos(y);
    }
  }
  out.push_back(x);  // the LCA
  out.insert(out.end(), scratch_up_.rbegin(), scratch_up_.rend());
}

void TreeTransport::relay_path(std::uint32_t a, std::uint32_t b,
                               std::vector<std::uint32_t>& out) const {
  path_positions(a, b, out);
  if (!any_dead_) return;
  // Excise confirmed-dead interior relays; endpoints stay (a dead
  // endpoint's delivery is suppressed at the sink, not rerouted).
  std::size_t w = 0;
  for (std::size_t r = 0; r < out.size(); ++r) {
    const bool endpoint = r == 0 || r + 1 == out.size();
    if (!endpoint && dead_pos_[out[r]] != 0) continue;
    out[w++] = out[r];
  }
  out.resize(w);
}

void TreeTransport::prune_retained() {
  if (retained_losses_.empty()) return;
  const sim::SimTime cutoff =
      ctx_.sim().now() - ctx_.config().membership.confirmation_bound();
  std::erase_if(retained_losses_, [cutoff](const LostSolicitation& entry) {
    return entry.at < cutoff;
  });
}

void TreeTransport::on_member_dead(cluster::ResourceIndex index) {
  GF_EXPECTS(index < pos_of_.size());
  const std::uint32_t pos = pos_of_[index];
  if (dead_pos_[pos] != 0) return;
  dead_pos_[pos] = 1;
  any_dead_ = true;
  ++repairs_;
  // Replay everything an unconfirmed-dead relay swallowed.  Entries
  // whose path crossed a *different* still-unconfirmed crash die on that
  // edge again and are re-retained by relay() for that member's own
  // confirmation, so nothing from a live origin is ever dropped.
  replay_storage_.clear();
  for (LostSolicitation& entry : retained_losses_) {
    if (!ctx_.site_up(entry.msg.from) || !ctx_.site_up(entry.msg.to)) {
      continue;  // origin or target itself is gone — nobody to serve
    }
    replay_storage_.push_back(std::move(entry.msg));
  }
  retained_losses_.clear();
  const std::uint64_t replayed_now = replay_storage_.size();
  if (replayed_now > 0) {
    std::vector<RelayItem> items;
    items.reserve(replay_storage_.size());
    for (std::size_t i = 0; i < replay_storage_.size(); ++i) {
      items.push_back(RelayItem{&replay_storage_[i], replay_storage_[i].to,
                                static_cast<std::uint32_t>(i + 1)});
    }
    const std::uint64_t relays_before = ctx_.ledger().relay_total();
    relay(items, core::MessageType::kCallForBids);
    repair_relay_msgs_ += ctx_.ledger().relay_total() - relays_before;
    replayed_ += replayed_now;
  }
#if GRIDFED_TRACE
  if (obs::Observer* o = ctx_.observer(); o != nullptr) {
    o->instant(ctx_.sim().now(), obs::SpanKind::kTreeRepair,
               o->transport_track(), index, pos, replayed_now);
    o->count(obs::Counter::kTreeRepairs);
    if (replayed_now > 0) {
      o->count(obs::Counter::kReplayedSolicitations, replayed_now);
    }
  }
#endif
}

void TreeTransport::on_member_left(cluster::ResourceIndex index) {
  GF_EXPECTS(index < pos_of_.size());
  dead_pos_[pos_of_[index]] = 1;
  any_dead_ = true;
}

void TreeTransport::on_member_joined(cluster::ResourceIndex index) {
  GF_EXPECTS(index < pos_of_.size());
  dead_pos_[pos_of_[index]] = 0;
  any_dead_ = false;
  for (const std::uint8_t dead : dead_pos_) {
    if (dead != 0) {
      any_dead_ = true;
      break;
    }
  }
}

void TreeTransport::unicast(core::Message msg) {
  switch (msg.type) {
    case core::MessageType::kBid: {
      convergecast_queue_.push_back(std::move(msg));
      if (!convergecast_armed_) {
        convergecast_armed_ = true;
        // Runs after every delivery of this instant, so all bids the
        // instant produces share the flush.
        ctx_.sim().schedule_at(ctx_.sim().now(), sim::EventPriority::kControl,
                               [this] { flush_convergecast(); });
      }
      return;
    }
    default:
      // Latency-critical admission legs and payload transfers stay
      // point-to-point (see file comment in tree_transport.hpp).
      direct_unicast(std::move(msg));
      return;
  }
}

std::uint64_t TreeTransport::multicast(
    core::Message msg, std::span<const cluster::ResourceIndex> targets,
    sim::SimTime not_after) {
  // Group-addressed dissemination: a coalition costs one delivery to
  // its representative — the fan-out behind it rides the coalition
  // layer's local links, never the tree's wire edges.
  targets = collapse_groups(targets);
  if (targets.empty()) return 0;
#if GRIDFED_TRACE
  if (fanout_queue_.empty()) {
    // First fan-out of a fresh epoch: the span runs until the flush.
    if (obs::Observer* o = ctx_.observer(); o != nullptr) {
      o->begin(ctx_.sim().now(), obs::SpanKind::kFanoutEpoch,
               o->transport_track(), ++epoch_seq_);
    }
  }
#endif
  fanout_queue_.push_back(
      PendingFanout{std::move(msg), {targets.begin(), targets.end()}});
  schedule_fanout_wake(not_after);
  return 0;  // shared edge cost lands in the ledger's relay counters
}

void TreeTransport::schedule_fanout_wake(sim::SimTime not_after) {
  const sim::SimTime now = ctx_.sim().now();
  const sim::SimTime epoch = ctx_.config().transport.tree_epoch;
  sim::SimTime boundary = now;
  if (epoch > 0.0) boundary = std::ceil(now / epoch) * epoch;
  // Release at the epoch boundary, earlier when the caller's slack
  // bound demands it, and never in the past.
  const sim::SimTime due = std::max(now, std::min(boundary, not_after));
  if (due < fanout_due_) fanout_due_ = due;
  ctx_.sim().schedule_at(due, sim::EventPriority::kControl,
                         [this] { maybe_flush_fanout(); });
}

void TreeTransport::maybe_flush_fanout() {
  // Every queued fan-out arms its own wake; only the one at the
  // earliest due time flushes (stale wakes find the queue empty or the
  // deadline moved), mirroring the policy-level flush pattern.
  if (fanout_queue_.empty()) return;
  if (ctx_.sim().now() < fanout_due_) return;
  flush_fanout();
}

void TreeTransport::flush_fanout() {
  prune_retained();
  std::vector<PendingFanout> queue = std::move(fanout_queue_);
  fanout_queue_.clear();
  fanout_due_ = sim::kTimeInfinity;
  scratch_items_.clear();
  for (std::size_t p = 0; p < queue.size(); ++p) {
    const PendingFanout& entry = queue[p];
    for (const cluster::ResourceIndex target : entry.targets) {
      if (target == entry.msg.from) continue;  // self needs no wire
      scratch_items_.push_back(
          RelayItem{&entry.msg, target, static_cast<std::uint32_t>(p + 1)});
    }
  }
#if GRIDFED_TRACE
  if (obs::Observer* o = ctx_.observer(); o != nullptr) {
    o->end(ctx_.sim().now(), obs::SpanKind::kFanoutEpoch,
           o->transport_track(), epoch_seq_, queue.size(),
           scratch_items_.size());
    o->observe(obs::Histo::kFanoutTargets,
               static_cast<double>(scratch_items_.size()));
  }
#endif
  relay(scratch_items_, core::MessageType::kCallForBids);
}

void TreeTransport::flush_convergecast() {
  convergecast_armed_ = false;
  std::vector<core::Message> queue = std::move(convergecast_queue_);
  convergecast_queue_.clear();
  scratch_items_.clear();
  scratch_items_.reserve(queue.size());
  for (std::size_t p = 0; p < queue.size(); ++p) {
    scratch_items_.push_back(RelayItem{&queue[p], queue[p].to,
                                       static_cast<std::uint32_t>(p + 1)});
  }
#if GRIDFED_TRACE
  if (obs::Observer* o = ctx_.observer(); o != nullptr) {
    o->instant(ctx_.sim().now(), obs::SpanKind::kConvergecast,
               o->transport_track(), 0, queue.size());
  }
#endif
  relay(scratch_items_, core::MessageType::kBid);
}

void TreeTransport::relay(std::span<const RelayItem> items,
                          core::MessageType type) {
  if (items.empty()) return;
  const std::size_t n = owner_at_.size();
  scratch_edges_.clear();
  scratch_edge_index_.clear();

  // Pass 1 — edge usage.  A payload crosses each edge of the union of
  // its target paths once, however many targets sit behind it, so byte
  // booking dedups per (payload, edge) via the last_payload marker.
  for (const RelayItem& item : items) {
    const std::uint32_t payload_id = item.payload_id;
    const std::uint64_t bytes = core::wire_bytes(*item.payload);
    relay_path(pos_of_[item.payload->from], pos_of_[item.target],
               scratch_path_);
    for (std::size_t h = 0; h + 1 < scratch_path_.size(); ++h) {
      const std::uint64_t key =
          static_cast<std::uint64_t>(scratch_path_[h]) * n +
          scratch_path_[h + 1];
      auto [it, inserted] = scratch_edge_index_.emplace(
          key, static_cast<std::uint32_t>(scratch_edges_.size()));
      if (inserted) {
        scratch_edges_.push_back(EdgeUse{scratch_path_[h],
                                         scratch_path_[h + 1], 0, 0, true,
                                         false});
      }
      EdgeUse& edge = scratch_edges_[it->second];
      // Same payload, same edge (shared subpath of two targets): the
      // payload's bytes cross once.
      const bool first_touch = edge.last_payload != payload_id;
      edge.last_payload = payload_id;
      if (first_touch) edge.bytes += bytes;
    }
  }

  // Pass 2 — one wire message per directed edge, booked in first-touch
  // order (deterministic), each drawing its own loss verdict.  Lost
  // edge messages are still recorded: a lost send costs its send, as in
  // the point-to-point seed.
  for (EdgeUse& edge : scratch_edges_) {
    ctx_.ledger().record_relay(owner_at_[edge.from_pos],
                               owner_at_[edge.to_pos], type, edge.bytes);
    edge.alive = !lost(type);  // loss lottery per wire message
    // Ground-truth churn: a crashed endpoint physically fails the edge
    // even before the failure detector confirms it.  Checked after the
    // lottery so the drop-RNG sequence is unchanged when churn is off.
    if (edge.alive && (!ctx_.site_up(owner_at_[edge.from_pos]) ||
                       !ctx_.site_up(owner_at_[edge.to_pos]))) {
      edge.alive = false;
      edge.down = true;
    }
  }
#if GRIDFED_TRACE
  if (obs::Observer* o = ctx_.observer(); o != nullptr) {
    std::uint64_t relay_bytes = 0;
    for (const EdgeUse& edge : scratch_edges_) relay_bytes += edge.bytes;
    o->instant(ctx_.sim().now(), obs::SpanKind::kRelay, o->transport_track(),
               0, scratch_edges_.size(), items.size(),
               static_cast<double>(relay_bytes));
  }
#endif

  // Pass 3 — deliver every payload whose whole path survived, after the
  // summed per-hop control delay (size-aware under the WAN model, like
  // every direct leg: a relayed payload pays its own transmission time
  // on each store-and-forward hop).
  for (const RelayItem& item : items) {
    const std::uint64_t bytes = core::wire_bytes(*item.payload);
    relay_path(pos_of_[item.payload->from], pos_of_[item.target],
               scratch_path_);
    bool alive = true;
    bool died_down = false;
    sim::SimTime delay = 0.0;
    for (std::size_t h = 0; h + 1 < scratch_path_.size(); ++h) {
      const std::uint64_t key =
          static_cast<std::uint64_t>(scratch_path_[h]) * n +
          scratch_path_[h + 1];
      const EdgeUse& edge = scratch_edges_[scratch_edge_index_.at(key)];
      if (!edge.alive) {
        alive = false;
        died_down = edge.down;
        break;
      }
      const cluster::ResourceIndex a = owner_at_[scratch_path_[h]];
      const cluster::ResourceIndex b = owner_at_[scratch_path_[h + 1]];
      delay += wan_ ? wan_->control_delay(a, b, bytes)
                    : ctx_.config().network_latency;
    }
    if (!alive) {
      // A solicitation swallowed by a crashed (not yet confirmed) relay
      // is retained for replay at confirmation — but only when both the
      // origin and the target are themselves still up: there is nobody
      // to serve otherwise.  Lottery losses keep the seed's semantics.
      if (died_down && type == core::MessageType::kCallForBids &&
          ctx_.config().membership.active() && ctx_.site_up(item.target) &&
          ctx_.site_up(item.payload->from)) {
        core::Message copy = *item.payload;
        copy.to = item.target;
        retained_losses_.push_back(
            LostSolicitation{ctx_.sim().now(), std::move(copy)});
      }
      continue;
    }
    core::Message out = *item.payload;
    out.to = item.target;
    out.via_overlay = true;
    if (duplicated(out.type)) {
      // The final hop delivered twice: one extra edge message.
      const std::size_t last = scratch_path_.size() - 1;
      const cluster::ResourceIndex hop_from =
          owner_at_[scratch_path_[last > 0 ? last - 1 : 0]];
      if (hop_from != item.target) {
        ctx_.ledger().record_relay(hop_from, item.target, type,
                                   core::wire_bytes(out));
      }
      schedule_delivery(out, delay);
    }
    schedule_delivery(std::move(out), delay);
  }
}

}  // namespace gridfed::transport
