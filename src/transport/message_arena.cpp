#include "transport/message_arena.hpp"

namespace gridfed::transport {

std::span<const cluster::Job> MessageArena::append(
    std::span<const cluster::Job* const> jobs) {
  std::vector<cluster::Job>& block = blocks_.emplace_back();
  block.reserve(jobs.size());
  for (const cluster::Job* job : jobs) block.push_back(*job);
  size_ += block.size();
  return {block.data(), block.size()};
}

}  // namespace gridfed::transport
