#pragma once
// Arena backing the batched call-for-bids payload.  A solicitation flush
// used to copy every queued Job into each provider's Message — 50
// providers meant 50 copies of the same job list.  Instead the flush
// writes each *distinct* job list into one shared MessageArena and every
// Message carries a span view plus a shared_ptr keep-alive, so payload
// construction is O(jobs) per flush instead of O(jobs x providers) and
// the storage dies exactly when the last in-flight copy of the message
// does (delivery events, drop paths and duplicated deliveries included —
// the ASan suite leans on this).
//
// Spans stay valid as the arena grows because each append gets its own
// fixed-size block; nothing is ever moved after it is written.

#include <memory>
#include <span>
#include <vector>

#include "cluster/job.hpp"

namespace gridfed::transport {

/// Stable-address job storage for one solicitation flush.
class MessageArena {
 public:
  MessageArena() = default;
  MessageArena(const MessageArena&) = delete;
  MessageArena& operator=(const MessageArena&) = delete;

  /// Copies `jobs` (given as pointers, the flush's bucket form) into a
  /// fresh block and returns the contiguous view.  The view outlives any
  /// later append (blocks never reallocate).
  [[nodiscard]] std::span<const cluster::Job> append(
      std::span<const cluster::Job* const> jobs);

  /// Jobs stored across every block (tests / diagnostics).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  std::vector<std::vector<cluster::Job>> blocks_;  // each filled once
  std::size_t size_ = 0;
};

/// Shared handle messages carry: copies of a batched Message share one
/// arena; the storage is freed when the last copy is destroyed.
using ArenaHandle = std::shared_ptr<const MessageArena>;

}  // namespace gridfed::transport
