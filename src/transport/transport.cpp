#include "transport/transport.hpp"

#include <algorithm>
#include <utility>

#include "transport/direct_transport.hpp"
#include "transport/tree_transport.hpp"

namespace gridfed::transport {

std::span<const cluster::ResourceIndex> Transport::collapse_groups(
    std::span<const cluster::ResourceIndex> targets) {
  if (groups_ == nullptr) return targets;
  static thread_local std::vector<cluster::ResourceIndex> scratch;
  scratch.clear();
  for (const cluster::ResourceIndex target : targets) {
    const cluster::ResourceIndex rep =
        groups_->representative(groups_->participant_of(target));
    if (std::find(scratch.begin(), scratch.end(), rep) == scratch.end()) {
      scratch.push_back(rep);
    }
  }
  return scratch;
}

sim::SimTime Transport::delay_for(const core::Message& msg) const {
  const auto& cfg = ctx_.config();
  if (!wan_) return cfg.network_latency;
  if (msg.type == core::MessageType::kJobSubmission) {
    // The job payload additionally ships Eq. 1's data volume.
    return wan_->transfer_time(
        msg.from, msg.to,
        cluster::data_transferred(msg.job, ctx_.spec_of(msg.job.origin)));
  }
  return wan_->control_delay(msg.from, msg.to, core::wire_bytes(msg));
}

void Transport::schedule_delivery(core::Message msg, sim::SimTime delay) {
  ctx_.post_delivery(std::move(msg), delay);
}

void Transport::direct_unicast(core::Message msg) {
  ctx_.ledger().record(msg);
  if (lost(msg.type, msg.from)) return;
  const sim::SimTime delay = delay_for(msg);
  if (duplicated(msg.type, msg.from)) {
    // The network delivered twice: a second wire message with the same
    // content (recorded as such), arriving at the same instant.
    ctx_.ledger().record(msg);
    schedule_delivery(msg, delay);
  }
  schedule_delivery(std::move(msg), delay);
}

std::unique_ptr<Transport> make_transport(
    TransportContext& ctx, std::optional<network::LatencyModel> wan) {
  switch (ctx.config().transport.kind) {
    case TransportKind::kDirect:
      return std::make_unique<DirectTransport>(ctx, std::move(wan));
    case TransportKind::kTree:
      return std::make_unique<TreeTransport>(ctx, std::move(wan));
  }
  __builtin_unreachable();
}

}  // namespace gridfed::transport
