#include "market/bid_pricing.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace gridfed::market {

double bid_price(BidPricingStrategy strategy, double true_cost, double load,
                 double markup, const economy::DynamicPricingConfig& pricing) {
  GF_EXPECTS(true_cost >= 0.0);
  GF_EXPECTS(load >= 0.0 && load <= 1.0);
  GF_EXPECTS(markup >= 0.0);
  switch (strategy) {
    case BidPricingStrategy::kTrueCost:
      return true_cost;
    case BidPricingStrategy::kMarkup:
      return true_cost * (1.0 + markup);
    case BidPricingStrategy::kLoadAdaptive: {
      const double factor = std::clamp(
          1.0 + pricing.eta * (load - pricing.target_load),
          pricing.floor_factor, pricing.ceiling_factor);
      return true_cost * factor;
    }
  }
  return true_cost;
}

}  // namespace gridfed::market
