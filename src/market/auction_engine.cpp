#include "market/auction_engine.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace gridfed::market {

AuctionBook::AuctionBook(cluster::JobId job,
                         std::vector<cluster::ResourceIndex> solicited)
    : job_(job),
      solicited_(std::move(solicited)),
      answered_(solicited_.size(), false),
      outstanding_(solicited_.size()) {
  bids_.reserve(solicited_.size());
}

void AuctionBook::reopen(cluster::JobId job,
                         std::span<const cluster::ResourceIndex> solicited) {
  job_ = job;
  solicited_.assign(solicited.begin(), solicited.end());
  answered_.assign(solicited_.size(), false);
  outstanding_ = solicited_.size();
  bids_.clear();
  bids_.reserve(solicited_.size());
}

bool AuctionBook::add(const Bid& bid) {
  for (std::size_t i = 0; i < solicited_.size(); ++i) {
    if (solicited_[i] != bid.bidder) continue;
    if (answered_[i]) return false;  // duplicate
    answered_[i] = true;
    --outstanding_;
    bids_.push_back(bid);
    return true;
  }
  return false;  // unsolicited
}

std::vector<Award> AuctionEngine::clear(const cluster::Job& job,
                                        const std::vector<Bid>& bids) const {
  std::vector<Bid> feasible;
  feasible.reserve(bids.size());
  for (const Bid& bid : bids) {
    if (!bid.feasible) continue;
    GF_EXPECTS(bid.ask >= 0.0);
    if (enforce_budget_ && bid.ask > job.budget) continue;
    if (enforce_deadline_ &&
        bid.completion_estimate > job.absolute_deadline()) {
      continue;
    }
    feasible.push_back(bid);
  }
  // Lowest ask wins; ties break on the earlier completion guarantee, then
  // the lower resource index — a total order, so clearing is deterministic
  // for any arrival order of the bids.
  std::sort(feasible.begin(), feasible.end(),
            [](const Bid& a, const Bid& b) {
              if (a.ask != b.ask) return a.ask < b.ask;
              if (a.completion_estimate != b.completion_estimate) {
                return a.completion_estimate < b.completion_estimate;
              }
              return a.bidder < b.bidder;
            });

  std::vector<Award> ranking;
  ranking.reserve(feasible.size());
  for (std::size_t i = 0; i < feasible.size(); ++i) {
    double payment = feasible[i].ask;
    if (rule_ == ClearingRule::kVickrey) {
      if (i + 1 < feasible.size()) {
        payment = feasible[i + 1].ask;
      } else if (enforce_budget_) {
        // Lone (or last-ranked) bidder: the reserve price — the user's
        // budget — plays the second bid, as in a Vickrey auction with a
        // reserve.  Without budget enforcement there is no reserve and the
        // ask itself is the only defensible payment.
        payment = job.budget;
      }
    }
    ranking.push_back(Award{feasible[i], payment});
  }
  return ranking;
}

}  // namespace gridfed::market
