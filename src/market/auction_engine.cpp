#include "market/auction_engine.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace gridfed::market {

AuctionBook::AuctionBook(cluster::JobId job,
                         std::vector<federation::ParticipantId> solicited)
    : job_(job),
      solicited_(std::move(solicited)),
      answered_(solicited_.size(), false),
      outstanding_(solicited_.size()) {
  bids_.reserve(solicited_.size());
}

void AuctionBook::reopen(cluster::JobId job,
                         std::span<const federation::ParticipantId> solicited) {
  job_ = job;
  solicited_.assign(solicited.begin(), solicited.end());
  answered_.assign(solicited_.size(), false);
  outstanding_ = solicited_.size();
  pruned_ = 0;
  bids_.clear();
  bids_.reserve(solicited_.size());
}

bool AuctionBook::add(const Bid& bid) {
  for (std::size_t i = 0; i < solicited_.size(); ++i) {
    if (solicited_[i] != bid.bidder) continue;
    if (answered_[i]) return false;  // duplicate
    answered_[i] = true;
    --outstanding_;
    bids_.push_back(bid);
    return true;
  }
  return false;  // unsolicited
}

bool AuctionBook::add_pruned(federation::ParticipantId bidder) {
  for (std::size_t i = 0; i < solicited_.size(); ++i) {
    if (solicited_[i] != bidder) continue;
    if (answered_[i]) return false;  // duplicate (re-delivered tombstone)
    answered_[i] = true;
    --outstanding_;
    ++pruned_;
    return true;
  }
  return false;  // unsolicited
}

std::vector<Award> AuctionEngine::clear(const cluster::Job& job,
                                        const std::vector<Bid>& bids) const {
  struct Scored {
    Bid bid;
    double score;
  };
  const JobQos qos = JobQos::of(job);
  std::vector<Scored> feasible;
  feasible.reserve(bids.size());
  for (const Bid& bid : bids) {
    GF_EXPECTS(bid.ask >= 0.0 || !bid.feasible);
    if (!scorer_.admissible(qos, bid)) continue;
    feasible.push_back(Scored{bid, scorer_.score(qos, bid)});
  }
  // Best score wins under the scorer's shared total order (score, ask,
  // completion guarantee, participant id), so clearing is deterministic
  // for any arrival order of the bids — and identical to the rank order
  // the pruning relays preserve.  (Singleton ids equal their cluster
  // index, so solo clearing orders exactly as the pre-participant
  // engine did.)
  std::sort(feasible.begin(), feasible.end(),
            [](const Scored& a, const Scored& b) {
              return BidScorer::rank_less(a.score, a.bid, b.score, b.bid);
            });

  std::vector<Award> ranking;
  ranking.reserve(feasible.size());
  for (std::size_t i = 0; i < feasible.size(); ++i) {
    double payment = feasible[i].bid.ask;
    if (rule_ == ClearingRule::kVickrey) {
      if (i + 1 < feasible.size()) {
        // Under a non-price score the next-ranked ask can undercut this
        // one; flooring at the own ask keeps the payment individually
        // rational (generalized second price, see file comment).
        payment = std::max(feasible[i].bid.ask, feasible[i + 1].bid.ask);
      } else if (scorer_.enforce_budget()) {
        // Lone (or last-ranked) bidder: the reserve price — the user's
        // budget — plays the second bid, as in a Vickrey auction with a
        // reserve.  Without budget enforcement there is no reserve and the
        // ask itself is the only defensible payment.
        payment = job.budget;
      }
    }
    ranking.push_back(Award{feasible[i].bid, payment});
  }
  return ranking;
}

}  // namespace gridfed::market
