#include "market/auction_engine.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace gridfed::market {

AuctionBook::AuctionBook(cluster::JobId job,
                         std::vector<federation::ParticipantId> solicited)
    : job_(job),
      solicited_(std::move(solicited)),
      answered_(solicited_.size(), false),
      outstanding_(solicited_.size()) {
  bids_.reserve(solicited_.size());
}

void AuctionBook::reopen(cluster::JobId job,
                         std::span<const federation::ParticipantId> solicited) {
  job_ = job;
  solicited_.assign(solicited.begin(), solicited.end());
  answered_.assign(solicited_.size(), false);
  outstanding_ = solicited_.size();
  bids_.clear();
  bids_.reserve(solicited_.size());
}

bool AuctionBook::add(const Bid& bid) {
  for (std::size_t i = 0; i < solicited_.size(); ++i) {
    if (solicited_[i] != bid.bidder) continue;
    if (answered_[i]) return false;  // duplicate
    answered_[i] = true;
    --outstanding_;
    bids_.push_back(bid);
    return true;
  }
  return false;  // unsolicited
}

double AuctionEngine::score(const cluster::Job& job, const Bid& bid) const {
  double w = 0.0;
  switch (scoring_) {
    case ScoringRule::kPrice:
      // Exactly the legacy rank key, so price-only clearing is
      // bit-identical to the pre-scoring engine.
      return bid.ask;
    case ScoringRule::kCompletion:
      return bid.completion_estimate;
    case ScoringRule::kWeighted:
      w = time_weight_;
      break;
    case ScoringRule::kPerJob:
      w = job.opt == cluster::Optimization::kTime ? time_weight_ : 0.0;
      break;
  }
  // Both attributes normalized against the job's own QoS envelope, so the
  // blend is dimensionless and roughly in [0, 1] for feasible bids: the
  // ask against the budget (the reserve price), the completion guarantee
  // against the deadline window from submission.  An attribute whose
  // envelope is unset (zero budget / zero deadline, e.g. workloads loaded
  // without QoS fabrication) drops out of the blend — a degenerate 1e12x
  // scale would silently swamp the other term instead.
  const double price_norm = job.budget > 0.0 ? bid.ask / job.budget : 0.0;
  const double time_norm =
      job.deadline > 0.0
          ? (bid.completion_estimate - job.submit) / job.deadline
          : 0.0;
  return (1.0 - w) * price_norm + w * time_norm;
}

std::vector<Award> AuctionEngine::clear(const cluster::Job& job,
                                        const std::vector<Bid>& bids) const {
  struct Scored {
    Bid bid;
    double score;
  };
  std::vector<Scored> feasible;
  feasible.reserve(bids.size());
  for (const Bid& bid : bids) {
    if (!bid.feasible) continue;
    GF_EXPECTS(bid.ask >= 0.0);
    if (enforce_budget_ && bid.ask > job.budget) continue;
    if (enforce_deadline_ &&
        bid.completion_estimate > job.absolute_deadline()) {
      continue;
    }
    feasible.push_back(Scored{bid, score(job, bid)});
  }
  // Best score wins; ties break on the lower ask, then the earlier
  // completion guarantee, then the lower participant id — a total order,
  // so clearing is deterministic for any arrival order of the bids.
  // (Singleton ids equal their cluster index, so solo clearing orders
  // exactly as the pre-participant engine did.)
  std::sort(feasible.begin(), feasible.end(),
            [](const Scored& a, const Scored& b) {
              if (a.score != b.score) return a.score < b.score;
              if (a.bid.ask != b.bid.ask) return a.bid.ask < b.bid.ask;
              if (a.bid.completion_estimate != b.bid.completion_estimate) {
                return a.bid.completion_estimate < b.bid.completion_estimate;
              }
              return a.bid.bidder < b.bid.bidder;
            });

  std::vector<Award> ranking;
  ranking.reserve(feasible.size());
  for (std::size_t i = 0; i < feasible.size(); ++i) {
    double payment = feasible[i].bid.ask;
    if (rule_ == ClearingRule::kVickrey) {
      if (i + 1 < feasible.size()) {
        // Under a non-price score the next-ranked ask can undercut this
        // one; flooring at the own ask keeps the payment individually
        // rational (generalized second price, see file comment).
        payment = std::max(feasible[i].bid.ask, feasible[i + 1].bid.ask);
      } else if (enforce_budget_) {
        // Lone (or last-ranked) bidder: the reserve price — the user's
        // budget — plays the second bid, as in a Vickrey auction with a
        // reserve.  Without budget enforcement there is no reserve and the
        // ask itself is the only defensible payment.
        payment = job.budget;
      }
    }
    ranking.push_back(Award{feasible[i].bid, payment});
  }
  return ranking;
}

}  // namespace gridfed::market
