#pragma once
// The scoring half of the auction engine, factored out so it can run
// *outside* the origin's clearing path — specifically inside interior
// tree relays, which score-and-prune the bid convergecast down to the
// decision-relevant rank prefix (transport/tree_transport.hpp).
//
// The engine and the relays MUST agree bit-for-bit on the rank order:
// the relays forward only the top-k bids per job, and clearing stays
// identical to the unpruned engine exactly when the surviving set is a
// superset of the engine's rank prefix.  Keeping the score, the
// admissibility filter, and the tie-break chain in this one class is
// what makes that agreement structural instead of a convention two
// files have to maintain in parallel.
//
// A relay does not hold the full cluster::Job — only the QoS envelope
// harvested from the solicitation that fanned out through it — so the
// scorer operates on the compact JobQos view instead of the Job.

#include <bit>
#include <cmath>
#include <cstdint>

#include "cluster/job.hpp"
#include "market/bid.hpp"
#include "sim/types.hpp"

namespace gridfed::market {

/// Log-scale shape bucket: values within ~`quantum` of each other map to
/// the same bin; quantum <= 0 degenerates to bit-exact matching.  Shared
/// by the provider-side bid TTL cache (PR 3) and the convergecast delta
/// encoder, so "same shape" means the same thing on both sides of the
/// wire.
[[nodiscard]] inline std::int64_t shape_bucket(double value,
                                               double quantum) noexcept {
  if (quantum <= 0.0) {
    return std::bit_cast<std::int64_t>(value);
  }
  return std::llround(std::log1p(std::max(0.0, value)) / quantum);
}

/// The slice of a job a bid is scored against: the QoS envelope (budget,
/// deadline window, submission instant) plus the optimization intent
/// that drives kPerJob scoring.  Everything a solicitation already
/// carries — no payload fields, so relays can retain it per job.
struct JobQos {
  double budget = 0.0;
  sim::SimTime deadline = 0.0;  ///< relative to submission, as in Job
  sim::SimTime submit = 0.0;
  cluster::Optimization opt = cluster::Optimization::kCost;

  [[nodiscard]] sim::SimTime absolute_deadline() const noexcept {
    return submit + deadline;
  }
  [[nodiscard]] static JobQos of(const cluster::Job& job) noexcept {
    return JobQos{job.budget, job.deadline, job.submit, job.opt};
  }
};

/// Scores and ranks sealed bids under the federation's active rule —
/// callable from the clearing engine and from overlay relays alike.
class BidScorer {
 public:
  BidScorer() = default;
  BidScorer(ScoringRule scoring, double time_weight, bool enforce_budget,
            bool enforce_deadline)
      : scoring_(scoring),
        time_weight_(time_weight),
        enforce_budget_(enforce_budget),
        enforce_deadline_(enforce_deadline) {}

  /// The rank key (lower is better).  kPrice returns the raw ask —
  /// exactly the legacy single-attribute key, so price-only clearing is
  /// bit-identical to the pre-scoring engine.  The blended rules
  /// normalize both attributes against the job's own QoS envelope; an
  /// attribute whose envelope is unset (zero budget / zero deadline)
  /// drops out of the blend instead of swamping the other term.
  [[nodiscard]] double score(const JobQos& job, const Bid& bid) const noexcept {
    double w = 0.0;
    switch (scoring_) {
      case ScoringRule::kPrice:
        return bid.ask;
      case ScoringRule::kCompletion:
        return bid.completion_estimate;
      case ScoringRule::kWeighted:
        w = time_weight_;
        break;
      case ScoringRule::kPerJob:
        w = job.opt == cluster::Optimization::kTime ? time_weight_ : 0.0;
        break;
    }
    const double price_norm = job.budget > 0.0 ? bid.ask / job.budget : 0.0;
    const double time_norm =
        job.deadline > 0.0
            ? (bid.completion_estimate - job.submit) / job.deadline
            : 0.0;
    return (1.0 - w) * price_norm + w * time_norm;
  }

  /// The clearing engine's feasibility filter: bidder-declared
  /// feasibility, the budget as the reserve price when enforced, the
  /// deadline when enforced.  A bid this rejects can never enter the
  /// award ranking, which is what licenses relays to tombstone it.
  [[nodiscard]] bool admissible(const JobQos& job,
                                const Bid& bid) const noexcept {
    if (!bid.feasible) return false;
    if (enforce_budget_ && bid.ask > job.budget) return false;
    if (enforce_deadline_ &&
        bid.completion_estimate > job.absolute_deadline()) {
      return false;
    }
    return true;
  }

  /// The engine's total order over scored bids: best score first, ties
  /// broken on the lower ask, then the earlier completion guarantee,
  /// then the lower participant id — deterministic for any arrival
  /// order.
  [[nodiscard]] static bool rank_less(double score_a, const Bid& a,
                                      double score_b,
                                      const Bid& b) noexcept {
    if (score_a != score_b) return score_a < score_b;
    if (a.ask != b.ask) return a.ask < b.ask;
    if (a.completion_estimate != b.completion_estimate) {
      return a.completion_estimate < b.completion_estimate;
    }
    return a.bidder < b.bidder;
  }

  [[nodiscard]] ScoringRule scoring() const noexcept { return scoring_; }
  [[nodiscard]] bool enforce_budget() const noexcept {
    return enforce_budget_;
  }

 private:
  ScoringRule scoring_ = ScoringRule::kPrice;
  double time_weight_ = 0.0;
  bool enforce_budget_ = false;
  bool enforce_deadline_ = false;
};

}  // namespace gridfed::market
