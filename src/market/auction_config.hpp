#pragma once
// Knobs of the auction scheduling mode (SchedulingMode::kAuction).  One
// AuctionConfig rides inside FederationConfig; everything here only takes
// effect in auction mode.

#include <cstdint>

#include "market/bid.hpp"
#include "market/bid_pricing.hpp"
#include "sim/types.hpp"

namespace gridfed::market {

/// Parameters of the per-job sealed-bid reverse auction.
struct AuctionConfig {
  /// Payment rule the engine clears under.
  ClearingRule clearing = ClearingRule::kFirstPrice;

  /// How providers turn true cost into a sealed ask.
  BidPricingStrategy bid_pricing = BidPricingStrategy::kTrueCost;

  /// Profit margin for BidPricingStrategy::kMarkup.
  double markup = 0.15;

  /// How long the origin keeps the book open before clearing with whatever
  /// bids arrived.  0 = clear only when every solicited bidder answered
  /// (sound under a lossless network; lossy runs must set a timeout).
  sim::SimTime bid_timeout = 0.0;

  /// Cap on the number of remote providers solicited per job, walked in
  /// cheapest-first directory order.  0 = solicit every eligible provider.
  std::uint32_t max_bidders = 0;

  /// Whether the origin cluster enters a (message-free) bid of its own.
  bool origin_bids = true;

  /// What happens when the book clears empty (or every award is declined):
  /// true = the job falls back to the paper's DBC rank walk; false = it is
  /// rejected outright.
  bool fallback_to_dbc = true;

  /// Perf extension: coalesce call-for-bids per (origin, provider) pair
  /// into one wire message carrying every job whose solicitation is
  /// queued at flush time (providers answer with one batched bid message
  /// per call).  Off by default: the unbatched protocol is the paper-
  /// faithful per-job broadcast, and per-auction stats are bit-identical
  /// to it.
  bool batch_solicitations = false;

  /// How long a job's solicitation may wait for batch companions before
  /// the queue is flushed.  0 still coalesces same-instant submissions
  /// (the flush runs at control priority after all same-tick arrivals).
  /// Only read when batch_solicitations is true.
  sim::SimTime solicit_batch_window = 0.0;

  /// A job's solicitation is never held longer than this fraction of its
  /// remaining deadline slack, so tight-deadline jobs flush (nearly)
  /// immediately while loose jobs ride out the full window.
  double solicit_hold_slack_fraction = 0.25;
};

}  // namespace gridfed::market
