#pragma once
// Knobs of the auction scheduling mode (SchedulingMode::kAuction).  One
// AuctionConfig rides inside FederationConfig; everything here only takes
// effect in auction mode.

#include <cstdint>

#include "market/bid.hpp"
#include "market/bid_pricing.hpp"
#include "sim/types.hpp"

namespace gridfed::market {

/// Parameters of the per-job sealed-bid reverse auction.
struct AuctionConfig {
  /// Payment rule the engine clears under.
  ClearingRule clearing = ClearingRule::kFirstPrice;

  /// How providers turn true cost into a sealed ask.
  BidPricingStrategy bid_pricing = BidPricingStrategy::kTrueCost;

  /// Profit margin for BidPricingStrategy::kMarkup.
  double markup = 0.15;

  /// How long the origin keeps the book open before clearing with whatever
  /// bids arrived.  0 = clear only when every solicited bidder answered
  /// (sound under a lossless network; lossy runs must set a timeout).
  sim::SimTime bid_timeout = 0.0;

  /// Cap on the number of remote providers solicited per job, walked in
  /// cheapest-first directory order.  0 = solicit every eligible provider.
  std::uint32_t max_bidders = 0;

  /// Whether the origin cluster enters a (message-free) bid of its own.
  bool origin_bids = true;

  /// What happens when the book clears empty (or every award is declined):
  /// true = the job falls back to the paper's DBC rank walk; false = it is
  /// rejected outright.
  bool fallback_to_dbc = true;
};

}  // namespace gridfed::market
