#pragma once
// Knobs of the auction scheduling mode (SchedulingMode::kAuction).  One
// AuctionConfig rides inside FederationConfig; everything here only takes
// effect in auction mode.

#include <cstdint>

#include "market/bid.hpp"
#include "market/bid_pricing.hpp"
#include "sim/types.hpp"

namespace gridfed::market {

/// Parameters of the per-job sealed-bid reverse auction.
struct AuctionConfig {
  /// Payment rule the engine clears under.
  ClearingRule clearing = ClearingRule::kFirstPrice;

  /// Which score ranks the feasible bids (multi-attribute clearing).  The
  /// default is the classic price-only auction; kPerJob aligns the rule
  /// with each job's OFC/OFT Optimization so a time-optimizing user's
  /// auction actually buys completion time.
  ScoringRule scoring = ScoringRule::kPrice;

  /// Weight of the completion-time term in the weighted score (kWeighted
  /// always; kPerJob for OFT jobs).  0 degenerates to price-only, 1 to
  /// completion-only.
  double score_time_weight = 0.5;

  /// How providers turn true cost into a sealed ask.
  BidPricingStrategy bid_pricing = BidPricingStrategy::kTrueCost;

  /// Profit margin for BidPricingStrategy::kMarkup.
  double markup = 0.15;

  /// How long the origin keeps the book open before clearing with whatever
  /// bids arrived.  0 = clear only when every solicited bidder answered
  /// (sound under a lossless network; lossy runs must set a timeout).
  sim::SimTime bid_timeout = 0.0;

  /// Cap on the number of remote providers solicited per job, walked in
  /// cheapest-first directory order.  0 = solicit every eligible provider.
  std::uint32_t max_bidders = 0;

  /// Whether the origin cluster enters a (message-free) bid of its own.
  bool origin_bids = true;

  /// What happens when the book clears empty (or every award is declined):
  /// true = the job falls back to the paper's DBC rank walk; false = it is
  /// rejected outright.
  bool fallback_to_dbc = true;

  /// Perf extension: coalesce call-for-bids per (origin, provider) pair
  /// into one wire message carrying every job whose solicitation is
  /// queued at flush time (providers answer with one batched bid message
  /// per call).  Off by default: the unbatched protocol is the paper-
  /// faithful per-job broadcast, and per-auction stats are bit-identical
  /// to it.
  bool batch_solicitations = false;

  /// How long a job's solicitation may wait for batch companions before
  /// the queue is flushed.  0 still coalesces same-instant submissions
  /// (the flush runs at control priority after all same-tick arrivals).
  /// Only read when batch_solicitations is true.
  sim::SimTime solicit_batch_window = 0.0;

  /// A job's solicitation is never held longer than this fraction of its
  /// remaining deadline slack, so tight-deadline jobs flush (nearly)
  /// immediately while loose jobs ride out the full window.
  double solicit_hold_slack_fraction = 0.25;

  /// Provider-side pricing cache: a provider answering a call-for-bids
  /// for a job of the same *shape* (origin, processors, length, comm
  /// overhead) as one it priced within this window reuses the cached ask
  /// and completion estimate instead of re-pricing against its queue.
  /// Sound because bidding is non-binding — a stale estimate only costs
  /// the origin a declined award at admission re-check, never a broken
  /// guarantee.  0 disables the cache (every solicitation re-prices).
  sim::SimTime bid_cache_ttl = 0.0;

  /// Relative tolerance of the cache's shape match: length and comm
  /// overhead are bucketed into log-scale bins of this width, so two jobs
  /// within ~this fraction of each other price identically on a hit (the
  /// ask error a hit can introduce is bounded by the quantum).  <= 0
  /// requires bit-exact lengths — only useful for replayed traces with
  /// literally repeated jobs.
  double bid_cache_quantum = 0.05;

  /// Piggyback kAward notifications on the batched solicitation flush:
  /// an award issued while a flush is already due within
  /// piggyback_hold_window is held for it and rides the coalesced
  /// call-for-bids to its winner for free (awards to providers the flush
  /// does not solicit go standalone at the flush).  Strictly
  /// opportunistic — an award never waits for a flush that is not
  /// already scheduled, because an award is an admission re-check and
  /// delaying it decays the winner's estimate (measured: anticipatory
  /// holding costs far more decline rounds than the saved messages).
  /// Only effective with batch_solicitations.
  bool piggyback_awards = false;

  /// Maximum imminence of the flush an award will wait for (see above).
  sim::SimTime piggyback_hold_window = 120.0;
};

}  // namespace gridfed::market
