#pragma once
// Provider-side bid pricing strategies.  A provider's *true cost* for a
// job is what the posted-price economy would have charged for it (the
// configured CostModel applied to the provider's current quote — so a
// dynamically repriced quote already flows into it).  The strategy decides
// how the sealed ask relates to that cost:
//
//  * kTrueCost  — bid exactly the cost.  Under a Vickrey rule truthful
//    bidding is the dominant strategy, so this is the mechanism-design
//    baseline.
//  * kMarkup    — cost * (1 + markup): a fixed profit margin, the natural
//    strategy under pay-as-bid (first-price) clearing.
//  * kLoadAdaptive — cost scaled by the same tatonnement factor the
//    dynamic-pricing extension uses, but evaluated against the provider's
//    *instantaneous* load at bidding time: busy providers ask more, idle
//    ones undercut.  This couples the auction to supply/demand without
//    waiting for a repricing period.

#include <cstdint>

#include "economy/dynamic_pricing.hpp"

namespace gridfed::market {

/// How a provider turns its true cost into a sealed ask.
enum class BidPricingStrategy : std::uint8_t {
  kTrueCost,      ///< ask = cost (truthful)
  kMarkup,        ///< ask = cost * (1 + markup)
  kLoadAdaptive,  ///< ask = cost * clamp(1 + eta*(load-target), floor, ceil)
};

[[nodiscard]] constexpr const char* to_string(
    BidPricingStrategy strategy) noexcept {
  switch (strategy) {
    case BidPricingStrategy::kTrueCost:
      return "true-cost";
    case BidPricingStrategy::kMarkup:
      return "markup";
    case BidPricingStrategy::kLoadAdaptive:
      return "load-adaptive";
  }
  return "?";
}

/// The sealed ask for a job whose true cost on this provider is
/// `true_cost`, given the provider's instantaneous `load` in [0, 1].
/// `markup` parameterizes kMarkup; `pricing` parameterizes kLoadAdaptive
/// (its eta/target/floor/ceiling are reused as the load-response curve).
[[nodiscard]] double bid_price(BidPricingStrategy strategy, double true_cost,
                               double load, double markup,
                               const economy::DynamicPricingConfig& pricing);

}  // namespace gridfed::market
