#pragma once
// AuctionBook recycling.  Every job in auction mode opens a book whose
// three vectors (solicited, answered, bids) the old code allocated fresh
// and threw away a few events later.  Back-to-back jobs at the same
// origin solicit the same provider set ("the same shape"), so a released
// book's capacity is exactly what the next auction needs — the pool turns
// the per-auction allocations into plain vector rewinds.

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "cluster/job.hpp"
#include "market/auction_engine.hpp"

namespace gridfed::market {

/// Bounded free-list of AuctionBooks.  acquire() rehydrates a released
/// book (keeping its allocations) or default-constructs one; release()
/// returns a cleared book to the pool.
class BookPool {
 public:
  /// Books retained at most; concurrent open auctions beyond this many
  /// fall back to fresh allocation (release simply drops the extras).
  static constexpr std::size_t kMaxPooled = 64;

  [[nodiscard]] AuctionBook acquire(
      cluster::JobId job,
      std::span<const federation::ParticipantId> solicited) {
    AuctionBook book;
    if (!free_.empty()) {
      book = std::move(free_.back());
      free_.pop_back();
      ++reuses_;
    }
    book.reopen(job, solicited);
    return book;
  }

  void release(AuctionBook&& book) {
    if (free_.size() < kMaxPooled) free_.push_back(std::move(book));
  }

  /// How many acquires were served from the pool (telemetry/tests).
  [[nodiscard]] std::size_t reuses() const noexcept { return reuses_; }

 private:
  std::vector<AuctionBook> free_;
  std::size_t reuses_ = 0;
};

}  // namespace gridfed::market
