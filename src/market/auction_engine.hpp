#pragma once
// The sealed-bid reverse-auction engine: an order book that collects the
// asks solicited for one job, and the clearing logic that turns a closed
// book into a deterministic award ranking.
//
// Clearing filters the book down to *feasible* bids (bidder-declared
// feasibility, the job's deadline when enforced, and the job's budget as
// the reserve price when enforced), sorts them best-score-first with
// deterministic tie-breaking (score, then ask, then completion estimate,
// then bidder index), and prices every position under the configured rule:
//
//  * first-price — each award pays its own ask;
//  * Vickrey     — each award pays the *next* feasible ask (the classic
//    second-price payment for the winner), and the last-ranked award pays
//    the reserve price (the budget) when the budget is enforced, its own
//    ask otherwise.
//
// The score is the multi-attribute extension (ScoringRule): price-only
// reproduces the classic lowest-ask auction bit-for-bit; the completion
// and weighted rules rank bids by (a blend of) the completion guarantee,
// normalized against the job's budget/deadline envelope.  Under a
// non-price score the rank order and the ask order can disagree, so
// Vickrey payments are floored at the award's own ask — a
// generalized-second-price payment that preserves individual rationality
// (no provider is ever paid less than it asked), not an exact VCG
// transfer.
//
// The whole ranking (not just the winner) is returned because an award is
// only a *proposal*: the winner re-runs admission control at award time,
// and if its queue filled up since bidding, the origin falls through to
// the runner-up — whose payment must already be consistent with the rule.

#include <cstddef>
#include <span>
#include <vector>

#include "cluster/job.hpp"
#include "market/bid.hpp"
#include "market/bid_scorer.hpp"

namespace gridfed::market {

/// Order book for one job's auction round.  Tracks which solicited bidders
/// have answered so the origin can clear as soon as the book is complete
/// instead of always waiting out the bid timeout.
///
/// Books are designed to be pooled (see book_pool.hpp): reopen() rewinds
/// a cleared book for the next job while keeping every internal vector's
/// capacity, so back-to-back auctions of the same shape allocate nothing.
class AuctionBook {
 public:
  /// An unopened book (pool storage); reopen() before use.
  AuctionBook() = default;

  /// Opens the book for `job`; `solicited` lists every participant a
  /// call-for-bids went to (the origin itself included when it competes).
  AuctionBook(cluster::JobId job,
              std::vector<federation::ParticipantId> solicited);

  /// Rewinds this book for a new job, reusing the existing allocations.
  void reopen(cluster::JobId job,
              std::span<const federation::ParticipantId> solicited);

  /// Records a sealed bid.  Unsolicited or duplicate bids are ignored
  /// (stale answers after a timeout re-solicitation, byzantine bidders).
  /// Returns true when the bid entered the book.
  bool add(const Bid& bid);

  /// Records a *tombstoned* answer: an overlay relay scored `bidder`'s
  /// bid out of the decision-relevant rank prefix and forwarded only the
  /// marker (tree_transport.hpp).  The bidder counts as answered — the
  /// book still completes without waiting out the bid timeout — but no
  /// bid enters the ranking.  Returns true when the tombstone consumed
  /// the bidder's outstanding slot (duplicates/unsolicited ignored, as
  /// in add()).
  bool add_pruned(federation::ParticipantId bidder);

  /// True when every solicited bidder has answered.
  [[nodiscard]] bool complete() const noexcept { return outstanding_ == 0; }

  /// Answers that arrived as in-network prune tombstones.  bids().size()
  /// + pruned() is the number of bidders that actually answered — the
  /// figure the clearing report exposes, so auction telemetry is
  /// transport-invariant.
  [[nodiscard]] std::size_t pruned() const noexcept { return pruned_; }

  [[nodiscard]] cluster::JobId job() const noexcept { return job_; }
  [[nodiscard]] const std::vector<Bid>& bids() const noexcept { return bids_; }
  [[nodiscard]] std::size_t solicited() const noexcept {
    return solicited_.size();
  }
  /// The solicited participants, in solicitation order.
  [[nodiscard]] const std::vector<federation::ParticipantId>&
  solicited_list() const noexcept {
    return solicited_;
  }

 private:
  cluster::JobId job_ = 0;
  std::vector<federation::ParticipantId> solicited_;
  std::vector<bool> answered_;  // parallel to solicited_
  std::size_t outstanding_ = 0;
  std::size_t pruned_ = 0;
  std::vector<Bid> bids_;
};

/// Telemetry for one cleared auction round (stats::AuctionStats input).
struct ClearingReport {
  cluster::JobId job = 0;
  std::size_t solicited = 0;  ///< bidders a call-for-bids reached
  std::size_t bids = 0;       ///< sealed bids in the book at clearing
  std::size_t feasible = 0;   ///< bids that survived the feasibility filter
  bool awarded = false;       ///< the ranking is non-empty
  federation::ParticipantId winner = federation::kNoParticipant;
  double winner_ask = 0.0;
  double payment = 0.0;  ///< what the top-ranked award would settle
};

/// Clears closed books into award rankings.
class AuctionEngine {
 public:
  /// Classic price-only clearing (the single-attribute baseline).
  AuctionEngine(ClearingRule rule, bool enforce_budget, bool enforce_deadline)
      : AuctionEngine(rule, ScoringRule::kPrice, 0.0, enforce_budget,
                      enforce_deadline) {}

  /// Multi-attribute clearing: rank by `scoring` with `time_weight` on
  /// the completion term (kWeighted always, kPerJob for OFT jobs).
  /// Scoring, admissibility, and tie-breaking all delegate to the shared
  /// BidScorer, so the in-network pruning relays rank bids under the
  /// exact total order this engine clears by.
  AuctionEngine(ClearingRule rule, ScoringRule scoring, double time_weight,
                bool enforce_budget, bool enforce_deadline)
      : rule_(rule),
        scorer_(scoring, time_weight, enforce_budget, enforce_deadline) {}

  /// Deterministic award ranking for `job` over `bids` (see file comment).
  /// Empty when no bid is feasible.
  [[nodiscard]] std::vector<Award> clear(const cluster::Job& job,
                                         const std::vector<Bid>& bids) const;

  /// The rank key of `bid` for `job` under this engine's scoring rule
  /// (lower is better; exposed for tests and telemetry).
  [[nodiscard]] double score(const cluster::Job& job, const Bid& bid) const {
    return scorer_.score(JobQos::of(job), bid);
  }

  [[nodiscard]] ClearingRule rule() const noexcept { return rule_; }
  [[nodiscard]] ScoringRule scoring() const noexcept {
    return scorer_.scoring();
  }
  [[nodiscard]] const BidScorer& scorer() const noexcept { return scorer_; }

 private:
  ClearingRule rule_;
  BidScorer scorer_;
};

}  // namespace gridfed::market
