#pragma once
// Sealed bids for the reverse-auction scheduling mode.  In a reverse
// auction the *providers* compete for the job: the originating GFA
// broadcasts a call-for-bids and each candidate cluster answers with a
// sealed ask — the Grid-Dollar price it wants for running the job — plus
// the completion time its LRMS would guarantee.  The auction engine then
// clears the book under a first-price or Vickrey rule (auction_engine.hpp).
//
// This extends the paper's posted-price commodity market (Eqs. 5/6): where
// DBC walks a static price ranking, an auction lets every provider price
// each job individually (true cost, markup, or load-adaptive — see
// bid_pricing.hpp), which is the mechanism-design direction of the
// follow-on federation literature (Guazzone et al., Xie et al.).

#include <cstdint>

#include "federation/participant.hpp"
#include "sim/types.hpp"

namespace gridfed::market {

/// How the winning provider's payment is derived from the book.
enum class ClearingRule : std::uint8_t {
  kFirstPrice,  ///< winner is paid its own ask (pay-as-bid)
  kVickrey,     ///< winner is paid the second-lowest feasible ask
};

/// Multi-attribute clearing: which score ranks the feasible bids.  A bid
/// carries two attributes — the ask and the completion-time guarantee —
/// and the scoring rule decides how much each matters.  kPrice is the
/// classic single-attribute reverse auction; the others normalize both
/// attributes against the job's own QoS envelope (ask against the budget,
/// completion against the deadline window) and rank by the blend, which
/// is what lets OFT users buy *time* in the market rather than price.
enum class ScoringRule : std::uint8_t {
  kPrice,       ///< lowest ask wins (single-attribute baseline)
  kCompletion,  ///< earliest completion guarantee wins
  kWeighted,    ///< fixed blend: (1-w)*ask/budget + w*completion/deadline
  kPerJob,      ///< align with the job's Optimization: OFC jobs clear on
                ///< price, OFT jobs on the weighted blend
};

[[nodiscard]] constexpr const char* to_string(ScoringRule rule) noexcept {
  switch (rule) {
    case ScoringRule::kPrice:
      return "price";
    case ScoringRule::kCompletion:
      return "completion";
    case ScoringRule::kWeighted:
      return "weighted";
    case ScoringRule::kPerJob:
      return "per-job";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(ClearingRule rule) noexcept {
  switch (rule) {
    case ClearingRule::kFirstPrice:
      return "first-price";
    case ClearingRule::kVickrey:
      return "vickrey";
  }
  return "?";
}

/// One sealed bid: a provider's ask for executing a specific job.  The
/// bidder is a market *participant* (federation/participant.hpp): a
/// single cluster in the solo market, or a registered coalition bidding
/// once for all its members (the coalition extension).
struct Bid {
  federation::ParticipantId bidder = federation::kNoParticipant;
  double ask = 0.0;  ///< Grid Dollars the provider wants for the job
  /// Completion instant the bidder's LRMS would guarantee (admission-style
  /// estimate at bidding time; re-verified on award).
  sim::SimTime completion_estimate = 0.0;
  /// Bidder-declared feasibility: the job fits and (when the deadline is
  /// enforced) the estimate honours it.  Infeasible bids keep the book's
  /// bookkeeping complete but never win.
  bool feasible = false;
};

/// One entry of the cleared ranking: who would win at which payment.
struct Award {
  Bid bid;
  double payment = 0.0;  ///< Grid Dollars settled if this award sticks
};

}  // namespace gridfed::market
