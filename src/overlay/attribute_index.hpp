#pragma once
// MAAN-style attribute index over the Chord ring.  The federation
// directory must answer "the r-th cheapest cluster" / "the r-th fastest
// cluster" — *range/rank* queries, which plain DHTs cannot do.  MAAN (Cai
// et al., the paper's [15]) solves this with a locality-preserving hash:
// attribute values map onto the ring in value order, so a rank walk is an
// arc walk over successive peers.  This module implements exactly that and
// meters every message:
//
//   publish:   route(owner -> successor(key(value)))             O(log n)
//   rank r:    route(owner -> rank-1 peer) + data-link walk      O(log n + r)
//
// Data-holding peers maintain direct successor-of-data links (the
// standard MAAN/Mercury range-index optimization), so rank/range walks
// hop only the distinct peers that actually store registrations — empty
// arcs cost nothing.  bench_overlay_directory uses this to *measure* the
// O(log n) cost the paper's experiments assume analytically
// (directory/query_cost.hpp).

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "overlay/chord_ring.hpp"

namespace gridfed::overlay {

/// One indexed attribute dimension (e.g. quote price, MIPS rating).
class AttributeIndex {
 public:
  /// `lo`/`hi` bound the attribute's value domain; values map onto the
  /// ring via locality_hash so ordering is preserved.
  AttributeIndex(const ChordRing& ring, double lo, double hi);

  /// Publishes (value, payload) from `from_owner`'s peer.  Returns the
  /// routing hops consumed.  Re-publishing the same payload replaces its
  /// previous value (a quote refresh).
  std::uint64_t publish(std::uint32_t from_owner, double value,
                        std::uint32_t payload);

  /// Removes the registration carrying `payload`; returns routing hops.
  std::uint64_t withdraw(std::uint32_t from_owner, std::uint32_t payload);

  struct RankedResult {
    std::optional<std::uint32_t> payload;  ///< r-th payload, if it exists
    double value = 0.0;                    ///< its attribute value
    std::uint64_t messages = 0;            ///< hops + arc-walk steps
  };

  /// The r-th registration (1-based) in ascending (or descending) value
  /// order, resolved by routing to the arc end and walking peers.
  [[nodiscard]] RankedResult query_rank(std::uint32_t from_owner,
                                        std::uint32_t r, bool ascending);

  /// Registrations whose value lies in [value_lo, value_hi], with the
  /// message cost of the arc walk (a true MAAN range query).
  struct RangeResult {
    std::vector<std::uint32_t> payloads;
    std::uint64_t messages = 0;
  };
  [[nodiscard]] RangeResult query_range(std::uint32_t from_owner,
                                        double value_lo, double value_hi);

  [[nodiscard]] std::size_t registrations() const noexcept {
    return by_payload_.size();
  }

 private:
  struct Registration {
    double value;
    std::uint32_t payload;
  };

  /// All registrations in ascending value order.
  [[nodiscard]] std::vector<Registration> sorted_registrations() const;
  /// Messages to walk the data links from the peer holding rank
  /// `first_rank` to the peer holding rank `last_rank` (1-based,
  /// ascending): the number of distinct-responsible-peer transitions.
  [[nodiscard]] std::uint64_t data_walk_cost(std::size_t first_rank,
                                             std::size_t last_rank) const;

  const ChordRing* ring_;
  double lo_, hi_;
  std::map<std::uint32_t, double> by_payload_;  // payload -> current value
};

}  // namespace gridfed::overlay
