#include "overlay/node_id.hpp"

#include <algorithm>

#include "sim/random.hpp"

namespace gridfed::overlay {

RingKey ring_hash(std::string_view label) noexcept {
  // FNV-1a mixed through SplitMix64 for avalanche: names that share long
  // prefixes ("CTC SP2", "CTC SP2 #2") must land far apart.
  std::uint64_t state = sim::hash_label(label);
  return sim::splitmix64(state);
}

RingKey locality_hash(double value, double lo, double hi) noexcept {
  if (hi <= lo) return 0;
  const double clamped = std::clamp(value, lo, hi);
  const double fraction = (clamped - lo) / (hi - lo);
  // Scale into the full ring, reserving the top value for `hi` exactly.
  constexpr double kRing = 18446744073709551615.0;  // 2^64 - 1
  return static_cast<RingKey>(fraction * kRing);
}

}  // namespace gridfed::overlay
