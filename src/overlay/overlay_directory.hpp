#pragma once
// A shared federation directory actually running over the simulated P2P
// overlay: two MAAN attribute dimensions (quote price ascending, MIPS
// rating descending) over one Chord ring of GFA peers.  Functionally
// equivalent to directory::FederationDirectory, but every subscribe /
// quote / query is routed hop-by-hop and metered, so the analytic
// O(log n) model used by the main experiments can be validated against a
// real substrate (bench_overlay_directory).

#include <cstdint>
#include <optional>
#include <string>

#include "directory/quote.hpp"
#include "overlay/attribute_index.hpp"
#include "overlay/chord_ring.hpp"

namespace gridfed::overlay {

/// Measured overlay traffic.
struct OverlayTraffic {
  std::uint64_t publish_messages = 0;
  std::uint64_t query_messages = 0;
  std::uint64_t queries = 0;
  std::uint64_t publishes = 0;
};

/// Directory facade over ChordRing + AttributeIndex.
class OverlayDirectory {
 public:
  /// `price_hi` / `mips_hi` bound the attribute domains (values beyond
  /// clamp; pick generous bounds for dynamic pricing).
  OverlayDirectory(double price_lo, double price_hi, double mips_lo,
                   double mips_hi);

  /// subscribe: the GFA joins the ring and publishes both attributes.
  void subscribe(const directory::Quote& quote, const std::string& name);

  /// unsubscribe: withdraws both attributes and leaves the ring.
  void unsubscribe(cluster::ResourceIndex resource);

  /// quote refresh (dynamic pricing): re-publishes the price dimension.
  void update_price(cluster::ResourceIndex resource, double price);

  /// The r-th cheapest / fastest resource as seen from `from`'s peer,
  /// with the measured message cost.
  struct Result {
    std::optional<cluster::ResourceIndex> resource;
    std::uint64_t messages = 0;
  };
  [[nodiscard]] Result query(cluster::ResourceIndex from,
                             directory::OrderBy order, std::uint32_t r);

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] const OverlayTraffic& traffic() const noexcept {
    return traffic_;
  }
  [[nodiscard]] const ChordRing& ring() const noexcept { return ring_; }

 private:
  ChordRing ring_;
  AttributeIndex by_price_;
  AttributeIndex by_speed_;
  OverlayTraffic traffic_;
};

}  // namespace gridfed::overlay
