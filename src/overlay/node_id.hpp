#pragma once
// Identifier arithmetic for the structured overlay.  The paper assumes the
// shared federation directory runs over a P2P system "with efficient
// updates and range query capabilities" and charges O(log n) messages per
// query ([15], MAAN).  gridfed builds that substrate for real (simulated):
// a Chord-style ring over a 64-bit identifier space.  This header is the
// ring math: clockwise distance, interval membership, and the key-space
// mapping used by the attribute index.

#include <cstdint>
#include <string_view>

namespace gridfed::overlay {

/// Position on the identifier ring (the full 2^64 space).
using RingKey = std::uint64_t;

/// Clockwise distance from `from` to `to` on the ring (wraps).
[[nodiscard]] constexpr RingKey clockwise_distance(RingKey from,
                                                   RingKey to) noexcept {
  return to - from;  // modular arithmetic does the wrap for us
}

/// True iff `key` lies in the half-open clockwise interval (from, to].
/// This is Chord's "key is owned by successor" test.
[[nodiscard]] constexpr bool in_interval_oc(RingKey key, RingKey from,
                                            RingKey to) noexcept {
  return clockwise_distance(from, key) != 0 &&
         clockwise_distance(from, key) <= clockwise_distance(from, to);
}

/// Hashes an arbitrary label (node name) onto the ring.
[[nodiscard]] RingKey ring_hash(std::string_view label) noexcept;

/// Locality-preserving map from an attribute value in [lo, hi] onto the
/// ring: equal ordering of values and keys, so attribute *ranges* map to
/// contiguous ring arcs (the MAAN trick that enables range queries over a
/// DHT).  Values outside [lo, hi] clamp.
[[nodiscard]] RingKey locality_hash(double value, double lo,
                                    double hi) noexcept;

}  // namespace gridfed::overlay
