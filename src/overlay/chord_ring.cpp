#include "overlay/chord_ring.hpp"

#include <algorithm>
#include <bit>

#include "sim/check.hpp"

namespace gridfed::overlay {

void ChordRing::join(std::uint32_t owner, const std::string& name) {
  join_with_id(owner, name, ring_hash(name));
}

void ChordRing::join_with_id(std::uint32_t owner, const std::string& name,
                             RingKey id) {
  for (const auto& p : peers_) {
    GF_EXPECTS(p.id != id);     // id collisions would break ownership
    GF_EXPECTS(p.owner != owner);
  }
  peers_.push_back(Peer{id, owner, name});
  std::sort(peers_.begin(), peers_.end(),
            [](const Peer& a, const Peer& b) { return a.id < b.id; });
  rebuild();
}

void ChordRing::leave(std::uint32_t owner) {
  const auto it = std::find_if(
      peers_.begin(), peers_.end(),
      [owner](const Peer& p) { return p.owner == owner; });
  GF_EXPECTS(it != peers_.end());
  peers_.erase(it);
  rebuild();
}

std::size_t ChordRing::successor_index(RingKey key) const {
  GF_EXPECTS(!peers_.empty());
  // First peer with id >= key, wrapping to the smallest id.
  const auto it = std::lower_bound(
      peers_.begin(), peers_.end(), key,
      [](const Peer& p, RingKey k) { return p.id < k; });
  if (it == peers_.end()) return 0;
  return static_cast<std::size_t>(it - peers_.begin());
}

const Peer& ChordRing::successor(RingKey key) const {
  return peers_[successor_index(key)];
}

void ChordRing::rebuild() {
  fingers_.assign(peers_.size(), {});
  for (std::size_t p = 0; p < peers_.size(); ++p) {
    auto& table = fingers_[p];
    table.resize(64);
    for (int i = 0; i < 64; ++i) {
      const RingKey target =
          peers_[p].id + (RingKey{1} << i);  // wraps mod 2^64
      table[static_cast<std::size_t>(i)] =
          static_cast<std::uint32_t>(successor_index(target));
    }
  }
}

std::size_t ChordRing::peer_index_of_owner(std::uint32_t owner) const {
  for (std::size_t p = 0; p < peers_.size(); ++p) {
    if (peers_[p].owner == owner) return p;
  }
  GF_EXPECTS(false && "unknown overlay owner");
  return 0;
}

RouteResult ChordRing::route(std::uint32_t from_owner, RingKey key) const {
  GF_EXPECTS(!peers_.empty());
  std::size_t current = peer_index_of_owner(from_owner);
  const std::size_t target = successor_index(key);
  std::uint32_t hops = 0;

  while (current != target) {
    // Already responsible?  (key in (predecessor(current), current])
    // handled by current == target above; otherwise forward greedily to
    // the closest finger that precedes the key.
    const auto& table = fingers_[current];
    std::size_t next = current;
    RingKey best = clockwise_distance(peers_[current].id, key);
    for (int i = 63; i >= 0; --i) {
      const std::size_t candidate = table[static_cast<std::size_t>(i)];
      if (candidate == current) continue;
      const RingKey d = clockwise_distance(peers_[candidate].id, key);
      if (d < best) {
        best = d;
        next = candidate;
        break;  // fingers scanned high-to-low: first improvement is greedy
      }
    }
    if (next == current) {
      // No finger strictly improves: the successor is the target.
      next = target;
    }
    current = next;
    ++hops;
    GF_ENSURES(hops <= peers_.size());  // progress guarantee
  }
  return RouteResult{peers_[target], hops};
}

std::vector<Peer> ChordRing::arc_walk(RingKey from_key, RingKey to_key) const {
  GF_EXPECTS(!peers_.empty());
  std::vector<Peer> visited;
  std::size_t idx = successor_index(from_key);
  visited.push_back(peers_[idx]);
  // Keep advancing while the current peer's arc ends strictly before the
  // requested arc end — the next peer then still intersects [from, to].
  const RingKey span = clockwise_distance(from_key, to_key);
  while (clockwise_distance(from_key, peers_[idx].id) < span &&
         visited.size() < peers_.size()) {
    idx = (idx + 1) % peers_.size();
    visited.push_back(peers_[idx]);
  }
  return visited;
}

std::uint32_t ChordRing::hop_bound() const noexcept {
  if (peers_.size() <= 2) return 1;
  return static_cast<std::uint32_t>(std::bit_width(peers_.size() - 1));
}

}  // namespace gridfed::overlay
