#include "overlay/attribute_index.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace gridfed::overlay {

AttributeIndex::AttributeIndex(const ChordRing& ring, double lo, double hi)
    : ring_(&ring), lo_(lo), hi_(hi) {
  GF_EXPECTS(lo < hi);
}

std::uint64_t AttributeIndex::publish(std::uint32_t from_owner, double value,
                                      std::uint32_t payload) {
  const RingKey key = locality_hash(value, lo_, hi_);
  const auto route = ring_->route(from_owner, key);
  by_payload_[payload] = value;
  return route.hops;
}

std::uint64_t AttributeIndex::withdraw(std::uint32_t from_owner,
                                       std::uint32_t payload) {
  const auto it = by_payload_.find(payload);
  GF_EXPECTS(it != by_payload_.end());
  const RingKey key = locality_hash(it->second, lo_, hi_);
  const auto route = ring_->route(from_owner, key);
  by_payload_.erase(it);
  return route.hops;
}

std::vector<AttributeIndex::Registration>
AttributeIndex::sorted_registrations() const {
  std::vector<Registration> regs;
  regs.reserve(by_payload_.size());
  for (const auto& [payload, value] : by_payload_) {
    regs.push_back(Registration{value, payload});
  }
  std::sort(regs.begin(), regs.end(), [](const auto& a, const auto& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.payload < b.payload;
  });
  return regs;
}

std::uint64_t AttributeIndex::data_walk_cost(std::size_t first_rank,
                                             std::size_t last_rank) const {
  // Data-holding peers keep direct successor-of-data links (the
  // MAAN/Mercury range-index optimization), so a rank walk hops only the
  // *distinct responsible peers* between the two ranks — empty arcs are
  // skipped.  Each transition between distinct peers is one message.
  const auto regs = sorted_registrations();
  GF_EXPECTS(first_rank >= 1 && first_rank <= last_rank);
  GF_EXPECTS(last_rank <= regs.size());
  std::uint64_t transitions = 0;
  RingKey previous_peer =
      ring_->successor(locality_hash(regs[first_rank - 1].value, lo_, hi_)).id;
  for (std::size_t k = first_rank; k < last_rank; ++k) {
    const RingKey peer =
        ring_->successor(locality_hash(regs[k].value, lo_, hi_)).id;
    if (peer != previous_peer) {
      ++transitions;
      previous_peer = peer;
    }
  }
  return transitions;
}

AttributeIndex::RankedResult AttributeIndex::query_rank(
    std::uint32_t from_owner, std::uint32_t r, bool ascending) {
  GF_EXPECTS(r >= 1);
  RankedResult result;
  const auto regs = sorted_registrations();
  if (regs.empty()) {
    // Route to the arc edge, find nothing.
    result.messages =
        ring_->route(from_owner, locality_hash(ascending ? lo_ : hi_, lo_,
                                               hi_))
            .hops;
    return result;
  }
  // Route to the peer holding the extreme registration (rank 1), then walk
  // the data links toward rank r.
  const Registration& extreme = ascending ? regs.front() : regs.back();
  const RingKey extreme_key = locality_hash(extreme.value, lo_, hi_);
  result.messages = ring_->route(from_owner, extreme_key).hops;

  if (r > regs.size()) {
    // Exhausts the whole data chain.
    result.messages +=
        ascending ? data_walk_cost(1, regs.size())
                  : data_walk_cost(1, regs.size());
    return result;
  }
  const Registration& hit = ascending ? regs[r - 1] : regs[regs.size() - r];
  result.payload = hit.payload;
  result.value = hit.value;
  if (ascending) {
    result.messages += data_walk_cost(1, static_cast<std::size_t>(r));
  } else {
    result.messages +=
        data_walk_cost(regs.size() - r + 1, regs.size());
  }
  return result;
}

AttributeIndex::RangeResult AttributeIndex::query_range(
    std::uint32_t from_owner, double value_lo, double value_hi) {
  GF_EXPECTS(value_lo <= value_hi);
  RangeResult result;
  const auto regs = sorted_registrations();
  std::size_t first = regs.size(), last = 0;
  for (std::size_t k = 0; k < regs.size(); ++k) {
    if (regs[k].value >= value_lo && regs[k].value <= value_hi) {
      first = std::min(first, k + 1);
      last = std::max(last, k + 1);
      result.payloads.push_back(regs[k].payload);
    }
  }
  if (result.payloads.empty()) {
    // Route to the range start; its responsible peer answers "empty".
    result.messages =
        ring_->route(from_owner, locality_hash(value_lo, lo_, hi_)).hops;
    return result;
  }
  const RingKey first_key = locality_hash(regs[first - 1].value, lo_, hi_);
  result.messages = ring_->route(from_owner, first_key).hops;
  result.messages += data_walk_cost(first, last);
  return result;
}

}  // namespace gridfed::overlay
