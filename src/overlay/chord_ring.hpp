#pragma once
// Chord-style structured overlay (simulated).  Each federation GFA runs a
// directory peer; peers form a ring ordered by their 64-bit ids and keep
// finger tables (peer owning id + 2^i for i = 0..63).  Routing greedily
// forwards to the closest preceding finger, resolving any key in O(log n)
// hops — the cost model the paper assumes for its shared federation
// directory, here measured instead of asserted.
//
// The membership is quasi-static per simulation run (clusters do not churn
// during the paper's experiments), so joins/leaves rebuild finger tables
// eagerly; the routing path itself is faithfully hop-by-hop.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "overlay/node_id.hpp"

namespace gridfed::overlay {

/// A directory peer (one per GFA).
struct Peer {
  RingKey id = 0;
  std::uint32_t owner = 0;  ///< the GFA / resource index running this peer
  std::string name;
};

/// Result of routing a key: the responsible peer and the path length.
struct RouteResult {
  Peer responsible;
  std::uint32_t hops = 0;  ///< messages consumed (forwardings)
};

/// The simulated ring.
class ChordRing {
 public:
  /// Adds a peer (id = ring_hash(name) unless given).  Rebuilds fingers.
  void join(std::uint32_t owner, const std::string& name);
  void join_with_id(std::uint32_t owner, const std::string& name, RingKey id);

  /// Removes the peer owned by `owner`.  Rebuilds fingers.
  void leave(std::uint32_t owner);

  [[nodiscard]] std::size_t size() const noexcept { return peers_.size(); }
  [[nodiscard]] bool empty() const noexcept { return peers_.empty(); }

  /// The peer responsible for `key` (its successor on the ring).
  [[nodiscard]] const Peer& successor(RingKey key) const;

  /// Routes from the peer owned by `from_owner` to the peer responsible
  /// for `key`, greedily via finger tables, counting hops.
  [[nodiscard]] RouteResult route(std::uint32_t from_owner, RingKey key) const;

  /// Walks clockwise from the peer responsible for `from_key` while peers'
  /// arcs intersect [from_key, to_key]; returns the visited peers in order.
  /// Used by range queries (each step is one extra message).
  [[nodiscard]] std::vector<Peer> arc_walk(RingKey from_key,
                                           RingKey to_key) const;

  /// All peers, ring order (tests / diagnostics).
  [[nodiscard]] const std::vector<Peer>& peers() const noexcept {
    return peers_;
  }

  /// Theoretical hop bound for the current size: ceil(log2 n), min 1.
  [[nodiscard]] std::uint32_t hop_bound() const noexcept;

 private:
  void rebuild();
  [[nodiscard]] std::size_t peer_index_of_owner(std::uint32_t owner) const;
  [[nodiscard]] std::size_t successor_index(RingKey key) const;

  std::vector<Peer> peers_;  // sorted by id
  // fingers_[p][i] = index into peers_ of successor(peers_[p].id + 2^i).
  std::vector<std::vector<std::uint32_t>> fingers_;
};

}  // namespace gridfed::overlay
