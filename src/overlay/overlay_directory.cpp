#include "overlay/overlay_directory.hpp"

#include "sim/check.hpp"

namespace gridfed::overlay {

OverlayDirectory::OverlayDirectory(double price_lo, double price_hi,
                                   double mips_lo, double mips_hi)
    : by_price_(ring_, price_lo, price_hi),
      by_speed_(ring_, mips_lo, mips_hi) {}

void OverlayDirectory::subscribe(const directory::Quote& quote,
                                 const std::string& name) {
  ring_.join(quote.resource, name);
  traffic_.publish_messages += by_price_.publish(quote.resource, quote.price,
                                                 quote.resource);
  traffic_.publish_messages +=
      by_speed_.publish(quote.resource, quote.mips, quote.resource);
  traffic_.publishes += 2;
}

void OverlayDirectory::unsubscribe(cluster::ResourceIndex resource) {
  traffic_.publish_messages += by_price_.withdraw(resource, resource);
  traffic_.publish_messages += by_speed_.withdraw(resource, resource);
  traffic_.publishes += 2;
  ring_.leave(resource);
}

void OverlayDirectory::update_price(cluster::ResourceIndex resource,
                                    double price) {
  traffic_.publish_messages += by_price_.publish(resource, price, resource);
  traffic_.publishes += 1;
}

OverlayDirectory::Result OverlayDirectory::query(cluster::ResourceIndex from,
                                                 directory::OrderBy order,
                                                 std::uint32_t r) {
  GF_EXPECTS(!ring_.empty());
  traffic_.queries += 1;
  Result out;
  if (order == directory::OrderBy::kCheapest) {
    const auto hit = by_price_.query_rank(from, r, /*ascending=*/true);
    out.resource = hit.payload;
    out.messages = hit.messages;
  } else {
    const auto hit = by_speed_.query_rank(from, r, /*ascending=*/false);
    out.resource = hit.payload;
    out.messages = hit.messages;
  }
  traffic_.query_messages += out.messages;
  return out;
}

}  // namespace gridfed::overlay
