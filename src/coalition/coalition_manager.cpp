#include "coalition/coalition_manager.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/check.hpp"

namespace gridfed::coalition {

namespace {
/// `candidate` beats `best` as the coalition's spokesbid: feasibility
/// first, then the lower ask, then the earlier guarantee.  Iteration in
/// ascending member order makes the index the implicit final tie-break.
[[nodiscard]] bool better_bid(const market::Bid& candidate,
                              const market::Bid& best) {
  if (candidate.feasible != best.feasible) return candidate.feasible;
  if (candidate.ask != best.ask) return candidate.ask < best.ask;
  return candidate.completion_estimate < best.completion_estimate;
}
}  // namespace

CoalitionManager::CoalitionManager(CoalitionContext& ctx,
                                   const CoalitionConfig& config,
                                   std::span<const std::uint64_t> ring_keys)
    : ctx_(ctx),
      config_(config),
      registry_(ctx.sites()),
      ring_keys_(ring_keys.begin(), ring_keys.end()),
      home_coalition_(ctx.sites(), federation::kNoParticipant) {
  GF_EXPECTS(config_.bucket_size >= 2);
  GF_EXPECTS(ring_keys.size() == ctx.sites());
  // Latency-proximity buckets: consecutive runs in the overlay ring
  // order (ring key, then index — the TreeTransport's layout order).
  std::vector<std::pair<std::uint64_t, cluster::ResourceIndex>> order;
  order.reserve(ring_keys.size());
  for (std::size_t i = 0; i < ring_keys.size(); ++i) {
    order.emplace_back(ring_keys[i], static_cast<cluster::ResourceIndex>(i));
  }
  std::sort(order.begin(), order.end());
  for (std::size_t at = 0; at + 2 <= order.size();
       at += config_.bucket_size) {
    const std::size_t len =
        std::min<std::size_t>(config_.bucket_size, order.size() - at);
    if (len < 2) break;  // a trailing loner stays a singleton
    std::vector<cluster::ResourceIndex> members;
    members.reserve(len);
    for (std::size_t i = at; i < at + len; ++i) {
      members.push_back(order[i].second);
    }
    // The first member in ring order speaks for the group on the wire.
    const cluster::ResourceIndex rep = order[at].second;
    const federation::ParticipantId id =
        registry_.register_coalition(std::move(members), rep);
    for (std::size_t i = at; i < at + len; ++i) {
      home_coalition_[order[i].second] = id;
    }
    GF_OBS(ctx_.observer(), instant(0.0, obs::SpanKind::kCoalitionFormed, rep,
                                    id.value, len));
    GF_OBS(ctx_.observer(), count(obs::Counter::kCoalitionsFormed));
  }
}

market::Bid CoalitionManager::joint_bid(federation::ParticipantId id,
                                        const cluster::Job& job) {
  GF_EXPECTS(id.is_coalition());
  const cluster::ResourceIndex rep = registry_.representative(id);
  market::Bid best;  // infeasible until a member enters
  best.bidder = id;
  bool any = false;
  for (const cluster::ResourceIndex member : registry_.members(id)) {
    if (member == job.origin) continue;  // the origin bids for itself
    if (job.processors > ctx_.spec_of(member).processors) continue;
    market::Bid entry = ctx_.member_bid(member, job);
    if (member != rep) {
      local_messages_.fetch_add(2, std::memory_order_relaxed);
    }  // pricing enquiry + answer
    entry.bidder = id;
    if (!any || better_bid(entry, best)) best = entry;
    any = true;
  }
  return best;
}

Placement CoalitionManager::place_award(federation::ParticipantId id,
                                        const cluster::Job& job) {
  GF_EXPECTS(id.is_coalition());
  const cluster::ResourceIndex rep = registry_.representative(id);
  // Re-price every member at award time (the queues moved since bidding)
  // and admit earliest-guarantee-first; admission itself re-checks, so a
  // member whose queue filled in this very instant simply declines and
  // the next-best member is tried.
  struct Candidate {
    sim::SimTime estimate = 0.0;
    cluster::ResourceIndex member = cluster::kNoResource;
    double ask = 0.0;
  };
  std::vector<Candidate> candidates;
  for (const cluster::ResourceIndex member : registry_.members(id)) {
    if (member == job.origin) continue;  // matches the joint bid's scope
    if (job.processors > ctx_.spec_of(member).processors) continue;
    const market::Bid entry = ctx_.member_bid(member, job);
    if (member != rep) {
      local_messages_.fetch_add(2, std::memory_order_relaxed);
    }
    candidates.push_back(Candidate{entry.completion_estimate, member,
                                   entry.ask});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.estimate != b.estimate) return a.estimate < b.estimate;
              return a.member < b.member;
            });
  for (const Candidate& candidate : candidates) {
    if (candidate.member != rep) {
      local_messages_.fetch_add(2, std::memory_order_relaxed);  // placement RPC
    }
    const sim::SimTime estimate =
        ctx_.member_admit(candidate.member, job);
    if (estimate == sim::kTimeInfinity) continue;  // declined: next member
    // Snapshot the member list NOW: the eventual settlement must split
    // over the members who backed this bid, even if churn re-forms the
    // group before the job completes.
    const auto members = registry_.members(id);
    {
      const std::lock_guard<std::mutex> lock(notes_mu_);
      notes_.insert_or_assign(
          job.id,
          AwardNote{id, candidate.member, candidate.ask,
                    std::vector<cluster::ResourceIndex>(members.begin(),
                                                        members.end())});
    }
    return Placement{true, candidate.member, estimate};
  }
  return Placement{};
}

bool CoalitionManager::settle(economy::GridBank& bank, cluster::JobId job,
                              cluster::ResourceIndex executor,
                              cluster::ResourceIndex consumer_home,
                              std::uint32_t user, double payment) {
  AwardNote note;
  {
    const std::lock_guard<std::mutex> lock(notes_mu_);
    const auto it = notes_.find(job);
    if (it == notes_.end()) return false;
    note = std::move(it->second);
    notes_.erase(it);
  }
  if (note.executor != executor) {
    // The job ultimately ran somewhere else (a lossy network abandoned
    // the awarded enquiry and the origin re-scheduled): the note is
    // stale and the plain solo settlement applies.
    return false;
  }
  // Split over the PLACEMENT-time snapshot, not the live registry: a
  // member that departed mid-flight still backed this bid and is still
  // paid its share, which is what keeps the bank balanced member-by-
  // member before the split rule changes.
  const std::vector<cluster::ResourceIndex>& members = note.members;
  scratch_weights_.clear();
  std::size_t executor_pos = members.size();
  for (std::size_t i = 0; i < members.size(); ++i) {
    scratch_weights_.push_back(ctx_.spec_of(members[i]).total_mips());
    if (members[i] == executor) executor_pos = i;
  }
  GF_EXPECTS(executor_pos < members.size());
  std::vector<double> shares =
      split_surplus(config_.surplus, payment, executor_pos,
                    note.executor_ask, scratch_weights_);
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (shares[i] <= 0.0) continue;  // a zero share settles nothing
    bank.settle(economy::Settlement{job, consumer_home, members[i],
                                    shares[i], user});
  }
  splits_.push_back(SplitRecord{job, note.coalition, executor,
                                note.executor_ask, payment,
                                std::move(note.members),
                                std::move(shares)});
  return true;
}

// ---- membership churn -------------------------------------------------------

cluster::ResourceIndex CoalitionManager::first_in_ring(
    federation::ParticipantId id) const {
  const auto members = registry_.members(id);
  GF_EXPECTS(!members.empty());
  cluster::ResourceIndex best = members.front();
  for (const cluster::ResourceIndex m : members) {
    if (ring_keys_[m] < ring_keys_[best] ||
        (ring_keys_[m] == ring_keys_[best] && m < best)) {
      best = m;
    }
  }
  return best;
}

bool CoalitionManager::rational_split(federation::ParticipantId id) {
  // Rule-level probe, independent of live queues: a unit ask against a
  // doubled payment (surplus == ask) must split budget-balanced with no
  // negative share and the executor recovering at least its ask — for
  // EVERY member as the hypothetical executor.
  constexpr double kProbeAsk = 1.0;
  constexpr double kProbePayment = 2.0;
  const auto members = registry_.members(id);
  scratch_weights_.clear();
  for (const cluster::ResourceIndex m : members) {
    scratch_weights_.push_back(ctx_.spec_of(m).total_mips());
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    const std::vector<double> shares = split_surplus(
        config_.surplus, kProbePayment, i, kProbeAsk, scratch_weights_);
    double sum = 0.0;
    for (const double s : shares) {
      if (s < -1e-9) return false;
      sum += s;
    }
    if (shares[i] + 1e-9 < kProbeAsk) return false;
    if (std::abs(sum - kProbePayment) > 1e-6) return false;
  }
  return true;
}

void CoalitionManager::record_reformation(federation::ParticipantId id,
                                          cluster::ResourceIndex member,
                                          bool departed, sim::SimTime now) {
  const auto members = registry_.members(id);
  ReformationRecord record;
  record.t = now;
  record.coalition = id;
  record.member = member;
  record.departed = departed;
  record.members_after.assign(members.begin(), members.end());
  record.representative_after = registry_.representative(id);
  record.rational = rational_split(id);
  GF_OBS(ctx_.observer(),
         instant(now, obs::SpanKind::kCoalitionReform,
                 record.representative_after, id.value, member,
                 departed ? 1 : 0));
  GF_OBS(ctx_.observer(), count(obs::Counter::kCoalitionReforms));
  reformations_.push_back(std::move(record));
}

void CoalitionManager::on_member_departed(cluster::ResourceIndex member,
                                          sim::SimTime now) {
  const federation::ParticipantId id = registry_.participant_of(member);
  if (!id.is_coalition()) return;  // singletons re-form nothing
  if (registry_.members(id).size() < 2) {
    // The last member: keep the shell (no live directory entry resolves
    // to it, so it is never solicited) rather than empty the group.
    return;
  }
  registry_.remove_member(id, member);
  if (registry_.representative(id) == member) {
    // The spokescluster died: the surviving member first in ring order
    // takes over — the same rule formation used.
    registry_.set_representative(id, first_in_ring(id));
  }
  record_reformation(id, member, /*departed=*/true, now);
}

void CoalitionManager::on_member_rejoined(cluster::ResourceIndex member,
                                          sim::SimTime now) {
  if (registry_.participant_of(member).is_coalition()) {
    // Still formally a member (it was the group's last): nothing moved.
    return;
  }
  const federation::ParticipantId home = home_coalition_[member];
  if (!home.is_coalition()) return;  // formed no group to rejoin
  registry_.add_member(home, member);
  // Bucket rule: the member first in ring order represents — a rejoiner
  // ahead of the current representative takes the role back.
  registry_.set_representative(home, first_in_ring(home));
  record_reformation(home, member, /*departed=*/false, now);
}

}  // namespace gridfed::coalition
