#include "coalition/coalition_manager.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace gridfed::coalition {

namespace {
/// `candidate` beats `best` as the coalition's spokesbid: feasibility
/// first, then the lower ask, then the earlier guarantee.  Iteration in
/// ascending member order makes the index the implicit final tie-break.
[[nodiscard]] bool better_bid(const market::Bid& candidate,
                              const market::Bid& best) {
  if (candidate.feasible != best.feasible) return candidate.feasible;
  if (candidate.ask != best.ask) return candidate.ask < best.ask;
  return candidate.completion_estimate < best.completion_estimate;
}
}  // namespace

CoalitionManager::CoalitionManager(CoalitionContext& ctx,
                                   const CoalitionConfig& config,
                                   std::span<const std::uint64_t> ring_keys)
    : ctx_(ctx), config_(config), registry_(ctx.sites()) {
  GF_EXPECTS(config_.bucket_size >= 2);
  GF_EXPECTS(ring_keys.size() == ctx.sites());
  // Latency-proximity buckets: consecutive runs in the overlay ring
  // order (ring key, then index — the TreeTransport's layout order).
  std::vector<std::pair<std::uint64_t, cluster::ResourceIndex>> order;
  order.reserve(ring_keys.size());
  for (std::size_t i = 0; i < ring_keys.size(); ++i) {
    order.emplace_back(ring_keys[i], static_cast<cluster::ResourceIndex>(i));
  }
  std::sort(order.begin(), order.end());
  for (std::size_t at = 0; at + 2 <= order.size();
       at += config_.bucket_size) {
    const std::size_t len =
        std::min<std::size_t>(config_.bucket_size, order.size() - at);
    if (len < 2) break;  // a trailing loner stays a singleton
    std::vector<cluster::ResourceIndex> members;
    members.reserve(len);
    for (std::size_t i = at; i < at + len; ++i) {
      members.push_back(order[i].second);
    }
    // The first member in ring order speaks for the group on the wire.
    const cluster::ResourceIndex rep = order[at].second;
    [[maybe_unused]] const federation::ParticipantId id =
        registry_.register_coalition(std::move(members), rep);
    GF_OBS(ctx_.observer(), instant(0.0, obs::SpanKind::kCoalitionFormed, rep,
                                    id.value, len));
    GF_OBS(ctx_.observer(), count(obs::Counter::kCoalitionsFormed));
  }
}

market::Bid CoalitionManager::joint_bid(federation::ParticipantId id,
                                        const cluster::Job& job) {
  GF_EXPECTS(id.is_coalition());
  const cluster::ResourceIndex rep = registry_.representative(id);
  market::Bid best;  // infeasible until a member enters
  best.bidder = id;
  bool any = false;
  for (const cluster::ResourceIndex member : registry_.members(id)) {
    if (member == job.origin) continue;  // the origin bids for itself
    if (job.processors > ctx_.spec_of(member).processors) continue;
    market::Bid entry = ctx_.member_bid(member, job);
    if (member != rep) local_messages_ += 2;  // pricing enquiry + answer
    entry.bidder = id;
    if (!any || better_bid(entry, best)) best = entry;
    any = true;
  }
  return best;
}

Placement CoalitionManager::place_award(federation::ParticipantId id,
                                        const cluster::Job& job) {
  GF_EXPECTS(id.is_coalition());
  const cluster::ResourceIndex rep = registry_.representative(id);
  // Re-price every member at award time (the queues moved since bidding)
  // and admit earliest-guarantee-first; admission itself re-checks, so a
  // member whose queue filled in this very instant simply declines and
  // the next-best member is tried.
  struct Candidate {
    sim::SimTime estimate = 0.0;
    cluster::ResourceIndex member = cluster::kNoResource;
    double ask = 0.0;
  };
  std::vector<Candidate> candidates;
  for (const cluster::ResourceIndex member : registry_.members(id)) {
    if (member == job.origin) continue;  // matches the joint bid's scope
    if (job.processors > ctx_.spec_of(member).processors) continue;
    const market::Bid entry = ctx_.member_bid(member, job);
    if (member != rep) local_messages_ += 2;
    candidates.push_back(Candidate{entry.completion_estimate, member,
                                   entry.ask});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.estimate != b.estimate) return a.estimate < b.estimate;
              return a.member < b.member;
            });
  for (const Candidate& candidate : candidates) {
    if (candidate.member != rep) local_messages_ += 2;  // placement RPC
    const sim::SimTime estimate =
        ctx_.member_admit(candidate.member, job);
    if (estimate == sim::kTimeInfinity) continue;  // declined: next member
    notes_.insert_or_assign(
        job.id, AwardNote{id, candidate.member, candidate.ask});
    return Placement{true, candidate.member, estimate};
  }
  return Placement{};
}

bool CoalitionManager::settle(economy::GridBank& bank, cluster::JobId job,
                              cluster::ResourceIndex executor,
                              cluster::ResourceIndex consumer_home,
                              std::uint32_t user, double payment) {
  const auto it = notes_.find(job);
  if (it == notes_.end()) return false;
  const AwardNote note = it->second;
  notes_.erase(it);
  if (note.executor != executor) {
    // The job ultimately ran somewhere else (a lossy network abandoned
    // the awarded enquiry and the origin re-scheduled): the note is
    // stale and the plain solo settlement applies.
    return false;
  }
  const auto members = registry_.members(note.coalition);
  scratch_weights_.clear();
  std::size_t executor_pos = members.size();
  for (std::size_t i = 0; i < members.size(); ++i) {
    scratch_weights_.push_back(ctx_.spec_of(members[i]).total_mips());
    if (members[i] == executor) executor_pos = i;
  }
  GF_EXPECTS(executor_pos < members.size());
  std::vector<double> shares =
      split_surplus(config_.surplus, payment, executor_pos,
                    note.executor_ask, scratch_weights_);
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (shares[i] <= 0.0) continue;  // a zero share settles nothing
    bank.settle(economy::Settlement{job, consumer_home, members[i],
                                    shares[i], user});
  }
  splits_.push_back(SplitRecord{job, note.coalition, executor,
                                note.executor_ask, payment,
                                std::move(shares)});
  return true;
}

}  // namespace gridfed::coalition
