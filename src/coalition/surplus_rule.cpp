#include "coalition/surplus_rule.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace gridfed::coalition {

std::vector<double> split_surplus(SurplusRuleKind rule, double payment,
                                  std::size_t executor_pos,
                                  double executor_ask,
                                  std::span<const double> weights) {
  GF_EXPECTS(!weights.empty());
  GF_EXPECTS(executor_pos < weights.size());
  GF_EXPECTS(payment >= 0.0);
  const std::size_t n = weights.size();
  const double base = std::min(std::max(0.0, executor_ask), payment);
  const double surplus = payment - base;

  std::vector<double> shares(n, 0.0);
  double weight_sum = 0.0;
  if (rule == SurplusRuleKind::kProportional) {
    for (const double w : weights) {
      GF_EXPECTS(w >= 0.0);
      weight_sum += w;
    }
  }
  if (rule == SurplusRuleKind::kEqual || weight_sum <= 0.0) {
    // Equal split (also the proportional rule's degenerate all-zero case).
    for (double& share : shares) {
      share = surplus / static_cast<double>(n);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      shares[i] = surplus * weights[i] / weight_sum;
    }
  }
  // The executor takes its base plus the exact remainder, so the shares
  // sum to the payment bit-for-bit (budget balance) and the executor is
  // never paid below its base (individual rationality): every other
  // share is a non-negative fraction of the surplus, so the remainder is
  // >= base up to rounding, and the clamp only absorbs that rounding.
  double others = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != executor_pos) others += shares[i];
  }
  shares[executor_pos] = std::max(0.0, payment - others);
  return shares;
}

}  // namespace gridfed::coalition
