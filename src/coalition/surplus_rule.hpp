#pragma once
// Surplus splitting for coalition-won awards.  A coalition clears the
// auction as one bidder and its payment lands as one amount; this header
// turns that amount into per-member GridBank settlements under the
// configured SurplusRuleKind.
//
// Every rule shares the same skeleton (Guazzone et al.'s cooperative
// game, simplified to the transferable-utility core of one award):
//
//   executor base  = min(executor's own ask, payment)   — what the member
//                    doing the work would have earned winning the same
//                    award solo under first-price;
//   surplus        = payment - base  (>= 0 because clearing floors every
//                    payment at the winning ask);
//   member shares  = surplus split per rule (proportional to contributed
//                    capacity, or equally), executor's base added back.
//
// Properties the tests pin down (tests/test_coalition.cpp):
//   * budget balance: sum(shares) == payment exactly (the executor
//     absorbs the floating-point remainder);
//   * individual rationality: shares[executor] >= min(ask, payment) and
//     every share >= 0 — no member does worse than going solo.

#include <span>
#include <vector>

#include "coalition/coalition_config.hpp"

namespace gridfed::coalition {

/// Splits `payment` for an award executed by the member at `executor_pos`
/// among the members described by `weights` (one non-negative capacity
/// weight per member, proportional rule only; all-equal weights reproduce
/// the equal split).  `executor_ask` is the executing member's own sealed
/// ask for the job.  Returns one non-negative share per member, summing
/// exactly to `payment`.
[[nodiscard]] std::vector<double> split_surplus(SurplusRuleKind rule,
                                                double payment,
                                                std::size_t executor_pos,
                                                double executor_ask,
                                                std::span<const double>
                                                    weights);

}  // namespace gridfed::coalition
