#pragma once
// Coalition formation and coordination over the participant layer
// (federation/participant.hpp).  One CoalitionManager rides a federation
// run in auction mode when CoalitionConfig::enabled is set:
//
//  * formation — clusters are ordered by their overlay ring keys (the
//    TreeTransport's heap order) and consecutive latency-proximity
//    buckets of CoalitionConfig::bucket_size register as coalitions in
//    the ParticipantRegistry, each represented on the wire by its first
//    member in ring order;
//  * joint bidding — a call-for-bids reaching a coalition's
//    representative is answered ONCE: the manager collects each member's
//    solo pricing over the cheap intra-coalition links (counted in
//    local_messages, never in the wire ledger) and the best member's
//    ask/guarantee becomes the coalition's sealed bid.  A member equal to
//    the job's origin is excluded — the origin competes for its own job
//    with its message-free local bid, exactly as in the solo market;
//  * internal placement — an award won by the coalition is dispatched to
//    the member whose LRMS guarantees the earliest completion at award
//    time (admission re-check semantics unchanged: estimate, reserve,
//    hold), and the origin ships the payload straight to that member;
//  * surplus splitting — at settlement the coalition's payment is split
//    among the members under the configured SurplusRuleKind
//    (surplus_rule.hpp) and lands in the GridBank as one settlement per
//    member, so balanced() keeps holding member-by-member.
//
// The manager reaches the per-cluster machinery (LRMS estimates, sealed
// pricing, reservations) through CoalitionContext, implemented by the
// Federation driver — the same inversion the transport and policy layers
// use, keeping this subsystem free of any dependency on core/.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/job.hpp"
#include "coalition/coalition_config.hpp"
#include "coalition/surplus_rule.hpp"
#include "economy/grid_bank.hpp"
#include "federation/participant.hpp"
#include "market/bid.hpp"
#include "obs/observer.hpp"

namespace gridfed::coalition {

/// Per-cluster services the manager coordinates through, implemented by
/// the federation driver (which owns every agent and LRMS).
class CoalitionContext {
 public:
  virtual ~CoalitionContext() = default;

  [[nodiscard]] virtual std::size_t sites() const = 0;
  [[nodiscard]] virtual const cluster::ResourceSpec& spec_of(
      cluster::ResourceIndex index) const = 0;

  /// `member`'s solo sealed bid for `job` — the same pricing the member
  /// would put on the wire bidding alone (AuctionPolicy::make_bid).
  [[nodiscard]] virtual market::Bid member_bid(cluster::ResourceIndex member,
                                               const cluster::Job& job) = 0;

  /// Provider-side admission at `member` (exact estimate; on acceptance
  /// the member reserves and holds, exactly as for a wire enquiry).
  /// Returns the completion estimate, or sim::kTimeInfinity on rejection.
  virtual sim::SimTime member_admit(cluster::ResourceIndex member,
                                    const cluster::Job& job) = 0;

  /// The observability umbrella, or null when disabled (GF_OBS sites
  /// branch on it; formation/placement instants land per cluster track).
  [[nodiscard]] virtual obs::Observer* observer() { return nullptr; }
};

/// Outcome of a coalition's internal placement for one award.
struct Placement {
  bool accepted = false;
  cluster::ResourceIndex member = cluster::kNoResource;
  sim::SimTime estimate = 0.0;
};

/// One settled coalition award (tests inspect these to pin budget
/// balance and individual rationality end-to-end).
struct SplitRecord {
  cluster::JobId job = 0;
  federation::ParticipantId coalition = federation::kNoParticipant;
  cluster::ResourceIndex executor = cluster::kNoResource;
  double executor_ask = 0.0;  ///< the executor's solo ask for the job
  double payment = 0.0;       ///< the coalition's cleared payment
  /// Member list the split ran over — snapshotted at PLACEMENT time, so
  /// a settlement after churn pays exactly the members who backed the
  /// bid (budget balance survives a mid-flight re-formation).
  std::vector<cluster::ResourceIndex> members;
  std::vector<double> shares;  ///< per member, parallel to `members`
};

/// One churn-driven re-formation of a coalition (tests pin that every
/// re-formation leaves a rational split rule in place).
struct ReformationRecord {
  sim::SimTime t = 0.0;
  federation::ParticipantId coalition = federation::kNoParticipant;
  cluster::ResourceIndex member = cluster::kNoResource;  ///< who churned
  bool departed = true;  ///< false: a rejoin re-entered at the bucket rule
  std::vector<cluster::ResourceIndex> members_after;
  cluster::ResourceIndex representative_after = cluster::kNoResource;
  /// The individual-rationality probe held: for every member as a
  /// hypothetical executor, the split is budget-balanced, every share is
  /// non-negative, and the executor recovers at least its ask.
  bool rational = true;
};

class CoalitionManager {
 public:
  /// Forms the ring-bucket coalitions over the federation's clusters
  /// (see file comment).  `ring_key_of` orders the clusters; it is the
  /// overlay ring hash of the cluster names, passed in so formation
  /// matches the TreeTransport's layout without depending on it.
  CoalitionManager(CoalitionContext& ctx, const CoalitionConfig& config,
                   std::span<const std::uint64_t> ring_keys);

  [[nodiscard]] const federation::ParticipantRegistry& registry()
      const noexcept {
    return registry_;
  }
  [[nodiscard]] const CoalitionConfig& config() const noexcept {
    return config_;
  }

  /// The coalition's joint sealed bid for `job`: the best member pricing
  /// over the members that could run it, excluding the job's origin
  /// (which bids for itself locally).  bidder == `id`.
  [[nodiscard]] market::Bid joint_bid(federation::ParticipantId id,
                                      const cluster::Job& job);

  /// Internal placement of an award won by coalition `id`: admits on the
  /// member with the earliest completion guarantee (origin excluded, as
  /// in the joint bid).  On acceptance the member holds a reservation
  /// and the pending settlement is noted for the eventual split.
  [[nodiscard]] Placement place_award(federation::ParticipantId id,
                                      const cluster::Job& job);

  /// Settles `payment` for `job` (executed on `executor`) against the
  /// coalition noted at placement: one GridBank settlement per member
  /// share.  Returns false — caller settles solo — when no matching note
  /// exists (the job was ultimately placed outside the coalition, e.g.
  /// after a lossy-network re-schedule).
  bool settle(economy::GridBank& bank, cluster::JobId job,
              cluster::ResourceIndex executor,
              cluster::ResourceIndex consumer_home, std::uint32_t user,
              double payment);

  /// Drops any pending placement note for `job`.  Called by the driver
  /// when the job reached a terminal state outside the coalition path —
  /// a solo settlement or a rejection after a lossy award was abandoned
  /// — so stale notes do not accumulate for the rest of the run.
  void forget(cluster::JobId job) {
    const std::lock_guard<std::mutex> lock(notes_mu_);
    notes_.erase(job);
  }

  /// Intra-coalition control messages exchanged on the local links
  /// (member pricing enquiries and placement RPCs; never in the wire
  /// ledger — this is the representative-fan-out cost the README's
  /// byte/message tradeoff discussion quantifies).
  [[nodiscard]] std::uint64_t local_messages() const noexcept {
    return local_messages_.load(std::memory_order_relaxed);
  }

  /// Every settled coalition award, settlement order.
  [[nodiscard]] const std::vector<SplitRecord>& splits() const noexcept {
    return splits_;
  }

  // -- membership churn ---------------------------------------------------
  /// `member` left or was confirmed dead: its coalition re-forms without
  /// it — the member reverts to its singleton, a departed representative
  /// is replaced by the surviving member first in ring order, and the
  /// individual-rationality probe re-runs over the survivors.  In-flight
  /// settlements are untouched (they split over the placement-time
  /// snapshot).  The LAST member of a group is never removed: an
  /// all-departed coalition keeps its shell, which no live directory
  /// entry resolves to.
  void on_member_departed(cluster::ResourceIndex member, sim::SimTime now);
  /// A kJoin churn event brought `member` back: it re-enters its home
  /// coalition at the bucket rule (ascending member order, first member
  /// in ring order represents).
  void on_member_rejoined(cluster::ResourceIndex member, sim::SimTime now);
  /// Every churn-driven re-formation, application order.
  [[nodiscard]] const std::vector<ReformationRecord>& reformations()
      const noexcept {
    return reformations_;
  }

 private:
  /// Pending settlement noted at placement time.
  struct AwardNote {
    federation::ParticipantId coalition = federation::kNoParticipant;
    cluster::ResourceIndex executor = cluster::kNoResource;
    double executor_ask = 0.0;
    /// Member snapshot backing the eventual split (see SplitRecord).
    std::vector<cluster::ResourceIndex> members;
  };

  /// The surviving member first in ring order (formation's layout rule).
  [[nodiscard]] cluster::ResourceIndex first_in_ring(
      federation::ParticipantId id) const;
  /// The individual-rationality probe of ReformationRecord::rational.
  [[nodiscard]] bool rational_split(federation::ParticipantId id);
  void record_reformation(federation::ParticipantId id,
                          cluster::ResourceIndex member, bool departed,
                          sim::SimTime now);

  CoalitionContext& ctx_;
  CoalitionConfig config_;
  federation::ParticipantRegistry registry_;
  /// Guards the map STRUCTURE of notes_: distinct coalitions place
  /// awards concurrently from different worker lanes under the sharded
  /// kernel.  Any single job's note is only ever touched by one lane at
  /// a time (awards are per-origin), so per-key values need no lock.
  std::mutex notes_mu_;
  std::unordered_map<cluster::JobId, AwardNote> notes_;
  std::vector<SplitRecord> splits_;
  std::vector<ReformationRecord> reformations_;
  /// Relaxed atomic: a pure total, summed from concurrent lanes.
  std::atomic<std::uint64_t> local_messages_{0};
  /// Ring key per cluster (formation order; re-formation reuses it).
  std::vector<std::uint64_t> ring_keys_;
  /// Each cluster's formation-time coalition (kNoParticipant when it
  /// formed none) — the home a rejoiner re-enters.
  std::vector<federation::ParticipantId> home_coalition_;
  // Scratch reused across placements/settlements.
  std::vector<double> scratch_weights_;
};

/// The participant `resource` acts as under an optional coalition layer:
/// its registered coalition, or its singleton when `manager` is null
/// (the solo market) or it joined no group.  The ONE definition of the
/// "no layer == identity" rule the solo-parity digests rely on — the
/// protocol engine, the policies and the transports all map through
/// here (or through the registry directly) rather than re-deriving it.
[[nodiscard]] inline federation::ParticipantId participant_of(
    const CoalitionManager* manager, cluster::ResourceIndex resource) {
  if (manager == nullptr) return federation::ParticipantId{resource};
  return manager->registry().participant_of(resource);
}

/// Wire address of `participant` under an optional coalition layer (a
/// singleton represents itself; null manager == identity).
[[nodiscard]] inline cluster::ResourceIndex representative_of(
    const CoalitionManager* manager, federation::ParticipantId participant) {
  if (manager == nullptr) return participant.cluster();
  return manager->registry().representative(participant);
}

}  // namespace gridfed::coalition
