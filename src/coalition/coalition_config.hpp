#pragma once
// Configuration of the coalition extension (see coalition_manager.hpp for
// the layer itself).  Kept dependency-free so core/config.hpp can embed a
// CoalitionConfig without pulling the manager in — the same pattern as
// transport/transport_options.hpp.

#include <cstdint>

namespace gridfed::coalition {

/// How a coalition's earnings are divided among its members.  Every rule
/// is budget-balanced (the shares sum to the settled payment) and
/// individually rational (the executing member never earns less than its
/// own ask — what it would have been paid winning the same award solo
/// under first-price — and no member's share is negative), which is what
/// makes joining a coalition incentive-compatible (Xie et al.).
enum class SurplusRuleKind : std::uint8_t {
  /// The executor is paid its ask; the remaining surplus is split in
  /// proportion to each member's contributed capacity (total MIPS).
  kProportional,
  /// The executor is paid its ask; the remaining surplus is split
  /// equally among the members.
  kEqual,
};

[[nodiscard]] constexpr const char* to_string(SurplusRuleKind rule) noexcept {
  // Exhaustive: -Wswitch flags any rule added without a name here.
  switch (rule) {
    case SurplusRuleKind::kProportional:
      return "proportional";
    case SurplusRuleKind::kEqual:
      return "equal";
  }
  __builtin_unreachable();
}

/// Knobs of the coalition extension.  Only read in auction mode; with
/// `enabled` false every participant stays a singleton and every code
/// path is bit-identical to the pre-participant layer.
struct CoalitionConfig {
  bool enabled = false;

  /// Affinity rule: clusters are ordered by their overlay ring keys (the
  /// same ChordRing order the TreeTransport builds its heap layout over)
  /// and consecutive runs of `bucket_size` form one coalition —
  /// ring-adjacent clusters are latency-proximate by construction, so
  /// the intra-coalition fan-out stays on cheap local links.  A trailing
  /// remainder of one cluster stays a singleton.  Must be >= 2.
  std::uint32_t bucket_size = 4;

  /// How the surplus of a coalition-won award is split (see above).
  SurplusRuleKind surplus = SurplusRuleKind::kProportional;
};

}  // namespace gridfed::coalition
