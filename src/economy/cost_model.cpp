#include "economy/cost_model.hpp"

#include "sim/check.hpp"

namespace gridfed::economy {

double job_cost(const cluster::Job& job, const cluster::ResourceSpec& origin,
                const cluster::ResourceSpec& exec, CostModel model) noexcept {
  switch (model) {
    case CostModel::kComputeOnly:
      return cluster::compute_only_cost(job, exec);
    case CostModel::kWallTime:
      return cluster::wall_time_cost(job, origin, exec);
    case CostModel::kPerMi:
    default:
      return exec.quote * job.length_mi / kMiPerChargeUnit;
  }
}

void fabricate_qos(cluster::Job& job, const cluster::ResourceSpec& origin,
                   CostModel model, const QosFactors& factors) {
  GF_EXPECTS(factors.budget_factor > 0.0 && factors.deadline_factor > 0.0);
  job.budget = factors.budget_factor * job_cost(job, origin, origin, model);
  job.deadline =
      factors.deadline_factor * cluster::execution_time(job, origin, origin);
}

}  // namespace gridfed::economy
