#pragma once
// Commodity-market pricing (paper Eqs. 5/6).  Every resource owner prices
// access proportionally to speed: c_i = (c / mu_max) * mu_i, where c is the
// access price of the fastest resource in the federation.  With the
// paper's configuration (c = 5.3 Grid Dollars, mu_max = 930 MIPS) this
// reproduces every quote in Table 1 to the printed precision.

#include <span>

#include "cluster/resource.hpp"

namespace gridfed::economy {

/// The paper's access price of the fastest resource (NASA iPSC).
inline constexpr double kDefaultAccessPrice = 5.3;

/// The paper's fastest MIPS rating (NASA iPSC).
inline constexpr double kDefaultMaxMips = 930.0;

/// Eq. 6: quote for a resource of speed `mips` given the federation's
/// fastest speed and its access price.
[[nodiscard]] double quote_for(double mips,
                               double access_price = kDefaultAccessPrice,
                               double max_mips = kDefaultMaxMips) noexcept;

/// Applies Eq. 6 across a federation: mu_max is taken from the specs
/// themselves, `access_price` is the price of that fastest resource.
/// Overwrites each spec's quote.
void apply_commodity_pricing(std::span<cluster::ResourceSpec> specs,
                             double access_price = kDefaultAccessPrice);

}  // namespace gridfed::economy
