#pragma once
// Dynamic supply/demand pricing — the paper's future work (§5: "study ...
// how pricing policies for resources leads to varied utility of the
// system").  gridfed ships a simple tatonnement-style controller: each
// owner periodically adjusts its quote toward a utilization target,
//
//     c_i  <-  clamp(c_i * (1 + eta * (util_i - target)), floor, ceiling)
//
// so overloaded (popular) resources become more expensive and idle ones
// cheaper, spreading demand.  bench_ablation_dynamic_pricing compares this
// against the paper's static quotes.

#include <cstdint>
#include <vector>

#include "cluster/resource.hpp"

namespace gridfed::economy {

/// Controller parameters.
struct DynamicPricingConfig {
  double eta = 0.5;          ///< adjustment gain per repricing period
  double target_load = 0.7;  ///< utilization the owner aims for
  double floor_factor = 0.25;   ///< min quote = factor * initial quote
  double ceiling_factor = 4.0;  ///< max quote = factor * initial quote
  double period = 3600.0;       ///< repricing interval (simulated seconds)
};

/// Per-resource multiplicative price controller.
class DynamicPricer {
 public:
  DynamicPricer(double initial_quote, DynamicPricingConfig config);

  /// One repricing step given the resource's recent load in [0, 1];
  /// returns the new quote.
  double reprice(double recent_load);

  [[nodiscard]] double quote() const noexcept { return quote_; }
  [[nodiscard]] double initial_quote() const noexcept { return initial_; }
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] const DynamicPricingConfig& config() const noexcept {
    return config_;
  }

 private:
  double initial_;
  double quote_;
  DynamicPricingConfig config_;
  std::uint64_t steps_ = 0;
};

}  // namespace gridfed::economy
