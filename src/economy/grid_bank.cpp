#include "economy/grid_bank.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/check.hpp"

namespace gridfed::economy {

GridBank::GridBank(std::size_t n_resources)
    : credits_(n_resources, 0.0), debits_(n_resources, 0.0) {
  GF_EXPECTS(n_resources > 0);
}

void GridBank::settle(const Settlement& s) {
  GF_EXPECTS(s.amount >= 0.0);
  GF_EXPECTS(s.provider < credits_.size());
  GF_EXPECTS(s.consumer_home < debits_.size());
  credits_[s.provider] += s.amount;
  debits_[s.consumer_home] += s.amount;
  by_user_[{s.consumer_home, s.user}] += s.amount;
  log_.push_back(s);
  total_ += s.amount;
  ++txns_;
}

double GridBank::spent_by_user(cluster::ResourceIndex home,
                               std::uint32_t user) const {
  const auto it = by_user_.find({home, user});
  return it == by_user_.end() ? 0.0 : it->second;
}

std::vector<Settlement> GridBank::statement(
    cluster::ResourceIndex provider) const {
  std::vector<Settlement> entries;
  for (const auto& s : log_) {
    if (s.provider == provider) entries.push_back(s);
  }
  return entries;
}

double GridBank::incentive(cluster::ResourceIndex resource) const {
  GF_EXPECTS(resource < credits_.size());
  return credits_[resource];
}

double GridBank::spent_by_home(cluster::ResourceIndex resource) const {
  GF_EXPECTS(resource < debits_.size());
  return debits_[resource];
}

bool GridBank::balanced() const {
  const double credit_sum =
      std::accumulate(credits_.begin(), credits_.end(), 0.0);
  const double debit_sum = std::accumulate(debits_.begin(), debits_.end(), 0.0);
  const double scale = std::max({credit_sum, debit_sum, 1.0});
  return std::abs(credit_sum - debit_sum) <= 1e-9 * scale &&
         std::abs(credit_sum - total_) <= 1e-9 * scale;
}

}  // namespace gridfed::economy
