#include "economy/pricing.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace gridfed::economy {

double quote_for(double mips, double access_price, double max_mips) noexcept {
  return access_price / max_mips * mips;
}

void apply_commodity_pricing(std::span<cluster::ResourceSpec> specs,
                             double access_price) {
  GF_EXPECTS(!specs.empty());
  const double max_mips =
      std::max_element(specs.begin(), specs.end(),
                       [](const auto& a, const auto& b) {
                         return a.mips < b.mips;
                       })
          ->mips;
  GF_EXPECTS(max_mips > 0.0);
  for (auto& spec : specs) {
    spec.quote = quote_for(spec.mips, access_price, max_mips);
  }
}

}  // namespace gridfed::economy
