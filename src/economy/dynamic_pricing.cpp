#include "economy/dynamic_pricing.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace gridfed::economy {

DynamicPricer::DynamicPricer(double initial_quote, DynamicPricingConfig config)
    : initial_(initial_quote), quote_(initial_quote), config_(config) {
  GF_EXPECTS(initial_quote > 0.0);
  GF_EXPECTS(config_.eta >= 0.0);
  GF_EXPECTS(config_.floor_factor > 0.0 &&
             config_.floor_factor <= config_.ceiling_factor);
  GF_EXPECTS(config_.period > 0.0);
}

double DynamicPricer::reprice(double recent_load) {
  GF_EXPECTS(recent_load >= 0.0 && recent_load <= 1.0);
  const double raw =
      quote_ * (1.0 + config_.eta * (recent_load - config_.target_load));
  quote_ = std::clamp(raw, initial_ * config_.floor_factor,
                      initial_ * config_.ceiling_factor);
  ++steps_;
  return quote_;
}

}  // namespace gridfed::economy
