#pragma once
// GridBank — the credit-management service the paper leverages for
// exchanging Grid Dollars ([4], §2.0.3).  gridfed implements it as an
// in-process double-entry ledger: every settled job credits the executing
// resource's owner (their *incentive*, Fig 3(a)) and debits the consumer,
// tracked by the consumer's home cluster (the *budget spent* series of
// Figs 7(b)/8(b)).

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "cluster/job.hpp"
#include "cluster/resource.hpp"

namespace gridfed::economy {

/// One settled payment.
struct Settlement {
  cluster::JobId job = 0;
  cluster::ResourceIndex consumer_home = 0;  ///< payer's home cluster
  cluster::ResourceIndex provider = 0;       ///< owner credited
  double amount = 0.0;                       ///< Grid Dollars
  std::uint32_t user = 0;                    ///< payer's user id at home
};

/// Double-entry Grid Dollar ledger across a federation of n clusters.
class GridBank {
 public:
  explicit GridBank(std::size_t n_resources);

  /// Settles a completed job: credits `provider`, debits users of
  /// `consumer_home`.  Amount must be non-negative.
  void settle(const Settlement& settlement);

  /// Total incentive earned by the owner of `resource` (Fig 3(a)).
  [[nodiscard]] double incentive(cluster::ResourceIndex resource) const;

  /// Total spent by users whose home cluster is `resource`.
  [[nodiscard]] double spent_by_home(cluster::ResourceIndex resource) const;

  /// Federation-wide incentive (== federation-wide spending).
  [[nodiscard]] double total() const noexcept { return total_; }

  /// Number of settlements recorded.
  [[nodiscard]] std::uint64_t transactions() const noexcept { return txns_; }

  /// Double-entry invariant: sum(credits) == sum(debits) == total().
  [[nodiscard]] bool balanced() const;

  [[nodiscard]] std::size_t resources() const noexcept {
    return credits_.size();
  }

  /// Total spent by one user (home cluster, user id); 0 if unknown.
  [[nodiscard]] double spent_by_user(cluster::ResourceIndex home,
                                     std::uint32_t user) const;

  /// Full transaction log, settlement order (the Grid-Bank statement).
  [[nodiscard]] const std::vector<Settlement>& log() const noexcept {
    return log_;
  }

  /// All settlements credited to one provider (owner's statement).
  [[nodiscard]] std::vector<Settlement> statement(
      cluster::ResourceIndex provider) const;

 private:
  std::vector<double> credits_;  // by provider
  std::vector<double> debits_;   // by consumer home
  std::map<std::pair<cluster::ResourceIndex, std::uint32_t>, double>
      by_user_;
  std::vector<Settlement> log_;
  double total_ = 0.0;
  std::uint64_t txns_ = 0;
};

}  // namespace gridfed::economy
