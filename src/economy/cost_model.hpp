#pragma once
// Job cost models and QoS fabrication (paper Eqs. 4, 7, 8).
//
// The paper states (§2.1) that "the cluster owner charges c_i per unit
// time or per unit of million instructions (MI) executed, e.g. per 1000
// MI", and Eq. 4 writes B = c_m * l/(mu_m p).  These two readings differ,
// and with Eq. 6 pricing (c_i proportional to mu_i) the literal Eq. 4 is
// *degenerate*: B = (c/mu_max) * l/p is identical on every cluster, so
// cost optimization could never prefer one site over another and none of
// the paper's money plots could vary.  The evaluation's observable
// behaviour —
//   * budget spent per job differs across resources (Figs 7(b)/8(b)),
//   * pure-OFT populations generate *more* total incentive than pure-OFC
//     (2.30e9 vs 2.12e9 Grid Dollars),
//   * federation-wide budget spent falls under OFC compared to
//     independent resources (8.874e5 vs 9.359e5),
// — is exactly what per-MI charging produces: B = c_m * l / 1000 varies
// with the executing site's quote, OFT placements at high-quote fast
// resources bill more in total, and OFC migration to low-quote resources
// saves money.  gridfed therefore defaults to kPerMi and keeps the two
// per-time models selectable; bench_ablation_cost_model quantifies all
// three.  (See DESIGN.md §3, substitution 5.)

#include "cluster/job.hpp"
#include "cluster/resource.hpp"

namespace gridfed::economy {

/// What the owner charges the quote against.
enum class CostModel : std::uint8_t {
  kPerMi,        ///< B = c_m * l / 1000   (default; matches paper behaviour)
  kWallTime,     ///< B = c_m * D(J, R_m)  (quote per unit occupancy)
  kComputeOnly,  ///< B = c_m * l/(mu_m p) (literal Eq. 4; degenerate)
};

[[nodiscard]] constexpr const char* to_string(CostModel model) noexcept {
  switch (model) {
    case CostModel::kPerMi:
      return "per-MI";
    case CostModel::kWallTime:
      return "wall-time";
    case CostModel::kComputeOnly:
      return "compute-only";
  }
  return "?";
}

/// The "per 1000 MI" unit of the paper's example.
inline constexpr double kMiPerChargeUnit = 1000.0;

/// Cost of executing `job` (origin cluster `origin`) on cluster `exec`
/// under `model`, in Grid Dollars.
[[nodiscard]] double job_cost(const cluster::Job& job,
                              const cluster::ResourceSpec& origin,
                              const cluster::ResourceSpec& exec,
                              CostModel model) noexcept;

/// QoS fabrication factors (Eqs. 7/8 use 2x; ablations can vary them).
struct QosFactors {
  double budget_factor = 2.0;    ///< b = factor * B(J, R_k)
  double deadline_factor = 2.0;  ///< d = factor * D(J, R_k)
};

/// Eqs. 7/8: sets job.budget = budget_factor * B(J, R_origin) and
/// job.deadline = deadline_factor * D(J, R_origin), both evaluated on the
/// *unloaded origin* cluster.
void fabricate_qos(cluster::Job& job, const cluster::ResourceSpec& origin,
                   CostModel model, const QosFactors& factors = {});

}  // namespace gridfed::economy
