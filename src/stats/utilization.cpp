#include "stats/utilization.hpp"

#include "sim/check.hpp"

namespace gridfed::stats {

void UtilizationIntegrator::set_busy(sim::SimTime now,
                                     std::uint32_t busy) noexcept {
  // Contract relaxed to noexcept-friendly clamping: the LRMS is the only
  // caller and already guarantees busy <= capacity and monotone time.
  if (now > last_change_) {
    area_ += static_cast<double>(busy_now_) * (now - last_change_);
    last_change_ = now;
  }
  busy_now_ = busy;
}

double UtilizationIntegrator::busy_area(sim::SimTime now) const noexcept {
  double area = area_;
  if (now > last_change_) {
    area += static_cast<double>(busy_now_) * (now - last_change_);
  }
  return area;
}

double UtilizationIntegrator::utilization(sim::SimTime horizon) const noexcept {
  if (horizon <= 0.0 || capacity_ == 0) return 0.0;
  return busy_area(horizon) / (static_cast<double>(capacity_) * horizon);
}

}  // namespace gridfed::stats
