#pragma once
// Streaming statistical accumulators.  Welford's algorithm for numerically
// stable running mean/variance; O(1) memory, suitable for millions of
// samples.

#include <cstdint>
#include <limits>

namespace gridfed::stats {

/// Running count/mean/variance/min/max over a stream of doubles.
class Accumulator {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel-combine, Chan et al.).
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// Mean of the observations; 0 if empty.
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Sum of the observations.
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Unbiased sample variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;

  /// Smallest observation; +inf if empty.
  [[nodiscard]] double min() const noexcept { return min_; }

  /// Largest observation; -inf if empty.
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace gridfed::stats
