#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "sim/check.hpp"

namespace gridfed::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GF_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  GF_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.str();
}

}  // namespace gridfed::stats
