#include "stats/auction_stats.hpp"

namespace gridfed::stats {

void AuctionStats::record(const market::ClearingReport& report) {
  held += 1;
  solicited_per_auction.add(static_cast<double>(report.solicited));
  bids_per_auction.add(static_cast<double>(report.bids));
  feasible_per_auction.add(static_cast<double>(report.feasible));
  if (report.awarded) {
    awarded += 1;
    clearing_price.add(report.payment);
    winner_surplus.add(report.payment - report.winner_ask);
  } else {
    unfilled += 1;
  }
}

void AuctionStats::record_decline(std::uint32_t participant) {
  ++award_declines[participant];
  ++awards_declined;
}

void AuctionStats::record_miss(std::uint32_t participant) {
  ++guarantee_misses[participant];
  ++guarantees_missed;
}

void AuctionStats::merge_from(const AuctionStats& other) {
  held += other.held;
  awarded += other.awarded;
  unfilled += other.unfilled;
  solicited_per_auction.merge(other.solicited_per_auction);
  bids_per_auction.merge(other.bids_per_auction);
  feasible_per_auction.merge(other.feasible_per_auction);
  clearing_price.merge(other.clearing_price);
  winner_surplus.merge(other.winner_surplus);
  bid_cache_lookups += other.bid_cache_lookups;
  bid_cache_hits += other.bid_cache_hits;
  awards_piggybacked += other.awards_piggybacked;
  for (const auto& [who, n] : other.award_declines) award_declines[who] += n;
  for (const auto& [who, n] : other.guarantee_misses) {
    guarantee_misses[who] += n;
  }
  awards_declined += other.awards_declined;
  guarantees_missed += other.guarantees_missed;
}

}  // namespace gridfed::stats
