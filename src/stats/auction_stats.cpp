#include "stats/auction_stats.hpp"

namespace gridfed::stats {

void AuctionStats::record(const market::ClearingReport& report) {
  held += 1;
  solicited_per_auction.add(static_cast<double>(report.solicited));
  bids_per_auction.add(static_cast<double>(report.bids));
  feasible_per_auction.add(static_cast<double>(report.feasible));
  if (report.awarded) {
    awarded += 1;
    clearing_price.add(report.payment);
    winner_surplus.add(report.payment - report.winner_ask);
  } else {
    unfilled += 1;
  }
}

void AuctionStats::record_decline(std::uint32_t participant) {
  ++award_declines[participant];
  ++awards_declined;
}

void AuctionStats::record_miss(std::uint32_t participant) {
  ++guarantee_misses[participant];
  ++guarantees_missed;
}

}  // namespace gridfed::stats
