#pragma once
// CSV emission.  Each bench binary can mirror its table into a CSV file so
// figure series can be re-plotted (gnuplot/matplotlib) without re-running
// the simulation.

#include <string>
#include <vector>

namespace gridfed::stats {

/// Minimal CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row; quoting is applied where needed.
  void write_row(const std::vector<std::string>& cells);

  /// Escapes a single cell per RFC 4180 (exposed for tests).
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::string path_;
  std::string buffer_;

 public:
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
};

}  // namespace gridfed::stats
