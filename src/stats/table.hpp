#pragma once
// ASCII table rendering.  Every bench binary prints its table/figure series
// through this formatter so output is uniform and diffable against
// EXPERIMENTS.md.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace gridfed::stats {

/// Column-aligned ASCII table builder.
///
/// ```
/// Table t({"Resource", "Util %"});
/// t.add_row({"CTC SP2", "53.49"});
/// std::cout << t.str();
/// ```
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with fixed precision.
  [[nodiscard]] static std::string num(double v, int precision = 2);

  /// Scientific notation (paper style, e.g. 2.30e9 Grid Dollars).
  [[nodiscard]] static std::string sci(double v, int precision = 3);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders the table with a separator under the header.
  [[nodiscard]] std::string str() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gridfed::stats
