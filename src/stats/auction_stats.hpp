#pragma once
// Per-auction accumulators for the market subsystem: how many rounds ran,
// how thick the books were, and what the market actually charged relative
// to asks and budgets.  Filled by the federation driver from the market
// engine's ClearingReports; surfaced in FederationResult.

#include <cstdint>
#include <map>

#include "market/auction_engine.hpp"
#include "stats/accumulator.hpp"

namespace gridfed::stats {

/// Aggregate view over every auction round of one federation run.
struct AuctionStats {
  std::uint64_t held = 0;     ///< auction rounds cleared (incl. empty books)
  std::uint64_t awarded = 0;  ///< rounds that produced at least one award
  std::uint64_t unfilled = 0; ///< rounds whose book cleared empty

  Accumulator solicited_per_auction;  ///< call-for-bids fan-out
  Accumulator bids_per_auction;       ///< sealed bids in the book
  Accumulator feasible_per_auction;   ///< bids surviving the filter
  Accumulator clearing_price;         ///< payment of the top-ranked award
  Accumulator winner_surplus;         ///< payment - winner ask (Vickrey premium)

  // Provider-side pricing cache (AuctionConfig::bid_cache_ttl), summed
  // over every agent's policy counters by the federation driver.
  std::uint64_t bid_cache_lookups = 0;
  std::uint64_t bid_cache_hits = 0;
  /// kAward notifications that rode a batched solicitation flush instead
  /// of paying their own wire message (AuctionConfig::piggyback_awards).
  std::uint64_t awards_piggybacked = 0;

  // Reputation input signals, keyed by the *participant* that gave the
  // broken promise (federation::ParticipantId::value — a singleton's key
  // equals its cluster index, a coalition's is its registered id).  The
  // ROADMAP's reputation-weighted bidding follow-on consumes these:
  // providers that decline awards or miss guarantees should see their
  // future bids discounted.
  std::map<std::uint32_t, std::uint64_t> award_declines;   ///< per provider
  std::map<std::uint32_t, std::uint64_t> guarantee_misses; ///< per provider
  std::uint64_t awards_declined = 0;    ///< declined or timed-out awards
  std::uint64_t guarantees_missed = 0;  ///< completions past the promise

  /// Folds one cleared round in.
  void record(const market::ClearingReport& report);

  /// Books one declined (or timed-out) award against `participant`.
  void record_decline(std::uint32_t participant);

  /// Books one completion-guarantee miss against `participant`.
  void record_miss(std::uint32_t participant);

  /// Folds another run-slice in (parallel-combine): counters and
  /// per-participant maps add, the accumulators merge via Chan et al.
  /// Used by the sharded kernel to collapse per-lane stats at run end.
  void merge_from(const AuctionStats& other);

  /// Fraction of rounds that found a winner, in [0, 1].
  [[nodiscard]] double fill_rate() const noexcept {
    return held ? static_cast<double>(awarded) / static_cast<double>(held)
                : 0.0;
  }

  /// Fraction of pricing requests served from the TTL cache, in [0, 1].
  [[nodiscard]] double bid_cache_hit_rate() const noexcept {
    return bid_cache_lookups ? static_cast<double>(bid_cache_hits) /
                                   static_cast<double>(bid_cache_lookups)
                             : 0.0;
  }
};

}  // namespace gridfed::stats
