#include "stats/accumulator.hpp"

#include <algorithm>
#include <cmath>

namespace gridfed::stats {

void Accumulator::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace gridfed::stats
