#pragma once
// Utilization integration.  Tracks busy processor-seconds of a cluster over
// simulated time so that "average resource utilization (%)" — the headline
// per-resource metric of Tables 2/3 and Figure 4 — is an exact integral,
// not a sampled approximation.

#include <cstdint>

#include "sim/types.hpp"

namespace gridfed::stats {

/// Exact integral of (busy processors / total processors) dt.
///
/// The LRMS reports every change in the number of busy processors via
/// `set_busy`; the integrator accumulates the piecewise-constant integral.
/// Utilization over [0, t_end] is busy-area / (capacity * t_end).
class UtilizationIntegrator {
 public:
  explicit UtilizationIntegrator(std::uint32_t capacity) noexcept
      : capacity_(capacity) {}

  /// Records that from `now` onwards, `busy` processors are in use.
  /// Calls must have non-decreasing `now`.
  void set_busy(sim::SimTime now, std::uint32_t busy) noexcept;

  /// Busy processor-seconds accumulated in [0, now] (after flushing the
  /// current segment up to `now`).
  [[nodiscard]] double busy_area(sim::SimTime now) const noexcept;

  /// Mean utilization in [0, horizon] as a fraction in [0, 1].
  [[nodiscard]] double utilization(sim::SimTime horizon) const noexcept;

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

 private:
  std::uint32_t capacity_;
  std::uint32_t busy_now_ = 0;
  sim::SimTime last_change_ = 0.0;
  double area_ = 0.0;
};

}  // namespace gridfed::stats
