#include "stats/csv.hpp"

#include <fstream>
#include <stdexcept>

namespace gridfed::stats {

CsvWriter::CsvWriter(const std::string& path) : path_(path) {
  std::ofstream probe(path_, std::ios::trunc);
  if (!probe) throw std::runtime_error("CsvWriter: cannot open " + path_);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) buffer_ += ',';
    buffer_ += escape(cells[i]);
  }
  buffer_ += '\n';
}

CsvWriter::~CsvWriter() {
  std::ofstream out(path_, std::ios::trunc);
  out << buffer_;
}

}  // namespace gridfed::stats
