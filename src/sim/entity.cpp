#include "sim/entity.hpp"

// Entity is header-only today; this TU anchors the vtable so the class has
// a single home object file (keeps link-time symbol churn down).
namespace gridfed::sim {}
