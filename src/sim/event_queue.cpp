// EventQueue is header-only (see event_queue_inl.hpp): push/pop are the
// simulation's innermost loop and must inline into their callers.  This
// TU remains so the build has a home for the class should it regrow
// out-of-line members.

#include "sim/event_queue.hpp"
