// EventQueue cold paths: cancellation (erase / update_key), the
// heap↔ladder migrations, and the structural self-check.  The push/pop
// hot loop is header-inline (event_queue_inl.hpp).

#include "sim/event_queue.hpp"

#include <utility>

#include "sim/check.hpp"

namespace gridfed::sim {

void EventQueue::clear() noexcept {
  heap_.clear();
  ladder_.clear();
  slots_.clear();
  free_slots_.clear();
  cancelled_.clear();
  live_ = 0;
  next_time_ = kTimeInfinity;
  spilled_ = cfg_.kind == FelConfig::Kind::kLadder;
}

bool EventQueue::erase(EventHandle h) {
  const std::uint64_t raw = h.raw_;
  if (raw == EventHandle::kNoEvent) return false;
  const auto slot = static_cast<std::uint32_t>(raw & kFelSlotMask);
  if (slot >= slots_.size() || slots_[slot].low != raw) {
    return false;  // already popped, erased, or rescheduled
  }
  slots_[slot].low = EventHandle::kNoEvent;
  slots_[slot].action = InlineFunction{};  // destroy the callback eagerly
  free_slots_.push_back(slot);
  --live_;
  if (live_ == 0) {
    after_remove();  // wholesale clear of the all-tombstone backing
    GF_SIM_CHECK(consistent());
    return true;
  }
  if (fel_low64(active_min()) == raw) {
    // Erasing the current minimum invalidates the cached next_time():
    // remove it structurally right now so after_remove() re-derives the
    // cache from the true new minimum — never from a dead event.
    (void)active_pop();
  } else {
    cancelled_.insert(raw);
  }
  after_remove();
  GF_SIM_CHECK(consistent());
  return true;
}

EventQueue::EventHandle EventQueue::update_key(EventHandle h,
                                               SimTime new_time,
                                               EventSeq new_seq) {
  const std::uint64_t raw = h.raw_;
  if (raw == EventHandle::kNoEvent) return EventHandle{};
  const auto slot = static_cast<std::uint32_t>(raw & kFelSlotMask);
  if (slot >= slots_.size() || slots_[slot].low != raw) {
    return EventHandle{};
  }
  GF_EXPECTS(new_time >= 0.0);
  if (new_time == 0.0) new_time = 0.0;
  GF_EXPECTS(new_seq < (std::uint64_t{1} << kFelSeqBits));

  // Same slot (the callback never moves), same priority class, fresh
  // seq: the old key is cancelled and a rebuilt key re-enters.
  const std::uint64_t prio = raw >> (kFelSeqBits + kFelSlotBits);
  const std::uint64_t new_raw = (prio << (kFelSeqBits + kFelSlotBits)) |
                                (new_seq << kFelSlotBits) | slot;
  if (fel_low64(active_min()) == raw) {
    (void)active_pop();
  } else {
    cancelled_.insert(raw);
  }
  slots_[slot].low = new_raw;
  const FelKey key =
      (static_cast<FelKey>(std::bit_cast<std::uint64_t>(new_time)) << 64) |
      new_raw;
  if (spilled_) {
    ladder_.push(key);
  } else {
    heap_.push(key);
    maybe_spill();
  }
  // The event itself keeps live_ > 0, so a (possibly tombstoned) new
  // minimum can be re-derived directly.
  drop_cancelled_min();
  next_time_ = fel_time_of(active_min());
  GF_SIM_CHECK(consistent());
  return EventHandle{new_raw};
}

void EventQueue::drop_cancelled_min() {
  while (!cancelled_.empty()) {
    const auto it = cancelled_.find(fel_low64(active_min()));
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    (void)active_pop();
  }
}

void EventQueue::migrate_to_ladder() {
  migrate_scratch_.clear();
  heap_.drain_into(migrate_scratch_);
  filter_cancelled(migrate_scratch_);
  ladder_.build_from(migrate_scratch_);
  spilled_ = true;
}

void EventQueue::migrate_to_heap() {
  migrate_scratch_.clear();
  ladder_.drain_into(migrate_scratch_);
  filter_cancelled(migrate_scratch_);
  heap_.build_from(migrate_scratch_);
  spilled_ = false;
}

void EventQueue::filter_cancelled(std::vector<FelKey>& keys) {
  // Migration is the natural tombstone drain: everything cancelled is in
  // the key set by definition, so the set empties wholesale.
  if (cancelled_.empty()) return;
  std::erase_if(keys, [this](FelKey k) {
    return cancelled_.contains(fel_low64(k));
  });
  cancelled_.clear();
}

bool EventQueue::consistent() {
  const std::size_t backing = spilled_ ? ladder_.size() : heap_.size();
  if (live_ + cancelled_.size() != backing) return false;
  if (live_ == 0) {
    return backing == 0 && next_time_ == kTimeInfinity;
  }
  if (spilled_ && !ladder_.min_materialized()) {
    // A fresh Top batch with no bucket sorted yet: deriving the true min
    // would force a sort the hot path deliberately defers.  The cached
    // value is maintained by the push-side min-fold; the cross-check
    // resumes at the next pop.
    return true;
  }
  const FelKey m = spilled_ ? ladder_.materialized_min() : heap_.min_key();
  if (cancelled_.contains(fel_low64(m))) return false;
  return next_time_ == fel_time_of(m);
}

void EventQueue::debug_validate() {
  if (spilled_) ladder_.debug_validate();
  GF_ENSURES(consistent());
}

}  // namespace gridfed::sim
