#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace gridfed::sim {

void EventQueue::push(Event ev) {
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), &EventQueue::later);
}

Event EventQueue::pop() {
  GF_EXPECTS(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), &EventQueue::later);
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

SimTime EventQueue::next_time() const {
  GF_EXPECTS(!heap_.empty());
  return heap_.front().time;
}

}  // namespace gridfed::sim
