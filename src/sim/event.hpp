#pragma once
// Discrete events.  gridfed uses a callback-event kernel: an Event owns a
// type-erased closure executed when the simulation clock reaches its
// timestamp.  Entities layer typed message delivery on top of this.  The
// closure is an InlineFunction, so the `this`+id captures that dominate
// the hot path never allocate.

#include "sim/inline_function.hpp"
#include "sim/types.hpp"

namespace gridfed::sim {

/// Scheduling priority for events that share a timestamp.  Lower enum value
/// runs first.  Completions run before arrivals at the same instant so that
/// freed processors are visible to a job arriving "at the same time" —
/// matching GridSim's space-shared semantics.
enum class EventPriority : int {
  kCompletion = 0,  ///< job finishes, processors released
  kMessage = 1,     ///< inter-GFA message delivery
  kArrival = 2,     ///< job arrival / submission
  kControl = 3,     ///< bookkeeping (metric sampling, horizon stop)
};

/// A scheduled unit of work.  Events are move-only value types owned by
/// the queue.
struct Event {
  SimTime time = 0.0;
  EventPriority priority = EventPriority::kControl;
  EventSeq seq = 0;  ///< assigned by the Simulation; stabilises ordering
  InlineFunction action;

  /// Strict weak ordering: earlier time first, then priority, then FIFO.
  [[nodiscard]] friend bool operator<(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq < b.seq;
  }
};

}  // namespace gridfed::sim
