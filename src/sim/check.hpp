#pragma once
// Lightweight precondition / invariant checking in the spirit of the
// C++ Core Guidelines' Expects()/Ensures().  Violations throw
// `gridfed::sim::ContractViolation` so both production code and the test
// suite can observe them deterministically (no abort, no UB).

#include <stdexcept>
#include <string>

namespace gridfed::sim {

/// Thrown when a GF_EXPECTS/GF_ENSURES contract is violated.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace gridfed::sim

/// Precondition check: argument/state requirements at function entry.
#define GF_EXPECTS(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::gridfed::sim::detail::contract_fail("precondition", #cond, __FILE__, \
                                            __LINE__);                       \
  } while (false)

/// Postcondition / invariant check.
#define GF_ENSURES(cond)                                                      \
  do {                                                                        \
    if (!(cond))                                                              \
      ::gridfed::sim::detail::contract_fail("postcondition", #cond, __FILE__, \
                                            __LINE__);                        \
  } while (false)

/// Debug-build kernel-consistency check.  The event kernel's cached
/// state (EventQueue's `next_time_`, live-size bookkeeping, the
/// no-cancelled-head invariant) is re-derived from the backing structure
/// after every mutating op when this is on.  Follows NDEBUG so the
/// sanitizer CI jobs (Debug builds) run fully checked while Release hot
/// loops compile the re-derivation out; structures additionally expose
/// an always-compiled `debug_validate()` so Release test binaries can
/// opt in explicitly (tests/test_ladder_queue.cpp).
#ifndef GRIDFED_SIM_CHECK
#ifdef NDEBUG
#define GRIDFED_SIM_CHECK 0
#else
#define GRIDFED_SIM_CHECK 1
#endif
#endif

#if GRIDFED_SIM_CHECK
#define GF_SIM_CHECK(cond) GF_ENSURES(cond)
#else
#define GF_SIM_CHECK(cond) \
  do {                     \
  } while (false)
#endif
