#include "sim/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "sim/check.hpp"

namespace gridfed::sim {

double sample_exponential(Rng& rng, double lambda) {
  GF_EXPECTS(lambda > 0.0);
  // 1 - u in (0,1] avoids log(0).
  return -std::log(1.0 - rng.uniform01()) / lambda;
}

double sample_normal(Rng& rng, double mean, double stddev) {
  GF_EXPECTS(stddev >= 0.0);
  const double u1 = 1.0 - rng.uniform01();  // (0,1]
  const double u2 = rng.uniform01();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double sample_lognormal(Rng& rng, double mu, double sigma) {
  return std::exp(sample_normal(rng, mu, sigma));
}

double sample_hyperexponential(Rng& rng, double p, double l1, double l2) {
  GF_EXPECTS(p >= 0.0 && p <= 1.0);
  return rng.bernoulli(p) ? sample_exponential(rng, l1)
                          : sample_exponential(rng, l2);
}

double sample_bounded_pareto(Rng& rng, double alpha, double lo, double hi) {
  GF_EXPECTS(alpha > 0.0);
  GF_EXPECTS(0.0 < lo && lo < hi);
  const double u = rng.uniform01();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double sample_weibull(Rng& rng, double shape, double scale) {
  GF_EXPECTS(shape > 0.0 && scale > 0.0);
  return scale * std::pow(-std::log(1.0 - rng.uniform01()), 1.0 / shape);
}

std::uint32_t sample_pow2(Rng& rng, std::uint32_t lo_exp,
                          std::uint32_t hi_exp) {
  GF_EXPECTS(lo_exp <= hi_exp && hi_exp < 32);
  const auto e =
      static_cast<std::uint32_t>(rng.uniform_int(lo_exp, hi_exp));
  return std::uint32_t{1} << e;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  GF_EXPECTS(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  GF_EXPECTS(!weights.empty());
  cdf_.resize(weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    GF_EXPECTS(weights[i] >= 0.0);
    acc += weights[i];
    cdf_[i] = acc;
  }
  GF_EXPECTS(acc > 0.0);
  for (auto& v : cdf_) v /= acc;
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return std::min(static_cast<std::size_t>(it - cdf_.begin()),
                  cdf_.size() - 1);
}

}  // namespace gridfed::sim
