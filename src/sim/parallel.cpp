#include "sim/parallel.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace gridfed::sim {

thread_local ParallelEngine::LaneTls ParallelEngine::tls_;

ParallelEngine::ParallelEngine(std::size_t n_shards, Simulation& global_lane,
                               SimTime lookahead, std::size_t max_sites,
                               const FelConfig& fel)
    : global_(global_lane), lookahead_(lookahead) {
  GF_EXPECTS(n_shards >= 1);
  GF_EXPECTS(lookahead_ > 0.0);
  shard_sims_.reserve(n_shards);
  shard_boxes_.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    shard_sims_.push_back(std::make_unique<Simulation>(fel));
    shard_boxes_.push_back(std::make_unique<MpscMailbox>());
  }
  site_primary_.assign(max_sites, 0);
  // The constructing thread is the coordinator: everything it schedules
  // before run() (workload load, membership start, periodics) belongs to
  // the global lane or targets shard queues directly while no worker
  // exists yet.
  tls_.lane = kGlobalLane;
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  tls_.lane = kNoLane;
}

int ParallelEngine::current_lane() noexcept { return tls_.lane; }

CausalToken ParallelEngine::make_token(std::uint32_t from_site) {
  LaneTls& tl = tls_;
  if (tl.token_active) {
    // Child of a mailbox-delivered dispatch: inherit the parent's
    // primary so same-instant descendants sort in the parent posts'
    // order (e.g. tree-fanout bids sort in fanout-item order, matching
    // the sequential kernel).
    const std::uint64_t sub =
        tl.post_counter < ((1ull << kTokenShift) - 1) ? ++tl.post_counter
                                                      : (1ull << kTokenShift) - 1;
    return CausalToken{tl.token_primary, tl.token_base | sub};
  }
  if (tl.lane == kGlobalLane) {
    return CausalToken{++global_primary_, 0};
  }
  GF_EXPECTS(from_site < site_primary_.size());
  // Shard-originated root post: per-site counter, incremented only by
  // the shard that owns the site, in that shard's (N-invariant)
  // execution order.
  const std::uint64_t serial = ++site_primary_[from_site];
  return CausalToken{
      kSiteNamespace | (static_cast<std::uint64_t>(from_site) << 32) |
          (serial & 0xFFFFFFFFull),
      0};
}

void ParallelEngine::post(int target_lane, SimTime t, EventPriority priority,
                          std::uint32_t from_site, InlineFunction action) {
  MailboxPost p;
  p.t = t;
  p.priority = priority;
  p.from = from_site;
  p.token = make_token(from_site);
  p.action = std::move(action);
  if (target_lane == kGlobalLane) {
    global_box_.post(std::move(p));
  } else {
    GF_EXPECTS(target_lane >= 0 &&
               static_cast<std::size_t>(target_lane) < shard_boxes_.size());
    shard_boxes_[static_cast<std::size_t>(target_lane)]->post(std::move(p));
  }
}

void ParallelEngine::drain_into(MpscMailbox& box, Simulation& sim) {
  drain_scratch_.clear();
  if (box.drain(drain_scratch_) == 0) return;
  std::sort(drain_scratch_.begin(), drain_scratch_.end(), mailbox_post_less);
  for (MailboxPost& p : drain_scratch_) {
    // Wrap the action so descendants posted during its dispatch inherit
    // the token (see make_token).  The wrapper captures an
    // InlineFunction, so it heap-boxes — acceptable: cross-shard
    // deliveries already carry boxed Message payloads.
    struct TokenScope {
      std::uint64_t primary;
      std::uint64_t base;
      InlineFunction act;
      void operator()() {
        LaneTls& tl = tls_;
        tl.token_active = true;
        tl.token_primary = primary;
        tl.token_base = base;
        tl.post_counter = 0;
        act();
        tl.token_active = false;
      }
    };
    sim.schedule_at(p.t, p.priority,
                    TokenScope{p.token.primary, p.token.secondary << kTokenShift,
                               std::move(p.action)});
  }
}

void ParallelEngine::worker_main(std::size_t s) {
  std::uint64_t seen = 0;
  Simulation& sim = *shard_sims_[s];
  for (;;) {
    SimTime horizon;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      horizon = horizon_;
    }
    tls_.lane = static_cast<int>(s);
    sim.run_until(horizon);
    tls_.lane = kNoLane;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++done_ == workers_.size()) cv_done_.notify_one();
    }
  }
}

void ParallelEngine::run_window(SimTime horizon) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    horizon_ = horizon;
    done_ = 0;
    ++epoch_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return done_ == workers_.size(); });
}

void ParallelEngine::run() {
  if (workers_.empty()) {
    workers_.reserve(shard_sims_.size());
    for (std::size_t s = 0; s < shard_sims_.size(); ++s) {
      workers_.emplace_back([this, s] { worker_main(s); });
    }
  }
  for (;;) {
    // Shard mailboxes are empty here (drained at the end of the previous
    // window), but the global lane may have posted to ITSELF while it
    // ran (gossip pull replies ride the mailbox like every delivery);
    // pull those in first so t_global below sees every pending event —
    // otherwise a window could overrun them.
    drain_into(global_box_, global_);
    SimTime t_global = global_.next_event_time();
    SimTime t_min = t_global;
    for (const auto& sh : shard_sims_) {
      t_min = std::min(t_min, sh->next_event_time());
    }
    if (t_min == kTimeInfinity) break;
    // Never cross the global lane's head: its events (churn, confirmed
    // deaths, periodic snapshots) may touch shard state and must run
    // with every shard parked at exactly that time.
    const SimTime w_end = std::min(t_min + lookahead_, t_global);
    run_window(w_end);
    ++windows_;
    // Coordinator acts as the global lane: first pull in the ops the
    // shards trampolined this window (times <= w_end), then advance.
    drain_into(global_box_, global_);
    global_.run_until(w_end);
    // Outbound deliveries land at >= T_min + L >= w_end: safe to
    // schedule now that each shard clock sits at w_end.
    for (std::size_t s = 0; s < shard_sims_.size(); ++s) {
      drain_into(*shard_boxes_[s], *shard_sims_[s]);
    }
  }
}

std::uint64_t ParallelEngine::events_executed() const {
  std::uint64_t total = global_.events_executed();
  for (const auto& sh : shard_sims_) total += sh->events_executed();
  return total;
}

}  // namespace gridfed::sim
