#pragma once
// Simulation entities.  An Entity is a named, identified participant in the
// simulation (cluster LRMS, GFA, user population, directory).  Entities
// register with a Simulation at construction and use it to schedule their
// own behaviour.

#include <string>
#include <string_view>

#include "sim/simulation.hpp"
#include "sim/types.hpp"

namespace gridfed::sim {

/// Base class for every simulated actor.  Holds the entity's identity and a
/// non-owning reference to the engine that drives it.  Entities must
/// outlive any events they schedule (the standard pattern is: build all
/// entities, run the simulation, then tear everything down).
class Entity {
 public:
  Entity(Simulation& sim, EntityId id, std::string name)
      : sim_(&sim), id_(id), name_(std::move(name)) {}

  virtual ~Entity() = default;
  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  [[nodiscard]] EntityId id() const noexcept { return id_; }
  [[nodiscard]] std::string_view name() const noexcept { return name_; }
  [[nodiscard]] Simulation& simulation() noexcept { return *sim_; }
  [[nodiscard]] const Simulation& simulation() const noexcept { return *sim_; }
  [[nodiscard]] SimTime now() const noexcept { return sim_->now(); }

 private:
  Simulation* sim_;
  EntityId id_;
  std::string name_;
};

}  // namespace gridfed::sim
