#pragma once
// The discrete-event simulation engine.  This is gridfed's stand-in for the
// GridSim toolkit the paper built on: a single-threaded, deterministic
// event loop with a virtual clock.  All federation entities (clusters,
// GFAs, user populations, the directory) are driven by this engine.

#include <cstdint>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/inline_function.hpp"
#include "sim/types.hpp"

// Compile-time observability gate (mirrored in obs/observer.hpp so the
// kernel stays independent of the obs layer).  Default ON; build with
// -DGRIDFED_TRACE=0 to compile the dispatch probe out entirely.
#ifndef GRIDFED_TRACE
#define GRIDFED_TRACE 1
#endif

namespace gridfed::sim {

/// The closure type the engine schedules.  Small trivially copyable
/// captures (`this` + a couple of ids) are stored inline — no heap
/// allocation per event; see inline_function.hpp.
using EventAction = InlineFunction;

/// Deterministic discrete-event simulation engine.
///
/// Usage:
/// ```
/// Simulation sim;
/// sim.schedule_at(10.0, EventPriority::kArrival, [&]{ ... });
/// sim.run();                      // until the event list drains
/// ```
/// The clock never moves backwards; scheduling into the past is a contract
/// violation.  Events at equal timestamps run in (priority, FIFO) order —
/// see EventPriority for why completions precede arrivals.
class Simulation {
 public:
  Simulation() = default;
  /// FEL selection for this lane's queue (see sim::FelConfig): the
  /// hybrid default, or a forced heap/ladder for A/B benchmarking.
  explicit Simulation(const FelConfig& fel) : queue_(fel) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current value of the virtual clock (simulated seconds).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `t` (>= now()).
  void schedule_at(SimTime t, EventPriority prio, EventAction action);

  /// Schedules `action` after a delay (>= 0) from now().
  void schedule_in(SimTime delay, EventPriority prio, EventAction action);

  /// Runs until the event list is empty.  Returns the final clock value.
  SimTime run();

  /// Runs until the event list is empty or the clock would pass `horizon`.
  /// Events stamped exactly at `horizon` still execute.  Returns the final
  /// clock value (== horizon if stopped by it).
  SimTime run_until(SimTime horizon);

  /// Executes at most one pending event.  Returns false if none remain.
  bool step();

#if GRIDFED_TRACE
  /// Dispatch probe: a bare function pointer invoked once per executed
  /// event, after the clock advances and before the action runs.  The
  /// kernel stays ignorant of the observability layer — the Federation
  /// installs a shim that forwards to its metrics registry.  A null
  /// probe (the default) costs one predicted-not-taken branch per event
  /// and allocates nothing; the no-alloc contract in
  /// tests/test_event_kernel.cpp covers both states.
  using DispatchProbe = void (*)(void* ctx, SimTime t);
  void set_dispatch_probe(DispatchProbe probe, void* ctx) noexcept {
    probe_ = probe;
    probe_ctx_ = ctx;
  }
#endif

  /// Number of events executed so far (across all run*/step calls).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

  /// Timestamp of the earliest pending event, kTimeInfinity when the
  /// queue is empty.  The conservative-parallel coordinator uses this to
  /// compute safe-window bounds; the queue caches it, so this is a load,
  /// not a heap peek.
  [[nodiscard]] SimTime next_event_time() const noexcept {
    return queue_.next_time();
  }

  /// Discards all pending events (the clock is left where it is).
  void drain() noexcept { queue_.clear(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  EventSeq next_seq_ = 0;
  std::uint64_t executed_ = 0;
#if GRIDFED_TRACE
  DispatchProbe probe_ = nullptr;
  void* probe_ctx_ = nullptr;
#endif
};

}  // namespace gridfed::sim
