#pragma once
// Fundamental scalar types shared by every gridfed subsystem.

#include <cstdint>
#include <limits>

namespace gridfed::sim {

/// Simulation clock value, in simulated seconds.  The paper reports
/// "simulation units"; we use seconds throughout (trace runtimes are in
/// seconds).  Events are totally ordered by (time, priority, sequence) so a
/// double here never produces nondeterminism.
using SimTime = double;

/// Sentinel for "never" / unbounded horizon.
inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::infinity();

/// Monotone sequence number used to stabilise event ordering.
using EventSeq = std::uint64_t;

/// Identifier of a simulation entity (GFA, cluster, user population, ...).
using EntityId = std::uint32_t;

inline constexpr EntityId kNoEntity = static_cast<EntityId>(-1);

}  // namespace gridfed::sim
