#include "sim/random.hpp"

namespace gridfed::sim {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::stream(std::uint64_t master_seed, std::string_view label) noexcept {
  // Mixing hash into the seed through SplitMix64 decorrelates streams whose
  // labels differ in a single character.
  std::uint64_t sm = master_seed ^ hash_label(label);
  return Rng(splitmix64(sm));
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo + 1;  // hi == max() not used in gridfed
  if (span == 0) return (*this)();         // full range requested
  // Lemire's multiply-shift with rejection for unbiased results.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

}  // namespace gridfed::sim
