// LadderQueue cold paths: Bottom refill (bucket pull + sort), rung
// spawning/retirement with storage recycling, the Top transfer, and the
// structural self-check.  The hot push/pop/min paths are header-inline
// (ladder_queue.hpp) so the hybrid EventQueue folds them into its
// dispatch loop.

#include "sim/ladder_queue.hpp"

#include <algorithm>

namespace gridfed::sim {

void LadderQueue::refill_bottom() {
  // Live keys exist but Bottom ran dry: pull the earliest bucket.
  GF_EXPECTS(size_ > 0);
  GF_EXPECTS(bottom_head_ == bottom_.size());
  bottom_.clear();
  bottom_head_ = 0;
  for (;;) {
    while (!rungs_.empty() && rungs_.back().count == 0) retire_rung();
    if (rungs_.empty()) {
      GF_EXPECTS(!top_.empty());
      transfer_top();
      if (!bottom_.empty()) break;  // small/zero-width Top sorted directly
      continue;
    }
    Rung& r = rungs_.back();
    while (r.buckets[r.cur].empty()) ++r.cur;
    std::vector<FelKey>& bucket = r.buckets[r.cur];
    scratch_.clear();
    scratch_.insert(scratch_.end(), bucket.begin(), bucket.end());
    bucket.clear();  // capacity retained for recycling
    r.count -= scratch_.size();
    const SimTime lo = rung_cur_start(r);
    ++r.cur;  // the consumption frontier passes this bucket
    if (scratch_.size() > kSortThreshold && rungs_.size() < kMaxRungs) {
      // Oversized bucket: re-spread across a kBucketsPerRung× finer
      // child rung — unless its timestamps cannot be subdivided (the
      // zero-width pathological case: all-equal times, or a width that
      // underflows to nothing), which sorts straight into Bottom.
      SimTime mn = fel_time_of(scratch_.front());
      SimTime mx = mn;
      for (const FelKey k : scratch_) {
        const SimTime t = fel_time_of(k);
        if (t < mn) mn = t;
        if (t > mx) mx = t;
      }
      const SimTime child_width =
          r.width / static_cast<SimTime>(kBucketsPerRung);
      if (mx > mn && child_width > 0.0 && lo + child_width > lo) {
        spawn_rung(lo, r.width);  // consumes scratch_; r may reallocate
        continue;
      }
    }
    std::swap(bottom_, scratch_);  // buffers trade places, no realloc
    std::sort(bottom_.begin(), bottom_.end());
    break;
  }
  // Fully drained rungs retire eagerly so push() never has to reason
  // about a rung whose frontier sits past its last bucket.
  while (!rungs_.empty() && rungs_.back().count == 0) retire_rung();
  GF_ENSURES(!bottom_.empty());
}

void LadderQueue::transfer_top() {
  const SimTime floor = top_max_;
  if (top_.size() <= kSortThreshold || !(top_max_ > top_min_)) {
    // Small batch, or the zero-width case (every timestamp identical):
    // sort straight into Bottom.  Buffers swap, so Top keeps Bottom's
    // (empty, high-water) storage.
    std::swap(bottom_, top_);
    top_.clear();
    std::sort(bottom_.begin(), bottom_.end());
    bottom_head_ = 0;
    top_floor_ = floor;
    return;
  }
  const SimTime width =
      (top_max_ - top_min_) / static_cast<SimTime>(kBucketsPerRung);
  if (!(width > 0.0) || !(top_min_ + width > top_min_)) {
    // Span too narrow to subdivide in FP: degenerate to the sort path.
    std::swap(bottom_, top_);
    top_.clear();
    std::sort(bottom_.begin(), bottom_.end());
    bottom_head_ = 0;
    top_floor_ = floor;
    return;
  }
  Rung r = acquire_rung();
  r.start = top_min_;
  r.width = width;
  r.count = top_.size();
  for (const FelKey k : top_) {
    const SimTime rel = (fel_time_of(k) - r.start) / r.width;
    std::size_t idx = kBucketsPerRung - 1;
    if (rel <= 0.0) {
      idx = 0;
    } else if (rel < static_cast<SimTime>(kBucketsPerRung)) {
      idx = static_cast<std::size_t>(rel);
    }
    r.buckets[idx].push_back(k);
  }
  rungs_.push_back(std::move(r));
  top_.clear();
  top_floor_ = floor;
}

void LadderQueue::spawn_rung(SimTime lo, SimTime parent_width) {
  Rung r = acquire_rung();
  r.start = lo;
  r.width = parent_width / static_cast<SimTime>(kBucketsPerRung);
  r.count = scratch_.size();
  for (const FelKey k : scratch_) {
    const SimTime rel = (fel_time_of(k) - lo) / r.width;
    std::size_t idx = kBucketsPerRung - 1;
    if (rel <= 0.0) {
      idx = 0;
    } else if (rel < static_cast<SimTime>(kBucketsPerRung)) {
      idx = static_cast<std::size_t>(rel);
    }
    r.buckets[idx].push_back(k);
  }
  scratch_.clear();
  rungs_.push_back(std::move(r));
}

LadderQueue::Rung LadderQueue::acquire_rung() {
  if (!rung_pool_.empty()) {
    Rung r = std::move(rung_pool_.back());
    rung_pool_.pop_back();
    r.cur = 0;
    r.count = 0;
    return r;  // bucket vectors keep their high-water capacity
  }
  Rung r;
  r.buckets.resize(kBucketsPerRung);
  return r;
}

void LadderQueue::retire_rung() {
  Rung r = std::move(rungs_.back());
  rungs_.pop_back();
  r.cur = 0;
  r.count = 0;
  rung_pool_.push_back(std::move(r));
}

void LadderQueue::clear() noexcept {
  top_.clear();
  while (!rungs_.empty()) {
    Rung& r = rungs_.back();
    for (auto& b : r.buckets) b.clear();
    r.cur = 0;
    r.count = 0;
    rung_pool_.push_back(std::move(r));  // capacity reserved in ctor
    rungs_.pop_back();
  }
  bottom_.clear();
  bottom_head_ = 0;
  scratch_.clear();
  size_ = 0;
  top_floor_ = -1.0;
  top_min_ = 0.0;
  top_max_ = 0.0;
}

void LadderQueue::drain_into(std::vector<FelKey>& out) {
  out.insert(out.end(), top_.begin(), top_.end());
  out.insert(out.end(),
             bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_head_),
             bottom_.end());
  for (const Rung& r : rungs_) {
    for (std::size_t b = r.cur; b < kBucketsPerRung; ++b) {
      out.insert(out.end(), r.buckets[b].begin(), r.buckets[b].end());
    }
  }
  clear();
}

void LadderQueue::build_from(const std::vector<FelKey>& keys) {
  clear();
  top_.reserve(keys.size());
  for (const FelKey k : keys) push(k);
}

void LadderQueue::debug_validate() const {
  std::size_t total = top_.size() + (bottom_.size() - bottom_head_);
  GF_ENSURES(bottom_head_ <= bottom_.size());
  for (std::size_t i = bottom_head_ + 1; i < bottom_.size(); ++i) {
    GF_ENSURES(!(bottom_[i] < bottom_[i - 1]));  // Bottom sorted ascending
  }
  for (const Rung& r : rungs_) {
    GF_ENSURES(r.width > 0.0);
    GF_ENSURES(r.cur <= kBucketsPerRung);
    std::size_t in_rung = 0;
    for (std::size_t b = 0; b < r.buckets.size(); ++b) {
      if (b < r.cur) GF_ENSURES(r.buckets[b].empty());
      in_rung += r.buckets[b].size();
    }
    GF_ENSURES(in_rung == r.count);
    GF_ENSURES(r.count > 0);  // drained rungs retire eagerly
    total += r.count;
  }
  GF_ENSURES(total == size_);
  for (const FelKey k : top_) {
    // Top holds strictly-later keys only (the tie-order boundary).
    GF_ENSURES(fel_time_of(k) > top_floor_ || top_floor_ < 0.0);
    GF_ENSURES(fel_time_of(k) >= top_min_ && fel_time_of(k) <= top_max_);
  }
}

}  // namespace gridfed::sim
