#include "sim/simulation.hpp"

#include "sim/check.hpp"

namespace gridfed::sim {

void Simulation::schedule_at(SimTime t, EventPriority prio,
                             EventAction action) {
  GF_EXPECTS(t >= now_);
  GF_EXPECTS(static_cast<bool>(action));
  queue_.push(Event{t, prio, next_seq_++, std::move(action)});
}

void Simulation::schedule_in(SimTime delay, EventPriority prio,
                             EventAction action) {
  GF_EXPECTS(delay >= 0.0);
  schedule_at(now_ + delay, prio, std::move(action));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // The callback is moved to the stack before it runs: an action that
  // schedules new events must not be able to invalidate itself.
  EventAction action;
  const SimTime t = queue_.pop_into(action);
  GF_ENSURES(t >= now_);
  now_ = t;
  ++executed_;
#if GRIDFED_TRACE
  if (probe_ != nullptr) probe_(probe_ctx_, t);
#endif
  action();
  return true;
}

SimTime Simulation::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulation::run_until(SimTime horizon) {
  GF_EXPECTS(horizon >= now_);
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    step();
  }
  if (now_ < horizon) now_ = horizon;
  return now_;
}

}  // namespace gridfed::sim
