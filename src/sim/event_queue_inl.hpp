#pragma once
// Inline definitions of the EventQueue hot path (see event_queue.hpp for
// the design).  push/pop are the innermost loop of every simulation run;
// keeping them header-inline lets callers fold the Event round-trip away
// (e.g. a caller that only reads the popped time never materializes the
// decoded priority/seq).

#include <algorithm>
#include <utility>

#include "sim/check.hpp"
#include "sim/event_queue.hpp"

namespace gridfed::sim {

inline void EventQueue::push(Event ev) {
  // The IEEE-bits-as-integer ordering trick needs a non-negative time
  // (which also rejects NaN).  -0.0 would bit-sort above every positive
  // value, so normalize it to +0.0.
  GF_EXPECTS(ev.time >= 0.0);
  if (ev.time == 0.0) ev.time = 0.0;
  GF_EXPECTS(ev.seq < (std::uint64_t{1} << kSeqBits));
  // The pack reserves 2 bits for the priority; a grown enum must not
  // silently truncate into a different ordering class.
  static_assert(static_cast<int>(EventPriority::kControl) < 4,
                "EventPriority no longer fits the 2-bit key field");

  // Park the callback in a stable slot; only the 16-byte key enters the
  // heap.
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    actions_[slot] = std::move(ev.action);
  } else {
    slot = static_cast<std::uint32_t>(actions_.size());
    actions_.push_back(std::move(ev.action));
  }
  GF_EXPECTS(slot < (std::uint32_t{1} << kSlotBits));

  const Key key =
      (static_cast<Key>(std::bit_cast<std::uint64_t>(ev.time)) << 64) |
      (static_cast<std::uint64_t>(ev.priority) << (kSeqBits + kSlotBits)) |
      (ev.seq << kSlotBits) | slot;

  // Hole insertion: open a hole at the back, move parents down while they
  // sort after the new key, then drop the key into the final hole.
  std::size_t hole = heap_.size();
  heap_.emplace_back();
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kArity;
    if (!(key < heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = key;
  next_time_ = time_of(heap_.front());
}

inline SimTime EventQueue::pop_into(InlineFunction& action) {
  GF_EXPECTS(!heap_.empty());
  constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  const Key top = heap_.front();
  const auto slot =
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(top) & kSlotMask);
  action = std::move(actions_[slot]);
  free_slots_.push_back(slot);

  const std::size_t n = heap_.size() - 1;
  if (n == 0) {
    heap_.pop_back();
    next_time_ = kTimeInfinity;
    return time_of(top);
  }
  const Key last = heap_.back();
  heap_.pop_back();
  // Bottom-up deletion (Wegener): promote the min-child chain into the
  // root hole all the way to a leaf — branchlessly, the chain is fully
  // determined by the children — then sift the former last key up from
  // the leaf hole (it was a leaf itself, so it almost always stays put).
  // This avoids the per-level "does `last` fit here?" mispredicted branch
  // of the classic sift-down.
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first = hole * kArity + 1;
    if (first + kArity <= n) {  // full node: branchless min of four
      const std::size_t b01 =
          heap_[first + 1] < heap_[first] ? first + 1 : first;
      const std::size_t b23 =
          heap_[first + 3] < heap_[first + 2] ? first + 3 : first + 2;
      const std::size_t best = heap_[b23] < heap_[b01] ? b23 : b01;
      heap_[hole] = heap_[best];
      hole = best;
    } else {
      if (first >= n) break;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < n; ++c) {
        if (heap_[c] < heap_[best]) best = c;
      }
      heap_[hole] = heap_[best];
      hole = best;
    }
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kArity;
    if (!(last < heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = last;
  next_time_ = time_of(heap_.front());
  return time_of(top);
}

inline Event EventQueue::pop() {
  GF_EXPECTS(!heap_.empty());
  constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kSeqBits) - 1;
  const auto low = static_cast<std::uint64_t>(heap_.front());
  Event ev;
  ev.seq = (low >> kSlotBits) & kSeqMask;
  ev.priority = static_cast<EventPriority>(low >> (kSeqBits + kSlotBits));
  ev.time = pop_into(ev.action);
  return ev;
}

}  // namespace gridfed::sim
