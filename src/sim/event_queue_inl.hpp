#pragma once
// Inline definitions of the EventQueue hot path (see event_queue.hpp for
// the design).  push/pop are the innermost loop of every simulation run;
// keeping them header-inline lets callers fold the Event round-trip away
// (e.g. a caller that only reads the popped time never materializes the
// decoded priority/seq).  The spilled_ branch predicts perfectly in
// steady state — a lane flips it once per migration, not per event.

#include <algorithm>
#include <utility>

#include "sim/check.hpp"
#include "sim/event_queue.hpp"

namespace gridfed::sim {

inline EventQueue::EventHandle EventQueue::push(Event ev) {
  // The IEEE-bits-as-integer ordering trick needs a non-negative time
  // (which also rejects NaN).  -0.0 would bit-sort above every positive
  // value, so normalize it to +0.0.
  GF_EXPECTS(ev.time >= 0.0);
  if (ev.time == 0.0) ev.time = 0.0;
  GF_EXPECTS(ev.seq < (std::uint64_t{1} << kFelSeqBits));
  // The pack reserves 2 bits for the priority; a grown enum must not
  // silently truncate into a different ordering class.
  static_assert(static_cast<int>(EventPriority::kControl) < 4,
                "EventPriority no longer fits the 2-bit key field");

  // Park the callback in a stable slot; only the 16-byte key enters the
  // backing structure.
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  GF_EXPECTS(slot < (std::uint32_t{1} << kFelSlotBits));

  const std::uint64_t low =
      (static_cast<std::uint64_t>(ev.priority) << (kFelSeqBits + kFelSlotBits)) |
      (ev.seq << kFelSlotBits) | slot;
  Slot& s = slots_[slot];
  s.action = std::move(ev.action);
  s.low = low;
  const FelKey key =
      (static_cast<FelKey>(std::bit_cast<std::uint64_t>(ev.time)) << 64) | low;

  if (spilled_) {
    ladder_.push(key);
  } else {
    heap_.push(key);
    maybe_spill();
  }
  ++live_;
  // The structural min is live (tombstoned minima are removed eagerly),
  // so the cached time folds in with one compare — no min_key() call,
  // which keeps ladder pushes O(1) (min_key may sort a bucket).
  if (ev.time < next_time_) next_time_ = ev.time;
  GF_SIM_CHECK(consistent());
  return EventHandle{low};
}

inline FelKey EventQueue::pop_key(InlineFunction& action) {
  const FelKey top = active_pop();
  const std::uint32_t slot = fel_slot_of(top);
  Slot& s = slots_[slot];
  action = std::move(s.action);
  s.low = EventHandle::kNoEvent;
  free_slots_.push_back(slot);
  --live_;
  after_remove();
  GF_SIM_CHECK(consistent());
  return top;
}

inline SimTime EventQueue::pop_into(InlineFunction& action) {
  GF_EXPECTS(live_ > 0);
  return fel_time_of(pop_key(action));
}

inline Event EventQueue::pop() {
  GF_EXPECTS(live_ > 0);
  constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kFelSeqBits) - 1;
  Event ev;
  const FelKey top = pop_key(ev.action);
  const auto low = fel_low64(top);
  ev.seq = (low >> kFelSlotBits) & kSeqMask;
  ev.priority =
      static_cast<EventPriority>(low >> (kFelSeqBits + kFelSlotBits));
  ev.time = fel_time_of(top);
  return ev;
}

inline void EventQueue::after_remove() {
  if (live_ == 0) {
    // Only tombstones (if anything) remain: drop them wholesale.  A
    // hybrid lane also returns to the heap here — the cheapest possible
    // un-spill point.
    if (spilled_) {
      ladder_.clear();
      if (cfg_.kind == FelConfig::Kind::kHybrid) spilled_ = false;
    } else {
      heap_.clear();
    }
    cancelled_.clear();
    next_time_ = kTimeInfinity;
    return;
  }
  if (!cancelled_.empty()) drop_cancelled_min();
  maybe_unspill();
  const FelKey next = active_min();
  next_time_ = fel_time_of(next);
  // The next dispatch will move this slot's record out; its line is a
  // guaranteed miss on large pending sets (slots are read in key order,
  // i.e. randomly).  Start the fetch now so it overlaps the caller's
  // work between pops.  On the ladder, Bottom's sorted run names the
  // next several pops exactly — not just the next one — so fetch deep
  // enough to cover a full miss latency; repeat prefetches of a line
  // already in flight are near-free.
  __builtin_prefetch(&slots_[fel_slot_of(next)], 1);
  if (spilled_) {
    const std::size_t depth = std::min<std::size_t>(
        ladder_.materialized_run(), kPrefetchDepth);
    for (std::size_t i = 1; i < depth; ++i) {
      __builtin_prefetch(&slots_[fel_slot_of(ladder_.materialized_at(i))], 1);
    }
  }
}

inline void EventQueue::maybe_spill() {
  if (cfg_.kind == FelConfig::Kind::kHybrid &&
      heap_.size() >= cfg_.spill_threshold) {
    migrate_to_ladder();
  }
}

inline void EventQueue::maybe_unspill() {
  if (spilled_ && cfg_.kind == FelConfig::Kind::kHybrid &&
      live_ <= cfg_.spill_threshold / 4) {
    migrate_to_heap();
  }
}

}  // namespace gridfed::sim
