#pragma once
// Sampling distributions used by the synthetic workload generator.  All are
// implemented from first principles on top of Rng so results are identical
// across platforms and standard libraries (libstdc++'s <random>
// distributions are not portable bit-for-bit).

#include <cstdint>
#include <span>
#include <vector>

#include "sim/random.hpp"

namespace gridfed::sim {

/// Exponential with rate lambda (> 0); mean 1/lambda.  Models Poisson
/// interarrival gaps.
[[nodiscard]] double sample_exponential(Rng& rng, double lambda);

/// Lognormal: exp(N(mu, sigma^2)).  Job runtimes in parallel traces are
/// classically lognormal-ish (Feitelson's workload modeling surveys).
[[nodiscard]] double sample_lognormal(Rng& rng, double mu, double sigma);

/// Standard normal via Box-Muller (single-value form; no cached spare so
/// the stream is stateless w.r.t. call sites).
[[nodiscard]] double sample_normal(Rng& rng, double mean, double stddev);

/// Two-phase hyperexponential: with probability p use rate l1, else l2.
/// Produces bursty arrivals (squared coefficient of variation > 1), used
/// where the paper's trace shows high rejection at moderate utilization.
[[nodiscard]] double sample_hyperexponential(Rng& rng, double p, double l1,
                                             double l2);

/// Bounded Pareto on [lo, hi] with shape alpha > 0; heavy-tailed sizes.
[[nodiscard]] double sample_bounded_pareto(Rng& rng, double alpha, double lo,
                                           double hi);

/// Weibull with shape k and scale lambda.
[[nodiscard]] double sample_weibull(Rng& rng, double shape, double scale);

/// Uniform power-of-two in [2^lo_exp, 2^hi_exp]; the classic model for
/// requested processor counts in space-shared traces.
[[nodiscard]] std::uint32_t sample_pow2(Rng& rng, std::uint32_t lo_exp,
                                        std::uint32_t hi_exp);

/// Zipf(s) over ranks 1..n via inverse-CDF on a precomputed table.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);
  /// Rank in [1, n]; rank 1 is the most probable.
  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Discrete distribution over arbitrary non-negative weights.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::span<const double> weights);
  /// Index in [0, weights.size()).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace gridfed::sim
