#pragma once
// Deterministic random number generation.  gridfed uses xoshiro256** with
// SplitMix64 seeding; every workload stream gets its own generator derived
// from (master seed, stream label) so adding a resource or reordering
// construction never perturbs the other streams — a requirement for the
// replicated-resource scaling study (Experiment 5).

#include <cstdint>
#include <string_view>

namespace gridfed::sim {

/// SplitMix64 step: used for seeding and for hashing stream labels.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// FNV-1a 64-bit hash of a label; combined with the master seed to derive
/// independent stream seeds.
[[nodiscard]] std::uint64_t hash_label(std::string_view label) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna).  Satisfies
/// std::uniform_random_bit_generator, so it plugs into <random> if needed,
/// though gridfed ships its own distributions for reproducibility across
/// standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Derives an independent generator for (seed, label).  Deterministic.
  [[nodiscard]] static Rng stream(std::uint64_t master_seed,
                                  std::string_view label) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~static_cast<result_type>(0);
  }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).  53-bit resolution.
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive), unbiased (Lemire rejection).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo,
                                          std::uint64_t hi) noexcept;

  /// Bernoulli trial with success probability p in [0,1].
  [[nodiscard]] bool bernoulli(double p) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace gridfed::sim
