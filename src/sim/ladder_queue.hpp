#pragma once
// Ladder queue: an O(1)-amortized future-event list for the cold-cache
// regime (Tang, Goh & Thng's classic Rung/Bucket/Bottom design, adapted
// to the kernel's packed 128-bit keys — see fel.hpp for the layout).
//
// Three tiers:
//
//   Top     — an unsorted append-only staging list.  Every push whose
//             timestamp lies beyond `top_floor_` (the high-water mark of
//             the last Top transfer) lands here in O(1): one store, no
//             comparisons, no sift.
//   Rungs   — a stack of progressively finer bucket arrays.  When Top is
//             first needed it is spread across rung 0's buckets (width =
//             span / kBucketsPerRung).  A bucket that surfaces with more
//             than kSortThreshold keys is re-spread across a child rung
//             whose buckets are kBucketsPerRung× finer; one that
//             surfaces small is sorted straight into Bottom.  Each key
//             is touched O(#rungs) ≤ kMaxRungs times in total, so the
//             re-spreading amortizes to O(1) per event.
//   Bottom  — the only sorted tier: an ascending vector with a consumed-
//             prefix cursor, holding the earliest bucket's keys.  Pops
//             read Bottom's head; sorting happens once per bucket, not
//             per pop — "Bottom is sorted only when a bucket is popped".
//
// Contract with the heap FEL (fel.hpp): pops come out in the exact
// full-key order — (time, priority, seq, slot) — because bucket binning
// is monotone in time (floor((t-start)/width) with defensive clamping)
// and every tier is finally ordered by the complete 128-bit key.  The
// hybrid EventQueue can therefore migrate between heap and ladder
// without perturbing a single golden digest (tests/test_ladder_queue.cpp
// asserts pop-order and digest equality under fuzzed interleavings).
//
// Tie order at a shared timestamp needs one boundary care: a push at
// exactly `top_floor_` may rank *before* same-time keys already spread
// into the rungs (a lower priority class), so only strictly later
// timestamps go to Top; floor-equal pushes take the rung/Bottom path and
// sort into place.  The zero-width pathological case — a bucket (or the
// whole Top batch) whose timestamps are all identical and thus cannot be
// subdivided — short-circuits to a Bottom sort regardless of size.
//
// Steady state is allocation-free: retired rungs park in a pool with
// their bucket storage intact, Bottom/scratch swap buffers instead of
// reallocating, and Top keeps its high-water capacity (the counting-new
// assert in tests/test_ladder_queue.cpp holds the line).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/check.hpp"
#include "sim/fel.hpp"
#include "sim/types.hpp"

namespace gridfed::sim {

class LadderQueue {
 public:
  LadderQueue() {
    top_.reserve(kInitialCapacity);
    bottom_.reserve(kInitialCapacity);
    scratch_.reserve(kInitialCapacity);
  }

  /// O(1) (amortized): Top append, a ≤ kMaxRungs rung walk, or a Bottom
  /// sorted insert (O(1) for the ascending pushes the mailbox drain and
  /// same-instant reschedules produce; O(|Bottom|) worst case).
  void push(FelKey key) {
    const SimTime t = fel_time_of(key);
    ++size_;
    // Strictly-later only: a floor-equal key may tie-break *before*
    // same-time keys already in the rungs (see header).
    if (t > top_floor_) {
      if (top_.empty() || t < top_min_) top_min_ = t;
      if (top_.empty() || t > top_max_) top_max_ = t;
      top_.push_back(key);
      return;
    }
    if (!rungs_.empty()) {
      if (t >= rung_cur_start(rungs_.back())) {
        // Finest-to-coarsest walk: the first rung whose remaining span
        // covers t owns it; the coarsest rung is clamped unbounded so
        // every key below top_floor_ has a home despite FP edges.
        for (std::size_t i = rungs_.size(); i-- > 1;) {
          Rung& r = rungs_[i];
          if (t < rung_end(r)) {
            rung_insert(r, key, t);
            return;
          }
        }
        rung_insert(rungs_.front(), key, t);
        return;
      }
      // Below the consumption frontier: belongs among Bottom's keys.
    }
    bottom_insert(key);
  }

  /// Removes and returns the minimum key.  Precondition: !empty().
  [[nodiscard]] FelKey pop_min() {
    GF_EXPECTS(size_ > 0);
    if (bottom_head_ == bottom_.size()) refill_bottom();
    --size_;
    const FelKey key = bottom_[bottom_head_++];
    if (bottom_head_ == bottom_.size()) {
      bottom_.clear();
      bottom_head_ = 0;
    }
    return key;
  }

  /// The minimum key without removing it.  May materialize (sort) the
  /// next bucket into Bottom.  Precondition: !empty().
  [[nodiscard]] FelKey min_key() {
    GF_EXPECTS(size_ > 0);
    if (bottom_head_ == bottom_.size()) refill_bottom();
    return bottom_[bottom_head_];
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void clear() noexcept;

  /// Moves every key into `out` (appended, unspecified order) and
  /// empties the queue.  The heap↔ladder migration path.
  void drain_into(std::vector<FelKey>& out);

  /// Bulk-load from an unordered key set: everything stages through Top
  /// (O(n)); the first pop spreads it.
  void build_from(const std::vector<FelKey>& keys);

  // ---- introspection (tests, debug checks) --------------------------------

  /// Rungs currently spawned (0 when everything sits in Top/Bottom).
  [[nodiscard]] std::size_t active_rungs() const noexcept {
    return rungs_.size();
  }

  /// True when the minimum is already sorted into Bottom, i.e.
  /// materialized_min() is readable without forcing a bucket sort.
  [[nodiscard]] bool min_materialized() const noexcept {
    return bottom_head_ < bottom_.size();
  }
  /// The structural minimum.  Precondition: min_materialized().  Every
  /// Bottom key sorts before every rung/Top key (Bottom sits below the
  /// consumption frontier), so Bottom's head is the global min.
  [[nodiscard]] FelKey materialized_min() const noexcept {
    return bottom_[bottom_head_];
  }
  /// Keys already sorted into Bottom and awaiting pop.  Unlike a heap —
  /// whose pop order beyond the root is unknowable without popping —
  /// these ARE the next materialized_run() pops, in order; EventQueue
  /// exploits that to prefetch several dispatches ahead.
  [[nodiscard]] std::size_t materialized_run() const noexcept {
    return bottom_.size() - bottom_head_;
  }
  /// The (i+1)-th next pop.  Precondition: i < materialized_run().
  [[nodiscard]] FelKey materialized_at(std::size_t i) const noexcept {
    return bottom_[bottom_head_ + i];
  }

  /// Always-compiled structural self-check (GF_SIM_CHECK wires it into
  /// every mutating EventQueue op in debug builds; Release fuzz tests
  /// call it explicitly): tier sizes sum to size(), Bottom is sorted,
  /// rung bucket counts are consistent.  Throws ContractViolation.
  void debug_validate() const;

 private:
  /// Buckets per rung.  128 keeps a rung's bucket headers (128 × 24 B
  /// vector headers) inside two pages while giving each spawn a 128×
  /// width refinement.
  static constexpr std::size_t kBucketsPerRung = 128;
  /// A bucket surfacing with more keys than this is re-spread into a
  /// child rung; at or below it, sorted straight into Bottom.
  static constexpr std::size_t kSortThreshold = 64;
  /// Depth cap: beyond it buckets sort into Bottom regardless of size
  /// (graceful degradation for adversarially clustered timestamps).
  static constexpr std::size_t kMaxRungs = 8;
  static constexpr std::size_t kInitialCapacity = 1024;

  struct Rung {
    SimTime start = 0.0;   ///< timestamp of bucket 0's left edge
    SimTime width = 0.0;   ///< bucket width (> 0)
    std::size_t cur = 0;   ///< first unconsumed bucket
    std::size_t count = 0; ///< live keys across buckets [cur, end)
    std::vector<std::vector<FelKey>> buckets;  ///< kBucketsPerRung entries
  };

  [[nodiscard]] static SimTime rung_cur_start(const Rung& r) noexcept {
    return r.start + static_cast<SimTime>(r.cur) * r.width;
  }
  [[nodiscard]] static SimTime rung_end(const Rung& r) noexcept {
    return r.start + static_cast<SimTime>(kBucketsPerRung) * r.width;
  }

  void rung_insert(Rung& r, FelKey key, SimTime t) {
    // floor((t - start) / width) is monotone in t (IEEE subtraction,
    // division and floor all are), so binning never inverts two keys;
    // the clamps absorb rounding at the frontier and the top edge.
    std::size_t idx = kBucketsPerRung - 1;
    const SimTime rel = (t - r.start) / r.width;
    if (rel < static_cast<SimTime>(kBucketsPerRung)) {
      idx = static_cast<std::size_t>(rel);
    }
    if (idx < r.cur) idx = r.cur;
    if (idx >= kBucketsPerRung) idx = kBucketsPerRung - 1;
    r.buckets[idx].push_back(key);
    ++r.count;
  }

  void bottom_insert(FelKey key) {
    if (bottom_head_ == bottom_.size()) {
      bottom_.clear();
      bottom_head_ = 0;
    }
    // Ascending inserts (the common pattern: mailbox drains arrive
    // key-sorted, reschedules land at/after the clock) append in O(1).
    if (bottom_.empty() || !(key < bottom_.back())) {
      bottom_.push_back(key);
      return;
    }
    const auto it = std::upper_bound(bottom_.begin() +
                                         static_cast<std::ptrdiff_t>(
                                             bottom_head_),
                                     bottom_.end(), key);
    bottom_.insert(it, key);
  }

  // Cold path: Bottom ran dry — pull the next bucket (spawning finer
  // rungs for oversized ones) or spread Top.  Defined in
  // ladder_queue.cpp.
  void refill_bottom();
  void spawn_rung(SimTime lo, SimTime parent_width);
  void transfer_top();
  void retire_rung();
  [[nodiscard]] Rung acquire_rung();

  std::vector<FelKey> top_;
  SimTime top_min_ = 0.0;
  SimTime top_max_ = 0.0;
  /// Pushes must be strictly later than this to enter Top (the max
  /// timestamp of the last transfer; -1 = nothing transferred yet, so
  /// every non-negative time stages through Top).
  SimTime top_floor_ = -1.0;

  std::vector<Rung> rungs_;       ///< [0] coarsest … back() finest/active
  std::vector<Rung> rung_pool_;   ///< retired rungs, bucket storage kept

  std::vector<FelKey> bottom_;    ///< ascending; live keys at [head, end)
  std::size_t bottom_head_ = 0;

  std::vector<FelKey> scratch_;   ///< bucket staging (swapped, not grown)
  std::size_t size_ = 0;
};

static_assert(Fel<LadderQueue>);

}  // namespace gridfed::sim
