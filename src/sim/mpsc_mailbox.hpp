#pragma once
// Lock-free cross-shard mailbox for the conservative-parallel kernel.
//
// Each shard (and the global lane) owns one MpscMailbox.  Any worker
// thread may post() into any mailbox mid-window; the coordinator drains
// every mailbox at the window barrier, when all producers are parked, and
// schedules the posts onto the owning lane's event queue in causal-token
// order.  push is a Vyukov intrusive MPSC enqueue (one exchange + one
// store, wait-free for producers); drain is single-consumer and relies on
// the barrier for quiescence, so it never observes a half-linked node.
//
// Determinism: the arrival interleaving of concurrent posts is
// nondeterministic, so drain order must never depend on it.  Every post
// carries a CausalToken whose (primary, secondary) pair is derived from
// simulation-deterministic state (see parallel.hpp); the coordinator
// sorts a drained batch by (time, priority, token, from) — a total order
// that is identical for every worker-thread count.

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/inline_function.hpp"
#include "sim/types.hpp"

namespace gridfed::sim {

/// Deterministic ordering key for cross-shard posts.  `primary` is unique
/// per originating dispatch (a fresh per-lane counter, or inherited from
/// the mailbox post that triggered the dispatch); `secondary` orders the
/// posts made within one dispatch.  Tokens reproduce the sequential
/// kernel's same-instant ordering for causally chained traffic (e.g. the
/// tree fanout -> per-provider bid trampolines).
struct CausalToken {
  std::uint64_t primary = 0;
  std::uint64_t secondary = 0;
};

/// One cross-lane message: "run `action` on the owning lane at time `t`".
struct MailboxPost {
  SimTime t = 0.0;
  EventPriority priority = EventPriority::kMessage;
  std::uint32_t from = 0;  ///< originating site, last-resort tie-break
  CausalToken token;
  InlineFunction action;
};

/// Total order over drained posts; unique by token construction, `from`
/// kept as a defensive final key.
inline bool mailbox_post_less(const MailboxPost& a, const MailboxPost& b) {
  if (a.t != b.t) return a.t < b.t;
  if (a.priority != b.priority) return a.priority < b.priority;
  if (a.token.primary != b.token.primary) {
    return a.token.primary < b.token.primary;
  }
  if (a.token.secondary != b.token.secondary) {
    return a.token.secondary < b.token.secondary;
  }
  return a.from < b.from;
}

/// Multi-producer single-consumer unbounded queue (Vyukov-style intrusive
/// list).  Producers are wait-free; the consumer must only drain while
/// producers are quiescent (the window barrier guarantees this).
class MpscMailbox {
 public:
  MpscMailbox() {
    Node* stub = new Node;
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  MpscMailbox(const MpscMailbox&) = delete;
  MpscMailbox& operator=(const MpscMailbox&) = delete;

  ~MpscMailbox() {
    Node* n = tail_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Producer side; callable from any thread.
  void post(MailboxPost p) {
    Node* n = new Node;
    n->post = std::move(p);
    Node* prev = head_.exchange(n, std::memory_order_acq_rel);
    prev->next.store(n, std::memory_order_release);
  }

  /// Consumer side; producers must be parked (window barrier).  Appends
  /// the drained posts to `out` in arrival order — the caller sorts by
  /// mailbox_post_less before scheduling.  Returns the number drained.
  std::size_t drain(std::vector<MailboxPost>& out) {
    std::size_t n = 0;
    for (;;) {
      Node* next = tail_->next.load(std::memory_order_acquire);
      if (next == nullptr) break;
      out.push_back(std::move(next->post));
      delete tail_;  // consumed node (or the stub) becomes garbage
      tail_ = next;  // drained node doubles as the new stub
      ++n;
    }
    return n;
  }

  /// Valid only at quiescence (same contract as drain).
  [[nodiscard]] bool empty() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    MailboxPost post;
  };

  alignas(64) std::atomic<Node*> head_;  ///< producers push here
  alignas(64) Node* tail_;               ///< consumer-owned
};

}  // namespace gridfed::sim
