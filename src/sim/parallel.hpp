#pragma once
// Conservative-parallel execution of a sharded simulation.
//
// The federation is partitioned into S shards, each owning a private
// Simulation (event queue + clock), plus one *global lane* — the
// pre-existing Federation Simulation — that keeps every piece of
// inherently centralized logic single-threaded: tree-transport
// batching/flushes, membership gossip and churn, directory mutation, and
// the periodic behaviours.  Shards advance concurrently inside a safe
// window; cross-shard traffic rides per-lane MPSC mailboxes and is
// drained at the window barrier.
//
// Safe-window protocol (Chandy-Misra-style conservative synchronization):
//   T_min  = min next-event time over all shard queues + the global queue
//   W_end  = min(T_min + L, global queue's next-event time)
// where L > 0 is the lookahead — the minimum WAN delay the LatencyModel
// can produce (network::LatencyModel::min_latency(); every control and
// payload delay is floored by the pairwise latency, see
// LatencyModel::transfer_time).  All shards run_until(W_end) in parallel;
// any message they emit is delayed by >= L, so it lands at
// t >= T_min + L >= W_end — never inside the window being executed.  The
// global lane is a synchronization point (its events may touch shard
// state: churn, gossip-confirmed deaths), so a window never crosses the
// global queue's head; the coordinator runs the global lane to W_end at
// the barrier while the workers are parked, then drains every mailbox in
// causal-token order and opens the next window.
//
// Determinism across worker counts: window boundaries depend only on
// queue contents (not on S), mailbox drain order is sorted by the
// N-invariant CausalToken, and each shard's interior execution is
// sequential.  See mpsc_mailbox.hpp for the token construction.

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/mpsc_mailbox.hpp"
#include "sim/simulation.hpp"
#include "sim/types.hpp"

#include <condition_variable>
#include <mutex>
#include <thread>

namespace gridfed::sim {

/// Lane id of the global (coordinator) lane.
inline constexpr int kGlobalLane = -1;
/// Lane id reported on threads that are not part of any engine.
inline constexpr int kNoLane = -2;

class ParallelEngine {
 public:
  /// `n_shards` worker lanes plus the caller-owned `global_lane`.
  /// `max_sites` bounds the site indices passed to post() (sizes the
  /// per-site token counters).  `lookahead` must be > 0.  `fel` selects
  /// each shard lane's future-event-list structure; every lane owns a
  /// private EventQueue and spills/un-spills independently of its
  /// siblings (a hot lane can ride the ladder while light lanes stay on
  /// the heap), with no effect on pop order or digests.
  ParallelEngine(std::size_t n_shards, Simulation& global_lane,
                 SimTime lookahead, std::size_t max_sites,
                 const FelConfig& fel = {});
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  [[nodiscard]] std::size_t shards() const noexcept {
    return shard_sims_.size();
  }
  [[nodiscard]] Simulation& shard(std::size_t s) { return *shard_sims_[s]; }
  [[nodiscard]] Simulation& global() noexcept { return global_; }
  [[nodiscard]] SimTime lookahead() const noexcept { return lookahead_; }

  /// Lane the calling thread is currently executing: a shard index on a
  /// worker mid-window, kGlobalLane on the coordinator (also between
  /// run() calls and during construction), kNoLane on foreign threads.
  [[nodiscard]] static int current_lane() noexcept;

  /// Cross-lane post: run `action` on `target_lane` (shard index or
  /// kGlobalLane) at absolute time `t`.  Callable from any lane; the
  /// causal token is derived from the caller's dispatch context so drain
  /// order is identical for every worker count.
  void post(int target_lane, SimTime t, EventPriority priority,
            std::uint32_t from_site, InlineFunction action);

  /// Runs the window loop until every queue and mailbox is empty.
  void run();

  /// Number of safe windows executed.
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
  /// Events executed across all lanes (global + shards).
  [[nodiscard]] std::uint64_t events_executed() const;

 private:
  struct LaneTls {
    int lane = kNoLane;
    bool token_active = false;      ///< inside a mailbox-wrapped dispatch
    std::uint64_t token_primary = 0;
    std::uint64_t token_base = 0;   ///< parent secondary << kTokenShift
    std::uint64_t post_counter = 0; ///< posts made during this dispatch
  };
  static thread_local LaneTls tls_;

  static constexpr std::uint64_t kTokenShift = 16;
  /// Site-namespace bit: fresh shard-side primaries sort after all
  /// global-lane primaries at equal (t, priority) — deterministically.
  static constexpr std::uint64_t kSiteNamespace = 1ull << 63;

  [[nodiscard]] CausalToken make_token(std::uint32_t from_site);
  void worker_main(std::size_t s);
  void run_window(SimTime horizon);
  void drain_into(MpscMailbox& box, Simulation& sim);

  Simulation& global_;
  SimTime lookahead_;
  std::vector<std::unique_ptr<Simulation>> shard_sims_;
  std::vector<std::unique_ptr<MpscMailbox>> shard_boxes_;
  MpscMailbox global_box_;

  /// Fresh-primary counters: global lane (coordinator-only) and per-site
  /// (only that site's shard thread increments its slot).
  std::uint64_t global_primary_ = 0;
  std::vector<std::uint64_t> site_primary_;

  // Worker pool + window barrier.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  SimTime horizon_ = 0.0;
  std::size_t done_ = 0;
  bool stop_ = false;

  std::uint64_t windows_ = 0;
  std::vector<MailboxPost> drain_scratch_;
};

}  // namespace gridfed::sim
