#pragma once
// Future-event list: a 4-ary min-heap over Event's strict weak ordering.
// std::priority_queue is not used because we need (a) move-out of the top
// element and (b) cheap clear(); both are awkward through its interface.
//
// Layout: each pending event is one 128-bit integer key
//
//     [ time as IEEE-754 bits : 64 | priority : 2 | seq : 40 | slot : 22 ]
//
// For non-negative doubles the IEEE bit pattern orders exactly like the
// value, so a single unsigned 128-bit compare implements the full
// (time, priority, seq) strict weak ordering — one branch where the
// naive comparator needs three.  The 48-byte inline callbacks live in a
// stable slot-indexed side array and never move while queued; sifting
// shuffles 16-byte integers only.  The heap is 4-ary rather than binary
// because halving the tree depth halves the key moves per pop and four
// children share a cache line.  Sifts use hole insertion (one move per
// level) instead of the three-move swaps std::push_heap / std::pop_heap
// perform.  Measured against the std::function binary heap it replaces,
// push+pop throughput is ~2-3x (see bench_micro_kernel / BENCH_kernel).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event.hpp"

namespace gridfed::sim {

/// Min-heap of pending events ordered by (time, priority, seq).
/// Deterministic: equal-time events pop in insertion order within a
/// priority class.
///
/// Contracts (all checked, loud): event times are non-negative (the
/// simulation clock starts at 0 and never moves backwards), seq < 2^40,
/// and at most 2^22 events are pending at once — far beyond any
/// federation sweep, and a violation fails a GF_EXPECTS rather than
/// silently reordering.
class EventQueue {
 public:
  EventQueue() {
    // One queue drives a whole federation; pre-sizing skips the first
    // rounds of growth (and InlineFunction relocation) in the hot loop.
    heap_.reserve(kInitialCapacity);
    actions_.reserve(kInitialCapacity);
    free_slots_.reserve(kInitialCapacity);
  }

  /// Inserts an event.  O(log n), allocation-free apart from amortized
  /// storage growth (slots freed by pop() are reused).  Defined inline
  /// below: push/pop are the innermost simulation loop and inlining lets
  /// callers elide the Event round-trip entirely.
  void push(Event ev);

  /// Removes and returns the earliest event.  Precondition: !empty().
  [[nodiscard]] Event pop();

  /// Hot-loop variant of pop(): moves the earliest event's callback into
  /// `action` and returns its timestamp, skipping the Event round-trip
  /// (the dispatch loop needs neither seq nor priority).
  /// Precondition: !empty().
  SimTime pop_into(InlineFunction& action);

  /// Timestamp of the earliest event (cached; no heap access).
  /// Precondition: !empty().
  [[nodiscard]] SimTime next_time() const noexcept { return next_time_; }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Drops all pending events (storage capacity is retained).
  void clear() noexcept {
    heap_.clear();
    actions_.clear();
    free_slots_.clear();
    next_time_ = kTimeInfinity;
  }

 private:
  static constexpr std::size_t kArity = 4;
  static constexpr std::size_t kInitialCapacity = 4096;
  static constexpr std::uint64_t kSlotBits = 22;
  static constexpr std::uint64_t kSeqBits = 40;

  using Key = unsigned __int128;

  [[nodiscard]] static SimTime time_of(Key k) noexcept {
    return std::bit_cast<SimTime>(static_cast<std::uint64_t>(k >> 64));
  }

  std::vector<Key> heap_;
  std::vector<InlineFunction> actions_;    ///< slot-indexed, stable
  std::vector<std::uint32_t> free_slots_;  ///< recycled action slots
  SimTime next_time_ = kTimeInfinity;      ///< time_of(heap_[0]), in sync
};

}  // namespace gridfed::sim

#include "sim/event_queue_inl.hpp"  // IWYU pragma: keep
