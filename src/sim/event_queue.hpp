#pragma once
// Future-event list: a binary min-heap over Event's strict weak ordering.
// std::priority_queue is not used because we need (a) move-out of the top
// element and (b) cheap clear(); both are awkward through its interface.

#include <cstddef>
#include <vector>

#include "sim/event.hpp"

namespace gridfed::sim {

/// Min-heap of pending events ordered by (time, priority, seq).
/// Deterministic: equal-time events pop in insertion order within a
/// priority class.
class EventQueue {
 public:
  /// Inserts an event.  O(log n).
  void push(Event ev);

  /// Removes and returns the earliest event.  Precondition: !empty().
  [[nodiscard]] Event pop();

  /// Timestamp of the earliest event.  Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Drops all pending events.
  void clear() noexcept { heap_.clear(); }

 private:
  // `a` sorts after `b` in heap order (we keep a min-heap, std::push_heap
  // builds max-heaps, so the comparator is reversed).
  static bool later(const Event& a, const Event& b) { return b < a; }

  std::vector<Event> heap_;
};

}  // namespace gridfed::sim
