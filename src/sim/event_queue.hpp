#pragma once
// Future-event list: a hybrid over two backing structures that pop in
// the identical total order (see fel.hpp):
//
//   * HeapFel     — the 4-ary min-heap; O(log n) but cache-resident and
//                   unbeatable while the pending set fits L1/L2;
//   * LadderQueue — Rung/Bucket/Bottom ladder (ladder_queue.hpp); O(1)
//                   amortized independent of size, the cold-cache choice.
//
// The hybrid stays on the heap below FelConfig::spill_threshold pending
// keys and migrates to the ladder above it (un-spilling at threshold/4 —
// hysteresis, so a set oscillating around the threshold does not thrash
// O(n) migrations).  Because both structures emit the exact full-key
// order — [ time : 64 | priority : 2 | seq : 40 | slot : 22 ], where the
// IEEE bit pattern of a non-negative double orders like its value — the
// backend choice and every migration are invisible to pop order, which
// is what lets each ParallelEngine lane pick its structure independently
// without perturbing a single golden digest.
//
// The inline callbacks live in a stable slot-indexed side array of
// cache-line-sized records (callback + occupant identity together, so a
// dispatch touches exactly one line per slot) and never move while
// queued; the FEL structures shuffle 16-byte integers only.
// Cancellation (erase / update_key) is tombstone-based:
// the low 64 key bits (priority‖seq‖slot, unique per pending event) name
// the victim; a cancelled minimum is removed eagerly so the cached
// next_time() never reports a dead event, and deeper tombstones are
// discarded when they surface or at migration.

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/event.hpp"
#include "sim/fel.hpp"
#include "sim/ladder_queue.hpp"

namespace gridfed::sim {

/// Pending-event list ordered by (time, priority, seq).
/// Deterministic: equal-time events pop in insertion order within a
/// priority class, regardless of which backing structure holds them.
///
/// Contracts (all checked, loud): event times are non-negative (the
/// simulation clock starts at 0 and never moves backwards), seq < 2^40,
/// and at most 2^22 events are pending at once — far beyond any
/// federation sweep, and a violation fails a GF_EXPECTS rather than
/// silently reordering.
class EventQueue {
 public:
  /// Names a pending event for erase()/update_key().  Default-constructed
  /// handles are invalid; a handle dies when its event pops, is erased,
  /// or is rescheduled (update_key hands back a fresh one).
  class EventHandle {
   public:
    EventHandle() = default;
    [[nodiscard]] bool valid() const noexcept { return raw_ != kNoEvent; }

   private:
    friend class EventQueue;
    static constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};
    explicit EventHandle(std::uint64_t raw) noexcept : raw_(raw) {}
    std::uint64_t raw_ = kNoEvent;
  };

  EventQueue() : EventQueue(FelConfig{}) {}

  explicit EventQueue(const FelConfig& cfg) : cfg_(cfg) {
    // One queue drives a whole federation lane; pre-sizing skips the
    // first rounds of growth (and InlineFunction relocation) in the hot
    // loop.
    slots_.reserve(kInitialCapacity);
    free_slots_.reserve(kInitialCapacity);
    spilled_ = cfg_.kind == FelConfig::Kind::kLadder;
  }

  /// Inserts an event.  O(log n) on the heap, O(1) amortized on the
  /// ladder; allocation-free apart from amortized storage growth (slots
  /// freed by pop()/erase() are reused).  Returns a handle for
  /// erase()/update_key(); callers that never cancel may ignore it.
  /// Defined inline below: push/pop are the innermost simulation loop.
  EventHandle push(Event ev);

  /// Removes and returns the earliest event.  Precondition: !empty().
  [[nodiscard]] Event pop();

  /// Hot-loop variant of pop(): moves the earliest event's callback into
  /// `action` and returns its timestamp, skipping the Event round-trip
  /// (the dispatch loop needs neither seq nor priority).
  /// Precondition: !empty().
  SimTime pop_into(InlineFunction& action);

  /// Cancels a pending event.  Returns false if the handle no longer
  /// names one (already popped, erased, or rescheduled).  Erasing the
  /// current minimum removes it structurally — and invalidates the
  /// cached next_time() — immediately; deeper victims leave a tombstone
  /// that is discarded when it surfaces.  The callback is destroyed and
  /// the action slot recycled either way.
  bool erase(EventHandle h);

  /// Reschedules a pending event to `new_time`, keeping its callback and
  /// priority class.  `new_seq` must be a fresh sequence number (the
  /// Simulation's monotone counter) so the total key order stays unique.
  /// Returns the event's new handle, or an invalid handle if `h` no
  /// longer names a pending event.
  EventHandle update_key(EventHandle h, SimTime new_time, EventSeq new_seq);

  /// Timestamp of the earliest event (cached; no structure access).
  /// Precondition: !empty().
  [[nodiscard]] SimTime next_time() const noexcept { return next_time_; }

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Drops all pending events (storage capacity is retained).
  void clear() noexcept;

  // ---- introspection (tests, benches) -------------------------------------

  [[nodiscard]] const FelConfig& fel_config() const noexcept { return cfg_; }
  /// True while the ladder is the active backing structure.
  [[nodiscard]] bool spilled() const noexcept { return spilled_; }

  /// Always-compiled structural self-check: cached next_time() matches
  /// the structural minimum, the minimum is never a tombstone, and live
  /// + cancelled bookkeeping covers the backing structure exactly.
  /// GF_SIM_CHECK runs it after every mutating op in debug builds;
  /// Release test binaries call it explicitly.  Throws ContractViolation.
  void debug_validate();

 private:
  static constexpr std::size_t kInitialCapacity = 4096;
  /// How many upcoming pops after_remove prefetches slot records for
  /// when the ladder's sorted Bottom run makes them exactly known (~4
  /// dispatches ≈ one DRAM miss latency of lead time).
  static constexpr std::size_t kPrefetchDepth = 4;

  [[nodiscard]] FelKey active_min() {
    return spilled_ ? ladder_.min_key() : heap_.min_key();
  }
  [[nodiscard]] FelKey active_pop() {
    return spilled_ ? ladder_.pop_min() : heap_.pop_min();
  }

  /// Shared body of pop()/pop_into(): pops the minimum, moves its
  /// callback into `action`, recycles the slot, and returns the full
  /// 128-bit key so callers decode time/priority/seq without a second
  /// min query.
  FelKey pop_key(InlineFunction& action);

  /// Re-establishes the cached-min invariant after a structural removal:
  /// pops tombstoned minima, un-spills across the hysteresis floor, and
  /// refreshes next_time_.  live_ must already be decremented.
  void after_remove();
  /// Pops cancelled keys off the structural min.  Precondition: live_ > 0.
  void drop_cancelled_min();
  void maybe_spill();
  void maybe_unspill();
  void migrate_to_ladder();
  void migrate_to_heap();
  /// Drops tombstoned keys from a drained key set; empties cancelled_.
  void filter_cancelled(std::vector<FelKey>& keys);
  [[nodiscard]] bool consistent();

  FelConfig cfg_;
  HeapFel heap_;
  LadderQueue ladder_;
  bool spilled_ = false;  ///< which structure is active

  /// One action slot: the parked callback plus the low-64 key bits of
  /// the occupant (EventHandle::kNoEvent when free — validates handles
  /// across slot reuse).  Cache-line aligned: slots are read in key
  /// order, i.e. randomly, so keeping everything a dispatch needs on one
  /// line halves the misses of split side arrays and lets after_remove's
  /// single prefetch cover the whole next pop.
  struct alignas(64) Slot {
    InlineFunction action;
    std::uint64_t low = EventHandle::kNoEvent;
  };

  std::vector<Slot> slots_;                ///< slot-indexed, stable
  std::vector<std::uint32_t> free_slots_;  ///< recycled action slots

  /// Low-64 identities of cancelled keys still inside the backing
  /// structure.  The structural minimum is never in here.
  std::unordered_set<std::uint64_t> cancelled_;
  std::size_t live_ = 0;               ///< pending minus cancelled
  SimTime next_time_ = kTimeInfinity;  ///< time of the structural min
  std::vector<FelKey> migrate_scratch_;
};

}  // namespace gridfed::sim

#include "sim/event_queue_inl.hpp"  // IWYU pragma: keep
