#pragma once
// Small-buffer move-only callback for the event kernel.  The simulation
// schedules millions of closures whose captures are almost always a
// `this` pointer plus one or two scalar ids; routing those through
// std::function costs an indirect manager call on every destroy and keeps
// Event moves opaque to the optimizer.  InlineFunction stores trivially
// copyable captures up to kInlineCapacity bytes directly inside the
// object — zero heap traffic per scheduled event, and moves compile to a
// fixed-size copy — while larger or non-trivial callables (a captured
// Job or Message payload, a std::function) fall back to a heap box, which
// is exactly what std::function did for them anyway.

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace gridfed::sim {

/// Move-only `void()` callable with small-buffer optimization.
///
/// Storage rules:
///  * trivially copyable callables with size <= kInlineCapacity and
///    alignment <= alignof(std::max_align_t) live inside the buffer —
///    construction, move and destruction never touch the heap;
///  * everything else is boxed on the heap (one allocation, pointer in
///    the buffer).
///
/// Moved-from InlineFunctions are empty; invoking one is a caller bug
/// (checked by the Simulation, not here, to keep operator() branch-free).
class InlineFunction {
 public:
  /// Captures up to this many bytes are stored without heap allocation.
  static constexpr std::size_t kInlineCapacity = 32;

  InlineFunction() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      // Zero the buffer first so moves can blindly copy all of it (the
      // tail past sizeof(D) would otherwise be indeterminate).
      std::memset(buf_, 0, kInlineCapacity);
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); };
      // destroy_ stays null: trivially copyable implies trivially
      // destructible, so the hot destroy path is a single null check.
    } else {
      D* boxed = new D(std::forward<F>(f));
      std::memcpy(buf_, &boxed, sizeof(boxed));
      invoke_ = [](void* p) {
        D* b;
        std::memcpy(&b, p, sizeof(b));
        (*b)();
      };
      destroy_ = [](void* p) {
        D* b;
        std::memcpy(&b, p, sizeof(b));
        delete b;
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept
      : invoke_(other.invoke_), destroy_(other.destroy_) {
    // Inline callables are trivially copyable by construction, so a raw
    // byte copy is a valid move for both storage modes (for the boxed
    // mode it just transfers the pointer).  Empty sources carry nothing.
    if (invoke_ != nullptr) std::memcpy(buf_, other.buf_, kInlineCapacity);
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      if (destroy_ != nullptr) destroy_(buf_);
      if (other.invoke_ != nullptr) {
        std::memcpy(buf_, other.buf_, kInlineCapacity);
      }
      invoke_ = other.invoke_;
      destroy_ = other.destroy_;
      other.invoke_ = nullptr;
      other.destroy_ = nullptr;
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() {
    if (destroy_ != nullptr) destroy_(buf_);
  }

  void operator()() { invoke_(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  /// True when callable type `D` is stored inline (exposed so tests can
  /// assert the zero-allocation contract instead of guessing).
  template <typename D>
  [[nodiscard]] static constexpr bool fits_inline() noexcept {
    return std::is_trivially_copyable_v<D> &&
           sizeof(D) <= kInlineCapacity &&
           alignof(D) <= alignof(std::max_align_t);
  }

 private:
  using Invoke = void (*)(void*);
  using Destroy = void (*)(void*);

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  Invoke invoke_ = nullptr;
  Destroy destroy_ = nullptr;  ///< non-null only for heap-boxed callables
};

}  // namespace gridfed::sim
