#pragma once
// Future-event-list (FEL) structures shared by the event kernel.
//
// A pending event is one 128-bit integer key
//
//     [ time as IEEE-754 bits : 64 | priority : 2 | seq : 40 | slot : 22 ]
//
// For non-negative doubles the IEEE bit pattern orders exactly like the
// value, so a single unsigned 128-bit compare implements the full
// (time, priority, seq) strict weak ordering — one branch where the
// naive comparator needs three.  The callbacks live in a stable
// slot-indexed side array owned by EventQueue and never move while
// queued; the FEL structures below shuffle 16-byte integers only.
//
// Two structures satisfy the `Fel` concept:
//
//   * HeapFel     — the PR 2 4-ary min-heap: O(log n) push/pop, the
//                   fastest choice while the key working set fits L1/L2;
//   * LadderQueue — the classic Rung/Bucket/Bottom ladder queue
//                   (ladder_queue.hpp): O(1) amortized push/pop
//                   independent of the pending-set size, the choice once
//                   a lane's heap would fall into the cold-cache
//                   heapsort regime (BENCH_kernel_micro.json, 16384+).
//
// Both pop in exactly the same total order — the full 128-bit key order,
// which keys are unique under (slot uniqueness) — so EventQueue can swap
// or hybridize them without perturbing a single golden digest.

#include <algorithm>
#include <bit>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/check.hpp"
#include "sim/types.hpp"

namespace gridfed::sim {

/// Packed FEL key; see the layout above.
using FelKey = unsigned __int128;

inline constexpr std::uint64_t kFelSlotBits = 22;
inline constexpr std::uint64_t kFelSeqBits = 40;
inline constexpr std::uint64_t kFelSlotMask =
    (std::uint64_t{1} << kFelSlotBits) - 1;

[[nodiscard]] inline SimTime fel_time_of(FelKey k) noexcept {
  return std::bit_cast<SimTime>(static_cast<std::uint64_t>(k >> 64));
}

[[nodiscard]] inline std::uint32_t fel_slot_of(FelKey k) noexcept {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(k) &
                                    kFelSlotMask);
}

/// Low 64 bits of a key: priority ‖ seq ‖ slot.  Unique per pending
/// event whenever seqs are unique (the Simulation assigns a monotone
/// counter), so it serves as a compact cancellation identity.
[[nodiscard]] inline std::uint64_t fel_low64(FelKey k) noexcept {
  return static_cast<std::uint64_t>(k);
}

/// FEL tuning.  The default is the hybrid: each EventQueue (one per
/// engine lane under the parallel kernel) independently stays on the
/// 4-ary heap while its pending set is below `spill_threshold` keys —
/// i.e. while ~16 B/key keeps the working set inside L1/L2 — and spills
/// to the ladder queue above it.  A hot global lane can therefore spill
/// while lightly loaded shard lanes stay on the heap.  Un-spill happens
/// at spill_threshold/4 (hysteresis, so a pending set oscillating around
/// the threshold does not thrash O(n) migrations).
struct FelConfig {
  enum class Kind : std::uint8_t {
    kHybrid,  ///< heap below spill_threshold, ladder above (the default)
    kHeap,    ///< 4-ary heap always (the pre-ladder kernel, A/B baseline)
    kLadder,  ///< ladder always (A/B column; forces the spill from key 1)
  };
  Kind kind = Kind::kHybrid;

  /// Pending-key count at which a hybrid queue migrates heap → ladder.
  /// ~8192 keys = 128 KB of keys: past the L1 the heap's pop becomes a
  /// dependent-load heapsort (the 16384 cliff in BENCH_kernel_micro).
  std::size_t spill_threshold = 8192;
};

[[nodiscard]] constexpr const char* to_string(FelConfig::Kind kind) noexcept {
  switch (kind) {
    case FelConfig::Kind::kHybrid:
      return "hybrid";
    case FelConfig::Kind::kHeap:
      return "heap";
    case FelConfig::Kind::kLadder:
      return "ladder";
  }
  __builtin_unreachable();
}

/// The structural interface EventQueue drives.  `min_key`/`pop_min` may
/// mutate (the ladder sorts its Bottom tier lazily, on first access to a
/// bucket), hence no const there.  `drain_into` empties the structure in
/// unspecified order — the migration path between structures — and
/// `build_from` bulk-loads from such a drain.
template <typename T>
concept Fel = requires(T t, const T& ct, FelKey k, std::vector<FelKey>& keys) {
  { t.push(k) };
  { t.pop_min() } -> std::same_as<FelKey>;
  { t.min_key() } -> std::same_as<FelKey>;
  { ct.empty() } -> std::convertible_to<bool>;
  { ct.size() } -> std::convertible_to<std::size_t>;
  { t.clear() };
  { t.drain_into(keys) };
  { t.build_from(keys) };
};

/// 4-ary min-heap over packed keys (carved out of the PR 2 EventQueue).
/// 4-ary rather than binary because halving the tree depth halves the
/// key moves per pop and four children share a cache line.  Sifts use
/// hole insertion (one move per level) instead of the three-move swaps
/// std::push_heap / std::pop_heap perform; pops use bottom-up Wegener
/// deletion (see pop_min).
class HeapFel {
 public:
  HeapFel() { heap_.reserve(kInitialCapacity); }

  void push(FelKey key) {
    // Hole insertion: open a hole at the back, move parents down while
    // they sort after the new key, then drop the key into the hole.
    std::size_t hole = heap_.size();
    heap_.emplace_back();
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / kArity;
      if (!(key < heap_[parent])) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = key;
  }

  /// Removes and returns the minimum key.  Precondition: !empty().
  [[nodiscard]] FelKey pop_min() {
    GF_EXPECTS(!heap_.empty());
    const FelKey top = heap_.front();
    const std::size_t n = heap_.size() - 1;
    if (n == 0) {
      heap_.pop_back();
      return top;
    }
    const FelKey last = heap_.back();
    heap_.pop_back();
    // Bottom-up deletion (Wegener): promote the min-child chain into the
    // root hole all the way to a leaf — branchlessly, the chain is fully
    // determined by the children — then sift the former last key up from
    // the leaf hole (it was a leaf itself, so it almost always stays
    // put).  This avoids the per-level "does `last` fit here?"
    // mispredicted branch of the classic sift-down.
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first = hole * kArity + 1;
      if (first + kArity <= n) {  // full node: branchless min of four
        const std::size_t b01 =
            heap_[first + 1] < heap_[first] ? first + 1 : first;
        const std::size_t b23 =
            heap_[first + 3] < heap_[first + 2] ? first + 3 : first + 2;
        const std::size_t best = heap_[b23] < heap_[b01] ? b23 : b01;
        heap_[hole] = heap_[best];
        hole = best;
      } else {
        if (first >= n) break;
        std::size_t best = first;
        for (std::size_t c = first + 1; c < n; ++c) {
          if (heap_[c] < heap_[best]) best = c;
        }
        heap_[hole] = heap_[best];
        hole = best;
      }
    }
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / kArity;
      if (!(last < heap_[parent])) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = last;
    return top;
  }

  /// The minimum key without removing it.  Precondition: !empty().
  [[nodiscard]] FelKey min_key() {
    GF_EXPECTS(!heap_.empty());
    return heap_.front();
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  void clear() noexcept { heap_.clear(); }

  /// Moves every key into `out` (appended, unspecified order) and
  /// empties the heap.  Capacity is retained for the un-spill round trip.
  void drain_into(std::vector<FelKey>& out) {
    out.insert(out.end(), heap_.begin(), heap_.end());
    heap_.clear();
  }

  /// Bulk-load from an unordered key set: Floyd heapify, O(n) instead of
  /// n× push.  The pop order is the total key order either way — layout
  /// differences are unobservable.
  void build_from(const std::vector<FelKey>& keys) {
    heap_.assign(keys.begin(), keys.end());
    if (heap_.size() < 2) return;
    for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }

 private:
  static constexpr std::size_t kArity = 4;
  static constexpr std::size_t kInitialCapacity = 4096;

  void sift_down(std::size_t hole) {
    const std::size_t n = heap_.size();
    const FelKey key = heap_[hole];
    for (;;) {
      const std::size_t first = hole * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t limit = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < limit; ++c) {
        if (heap_[c] < heap_[best]) best = c;
      }
      if (!(heap_[best] < key)) break;
      heap_[hole] = heap_[best];
      hole = best;
    }
    heap_[hole] = key;
  }

  std::vector<FelKey> heap_;
};

static_assert(Fel<HeapFel>);

}  // namespace gridfed::sim
