#pragma once
// FNV-1a 64-bit hashing, shared by hash-map keys (the auction policy's
// bid-cache shape key) and golden-digest test suites (tests/test_policy
// pins per-job outcomes to FNV digests of their field bytes).

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace gridfed::sim {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Folds `n` bytes into the running hash `h` (seed with kFnvOffsetBasis).
[[nodiscard]] inline std::uint64_t fnv1a(std::uint64_t h, const void* data,
                                         std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Folds one trivially copyable value's object bytes into `h`.
template <typename T>
[[nodiscard]] std::uint64_t fnv1a_mix(std::uint64_t h, T value) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  return fnv1a(h, bytes, sizeof(T));
}

}  // namespace gridfed::sim
