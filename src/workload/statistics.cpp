#include "workload/statistics.hpp"

#include <algorithm>
#include <ostream>
#include <set>

#include "sim/check.hpp"

namespace gridfed::workload {

TraceStatistics analyze_trace(const ResourceTrace& trace,
                              const cluster::ResourceSpec& spec,
                              sim::SimTime window) {
  TraceStatistics out;
  out.jobs = trace.jobs.size();
  if (trace.jobs.empty()) return out;

  std::set<std::uint32_t> users;
  stats::Accumulator gaps;
  double area = 0.0;
  sim::SimTime prev = trace.jobs.front().submit;
  for (const auto& j : trace.jobs) {
    out.runtime.add(j.runtime);
    out.processors.add(static_cast<double>(j.processors));
    out.max_processors = std::max(out.max_processors, j.processors);
    users.insert(j.user);
    area += static_cast<double>(j.processors) * j.runtime;
    if (&j != &trace.jobs.front()) gaps.add(j.submit - prev);
    prev = j.submit;
  }
  out.users = static_cast<std::uint32_t>(users.size());
  out.span = trace.jobs.back().submit - trace.jobs.front().submit;

  const sim::SimTime horizon = window > 0.0 ? window : out.span;
  if (horizon > 0.0 && spec.processors > 0) {
    out.offered_load =
        area / (static_cast<double>(spec.processors) * horizon);
  }
  if (gaps.count() > 1 && gaps.mean() > 0.0) {
    out.interarrival_cv2 =
        gaps.variance() / (gaps.mean() * gaps.mean());
  }
  return out;
}

void print_statistics(std::ostream& out, const TraceStatistics& stats,
                      const cluster::ResourceSpec& spec) {
  out << spec.name << ": " << stats.jobs << " jobs over " << stats.span
      << " s\n"
      << "  offered load " << 100.0 * stats.offered_load << "% of "
      << spec.processors << " processors\n"
      << "  runtime mean " << stats.runtime.mean() << " s (min "
      << stats.runtime.min() << ", max " << stats.runtime.max() << ")\n"
      << "  processors mean " << stats.processors.mean() << " (max "
      << stats.max_processors << ")\n"
      << "  interarrival cv^2 " << stats.interarrival_cv2 << ", "
      << stats.users << " users\n";
}

}  // namespace gridfed::workload
