#include "workload/calibration.hpp"

#include <cmath>

#include "sim/check.hpp"

namespace gridfed::workload {

TraceCalibration default_calibration(cluster::ResourceIndex catalog_idx) {
  // Columns: jobs, offered load, runtime sigma, burstiness (CV^2),
  // min/max processor exponent, users, zipf.
  // Loads follow Table 2 via util ~= offered * acceptance; dispersion and
  // burstiness differentiate resources that reject at low utilization.
  switch (catalog_idx) {
    case 0:  // CTC SP2: 512p, util 53.5%, accept 96.6%
      return {417, 0.56, 0.90, 1.4, 0, 7, 32, 1.1};
    case 1:  // KTH SP2: 100p, util 50.1%, accept 93.9%
      return {163, 0.565, 1.00, 1.2, 0, 5, 24, 1.1};
    case 2:  // LANL CM5: 1024p, util 47.1%, accept 83.7% — bursty trace
      return {215, 0.57, 1.50, 18.0, 4, 9, 32, 1.1};
    case 3:  // LANL Origin: 2048p, util 44.6%, accept 93.8%
      return {817, 0.47, 1.30, 8.0, 0, 7, 64, 1.1};
    case 4:  // NASA iPSC: 128p, util 62.3%, accept 100% — smooth trace
      return {535, 0.62, 0.20, 1.0, 0, 5, 24, 1.1};
    case 5:  // SDSC Par96: 416p, util 48.2%, accept 98.9%
      return {189, 0.50, 0.70, 3.0, 0, 6, 24, 1.1};
    case 6:  // SDSC Blue: 1152p, util 82.1%, accept 57.7% — saturated
      return {215, 1.70, 1.20, 8.0, 2, 8, 32, 1.1};
    case 7:  // SDSC SP2: 128p, util 79.5%, accept 50.5% — saturated
      return {111, 1.35, 1.00, 15.0, 0, 5, 24, 1.1};
    default:
      GF_EXPECTS(catalog_idx < 8);
      return {};
  }
}

double mean_pow2(std::uint32_t min_exp, std::uint32_t max_exp) {
  GF_EXPECTS(min_exp <= max_exp && max_exp < 31);
  double sum = 0.0;
  for (std::uint32_t e = min_exp; e <= max_exp; ++e) {
    sum += std::ldexp(1.0, static_cast<int>(e));
  }
  return sum / static_cast<double>(max_exp - min_exp + 1);
}

double target_mean_runtime(const TraceCalibration& cal,
                           const cluster::ResourceSpec& spec,
                           sim::SimTime window) {
  GF_EXPECTS(cal.jobs > 0 && window > 0.0);
  const double mean_procs = mean_pow2(cal.min_proc_exp, cal.max_proc_exp);
  return cal.offered_load * static_cast<double>(spec.processors) * window /
         (static_cast<double>(cal.jobs) * mean_procs);
}

}  // namespace gridfed::workload
