#pragma once
// Per-resource synthetic-trace calibration.  The Parallel Workloads Archive
// slices the paper used are not redistributable, so gridfed regenerates
// statistically equivalent two-day workloads.  For each Table 1 resource we
// pin the *observables the paper's conclusions rest on*:
//
//   * the exact two-day job count of Table 2;
//   * the offered load (fraction of cluster capacity requested), chosen so
//     that the independent-resource experiment reproduces Table 2's
//     utilization/acceptance split — under-loaded CTC/KTH/LANL/Par96,
//     saturated SDSC Blue/SP2;
//   * runtime dispersion (lognormal sigma) and arrival burstiness
//     (hyperexponential CV^2), which control how much queueing delay — and
//     therefore deadline-driven rejection — a given load produces (LANL
//     CM5 rejects 16% at only 47% utilization because its trace is bursty).
//
// Derivations and the paper-vs-measured comparison live in DESIGN.md §3
// and EXPERIMENTS.md.

#include <cstdint>

#include "cluster/resource.hpp"
#include "sim/types.hpp"

namespace gridfed::workload {

/// Tunable shape parameters for one resource's synthetic trace.
struct TraceCalibration {
  std::uint32_t jobs = 0;       ///< jobs in the window (Table 2 count)
  double offered_load = 0.5;    ///< sum(p*t) / (P * window)
  double runtime_sigma = 1.2;   ///< lognormal sigma (log space)
  double burstiness = 1.0;      ///< interarrival CV^2; 1 = Poisson
  std::uint32_t min_proc_exp = 0;  ///< smallest request = 2^min_proc_exp
  std::uint32_t max_proc_exp = 6;  ///< largest request  = 2^max_proc_exp
  std::uint32_t users = 32;     ///< local user population size
  double user_zipf_s = 1.1;     ///< job-to-user Zipf skew
};

/// Two simulated days — the window of every experiment in the paper.
inline constexpr sim::SimTime kTwoDays = 2.0 * 24.0 * 3600.0;

/// Calibration for Table 1 resource `catalog_idx` (0..7), tuned so the
/// Experiment 1 harness lands on Table 2's utilization/acceptance shape.
[[nodiscard]] TraceCalibration default_calibration(
    cluster::ResourceIndex catalog_idx);

/// Mean processors per job for uniform power-of-two requests in
/// [2^min_exp, 2^max_exp]: (2^{max+1} - 2^{min}) / (max - min + 1).
[[nodiscard]] double mean_pow2(std::uint32_t min_exp, std::uint32_t max_exp);

/// Mean runtime (s) that makes `cal` hit its offered load on `spec` over a
/// `window`-second trace: E[t] = load * P * window / (jobs * E[p]).
[[nodiscard]] double target_mean_runtime(const TraceCalibration& cal,
                                         const cluster::ResourceSpec& spec,
                                         sim::SimTime window);

}  // namespace gridfed::workload
