#pragma once
// Calibrated synthetic trace generation (the stand-in for the Parallel
// Workloads Archive slices — see workload/calibration.hpp for what is
// pinned and why).  Generation is deterministic in (master seed, resource
// name), so replicating resources for the Experiment 5 scaling study gives
// each replica an independent but reproducible workload.

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/resource.hpp"
#include "workload/calibration.hpp"
#include "workload/trace.hpp"

namespace gridfed::workload {

/// Generates one resource's two-day (or `window`-second) synthetic trace.
///
/// Construction:
///  * exactly `cal.jobs` arrivals; interarrival gaps are hyperexponential
///    with CV^2 = cal.burstiness, rescaled to span the window exactly;
///  * processor requests are uniform powers of two in
///    [2^min_proc_exp, 2^max_proc_exp], clamped to the cluster size;
///  * runtimes are lognormal(sigma = cal.runtime_sigma) and then scaled so
///    the total requested area sum(p*t) equals offered_load * P * window
///    exactly (removes sampling noise from the load calibration);
///  * each job is attributed to one of `cal.users` local users via a
///    Zipf(cal.user_zipf_s) draw.
[[nodiscard]] ResourceTrace generate_trace(const cluster::ResourceSpec& spec,
                                           cluster::ResourceIndex resource,
                                           const TraceCalibration& cal,
                                           sim::SimTime window,
                                           std::uint64_t master_seed);

/// Generates the whole federation's workload: one trace per spec, using
/// default_calibration(i % 8) — i.e. replicas of a Table 1 resource get
/// that resource's calibration with an independent random stream.
[[nodiscard]] std::vector<ResourceTrace> generate_federation_workload(
    std::span<const cluster::ResourceSpec> specs, sim::SimTime window,
    std::uint64_t master_seed);

}  // namespace gridfed::workload
