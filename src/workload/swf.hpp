#pragma once
// Standard Workload Format (SWF) parsing.  The paper's traces come from the
// Parallel Workloads Archive (www.cs.huji.ac.il/labs/parallel), which
// publishes them in SWF: one job per line, 18 whitespace-separated fields,
// ';' comment lines carrying header metadata.  gridfed parses the fields
// the experiments need (submit, runtime, processors, user) and exposes a
// windowing helper to cut the paper's two-day slices.
//
// The archive files are not redistributable with this repository; drop
// them next to the benches and pass --swf <file> to replay the genuine
// workload (see examples/trace_replay.cpp).  Without them the calibrated
// synthetic generator (workload/synthetic) stands in.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "workload/trace.hpp"

namespace gridfed::workload {

/// Parse failure (malformed line, unreadable file).
class SwfError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Options controlling SWF ingestion.
struct SwfOptions {
  /// Keep only jobs whose submit time falls in
  /// [window_start, window_start + window_length); <= 0 length keeps all.
  double window_start = 0.0;
  double window_length = 0.0;
  /// Rebase kept submit times so the first kept job arrives at this offset.
  bool rebase_to_zero = true;
  /// Clamp processor counts to this many (0 = no clamp); jobs larger than
  /// the cluster cannot be replayed on it.
  std::uint32_t max_processors = 0;
};

/// Parses an SWF stream into trace records.  Skips comment lines and jobs
/// with non-positive runtime or processor count (cancelled entries).
/// Throws SwfError on malformed job lines.
[[nodiscard]] ResourceTrace parse_swf(std::istream& in,
                                      cluster::ResourceIndex resource,
                                      const SwfOptions& opts = {});

/// Convenience file loader; throws SwfError if the file cannot be opened.
[[nodiscard]] ResourceTrace load_swf(const std::string& path,
                                     cluster::ResourceIndex resource,
                                     const SwfOptions& opts = {});

/// Serializes a trace to SWF (inverse of parse_swf for the fields gridfed
/// models; unknown fields are written as -1 per the SWF convention).
/// Useful for exporting calibrated synthetic traces to external tools.
/// `computer` goes into the header comment.
void write_swf(std::ostream& out, const ResourceTrace& trace,
               const std::string& computer = "gridfed synthetic");

/// Convenience file writer; throws SwfError if the file cannot be opened.
void save_swf(const std::string& path, const ResourceTrace& trace,
              const std::string& computer = "gridfed synthetic");

}  // namespace gridfed::workload
