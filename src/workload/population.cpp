#include "workload/population.hpp"

#include "sim/random.hpp"

namespace gridfed::workload {

cluster::Optimization PopulationProfile::preference(
    cluster::ResourceIndex resource, std::uint32_t user,
    std::uint64_t seed) const {
  // Deterministic point in [0, 100) for this user; stable across profiles.
  std::uint64_t state = seed ^ (static_cast<std::uint64_t>(resource) << 32) ^
                        (static_cast<std::uint64_t>(user) + 0x51ed2701ULL);
  const std::uint64_t draw = sim::splitmix64(state) % 10000;
  return draw < static_cast<std::uint64_t>(oft_percent) * 100
             ? cluster::Optimization::kTime
             : cluster::Optimization::kCost;
}

std::vector<PopulationProfile> standard_profiles() {
  std::vector<PopulationProfile> profiles;
  profiles.reserve(11);
  for (std::uint32_t oft = 0; oft <= 100; oft += 10) {
    profiles.push_back(PopulationProfile{oft});
  }
  return profiles;
}

void apply_profile(const PopulationProfile& profile, std::uint64_t seed,
                   std::vector<cluster::Job>& jobs) {
  for (auto& job : jobs) {
    job.opt = profile.preference(job.origin, job.user, seed);
  }
}

}  // namespace gridfed::workload
