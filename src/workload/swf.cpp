#include "workload/swf.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace gridfed::workload {

namespace {

// SWF field positions (1-based in the spec; 0-based here).
constexpr int kFieldSubmit = 1;
constexpr int kFieldRuntime = 3;
constexpr int kFieldAllocProcs = 4;
constexpr int kFieldReqProcs = 7;
constexpr int kFieldUser = 11;
constexpr int kFieldCount = 18;

}  // namespace

ResourceTrace parse_swf(std::istream& in, cluster::ResourceIndex resource,
                        const SwfOptions& opts) {
  ResourceTrace trace;
  trace.resource = resource;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Comment / header lines.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == ';') continue;

    std::istringstream fields(line);
    double value[kFieldCount];
    int parsed = 0;
    while (parsed < kFieldCount && (fields >> value[parsed])) ++parsed;
    if (parsed < kFieldUser + 1) {
      throw SwfError("swf: line " + std::to_string(line_no) + ": expected >= " +
                     std::to_string(kFieldUser + 1) + " fields, got " +
                     std::to_string(parsed));
    }

    TraceJob job;
    job.submit = value[kFieldSubmit];
    job.runtime = value[kFieldRuntime];
    // Allocated processors; fall back to the request when unknown (-1).
    double procs = value[kFieldAllocProcs];
    if (procs <= 0 && parsed > kFieldReqProcs) procs = value[kFieldReqProcs];
    const double user = value[kFieldUser];

    if (job.runtime <= 0.0 || procs <= 0.0) continue;  // cancelled / bogus
    job.processors = static_cast<std::uint32_t>(procs);
    if (opts.max_processors > 0) {
      job.processors = std::min(job.processors, opts.max_processors);
    }
    job.user = user >= 0 ? static_cast<std::uint32_t>(user) : 0;
    trace.jobs.push_back(job);
  }

  // Window the slice the experiment wants.
  if (opts.window_length > 0.0) {
    const double lo = opts.window_start;
    const double hi = opts.window_start + opts.window_length;
    std::erase_if(trace.jobs, [&](const TraceJob& j) {
      return j.submit < lo || j.submit >= hi;
    });
  }
  std::sort(trace.jobs.begin(), trace.jobs.end(),
            [](const TraceJob& a, const TraceJob& b) {
              return a.submit < b.submit;
            });
  if (opts.rebase_to_zero && !trace.jobs.empty()) {
    const double base = trace.jobs.front().submit;
    for (auto& j : trace.jobs) j.submit -= base;
  }
  return trace;
}

ResourceTrace load_swf(const std::string& path,
                       cluster::ResourceIndex resource,
                       const SwfOptions& opts) {
  std::ifstream in(path);
  if (!in) throw SwfError("swf: cannot open " + path);
  return parse_swf(in, resource, opts);
}

void write_swf(std::ostream& out, const ResourceTrace& trace,
               const std::string& computer) {
  out << "; Version: 2\n";
  out << ";   Computer: " << computer << "\n";
  out << ";   Note: written by gridfed (fields 1-5 and 12 populated)\n";
  std::size_t job_number = 1;
  for (const auto& j : trace.jobs) {
    // job submit wait runtime procs cpu mem reqprocs reqtime reqmem
    // status user group exe queue partition prev think
    out << job_number++ << ' ' << j.submit << ' ' << 0 << ' ' << j.runtime
        << ' ' << j.processors << " -1 -1 " << j.processors
        << " -1 -1 1 " << j.user << " -1 -1 -1 -1 -1 -1\n";
  }
}

void save_swf(const std::string& path, const ResourceTrace& trace,
              const std::string& computer) {
  std::ofstream out(path);
  if (!out) throw SwfError("swf: cannot open " + path + " for writing");
  write_swf(out, trace, computer);
}

}  // namespace gridfed::workload
