#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "sim/check.hpp"
#include "sim/distributions.hpp"
#include "sim/random.hpp"

namespace gridfed::workload {

namespace {

// Balanced-means two-phase hyperexponential with mean `m` and squared
// coefficient of variation `cv2` (>= 1).  cv2 == 1 degenerates to the
// exponential.
double sample_interarrival(sim::Rng& rng, double m, double cv2) {
  if (cv2 <= 1.0) return sim::sample_exponential(rng, 1.0 / m);
  const double p = 0.5 * (1.0 + std::sqrt((cv2 - 1.0) / (cv2 + 1.0)));
  const double l1 = 2.0 * p / m;
  const double l2 = 2.0 * (1.0 - p) / m;
  return sim::sample_hyperexponential(rng, p, l1, l2);
}

}  // namespace

ResourceTrace generate_trace(const cluster::ResourceSpec& spec,
                             cluster::ResourceIndex resource,
                             const TraceCalibration& cal, sim::SimTime window,
                             std::uint64_t master_seed) {
  GF_EXPECTS(spec.valid());
  GF_EXPECTS(cal.jobs > 0 && window > 0.0);
  GF_EXPECTS(cal.users > 0);

  sim::Rng rng = sim::Rng::stream(master_seed, spec.name);
  const sim::ZipfSampler user_sampler(cal.users, cal.user_zipf_s);

  ResourceTrace trace;
  trace.resource = resource;
  trace.jobs.resize(cal.jobs);

  // Arrival instants: gaps with the calibrated burstiness, rescaled so the
  // last arrival lands just inside the window.
  const double mean_gap = window / static_cast<double>(cal.jobs);
  double t = 0.0;
  for (auto& job : trace.jobs) {
    t += sample_interarrival(rng, mean_gap, cal.burstiness);
    job.submit = t;
  }
  const double span = trace.jobs.back().submit;
  GF_ENSURES(span > 0.0);
  const double time_scale =
      window * (static_cast<double>(cal.jobs) /
                static_cast<double>(cal.jobs + 1)) /
      span;
  for (auto& job : trace.jobs) job.submit *= time_scale;

  // Processor requests and raw runtimes.
  const double mean_runtime = target_mean_runtime(cal, spec, window);
  const double sigma = cal.runtime_sigma;
  const double mu_log = std::log(mean_runtime) - 0.5 * sigma * sigma;
  double area = 0.0;
  for (auto& job : trace.jobs) {
    job.processors =
        std::min(sim::sample_pow2(rng, cal.min_proc_exp, cal.max_proc_exp),
                 spec.processors);
    job.runtime = sim::sample_lognormal(rng, mu_log, sigma);
    job.user = static_cast<std::uint32_t>(user_sampler.sample(rng) - 1);
    area += static_cast<double>(job.processors) * job.runtime;
  }

  // Rescale runtimes so the offered area is exact (removes sampling noise
  // from the load calibration; relative job sizes are preserved).
  const double target_area = cal.offered_load *
                             static_cast<double>(spec.processors) * window;
  GF_ENSURES(area > 0.0);
  const double load_scale = target_area / area;
  for (auto& job : trace.jobs) job.runtime *= load_scale;

  GF_ENSURES(validate_trace(trace, spec));
  return trace;
}

std::vector<ResourceTrace> generate_federation_workload(
    std::span<const cluster::ResourceSpec> specs, sim::SimTime window,
    std::uint64_t master_seed) {
  std::vector<ResourceTrace> traces;
  traces.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto cal = default_calibration(
        static_cast<cluster::ResourceIndex>(i % 8));
    traces.push_back(generate_trace(specs[i],
                                    static_cast<cluster::ResourceIndex>(i),
                                    cal, window, master_seed));
  }
  return traces;
}

}  // namespace gridfed::workload
