#pragma once
// Workload traces.  A trace is the per-resource stream of parallel jobs the
// paper replays: each job has an arrival instant, a processor requirement,
// the measured runtime on its home cluster, and a submitting user.  Traces
// come either from real Standard-Workload-Format files (workload/swf) or
// from the calibrated synthetic generator (workload/synthetic).

#include <cstdint>
#include <vector>

#include "cluster/job.hpp"
#include "cluster/resource.hpp"
#include "sim/types.hpp"

namespace gridfed::workload {

/// One raw trace record: what the archive logs before any federation
/// semantics are attached.
struct TraceJob {
  sim::SimTime submit = 0.0;    ///< arrival instant (s from trace start)
  sim::SimTime runtime = 0.0;   ///< measured wall-clock runtime on origin (s)
  std::uint32_t processors = 1; ///< processors allocated
  std::uint32_t user = 0;       ///< submitting user id
};

/// The jobs of one resource, sorted by submit time.
struct ResourceTrace {
  cluster::ResourceIndex resource = 0;
  std::vector<TraceJob> jobs;
};

/// Fraction of a job's measured runtime attributed to network communication
/// (paper §3.1: "we artificially introduced the communication overhead
/// element as 10% of the total parallel job execution time").
inline constexpr double kDefaultCommFraction = 0.10;

/// Converts a raw trace record into a federation Job on `origin` cluster k:
/// runtime splits (1-comm_fraction) compute / comm_fraction network, giving
/// l = (1-f) * t * mu_k * p and alpha = f * t.  Budget/deadline are NOT set
/// here (see economy::fabricate_qos — Eqs. 7/8) so that the no-economy
/// experiments can use the same conversion.
[[nodiscard]] cluster::Job to_job(const TraceJob& raw, cluster::JobId id,
                                  cluster::ResourceIndex origin,
                                  const cluster::ResourceSpec& origin_spec,
                                  double comm_fraction = kDefaultCommFraction);

/// Checks a trace is well-formed: sorted by submit, positive runtimes,
/// processor counts within the cluster size.
[[nodiscard]] bool validate_trace(const ResourceTrace& trace,
                                  const cluster::ResourceSpec& spec);

}  // namespace gridfed::workload
