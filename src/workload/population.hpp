#pragma once
// User population profiles (Experiment 3).  The paper sweeps eleven
// populations: OFT = i%, OFC = (100-i)% for i = 0, 10, ..., 100.  gridfed
// assigns each *user* a stable optimization preference: user (k, j) draws a
// deterministic point h in [0, 100) from (seed, k, j); the user seeks OFT
// iff h < oft_percent.  The assignment is monotone in oft_percent — as the
// profile slides toward OFT, users flip from OFC to OFT one by one and
// never flip back — which keeps the sweep's series comparable point to
// point.

#include <cstdint>
#include <vector>

#include "cluster/job.hpp"
#include "cluster/resource.hpp"

namespace gridfed::workload {

/// One point of the population sweep.
struct PopulationProfile {
  /// Percentage of users seeking optimize-for-time, in [0, 100].
  std::uint32_t oft_percent = 0;

  /// Stable preference of user `user` at home cluster `resource`.
  [[nodiscard]] cluster::Optimization preference(
      cluster::ResourceIndex resource, std::uint32_t user,
      std::uint64_t seed) const;
};

/// The paper's eleven profiles: OFT = 0, 10, ..., 100.
[[nodiscard]] std::vector<PopulationProfile> standard_profiles();

/// Applies a profile to a batch of jobs in place (sets Job::opt from the
/// owning user's preference).
void apply_profile(const PopulationProfile& profile, std::uint64_t seed,
                   std::vector<cluster::Job>& jobs);

}  // namespace gridfed::workload
