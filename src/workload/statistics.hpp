#pragma once
// Trace statistics.  Summarizes the observable properties of a workload
// trace — the quantities the synthetic calibration pins and the numbers a
// user should inspect before trusting a replay (job count, offered load,
// runtime dispersion, interarrival burstiness, processor-size profile).

#include <iosfwd>

#include "cluster/resource.hpp"
#include "stats/accumulator.hpp"
#include "workload/trace.hpp"

namespace gridfed::workload {

/// Summary of one resource trace.
struct TraceStatistics {
  std::size_t jobs = 0;
  sim::SimTime span = 0.0;          ///< last submit - first submit
  double offered_load = 0.0;        ///< sum(p*t) / (P * window)
  double interarrival_cv2 = 0.0;    ///< burstiness (1 = Poisson-like)
  stats::Accumulator runtime;       ///< seconds
  stats::Accumulator processors;    ///< requested processors
  std::uint32_t max_processors = 0;
  std::uint32_t users = 0;          ///< distinct submitting users
};

/// Computes the summary; `window` is the load-normalization horizon (use
/// the experiment window; <= 0 uses the trace span).
[[nodiscard]] TraceStatistics analyze_trace(const ResourceTrace& trace,
                                            const cluster::ResourceSpec& spec,
                                            sim::SimTime window = 0.0);

/// Pretty one-block rendering (examples/diagnostics).
void print_statistics(std::ostream& out, const TraceStatistics& stats,
                      const cluster::ResourceSpec& spec);

}  // namespace gridfed::workload
