#include "workload/trace.hpp"

#include "sim/check.hpp"

namespace gridfed::workload {

cluster::Job to_job(const TraceJob& raw, cluster::JobId id,
                    cluster::ResourceIndex origin,
                    const cluster::ResourceSpec& origin_spec,
                    double comm_fraction) {
  GF_EXPECTS(comm_fraction >= 0.0 && comm_fraction < 1.0);
  GF_EXPECTS(raw.runtime >= 0.0);
  GF_EXPECTS(raw.processors > 0);

  cluster::Job job;
  job.id = id;
  job.origin = origin;
  job.user = raw.user;
  job.processors = raw.processors;
  job.submit = raw.submit;
  // Split measured wall time: (1-f) compute, f communication.  Compute MI
  // follows from Eq. 2: compute_time = l / (mu_k * p).
  const double compute_time = (1.0 - comm_fraction) * raw.runtime;
  job.length_mi = compute_time * origin_spec.mips *
                  static_cast<double>(raw.processors);
  job.comm_overhead = comm_fraction * raw.runtime;
  return job;
}

bool validate_trace(const ResourceTrace& trace,
                    const cluster::ResourceSpec& spec) {
  sim::SimTime last = -1.0;
  for (const auto& j : trace.jobs) {
    if (j.submit < last) return false;
    if (j.runtime <= 0.0) return false;
    if (j.processors == 0 || j.processors > spec.processors) return false;
    last = j.submit;
  }
  return true;
}

}  // namespace gridfed::workload
