#include "baselines/no_economy.hpp"

#include "core/experiment.hpp"

namespace gridfed::baselines {

core::FederationResult run_federation_no_economy(std::size_t n_resources,
                                                 std::uint64_t seed) {
  const auto config =
      core::make_config(core::SchedulingMode::kFederationNoEconomy, seed);
  return core::run_experiment(config, n_resources);
}

}  // namespace gridfed::baselines
