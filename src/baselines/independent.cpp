#include "baselines/independent.hpp"

#include "core/experiment.hpp"

namespace gridfed::baselines {

core::FederationResult run_independent(std::size_t n_resources,
                                       std::uint64_t seed) {
  const auto config =
      core::make_config(core::SchedulingMode::kIndependent, seed);
  return core::run_experiment(config, n_resources);
}

}  // namespace gridfed::baselines
