#include "baselines/broadcast.hpp"

#include <limits>
#include <memory>

#include "cluster/catalog.hpp"
#include "cluster/lrms.hpp"
#include "economy/cost_model.hpp"
#include "sim/check.hpp"
#include "sim/simulation.hpp"
#include "workload/synthetic.hpp"

namespace gridfed::baselines {

namespace {

/// In-process driver for the broadcast superscheduler.  One grid scheduler
/// (GS) per cluster; message exchange is synchronous (the SC'03 study also
/// abstracts latency away) but every query/reply/transfer is counted.
class BroadcastDriver {
 public:
  BroadcastDriver(const BroadcastConfig& config, std::size_t n_resources)
      : cfg_(config), specs_(cluster::replicated_specs(n_resources)) {
    result_.strategy = cfg_.strategy;
    result_.system_size = specs_.size();
    lrms_.reserve(specs_.size());
    volunteer_.assign(specs_.size(), false);
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      lrms_.push_back(std::make_unique<cluster::Lrms>(
          sim_, static_cast<sim::EntityId>(i), specs_[i],
          static_cast<cluster::ResourceIndex>(i)));
      lrms_.back()->set_completion_handler(
          [this](const cluster::CompletedJob& done) {
            result_.response_time.add(done.reservation.completion -
                                      done.job.submit);
            if (done.job.origin != done.executed_on) {
              // job-completion transfer home.
              result_.total_messages += 1;
            }
          });
    }
  }

  BroadcastResult run() {
    load_workload();
    arm_volunteer_scans();
    sim_.run();
    return result_;
  }

 private:
  [[nodiscard]] bool uses_volunteers() const noexcept {
    return cfg_.strategy != BroadcastStrategy::kSenderInitiated;
  }
  [[nodiscard]] bool uses_sender_broadcast() const noexcept {
    return cfg_.strategy != BroadcastStrategy::kReceiverInitiated;
  }

  void load_workload() {
    const auto traces = workload::generate_federation_workload(
        specs_, cfg_.window, cfg_.seed);
    cluster::JobId next_id = 1;
    for (const auto& trace : traces) {
      const auto& origin = specs_[trace.resource];
      for (const auto& raw : trace.jobs) {
        cluster::Job job =
            workload::to_job(raw, next_id++, trace.resource, origin);
        // Same fabricated deadline as the federation experiments so
        // acceptance is comparable (budget unused here).
        economy::fabricate_qos(job, origin,
                               economy::CostModel::kWallTime);
        sim_.schedule_at(job.submit, sim::EventPriority::kArrival,
                         [this, job] { on_arrival(job); });
      }
    }
  }

  void arm_volunteer_scans() {
    if (!uses_volunteers()) return;
    for (sim::SimTime t = cfg_.volunteer_period; t <= cfg_.window;
         t += cfg_.volunteer_period) {
      sim_.schedule_at(t, sim::EventPriority::kControl, [this] {
        for (std::size_t i = 0; i < lrms_.size(); ++i) {
          const bool below =
              lrms_[i]->instantaneous_load() < cfg_.volunteer_load_threshold;
          if (below && !volunteer_[i]) {
            // RUS broadcast to every other GS.
            result_.volunteer_messages += lrms_.size() - 1;
            result_.total_messages += lrms_.size() - 1;
          }
          volunteer_[i] = below;
        }
      });
    }
  }

  void on_arrival(const cluster::Job& job) {
    result_.total_jobs += 1;
    auto& home = *lrms_[job.origin];
    const auto& origin_spec = specs_[job.origin];

    // Local path: AWT below phi and deadline feasible.
    if (job.processors <= origin_spec.processors) {
      const sim::SimTime exec =
          cluster::execution_time(job, origin_spec, origin_spec);
      const sim::SimTime wait = home.expected_wait(job.processors, exec);
      const sim::SimTime est = home.estimate_completion(job, exec);
      if (wait <= cfg_.awt_threshold && est <= job.absolute_deadline()) {
        home.submit(job, exec);
        result_.accepted += 1;
        result_.msgs_per_job.add(0.0);
        return;
      }
    }
    migrate(job);
  }

  void migrate(const cluster::Job& job) {
    // Candidate set: everyone (S-I / Sy-I) or current volunteers (R-I).
    std::uint64_t query_messages = 0;
    double best_tc = std::numeric_limits<double>::infinity();
    double best_load = std::numeric_limits<double>::infinity();
    std::size_t best = specs_.size();
    const auto& origin_spec = specs_[job.origin];

    for (std::size_t m = 0; m < specs_.size(); ++m) {
      if (m == job.origin) continue;
      if (!uses_sender_broadcast() && !volunteer_[m]) continue;
      query_messages += 2;  // demand query + AWT/ERT/RUS reply
      if (job.processors > specs_[m].processors) continue;
      const sim::SimTime ert =
          cluster::execution_time(job, origin_spec, specs_[m]);
      const sim::SimTime awt = lrms_[m]->expected_wait(job.processors, ert);
      const double tc = awt + ert;  // turnaround cost
      const double rus = lrms_[m]->instantaneous_load();
      if (tc < best_tc || (tc == best_tc && rus < best_load)) {
        best_tc = tc;
        best_load = rus;
        best = m;
      }
    }
    result_.total_messages += query_messages;

    // Also consider keeping the job at home (queue locally despite AWT)
    // when the home can still make the deadline and no better site exists.
    bool placed = false;
    if (best < specs_.size()) {
      const sim::SimTime ert =
          cluster::execution_time(job, origin_spec, specs_[best]);
      const sim::SimTime est = lrms_[best]->estimate_completion(job, ert);
      if (est <= job.absolute_deadline()) {
        lrms_[best]->submit(job, ert);
        result_.total_messages += 1;  // the job transfer
        result_.migrated += 1;
        result_.accepted += 1;
        result_.msgs_per_job.add(static_cast<double>(query_messages + 2));
        placed = true;
      }
    }
    if (!placed && job.processors <= origin_spec.processors) {
      const sim::SimTime exec =
          cluster::execution_time(job, origin_spec, origin_spec);
      const sim::SimTime est =
          lrms_[job.origin]->estimate_completion(job, exec);
      if (est <= job.absolute_deadline()) {
        lrms_[job.origin]->submit(job, exec);
        result_.accepted += 1;
        result_.msgs_per_job.add(static_cast<double>(query_messages));
        placed = true;
      }
    }
    if (!placed) {
      result_.rejected += 1;
      result_.msgs_per_job.add(static_cast<double>(query_messages));
    }
  }

  BroadcastConfig cfg_;
  std::vector<cluster::ResourceSpec> specs_;
  sim::Simulation sim_;
  std::vector<std::unique_ptr<cluster::Lrms>> lrms_;
  std::vector<bool> volunteer_;
  BroadcastResult result_;
};

}  // namespace

BroadcastResult run_broadcast(const BroadcastConfig& config,
                              std::size_t n_resources) {
  GF_EXPECTS(n_resources > 0);
  return BroadcastDriver(config, n_resources).run();
}

}  // namespace gridfed::baselines
