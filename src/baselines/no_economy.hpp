#pragma once
// Experiment 2 baseline — federation without economy.  Jobs run locally
// when the deadline allows; otherwise the GFA walks the federation in
// decreasing order of computational speed (no prices, no budgets) and the
// first cluster that can honour the deadline takes the job.  Table 3 and
// Fig 2 compare this against Experiment 1.  The walk itself lives in
// policy::NoEconomyPolicy (policy/) — this driver only selects it via
// SchedulingMode::kFederationNoEconomy.

#include <cstdint>

#include "core/result.hpp"

namespace gridfed::baselines {

/// Runs the paper's Experiment 2 over the calibrated synthetic workload.
[[nodiscard]] core::FederationResult run_federation_no_economy(
    std::size_t n_resources = 8,
    std::uint64_t seed = core::FederationConfig{}.seed);

}  // namespace gridfed::baselines
