#pragma once
// Experiment 1 baseline — independent resources.  Every cluster processes
// only its own workload; a job whose deadline the local LRMS cannot honour
// is rejected.  This is the control experiment Table 2 reports and the
// reference all federation gains are measured against.  The mode's
// scheduling brain is policy::IndependentPolicy (policy/) — this driver
// only selects it via SchedulingMode::kIndependent.

#include <cstdint>

#include "core/result.hpp"

namespace gridfed::baselines {

/// Runs the paper's Experiment 1 over the calibrated synthetic workload.
[[nodiscard]] core::FederationResult run_independent(
    std::size_t n_resources = 8,
    std::uint64_t seed = core::FederationConfig{}.seed);

}  // namespace gridfed::baselines
