#pragma once
// NASA-superscheduler baseline (Shan, Oliker & Biswas, SC'03) — the
// broadcast-based job-migration algorithms the paper's related-work section
// contrasts Grid-Federation against (§4):
//
//  * Sender-Initiated (S-I): when the local average wait time (AWT) for a
//    job exceeds a threshold phi, the grid scheduler broadcasts a resource
//    demand query to *every* other scheduler, collects AWT+ERT replies,
//    and migrates the job to the minimum-turnaround-cost site.
//  * Receiver-Initiated (R-I): every sigma seconds, a scheduler whose
//    resource utilization status (RUS) is below delta broadcasts itself as
//    a volunteer; senders then run the S-I query against the current
//    volunteer set only.
//  * Symmetrically-Initiated (Sy-I): both behaviours at once.
//
// The point of the comparison is message complexity: broadcast scheduling
// costs Theta(n) messages per migration (plus Theta(n) periodic volunteer
// floods for R-I/Sy-I), whereas Grid-Federation's directory walk costs
// O(negotiations).  bench_ablation_broadcast reproduces that contrast on
// identical workloads.  For a fair acceptance comparison the baseline
// honours the same fabricated deadlines: a migration target must still
// guarantee completion by s+d, and infeasible jobs are dropped.

#include <cstdint>
#include <vector>

#include "core/result.hpp"
#include "sim/types.hpp"

namespace gridfed::baselines {

/// Migration strategy of the broadcast superscheduler.
enum class BroadcastStrategy : std::uint8_t {
  kSenderInitiated,
  kReceiverInitiated,
  kSymmetric,
};

[[nodiscard]] constexpr const char* to_string(BroadcastStrategy s) noexcept {
  switch (s) {
    case BroadcastStrategy::kSenderInitiated:
      return "sender-initiated";
    case BroadcastStrategy::kReceiverInitiated:
      return "receiver-initiated";
    case BroadcastStrategy::kSymmetric:
      return "symmetric";
  }
  return "?";
}

/// Baseline tuning knobs (defaults follow the SC'03 description's spirit).
struct BroadcastConfig {
  BroadcastStrategy strategy = BroadcastStrategy::kSenderInitiated;
  /// phi: a job migrates when its local expected wait exceeds this many
  /// seconds OR the local cluster cannot honour its deadline.
  sim::SimTime awt_threshold = 0.0;
  /// sigma: volunteer-check period (R-I / Sy-I).
  sim::SimTime volunteer_period = 600.0;
  /// delta: a scheduler volunteers when its instantaneous load is below
  /// this fraction.
  double volunteer_load_threshold = 0.5;
  sim::SimTime window = 172800.0;
  std::uint64_t seed = core::FederationConfig{}.seed;
};

/// Per-run summary of the broadcast baseline (message complexity is the
/// comparison of interest; job accounting mirrors FederationResult).
struct BroadcastResult {
  BroadcastStrategy strategy = BroadcastStrategy::kSenderInitiated;
  std::size_t system_size = 0;
  std::uint64_t total_jobs = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t migrated = 0;
  std::uint64_t total_messages = 0;      ///< queries + replies + transfers
  std::uint64_t volunteer_messages = 0;  ///< R-I/Sy-I periodic floods
  stats::Accumulator msgs_per_job;
  stats::Accumulator response_time;

  [[nodiscard]] double acceptance_pct() const noexcept {
    return total_jobs ? 100.0 * static_cast<double>(accepted) /
                            static_cast<double>(total_jobs)
                      : 0.0;
  }
};

/// Runs the broadcast superscheduler over the same calibrated synthetic
/// workload the Grid-Federation experiments use.
[[nodiscard]] BroadcastResult run_broadcast(const BroadcastConfig& config,
                                            std::size_t n_resources = 8);

}  // namespace gridfed::baselines
