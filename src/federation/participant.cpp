#include "federation/participant.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace gridfed::federation {

ParticipantRegistry::ParticipantRegistry(std::size_t n_clusters) {
  GF_EXPECTS(n_clusters > 0 && n_clusters < kCoalitionBase);
  identity_.resize(n_clusters);
  participant_of_.resize(n_clusters);
  for (std::size_t i = 0; i < n_clusters; ++i) {
    const auto index = static_cast<cluster::ResourceIndex>(i);
    identity_[i] = index;
    participant_of_[i] = ParticipantId{index};
  }
}

ParticipantId ParticipantRegistry::register_coalition(
    std::vector<cluster::ResourceIndex> members,
    cluster::ResourceIndex representative) {
  GF_EXPECTS(members.size() >= 2);
  std::sort(members.begin(), members.end());
  GF_EXPECTS(std::adjacent_find(members.begin(), members.end()) ==
             members.end());
  GF_EXPECTS(std::find(members.begin(), members.end(), representative) !=
             members.end());
  const ParticipantId id{static_cast<cluster::ResourceIndex>(
      kCoalitionBase + coalitions_.size())};
  for (const cluster::ResourceIndex member : members) {
    GF_EXPECTS(member < participant_of_.size());
    GF_EXPECTS(!participant_of_[member].is_coalition());  // joins at most one
    participant_of_[member] = id;
  }
  coalitions_.push_back(Coalition{std::move(members), representative});
  return id;
}

void ParticipantRegistry::remove_member(ParticipantId id,
                                        cluster::ResourceIndex member) {
  GF_EXPECTS(id.is_coalition());
  const std::size_t slot = id.value - kCoalitionBase;
  GF_EXPECTS(slot < coalitions_.size());
  auto& members = coalitions_[slot].members;
  const auto it = std::find(members.begin(), members.end(), member);
  GF_EXPECTS(it != members.end());
  GF_EXPECTS(members.size() >= 2);  // a coalition never empties
  members.erase(it);
  participant_of_[member] = ParticipantId{member};
}

void ParticipantRegistry::add_member(ParticipantId id,
                                     cluster::ResourceIndex member) {
  GF_EXPECTS(id.is_coalition());
  GF_EXPECTS(member < participant_of_.size());
  GF_EXPECTS(!participant_of_[member].is_coalition());
  const std::size_t slot = id.value - kCoalitionBase;
  GF_EXPECTS(slot < coalitions_.size());
  auto& members = coalitions_[slot].members;
  members.insert(std::lower_bound(members.begin(), members.end(), member),
                 member);
  participant_of_[member] = id;
}

void ParticipantRegistry::set_representative(ParticipantId id,
                                             cluster::ResourceIndex member) {
  GF_EXPECTS(id.is_coalition());
  const std::size_t slot = id.value - kCoalitionBase;
  GF_EXPECTS(slot < coalitions_.size());
  const auto& members = coalitions_[slot].members;
  GF_EXPECTS(std::find(members.begin(), members.end(), member) !=
             members.end());
  coalitions_[slot].representative = member;
}

ParticipantId ParticipantRegistry::participant_of(
    cluster::ResourceIndex resource) const {
  GF_EXPECTS(resource < participant_of_.size());
  return participant_of_[resource];
}

cluster::ResourceIndex ParticipantRegistry::representative(
    ParticipantId id) const {
  if (!id.is_coalition()) return id.cluster();
  const std::size_t slot = id.value - kCoalitionBase;
  GF_EXPECTS(slot < coalitions_.size());
  return coalitions_[slot].representative;
}

std::span<const cluster::ResourceIndex> ParticipantRegistry::members(
    ParticipantId id) const {
  if (!id.is_coalition()) {
    GF_EXPECTS(id.cluster() < identity_.size());
    return {identity_.data() + id.cluster(), 1};
  }
  const std::size_t slot = id.value - kCoalitionBase;
  GF_EXPECTS(slot < coalitions_.size());
  return coalitions_[slot].members;
}

std::size_t ParticipantRegistry::participants() const noexcept {
  std::size_t grouped = 0;
  for (const Coalition& c : coalitions_) grouped += c.members.size();
  return identity_.size() - grouped + coalitions_.size();
}

}  // namespace gridfed::federation
