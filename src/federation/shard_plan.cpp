#include "federation/shard_plan.hpp"

#include <algorithm>
#include <numeric>

#include "sim/check.hpp"

namespace gridfed::federation {

ShardPlan build_shard_plan(std::span<const std::uint64_t> ring_keys,
                           std::uint32_t block, std::uint32_t max_shards) {
  GF_EXPECTS(block >= 1);
  const std::size_t n = ring_keys.size();
  ShardPlan plan;
  plan.shard_of.assign(n, 0);
  if (n == 0 || max_shards < 2) return plan;

  // Ring order with the index tie-break — identical to coalition
  // formation and the overlay heap layout, so block boundaries coincide
  // with coalition bucket boundaries exactly.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (ring_keys[a] != ring_keys[b]) {
                return ring_keys[a] < ring_keys[b];
              }
              return a < b;
            });

  const std::size_t blocks = (n + block - 1) / block;
  const std::size_t shards =
      std::min<std::size_t>(max_shards, blocks);
  if (shards < 2) return plan;

  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t b = pos / block;
    // Contiguous, near-even deal: block b -> shard floor(b * S / B).
    const std::size_t s = b * shards / blocks;
    plan.shard_of[order[pos]] = static_cast<std::uint32_t>(s);
  }
  plan.shards = static_cast<std::uint32_t>(shards);
  return plan;
}

}  // namespace gridfed::federation
