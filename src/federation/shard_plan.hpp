#pragma once
// Partition of the federation's clusters across the parallel kernel's
// worker shards (sim/parallel.hpp).  The partition is built over the
// SAME ring order as coalition formation and the overlay tree layout:
// sites sort by (ring_hash(name), index) and consecutive runs of
// `block` sites — exactly the coalition buckets — are kept whole, so a
// coalition's representative and members always land on one shard and
// the manager's member_bid / member_admit fan-out stays shard-local.
// Blocks are then dealt to shards contiguously and near-evenly.
//
// The plan is a pure function of (ring keys, block, max_shards): it
// does not depend on which worker executes what, which is one of the
// pillars of the kernel's thread-count-invariant outcomes.

#include <cstdint>
#include <span>
#include <vector>

namespace gridfed::federation {

/// Site → shard assignment for one parallel run.
struct ShardPlan {
  std::uint32_t shards = 0;            ///< worker lanes (0 = not viable)
  std::vector<std::uint32_t> shard_of; ///< per site index
};

/// Builds the ring-ordered, block-aligned partition described above.
/// `ring_keys[i]` is overlay::ring_hash of site i's name; `block` >= 1
/// is the indivisible run length (the coalition bucket_size, or 1 when
/// coalitions are off); `max_shards` caps the shard count (the
/// configured worker-thread count).  The returned plan has
/// shards == min(max_shards, number of blocks); callers should fall
/// back to the sequential engine when shards < 2.
[[nodiscard]] ShardPlan build_shard_plan(
    std::span<const std::uint64_t> ring_keys, std::uint32_t block,
    std::uint32_t max_shards);

}  // namespace gridfed::federation
