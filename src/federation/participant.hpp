#pragma once
// The participant identity layer.  Everywhere below this header a market
// actor used to BE a cluster: `market::Bid::bidder`, the auction book's
// solicited set, the award target, the GridBank settlement beneficiary —
// all raw cluster::ResourceIndex.  The coalition extension (Guazzone et
// al.-style cooperative groups that bid as one and split the surplus)
// needs an actor that is *either* a single cluster *or* a registered
// group of clusters, so this header carves that seam out:
//
//  * a ParticipantId names one market participant.  Ids below
//    kCoalitionBase are *singletons* and equal the cluster's
//    ResourceIndex bit-for-bit — which is what keeps the solo path
//    (no coalitions registered) bit-identical to the pre-participant
//    code: every ordering, tie-break and hash that used to see a
//    ResourceIndex sees the same integer through the ParticipantId.
//  * a ParticipantRegistry maps clusters to their participant and a
//    participant to its members and its *representative* — the member
//    cluster that speaks for the group on the wire (group-addressed
//    dissemination delivers once to the representative; the intra-
//    coalition fan-out rides cheap local links).
//
// ParticipantId converts implicitly FROM a ResourceIndex (a cluster is
// always a participant) but never back: code that needs a wire address
// must go through ParticipantRegistry::representative(), which is
// exactly where the group-addressing decision lives.

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/resource.hpp"

namespace gridfed::federation {

/// Coalition ids live in the top half of the 32-bit space so they can
/// never collide with a cluster index (a federation of 2^31 clusters is
/// far beyond any simulated run).
inline constexpr std::uint32_t kCoalitionBase = 0x8000'0000u;

/// One market participant: a singleton cluster (value == its
/// ResourceIndex) or a registered coalition (value >= kCoalitionBase).
struct ParticipantId {
  std::uint32_t value = static_cast<std::uint32_t>(-1);

  constexpr ParticipantId() = default;
  /// A cluster is always a participant (its singleton).  Implicit by
  /// design: the solo path flows ResourceIndex into the market layer
  /// unchanged, preserving bit-identical ordering and tie-breaking.
  constexpr ParticipantId(cluster::ResourceIndex cluster)  // NOLINT
      : value(cluster) {}

  [[nodiscard]] constexpr bool operator==(const ParticipantId&) const =
      default;
  [[nodiscard]] constexpr auto operator<=>(const ParticipantId&) const =
      default;

  /// True for a registered coalition id (never for a singleton or the
  /// no-participant sentinel).
  [[nodiscard]] constexpr bool is_coalition() const noexcept {
    return value >= kCoalitionBase &&
           value != static_cast<std::uint32_t>(-1);
  }
  /// The cluster of a singleton id.  Precondition: !is_coalition().
  [[nodiscard]] constexpr cluster::ResourceIndex cluster() const noexcept {
    return static_cast<cluster::ResourceIndex>(value);
  }
};

/// Sentinel mirroring cluster::kNoResource (and equal to its singleton,
/// so a defaulted "no cluster" flows through unchanged).
inline constexpr ParticipantId kNoParticipant{};

/// Who participates in the market: every cluster starts as its own
/// singleton; register_coalition() groups clusters under one id.  The
/// grouping is quasi-static — it only changes through the membership
/// layer's churn hooks (remove_member/add_member/set_representative),
/// never mid-protocol on its own.
class ParticipantRegistry {
 public:
  explicit ParticipantRegistry(std::size_t n_clusters);

  /// Groups `members` (distinct, previously-singleton clusters) under a
  /// fresh coalition id with `representative` (one of the members)
  /// speaking for it on the wire.  Returns the new id.
  ParticipantId register_coalition(std::vector<cluster::ResourceIndex> members,
                                   cluster::ResourceIndex representative);

  // -- membership churn ---------------------------------------------------
  /// Removes `member` from coalition `id`; the member reverts to its
  /// singleton.  Precondition: the coalition has at least one OTHER
  /// member — a coalition never empties (callers leave the last member
  /// in place; an all-departed group is never solicited anyway).  A
  /// removed representative must be replaced via set_representative()
  /// before the group's next wire interaction.
  void remove_member(ParticipantId id, cluster::ResourceIndex member);
  /// Re-admits `member` (currently a singleton) into coalition `id`,
  /// keeping ascending member order.
  void add_member(ParticipantId id, cluster::ResourceIndex member);
  /// Re-points the coalition's wire representative (must be a member).
  void set_representative(ParticipantId id, cluster::ResourceIndex member);

  /// The participant `resource` belongs to (its singleton when it joined
  /// no coalition).
  [[nodiscard]] ParticipantId participant_of(
      cluster::ResourceIndex resource) const;

  /// The member cluster addressed on the wire for `id` (a singleton
  /// represents itself).
  [[nodiscard]] cluster::ResourceIndex representative(ParticipantId id) const;

  /// Member clusters of `id`, ascending index order (a singleton's span
  /// is itself).
  [[nodiscard]] std::span<const cluster::ResourceIndex> members(
      ParticipantId id) const;

  /// True when `resource` represents its participant (always true for
  /// singletons).
  [[nodiscard]] bool is_representative(cluster::ResourceIndex resource) const {
    return representative(participant_of(resource)) == resource;
  }

  [[nodiscard]] std::size_t clusters() const noexcept {
    return identity_.size();
  }
  [[nodiscard]] std::size_t coalitions() const noexcept {
    return coalitions_.size();
  }
  /// Distinct market participants: singletons still on their own plus
  /// the registered coalitions.
  [[nodiscard]] std::size_t participants() const noexcept;

 private:
  struct Coalition {
    std::vector<cluster::ResourceIndex> members;  // ascending index
    cluster::ResourceIndex representative = cluster::kNoResource;
  };

  /// identity_[r] == r; members() of a singleton returns a 1-span into it.
  std::vector<cluster::ResourceIndex> identity_;
  std::vector<ParticipantId> participant_of_;  // by cluster
  std::vector<Coalition> coalitions_;
};

}  // namespace gridfed::federation
