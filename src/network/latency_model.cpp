#include "network/latency_model.hpp"

#include <algorithm>
#include <cmath>

#include "sim/check.hpp"
#include "sim/random.hpp"

namespace gridfed::network {

LatencyModel::LatencyModel(const NetworkConfig& config,
                           const std::vector<cluster::ResourceSpec>& specs)
    : cfg_(config) {
  GF_EXPECTS(!specs.empty());
  GF_EXPECTS(cfg_.base_latency >= 0.0 && cfg_.diameter >= 0.0);
  GF_EXPECTS(cfg_.wan_efficiency > 0.0 && cfg_.wan_efficiency <= 1.0);
  gamma_.reserve(specs.size());
  x_.reserve(specs.size());
  y_.reserve(specs.size());
  for (const auto& spec : specs) {
    gamma_.push_back(spec.bandwidth);
    // Deterministic placement: each site's coordinates derive from its
    // name, so replicas land at distinct points and runs are reproducible.
    sim::Rng rng = sim::Rng::stream(cfg_.seed, spec.name);
    x_.push_back(rng.uniform01());
    y_.push_back(rng.uniform01());
  }
}

sim::SimTime LatencyModel::latency(cluster::ResourceIndex from,
                                   cluster::ResourceIndex to) const {
  GF_EXPECTS(from < gamma_.size() && to < gamma_.size());
  if (from == to) return 0.0;
  switch (cfg_.kind) {
    case LatencyKind::kConstant:
      return cfg_.base_latency;
    case LatencyKind::kCoordinates: {
      const double dx = x_[from] - x_[to];
      const double dy = y_[from] - y_[to];
      return cfg_.base_latency + cfg_.diameter * std::sqrt(dx * dx + dy * dy);
    }
  }
  return cfg_.base_latency;
}

sim::SimTime LatencyModel::transfer_time(cluster::ResourceIndex from,
                                         cluster::ResourceIndex to,
                                         double gigabits) const {
  GF_EXPECTS(gigabits >= 0.0);
  if (from == to) return 0.0;
  const double bottleneck =
      cfg_.wan_efficiency * std::min(gamma_[from], gamma_[to]);
  GF_ENSURES(bottleneck > 0.0);
  return latency(from, to) + gigabits / bottleneck;
}

sim::SimTime LatencyModel::control_delay(cluster::ResourceIndex from,
                                         cluster::ResourceIndex to,
                                         std::uint64_t bytes) const {
  if (from == to) return 0.0;
  const double gigabits = static_cast<double>(bytes) * 8.0e-9;
  return transfer_time(from, to, gigabits);
}

sim::SimTime LatencyModel::max_latency() const {
  sim::SimTime worst = 0.0;
  for (cluster::ResourceIndex a = 0; a < gamma_.size(); ++a) {
    for (cluster::ResourceIndex b = 0; b < gamma_.size(); ++b) {
      worst = std::max(worst, latency(a, b));
    }
  }
  return worst;
}

sim::SimTime LatencyModel::min_latency() const {
  if (gamma_.size() < 2) return 0.0;
  if (cfg_.kind == LatencyKind::kConstant) return cfg_.base_latency;
  sim::SimTime best = sim::kTimeInfinity;
  for (cluster::ResourceIndex a = 0; a < gamma_.size(); ++a) {
    for (cluster::ResourceIndex b = a + 1; b < gamma_.size(); ++b) {
      best = std::min(best, latency(a, b));
    }
  }
  return best;
}

}  // namespace gridfed::network
