#pragma once
// Wide-area network model.  The paper treats inter-GFA messaging as free of
// latency and job payloads as instantaneous; real federations are coupled
// over the Internet (Fig. 1), where control messages see per-pair latency
// and a migrated job must ship Gamma = alpha * gamma_k gigabits of input
// data (Eq. 1) through the slower of the two sites' access links.  This
// module supplies that substrate:
//
//  * control-plane latency: constant, or synthetic-coordinate (each site
//    gets a deterministic point in a 2-D latency space; pairwise latency
//    is proportional to distance — the classic network-coordinates
//    abstraction);
//  * data-plane transfer time for a payload of known size over the
//    bottleneck of the two endpoints' NIC bandwidths.
//
// Federation uses it when config.network != nullopt; with the default
// (disabled) the paper's zero-latency assumption applies.

#include <cstdint>
#include <vector>

#include "cluster/resource.hpp"
#include "sim/types.hpp"

namespace gridfed::network {

/// How control-plane latency between two sites is derived.
enum class LatencyKind : std::uint8_t {
  kConstant,     ///< every pair: base_latency
  kCoordinates,  ///< per-pair: base + scale * 2-D coordinate distance
};

/// Model parameters.
struct NetworkConfig {
  LatencyKind kind = LatencyKind::kConstant;
  sim::SimTime base_latency = 0.05;  ///< seconds (one way)
  /// kCoordinates: latency = base + diameter * distance, with sites placed
  /// deterministically (by name) in the unit square.
  sim::SimTime diameter = 0.25;
  /// Data-plane efficiency: fraction of the bottleneck NIC bandwidth a
  /// WAN transfer actually achieves.
  double wan_efficiency = 0.25;
  std::uint64_t seed = 0x1a7e9c7ULL;  ///< placement seed (kCoordinates)
};

/// Deterministic per-pair latency + transfer-time oracle.
class LatencyModel {
 public:
  LatencyModel(const NetworkConfig& config,
               const std::vector<cluster::ResourceSpec>& specs);

  /// One-way control-message latency between two sites (0 for self).
  [[nodiscard]] sim::SimTime latency(cluster::ResourceIndex from,
                                     cluster::ResourceIndex to) const;

  /// Time to ship `gigabits` of payload from `from` to `to`: latency plus
  /// gigabits / (wan_efficiency * min(gamma_from, gamma_to)).
  [[nodiscard]] sim::SimTime transfer_time(cluster::ResourceIndex from,
                                           cluster::ResourceIndex to,
                                           double gigabits) const;

  /// One-way delay of a control message of `bytes` serialized size:
  /// per-pair latency plus the payload's transmission time over the
  /// bottleneck access link.  The seed charged every control message
  /// pure latency, so a 40-job batched solicitation cost exactly as
  /// much wire time as a 64-byte reply; this is the honest size-aware
  /// costing for batched and arena-backed messages.
  [[nodiscard]] sim::SimTime control_delay(cluster::ResourceIndex from,
                                           cluster::ResourceIndex to,
                                           std::uint64_t bytes) const;

  [[nodiscard]] std::size_t sites() const noexcept { return gamma_.size(); }
  [[nodiscard]] const NetworkConfig& config() const noexcept { return cfg_; }

  /// Largest pairwise latency (diagnostics; bounds timeout settings).
  [[nodiscard]] sim::SimTime max_latency() const;

  /// Smallest pairwise latency over distinct sites.  Every delay this
  /// model produces — control_delay and transfer_time alike — is
  /// latency(from, to) plus a non-negative transmission term, so this is
  /// a hard floor on cross-site delivery delay: the conservative-parallel
  /// kernel's lookahead (see sim/parallel.hpp).
  [[nodiscard]] sim::SimTime min_latency() const;

 private:
  NetworkConfig cfg_;
  std::vector<double> gamma_;  // per-site NIC bandwidth (Gb/s)
  std::vector<double> x_, y_;  // kCoordinates placement
};

}  // namespace gridfed::network
