#include "policy/no_economy_policy.hpp"

#include <utility>

namespace gridfed::policy {

void NoEconomyPolicy::schedule(core::Pending p) {
  // Local first: only at the job's first touch (a resumed walk already
  // found the local queue unable to honour the deadline).
  if (p.next_rank == 1 && p.negotiations == 0 &&
      ctx_.local_deadline_ok(p.job)) {
    ctx_.execute_here(std::move(p), -1.0);
    return;
  }
  const auto& cfg = ctx_.config();
  auto& dir = ctx_.directory();
  while (true) {
    const auto quote =
        cfg.use_load_hints
            ? dir.query_filtered(directory::OrderBy::kFastest, p.next_rank,
                                 cfg.load_hint_threshold)
            : dir.query(directory::OrderBy::kFastest, p.next_rank);
    if (!quote) {
      ctx_.reject(std::move(p));
      return;
    }
    ++p.next_rank;
    if (quote->resource == ctx_.self()) continue;  // local already checked
    if (quote->processors < p.job.processors) continue;  // statically too small
    // Dynamic feasibility needs the remote queue: negotiate.
    ctx_.send_negotiate(std::move(p), quote->resource);
    return;  // resume in the engine's reply handler (or the timeout)
  }
}

}  // namespace gridfed::policy
