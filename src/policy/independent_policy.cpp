#include "policy/independent_policy.hpp"

#include <utility>

namespace gridfed::policy {

void IndependentPolicy::schedule(core::Pending p) {
  if (ctx_.local_deadline_ok(p.job)) {
    ctx_.execute_here(std::move(p), -1.0);
  } else {
    ctx_.reject(std::move(p));
  }
}

}  // namespace gridfed::policy
