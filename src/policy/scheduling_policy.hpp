#pragma once
// The pluggable scheduling-policy layer.  The paper's DBC algorithm
// (§2.2) and the market extension's reverse auction are two instances of
// one negotiation skeleton — rank candidates, enquire, admit, fall back —
// and this layer makes the variable part (candidate ranking, admission
// scoring, fallback chaining) a swappable component, as mechanism-design
// treatments of federated scheduling assume it to be (Xie et al.'s
// mechanism-driven optimization, Guazzone et al.'s coalition formation).
//
// Division of labour:
//
//  * the GFA (core/gfa.hpp) stays the *protocol engine*: it routes
//    messages, parks in-flight enquiries, arms timeouts, holds remote
//    reservations, and keeps the ledger honest;
//  * a SchedulingPolicy decides *where a job goes next*: which directory
//    order to walk, which candidates to skip, when to run locally, when to
//    open an auction, and what to do when every avenue is exhausted.
//
// The engine hands a policy its services through SchedulerContext and
// never inspects mode-specific state: policies stash per-job extension
// state behind Pending::policy_state (core/pending.hpp).

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "cluster/job.hpp"
#include "cluster/lrms.hpp"
#include "core/config.hpp"
#include "core/message.hpp"
#include "core/pending.hpp"
#include "directory/federation_directory.hpp"
#include "federation/participant.hpp"
#include "market/auction_engine.hpp"
#include "obs/observer.hpp"
#include "sim/simulation.hpp"

namespace gridfed::coalition {
class CoalitionManager;
}  // namespace gridfed::coalition

namespace gridfed::policy {

/// Counters a policy accumulates over a run (surfaced through
/// stats::AuctionStats; all-zero for policies without the feature).
struct PolicyCounters {
  std::uint64_t bid_cache_lookups = 0;  ///< provider-side pricing requests
  std::uint64_t bid_cache_hits = 0;     ///< served from the TTL cache
  std::uint64_t awards_piggybacked = 0; ///< kAwards that rode a solicitation
};

/// Protocol-engine services a policy schedules through.  Implemented by
/// core::Gfa; policies hold a reference and never outlive it.
class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;

  // -- identity and environment -------------------------------------------
  [[nodiscard]] virtual cluster::ResourceIndex self() const = 0;
  [[nodiscard]] virtual const core::FederationConfig& config() const = 0;
  [[nodiscard]] virtual const cluster::ResourceSpec& spec_of(
      cluster::ResourceIndex index) const = 0;
  [[nodiscard]] virtual directory::FederationDirectory& directory() = 0;
  [[nodiscard]] virtual cluster::Lrms& lrms() = 0;
  [[nodiscard]] virtual sim::Simulation& sim() = 0;
  [[nodiscard]] virtual sim::SimTime now() const = 0;
  /// Staging delay before `job`'s input data lands at `site` (WAN model).
  [[nodiscard]] virtual sim::SimTime payload_staging_time(
      const cluster::Job& job, cluster::ResourceIndex site) const = 0;
  /// The coalition layer of this run, or null when coalitions are
  /// disabled — in which case every participant is a singleton and
  /// participant_of() degenerates to the identity.
  [[nodiscard]] virtual coalition::CoalitionManager* coalitions() = 0;

  // -- feasibility predicates ---------------------------------------------
  /// True when the local LRMS can complete `job` within its deadline.
  [[nodiscard]] virtual bool local_deadline_ok(
      const cluster::Job& job) const = 0;
  /// Static budget check computable from a directory quote alone.
  [[nodiscard]] virtual double cost_from_quote(
      const cluster::Job& job, const directory::Quote& quote) const = 0;

  // -- placement actions (each consumes the Pending) ----------------------
  /// Reserves on the local LRMS; `price` < 0 settles the posted-price
  /// cost, >= 0 settles that amount (an auction's cleared payment).
  virtual void execute_here(core::Pending p, double price) = 0;
  /// DBC admission enquiry: parks `p`, sends kNegotiate, arms the timeout.
  virtual void send_negotiate(core::Pending p,
                              cluster::ResourceIndex target) = 0;
  /// Auction award enquiry through the same seam (kAward + payment).
  virtual void send_award(core::Pending p, cluster::ResourceIndex target,
                          double payment) = 0;
  /// Parks `p` as an in-flight award to `target` WITHOUT a wire message of
  /// its own — the award text rides on a piggybacked solicitation the
  /// policy sends separately.  Arms the reply timeout like send_award.
  virtual void park_award(core::Pending p, cluster::ResourceIndex target) = 0;
  /// An award won by a coalition the origin itself represents: internal
  /// placement runs locally (no wire enquiry), then the payload ships
  /// straight to the chosen member — or, if every member declines, `p`
  /// is handed back through schedule() like a declined reply.
  virtual void place_in_coalition(core::Pending p,
                                  federation::ParticipantId coalition,
                                  double payment) = 0;
  /// Every avenue exhausted: report the rejection.
  virtual void reject(core::Pending p) = 0;

  // -- raw protocol services ----------------------------------------------
  /// Routes one message through the host (ledger + latency applied).
  virtual void send(core::Message msg) = 0;
  /// Routes one payload to every target through the host's transport
  /// (msg.to overwritten per target; `not_after` bounds transport-level
  /// fan-out batching).  Returns the wire messages charged immediately —
  /// see core::GfaHost::multicast.
  virtual std::uint64_t multicast(core::Message msg,
                                  std::span<const cluster::ResourceIndex>
                                      targets,
                                  sim::SimTime not_after) = 0;
  /// Provider-side admission for an enquiry delivered out of band (a
  /// piggybacked kAward): exact estimate, reserve, answer with a kReply.
  virtual void admit_enquiry(const core::Message& msg) = 0;
  /// Auction telemetry sink (host's ClearingReport channel).
  virtual void auction_report(const market::ClearingReport& report) = 0;
  /// The observability umbrella, or null when disabled (GF_OBS sites
  /// branch on it; see obs/observer.hpp).
  [[nodiscard]] virtual obs::Observer* observer() { return nullptr; }
};

/// One scheduling mode's brain.  Constructed per GFA at wiring time; the
/// engine calls schedule() at submission and again whenever an enquiry
/// ends without a placement (decline or timeout), and routes the
/// auction-only message legs to on_call_for_bids()/on_bid().
class SchedulingPolicy {
 public:
  explicit SchedulingPolicy(SchedulerContext& ctx) : ctx_(ctx) {}
  virtual ~SchedulingPolicy() = default;
  SchedulingPolicy(const SchedulingPolicy&) = delete;
  SchedulingPolicy& operator=(const SchedulingPolicy&) = delete;

  /// Drives `p` one step: place it locally, send an enquiry, open an
  /// auction, or reject — exactly one of which must eventually happen.
  virtual void schedule(core::Pending p) = 0;

  /// Amount settled when `exec` accepted the in-flight enquiry for `p`.
  /// Default: the posted-price cost of the executing cluster; auction
  /// awards override with the cleared payment.
  [[nodiscard]] virtual double settled_cost(const core::Pending& p,
                                            cluster::ResourceIndex exec) const;

  /// Auction-only protocol legs; the default ignores them (a stray
  /// call-for-bids at a non-auction GFA is dropped, not a crash).
  virtual void on_call_for_bids(const core::Message& msg);
  virtual void on_bid(const core::Message& msg);

  /// This cluster's solo sealed bid for `job` (provider-side pricing).
  /// The coalition layer aggregates member bids through this seam; the
  /// default is an unconditional infeasible bid (non-auction policies
  /// price nothing).
  [[nodiscard]] virtual market::Bid make_bid(const cluster::Job& job);

  /// Drops any cached provider-side pricing (the auction policy's TTL
  /// bid cache).  Called when capacity was reserved behind the policy's
  /// back — a coalition placement admitting on this member — so later
  /// bids price the queue honestly, mirroring the cache drop the policy
  /// performs itself after processing piggybacked awards.
  virtual void invalidate_bid_cache() {}

  /// Membership churn: this GFA's cluster crashed.  Hand every job the
  /// policy is holding in flight (open auction books, undispatched held
  /// awards) to `sink` and drop the machinery around them — armed
  /// timeouts must find nothing to act on afterwards.  Policies without
  /// job-holding state need nothing (the engine drains its own pending
  /// enquiries separately).
  virtual void drain_in_flight(
      const std::function<void(core::Pending)>& sink) {
    (void)sink;
  }

  /// Run counters (see PolicyCounters); default all-zero.
  [[nodiscard]] virtual PolicyCounters counters() const { return {}; }

  /// Auction books currently open at this policy (the metrics layer's
  /// book-depth gauge; 0 for policies without a market).
  [[nodiscard]] virtual std::size_t open_auctions() const { return 0; }

 protected:
  SchedulerContext& ctx_;
};

/// Builds the policy for `mode` (the only place mode dispatch survives).
[[nodiscard]] std::unique_ptr<SchedulingPolicy> make_policy(
    core::SchedulingMode mode, SchedulerContext& ctx);

}  // namespace gridfed::policy
