#pragma once
// SchedulingMode::kIndependent — the paper's Experiment 1 control: the
// cluster is alone in the world.  Accept iff the local LRMS can honour
// the deadline; no directory, no negotiation, no messages.

#include "policy/scheduling_policy.hpp"

namespace gridfed::policy {

class IndependentPolicy final : public SchedulingPolicy {
 public:
  using SchedulingPolicy::SchedulingPolicy;

  void schedule(core::Pending p) override;
};

}  // namespace gridfed::policy
