#pragma once
// SchedulingMode::kEconomy — the paper's DBC algorithm (§2.2,
// Experiments 3-5).  OFC walks the cheapest directory ranking, OFT the
// fastest; clusters that statically cannot satisfy the job (too small,
// or the quoted price would blow the budget — both computable from the
// quote alone) are skipped, the rest are negotiated with in rank order,
// and the origin cluster competes at its natural rank (negotiating with
// ourselves costs no network messages).
//
// AuctionPolicy reuses this walk as its fallback chain: a job whose book
// cleared empty (or whose every award was declined) finishes via plain
// DBC when the config allows.

#include "policy/scheduling_policy.hpp"

namespace gridfed::policy {

class DbcPolicy : public SchedulingPolicy {
 public:
  using SchedulingPolicy::SchedulingPolicy;

  void schedule(core::Pending p) override;
};

}  // namespace gridfed::policy
