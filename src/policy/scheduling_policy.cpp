#include "policy/scheduling_policy.hpp"

#include <memory>

#include "economy/cost_model.hpp"
#include "policy/auction_policy.hpp"
#include "policy/dbc_policy.hpp"
#include "policy/independent_policy.hpp"
#include "policy/no_economy_policy.hpp"

namespace gridfed::policy {

double SchedulingPolicy::settled_cost(const core::Pending& p,
                                      cluster::ResourceIndex exec) const {
  return economy::job_cost(p.job, ctx_.spec_of(p.job.origin),
                           ctx_.spec_of(exec), ctx_.config().cost_model);
}

void SchedulingPolicy::on_call_for_bids(const core::Message& msg) {
  (void)msg;  // a stray solicitation at a non-auction GFA is dropped
}

void SchedulingPolicy::on_bid(const core::Message& msg) {
  (void)msg;  // a stray bid at a non-auction GFA is dropped
}

market::Bid SchedulingPolicy::make_bid(const cluster::Job& job) {
  (void)job;
  return {};  // non-auction policies price nothing (infeasible bid)
}

std::unique_ptr<SchedulingPolicy> make_policy(core::SchedulingMode mode,
                                              SchedulerContext& ctx) {
  switch (mode) {
    case core::SchedulingMode::kIndependent:
      return std::make_unique<IndependentPolicy>(ctx);
    case core::SchedulingMode::kFederationNoEconomy:
      return std::make_unique<NoEconomyPolicy>(ctx);
    case core::SchedulingMode::kEconomy:
      return std::make_unique<DbcPolicy>(ctx);
    case core::SchedulingMode::kAuction:
      return std::make_unique<AuctionPolicy>(ctx);
  }
  __builtin_unreachable();
}

}  // namespace gridfed::policy
