#pragma once
// SchedulingMode::kFederationNoEconomy — the paper's Experiment 2:
// process locally when possible; otherwise walk the federation in
// decreasing order of computational speed (§3.3).  No prices, no
// budgets: the first cluster that can honour the deadline takes the job.

#include "policy/scheduling_policy.hpp"

namespace gridfed::policy {

class NoEconomyPolicy final : public SchedulingPolicy {
 public:
  using SchedulingPolicy::SchedulingPolicy;

  void schedule(core::Pending p) override;
};

}  // namespace gridfed::policy
