#include "policy/dbc_policy.hpp"

#include <utility>

namespace gridfed::policy {

void DbcPolicy::schedule(core::Pending p) {
  const auto& cfg = ctx_.config();
  auto& dir = ctx_.directory();
  const auto order = directory::order_for(p.job.opt);
  while (true) {
    const auto quote =
        cfg.use_load_hints
            ? dir.query_filtered(order, p.next_rank, cfg.load_hint_threshold)
            : dir.query(order, p.next_rank);
    if (!quote) {
      ctx_.reject(std::move(p));
      return;
    }
    ++p.next_rank;
    if (quote->processors < p.job.processors) continue;
    if (cfg.enforce_budget &&
        ctx_.cost_from_quote(p.job, *quote) > p.job.budget) {
      continue;  // the quote alone rules this site out
    }
    if (quote->resource == ctx_.self()) {
      if (ctx_.local_deadline_ok(p.job)) {
        ctx_.execute_here(std::move(p), -1.0);
        return;
      }
      continue;
    }
    ctx_.send_negotiate(std::move(p), quote->resource);
    return;  // resume in the engine's reply handler (or the timeout)
  }
}

}  // namespace gridfed::policy
