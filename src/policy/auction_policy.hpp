#pragma once
// SchedulingMode::kAuction — the market extension's per-job sealed-bid
// reverse auction, both sides of it:
//
//  * origin side: solicit asks from the eligible providers (cheapest
//    directory order, one metered bulk query), collect the book, clear it
//    through market::AuctionEngine under the configured clearing +
//    scoring rules, and work through the award ranking; a book that
//    clears empty (or whose every award is declined) falls back to the
//    DBC walk when the config allows;
//  * provider side: answer call-for-bids with sealed asks (admission-
//    style completion estimate + the configured bid-pricing strategy),
//    optionally served from a TTL cache for same-shape jobs.
//
// The policy owns every piece of auction-only state the Gfa god class
// used to carry: the open books, the batched-solicitation queue, the
// book pool and scratch buffers, the award ranking riding each Pending
// (as an AuctionJobState behind Pending::policy_state), the provider-side
// bid cache, and the held awards awaiting a piggyback flush.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "market/book_pool.hpp"
#include "policy/dbc_policy.hpp"
#include "policy/scheduling_policy.hpp"

namespace gridfed::policy {

class AuctionPolicy final : public SchedulingPolicy {
 public:
  explicit AuctionPolicy(SchedulerContext& ctx);

  void schedule(core::Pending p) override;
  [[nodiscard]] double settled_cost(const core::Pending& p,
                                    cluster::ResourceIndex exec) const override;
  void on_call_for_bids(const core::Message& msg) override;
  void on_bid(const core::Message& msg) override;
  [[nodiscard]] PolicyCounters counters() const override { return counters_; }
  [[nodiscard]] std::size_t open_auctions() const override {
    return auctions_.size();
  }

  /// This cluster's solo sealed bid for `job` (provider side; also the
  /// origin's own message-free local bid).  Serves same-shape jobs from
  /// the TTL cache when AuctionConfig::bid_cache_ttl is set.
  [[nodiscard]] market::Bid make_bid(const cluster::Job& job) override;

  /// The sealed bid this cluster answers a call-for-bids with: its own
  /// make_bid() in the solo market, or — when it represents a coalition —
  /// the coalition's joint bid aggregated over the members' pricing on
  /// the cheap intra-coalition links.
  [[nodiscard]] market::Bid participant_bid(const cluster::Job& job);

  void invalidate_bid_cache() override { bid_cache_.clear(); }

  /// Crash drain (membership churn): hands back the jobs in every open
  /// book and every undispatched held award, empties the solicitation
  /// queue, and drops the bid cache.  Armed bid timeouts and flush wakes
  /// find nothing to act on afterwards.
  void drain_in_flight(
      const std::function<void(core::Pending)>& sink) override;

 private:
  /// Auction-mode extension of a Pending (lives behind policy_state).
  struct AuctionJobState final : core::PolicyState {
    /// Cleared award ranking still to try; awards[next_award] is next.
    std::vector<market::Award> awards;
    std::size_t next_award = 0;
    /// Payment agreed for the in-flight award; settled instead of the
    /// posted-price cost when the winner accepts.
    double award_payment = 0.0;
    /// Book cleared empty or every award declined: finish via the DBC
    /// walk (when the config allows) rather than re-auctioning.
    bool dbc_fallback = false;

    /// True while an auction award (not a DBC negotiate) is in flight.
    [[nodiscard]] bool awarding() const noexcept {
      return !awards.empty() && !dbc_fallback;
    }
  };

  /// An auction round collecting bids (origin side).
  struct OpenAuction {
    core::Pending pending;
    market::AuctionBook book;
  };

  /// An award waiting (bounded) for a solicitation flush to carry it.
  /// `target` is the wire address — the winning participant's
  /// representative cluster.
  struct HeldAward {
    core::Pending pending;
    cluster::ResourceIndex target = cluster::kNoResource;
    double payment = 0.0;
    bool dispatched = false;  ///< rode a flush or went standalone
  };

  /// Key of the provider-side bid cache: the job attributes the ask and
  /// the completion estimate actually depend on — its *shape*.  Length
  /// and comm overhead enter as log-scale buckets (bid_cache_quantum
  /// relative width) so near-identical jobs share an entry.
  struct BidCacheKey {
    cluster::ResourceIndex origin = 0;
    std::uint32_t processors = 0;
    std::int64_t length_bucket = 0;
    std::int64_t comm_bucket = 0;
    [[nodiscard]] bool operator==(const BidCacheKey&) const = default;
  };
  struct BidCacheKeyHash {
    [[nodiscard]] std::size_t operator()(const BidCacheKey& key) const noexcept;
  };
  struct BidCacheEntry {
    double ask = 0.0;
    sim::SimTime completion_estimate = 0.0;
    sim::SimTime stamp = 0.0;  ///< when the pricing ran
  };

  [[nodiscard]] static AuctionJobState* state_of(const core::Pending& p);
  /// Ensures `p` carries an AuctionJobState, allocating on first touch.
  static AuctionJobState& ensure_state(core::Pending& p);

  /// The market participant `resource` acts as: its coalition when the
  /// run registered one, its singleton otherwise (and always the
  /// singleton when the coalition layer is off — the identity map the
  /// solo-parity digests pin down).
  [[nodiscard]] federation::ParticipantId participant_of(
      cluster::ResourceIndex resource);
  /// Wire address of `participant` (a singleton represents itself).
  [[nodiscard]] cluster::ResourceIndex representative_of(
      federation::ParticipantId participant);

  /// Opens the book: solicits bids from every eligible provider and
  /// enters the origin's own message-free bid when configured.
  void open_auction(core::Pending p);
  /// Batched solicitation: parks the job's call-for-bids until the flush
  /// deadline (bounded by the batch window and the job's deadline slack).
  void queue_solicitation(cluster::JobId id);
  /// Flush wake-up; a no-op unless the earliest queued deadline is due.
  void maybe_flush_solicitations();
  /// Sends one coalesced kCallForBids per provider covering every queued
  /// job (held awards ride along), then arms the per-job bid timeouts.
  void flush_solicitations();
  /// Closes the book, clears it through the engine, reports telemetry and
  /// starts awarding (or falls back / rejects on an empty ranking).
  void clear_auction(cluster::JobId id);
  /// Tries the next award in the cleared ranking; exhausted = fallback.
  void advance_awards(core::Pending p);
  void on_bid_timeout(cluster::JobId id);
  /// True when some queued (still-open) auction solicits `participant`,
  /// so the pending flush will actually send its representative a
  /// call-for-bids an award could ride.
  [[nodiscard]] bool flush_solicits(
      federation::ParticipantId participant) const;
  /// True when an undispatched held award targets `provider` — shared by
  /// the flush's run grouping (a provider carrying awards is carved into
  /// its own message) and the piggyback bookkeeping.
  [[nodiscard]] bool has_held_award(cluster::ResourceIndex provider) const;
  /// End of the maximal run [i, end) of flush providers that can share
  /// one multicast: equal job buckets and no held awards (a payload with
  /// piggybacked awards differs per provider).  The single place the
  /// equal-bucket grouping rule lives.
  [[nodiscard]] std::size_t solicit_run_end(std::size_t i) const;
  /// Exhausted every auction avenue: DBC walk or rejection per config.
  void fallback(core::Pending p);

  /// The DBC walk serving as the fallback chain (shares this context).
  DbcPolicy dbc_fallback_;

  std::unordered_map<cluster::JobId, OpenAuction> auctions_;

  // -- batched solicitation state (batch_solicitations) -------------------
  /// Jobs whose call-for-bids await the next flush, in submission order.
  std::vector<cluster::JobId> solicit_queue_;
  /// Earliest flush deadline among queued jobs (infinity when empty).
  sim::SimTime flush_deadline_ = sim::kTimeInfinity;
  /// Awards waiting to ride the next flush (piggyback_awards).
  std::vector<HeldAward> held_awards_;

  /// Cleared books are recycled here instead of reallocating per job.
  market::BookPool book_pool_;
  // Scratch buffers reused across auctions (hot path: one per job).
  std::vector<directory::Quote> scratch_quotes_;
  /// Participants entering the book (wire-solicited and local entrants).
  std::vector<federation::ParticipantId> scratch_entrants_;
  /// Wire targets of the solicitation: one representative per remote
  /// participant, cheapest-first order (group-addressed dissemination —
  /// a coalition is reached through its representative only).
  std::vector<cluster::ResourceIndex> scratch_targets_;
  std::vector<cluster::ResourceIndex> scratch_providers_;
  /// Per-provider job buckets built by flush_solicitations; parallel to
  /// scratch_providers_, capacity retained across flushes.
  std::vector<std::vector<const cluster::Job*>> scratch_buckets_;

  /// Provider-side pricing cache (bid_cache_ttl > 0).
  std::unordered_map<BidCacheKey, BidCacheEntry, BidCacheKeyHash> bid_cache_;

  PolicyCounters counters_;
};

}  // namespace gridfed::policy
