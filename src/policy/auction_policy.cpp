#include "policy/auction_policy.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "coalition/coalition_manager.hpp"
#include "economy/cost_model.hpp"
#include "market/bid_pricing.hpp"
#include "market/bid_scorer.hpp"
#include "sim/check.hpp"
#include "sim/hash.hpp"

namespace gridfed::policy {

AuctionPolicy::AuctionPolicy(SchedulerContext& ctx)
    : SchedulingPolicy(ctx), dbc_fallback_(ctx) {}

// The cache's shape buckets are market::shape_bucket — the SAME key the
// overlay's convergecast delta encoder groups quotes by, so "two jobs
// share a cached quote" and "two bids share a base quote on the wire"
// are one definition.

std::size_t AuctionPolicy::BidCacheKeyHash::operator()(
    const BidCacheKey& key) const noexcept {
  std::uint64_t h = sim::kFnvOffsetBasis;
  h = sim::fnv1a_mix(h, key.origin);
  h = sim::fnv1a_mix(h, key.processors);
  h = sim::fnv1a_mix(h, key.length_bucket);
  h = sim::fnv1a_mix(h, key.comm_bucket);
  return static_cast<std::size_t>(h);
}

AuctionPolicy::AuctionJobState* AuctionPolicy::state_of(
    const core::Pending& p) {
  return static_cast<AuctionJobState*>(p.policy_state.get());
}

AuctionPolicy::AuctionJobState& AuctionPolicy::ensure_state(core::Pending& p) {
  if (p.policy_state == nullptr) {
    p.policy_state = std::make_unique<AuctionJobState>();
  }
  return *state_of(p);
}

federation::ParticipantId AuctionPolicy::participant_of(
    cluster::ResourceIndex resource) {
  return coalition::participant_of(ctx_.coalitions(), resource);
}

cluster::ResourceIndex AuctionPolicy::representative_of(
    federation::ParticipantId participant) {
  return coalition::representative_of(ctx_.coalitions(), participant);
}

void AuctionPolicy::schedule(core::Pending p) {
  // Lifecycle: open an auction, then work through the cleared award
  // ranking, then (if everything declined) the DBC fallback walk.
  const AuctionJobState* st = state_of(p);
  if (st != nullptr && st->dbc_fallback) {
    dbc_fallback_.schedule(std::move(p));
  } else if (st != nullptr && !st->awards.empty()) {
    advance_awards(std::move(p));
  } else {
    open_auction(std::move(p));
  }
}

double AuctionPolicy::settled_cost(const core::Pending& p,
                                   cluster::ResourceIndex exec) const {
  // An in-flight award settles its cleared payment; the DBC fallback (and
  // anything else) the posted price.
  const AuctionJobState* st = state_of(p);
  if (st != nullptr && st->awarding()) return st->award_payment;
  return SchedulingPolicy::settled_cost(p, exec);
}

// ---- origin side ------------------------------------------------------------

void AuctionPolicy::open_auction(core::Pending p) {
  const auto& cfg = ctx_.config();
  const auto& acfg = cfg.auction;
  // Candidate providers in cheapest-first directory order: deterministic
  // and compatible with the load-hint filter.  One metered bulk query
  // replaces a per-rank query walk (the results ride back on a single
  // overlay route), which is what keeps directory traffic per auction
  // flat as the federation grows.
  directory::QueryFilter filter;
  filter.min_processors = p.job.processors;
  filter.exclude = ctx_.self();  // origin enters for free below
  if (cfg.use_load_hints) filter.max_load_hint = cfg.load_hint_threshold;
  ctx_.directory().query_top_k(directory::OrderBy::kCheapest,
                               acfg.max_bidders, filter, scratch_quotes_);

  const bool origin_enters =
      acfg.origin_bids && p.job.processors <= ctx_.lrms().spec().processors;

  // One book entrant per *participant*: the first (cheapest) quoted
  // member claims its coalition's slot, and the coalition is addressed
  // on the wire through its representative only — the group-addressed
  // dissemination that makes a coalition cost one delivery however many
  // clusters it federates.  A participant the origin itself represents
  // enters a message-free local joint bid instead.  With the coalition
  // layer off every participant is its own singleton and this reduces
  // exactly to the old per-cluster list.
  scratch_entrants_.clear();
  scratch_targets_.clear();
  bool own_group_enters = false;
  for (const directory::Quote& quote : scratch_quotes_) {
    const federation::ParticipantId pid = participant_of(quote.resource);
    if (std::find(scratch_entrants_.begin(), scratch_entrants_.end(), pid) !=
        scratch_entrants_.end()) {
      continue;  // this coalition already holds a book slot
    }
    scratch_entrants_.push_back(pid);
    const cluster::ResourceIndex rep = representative_of(pid);
    if (rep == ctx_.self()) {
      own_group_enters = true;
    } else {
      scratch_targets_.push_back(rep);
    }
  }
  const std::size_t n_remote = scratch_targets_.size();
  if (origin_enters) scratch_entrants_.push_back(ctx_.self());
  market::AuctionBook book = book_pool_.acquire(p.job.id, scratch_entrants_);
  if (own_group_enters) {
    // The origin speaks for a solicited coalition: the joint bid over
    // its (sibling) members enters locally, like the origin's own bid.
    book.add(ctx_.coalitions()->joint_bid(participant_of(ctx_.self()),
                                          p.job));
  }
  if (origin_enters) book.add(make_bid(p.job));  // message-free local bid

  p.negotiations += static_cast<std::uint32_t>(n_remote);  // remote enquiries
  const bool batched = acfg.batch_solicitations && n_remote > 0;
  if (!batched && n_remote > 0) {
    // One multicast covers every provider (the per-job broadcast): the
    // direct transport unrolls it into the seed's per-provider sends
    // and returns their count; the tree transport queues one fan-out,
    // bounded by the same slack fraction the batched flush applies, and
    // books its shared edges in the ledger's relay counters (returns 0).
    const sim::SimTime slack =
        std::max(0.0, p.job.absolute_deadline() - ctx_.now());
    const sim::SimTime not_after =
        ctx_.now() + acfg.solicit_hold_slack_fraction * slack;
    core::Message msg{core::MessageType::kCallForBids, ctx_.self(),
                      ctx_.self(), p.job};
    p.messages += ctx_.multicast(std::move(msg), scratch_targets_,
                                 not_after);
  }

  const cluster::JobId id = p.job.id;
  const auto [it, inserted] =
      auctions_.emplace(id, OpenAuction{std::move(p), std::move(book)});
  GF_EXPECTS(inserted);  // a job runs at most one auction round
  // The auction span opens before the synchronous-clear check so an
  // empty book still traces as a (zero-width) round.
  GF_OBS(ctx_.observer(),
         begin(ctx_.now(), obs::SpanKind::kAuction, ctx_.self(), id,
               it->second.book.solicited(), n_remote));
  GF_OBS(ctx_.observer(), count(obs::Counter::kAuctionsOpened));
  if (it->second.book.complete()) {
    // No outstanding bidders (possibly an empty book): clear in place.
    clear_auction(id);
    return;
  }
  if (batched) {
    // The call-for-bids leave in the next flush; the bid timeout arms
    // there too (the book is not on the wire yet).
    queue_solicitation(id);
    return;
  }
  if (acfg.bid_timeout > 0.0) {
    ctx_.sim().schedule_in(acfg.bid_timeout, sim::EventPriority::kControl,
                           [this, id] { on_bid_timeout(id); });
  }
}

void AuctionPolicy::queue_solicitation(cluster::JobId id) {
  const auto& acfg = ctx_.config().auction;
  const auto it = auctions_.find(id);
  GF_EXPECTS(it != auctions_.end());
  // Hold back at most the batch window, and never more than a fraction
  // of the job's remaining deadline slack: tight jobs flush (almost)
  // immediately — and carry every other queued job out with them.
  const sim::SimTime slack = std::max(
      0.0, it->second.pending.job.absolute_deadline() - ctx_.now());
  const sim::SimTime hold = std::min(
      acfg.solicit_batch_window, acfg.solicit_hold_slack_fraction * slack);
  const sim::SimTime deadline = ctx_.now() + hold;
  solicit_queue_.push_back(id);
  if (deadline < flush_deadline_) flush_deadline_ = deadline;
  ctx_.sim().schedule_at(deadline, sim::EventPriority::kControl,
                         [this] { maybe_flush_solicitations(); });
}

void AuctionPolicy::maybe_flush_solicitations() {
  // Each queued job arms its own wake-up; only the one at the earliest
  // deadline flushes (stale wake-ups find the deadline moved or the
  // queue already empty).
  if (solicit_queue_.empty()) return;
  if (ctx_.now() < flush_deadline_) return;
  flush_solicitations();
}

void AuctionPolicy::flush_solicitations() {
  const auto& acfg = ctx_.config().auction;
  // One pass over the queue builds per-provider job buckets; providers
  // keep first-seen (cheapest-first) order so the wire order stays
  // deterministic.  scratch_providers_[i] is the provider of
  // scratch_buckets_[i]; the buckets are members so flushes reuse their
  // capacity instead of reallocating.  The same pass derives the
  // transport's fan-out bound: the tree transport may batch the
  // call-for-bids further, but never past the slack fraction this
  // policy applies to its own hold.
  scratch_providers_.clear();
  for (auto& bucket : scratch_buckets_) bucket.clear();
  sim::SimTime not_after = sim::kTimeInfinity;
  for (const cluster::JobId id : solicit_queue_) {
    const auto it = auctions_.find(id);
    if (it == auctions_.end()) continue;  // cleared while queued
    const sim::SimTime slack = std::max(
        0.0, it->second.pending.job.absolute_deadline() - ctx_.now());
    not_after = std::min(
        not_after, ctx_.now() + acfg.solicit_hold_slack_fraction * slack);
    for (const federation::ParticipantId pid :
         it->second.book.solicited_list()) {
      // Wire address: the participant's representative; entrants the
      // origin itself covers (its own bid, a coalition it represents)
      // were answered locally at open time.
      const cluster::ResourceIndex r = representative_of(pid);
      if (r == ctx_.self()) continue;
      const auto pos = std::find(scratch_providers_.begin(),
                                 scratch_providers_.end(), r);
      const auto bucket =
          static_cast<std::size_t>(pos - scratch_providers_.begin());
      if (pos == scratch_providers_.end()) {
        scratch_providers_.push_back(r);
        if (scratch_buckets_.size() < scratch_providers_.size()) {
          scratch_buckets_.emplace_back();
        }
      }
      scratch_buckets_[bucket].push_back(&it->second.pending.job);
    }
  }
  GF_OBS(ctx_.observer(),
         instant(ctx_.now(), obs::SpanKind::kSolicitFlush, ctx_.self(), 0,
                 scratch_providers_.size(), solicit_queue_.size()));
  GF_OBS(ctx_.observer(), count(obs::Counter::kSolicitFlushes));
  // Emit one multicast per maximal run of providers sharing a job
  // bucket.  With the default full-book solicitation every provider
  // shares one bucket, so the flush writes the job list into the arena
  // ONCE and all 50 provider messages view it — no per-provider Job
  // copies.  A provider with held awards is carved into its own message
  // (its payload differs), preserving the per-provider wire order.
  std::shared_ptr<transport::MessageArena> arena;
  std::size_t i = 0;
  while (i < scratch_providers_.size()) {
    const std::size_t j = solicit_run_end(i);
    if (!arena) arena = std::make_shared<transport::MessageArena>();
    core::Message msg;
    msg.type = core::MessageType::kCallForBids;
    msg.from = ctx_.self();
    msg.batch_jobs = arena->append(scratch_buckets_[i]);
    msg.arena = arena;
    msg.job = msg.batch_jobs.front();
    // Awards held for this run's (single) provider ride the flush for
    // free: their text joins this message and the Pending parks without
    // a wire message of its own (the reply still counts).
    for (auto& held : held_awards_) {
      if (held.dispatched || held.target != scratch_providers_[i]) continue;
      msg.batch_awards.push_back(
          core::PiggybackedAward{held.pending.job, held.payment});
      ++counters_.awards_piggybacked;
      held.dispatched = true;
      ctx_.park_award(std::move(held.pending), held.target);
    }
    // Attribute the run's wire cost to the batch's first job so the
    // per-job counters still sum to the ledger total (on the direct
    // transport; the tree's shared edge messages return 0 and live in
    // the ledger's relay counters instead).  A run carrying piggybacked
    // awards must leave NOW: an award is an admission re-check whose
    // reply timeout is already armed, so the transport gets no room to
    // hold it back (the epoch hold that is fine for solicitations would
    // systematically expire awards).
    const cluster::JobId front_id = msg.job.id;
    const sim::SimTime run_not_after =
        msg.batch_awards.empty() ? not_after : ctx_.now();
    const std::uint64_t wire = ctx_.multicast(
        std::move(msg),
        std::span<const cluster::ResourceIndex>(
            scratch_providers_.data() + i, j - i),
        run_not_after);
    auctions_.find(front_id)->second.pending.messages += wire;
    i = j;
  }
  // Held awards whose provider saw no solicitation after all (its
  // auctions cleared while the award waited) go out standalone: every
  // hold was taken against THIS flush, so nothing waits beyond it.
  for (auto& held : held_awards_) {
    if (held.dispatched) continue;
    ctx_.send_award(std::move(held.pending), held.target, held.payment);
  }
  held_awards_.clear();
  if (acfg.bid_timeout > 0.0) {
    for (const cluster::JobId id : solicit_queue_) {
      if (auctions_.find(id) == auctions_.end()) continue;
      ctx_.sim().schedule_in(acfg.bid_timeout, sim::EventPriority::kControl,
                             [this, id] { on_bid_timeout(id); });
    }
  }
  solicit_queue_.clear();
  flush_deadline_ = sim::kTimeInfinity;
}

void AuctionPolicy::on_bid_timeout(cluster::JobId id) {
  // Deadline for the book: clear with whatever arrived.  A no-op when every
  // bid beat the timeout (the book already cleared and erased itself).
  clear_auction(id);
}

bool AuctionPolicy::flush_solicits(
    federation::ParticipantId participant) const {
  for (const cluster::JobId id : solicit_queue_) {
    const auto it = auctions_.find(id);
    if (it == auctions_.end()) continue;  // cleared while queued
    const auto& list = it->second.book.solicited_list();
    if (std::find(list.begin(), list.end(), participant) != list.end()) {
      return true;
    }
  }
  return false;
}

bool AuctionPolicy::has_held_award(cluster::ResourceIndex provider) const {
  for (const HeldAward& held : held_awards_) {
    if (!held.dispatched && held.target == provider) return true;
  }
  return false;
}

std::size_t AuctionPolicy::solicit_run_end(std::size_t i) const {
  // A provider with held awards gets a message of its own (the award
  // text joins the payload); otherwise the run extends while the job
  // buckets stay equal and no award interrupts it.
  std::size_t j = i + 1;
  if (has_held_award(scratch_providers_[i])) return j;
  while (j < scratch_providers_.size() &&
         !has_held_award(scratch_providers_[j]) &&
         scratch_buckets_[j] == scratch_buckets_[i]) {
    ++j;
  }
  return j;
}


void AuctionPolicy::clear_auction(cluster::JobId id) {
  const auto it = auctions_.find(id);
  if (it == auctions_.end()) return;  // already cleared
  OpenAuction auction = std::move(it->second);
  auctions_.erase(it);

  const auto& cfg = ctx_.config();
  const market::AuctionEngine engine(
      cfg.auction.clearing, cfg.auction.scoring, cfg.auction.score_time_weight,
      cfg.enforce_budget, cfg.enforce_deadline);
  core::Pending p = std::move(auction.pending);
  AuctionJobState& st = ensure_state(p);
  st.awards = engine.clear(p.job, auction.book.bids());
  st.next_award = 0;

  market::ClearingReport report;
  report.job = p.job.id;
  report.solicited = auction.book.solicited();
  // Tombstoned answers count as bids received: the providers DID answer,
  // the overlay just carried a marker instead of the quote — so the
  // bids-per-auction telemetry is invariant under transport pruning.
  report.bids = auction.book.bids().size() + auction.book.pruned();
  report.feasible = st.awards.size();
  report.awarded = !st.awards.empty();
  if (report.awarded) {
    report.winner = st.awards.front().bid.bidder;
    report.winner_ask = st.awards.front().bid.ask;
    report.payment = st.awards.front().payment;
  }
  ctx_.auction_report(report);

  GF_OBS(ctx_.observer(),
         end(ctx_.now(), obs::SpanKind::kAuction, ctx_.self(), id,
             report.bids, report.awarded ? 1 : 0, report.payment));
  GF_OBS(ctx_.observer(), observe(obs::Histo::kBookDepth,
                                  static_cast<double>(report.bids)));
  if (report.awarded) {
    GF_OBS(ctx_.observer(), count(obs::Counter::kAwardsCleared));
    GF_OBS(ctx_.observer(),
           observe(obs::Histo::kClearingPrice, report.payment));
  }
#if GRIDFED_TRACE
  // Forensics: the full decision record — every bid re-scored under the
  // active rule — built only when the ledger is on (score() re-derives
  // the rank key; too costly for the always-on path).
  if (obs::Observer* o = ctx_.observer(); o != nullptr && o->forensics_on()) {
    obs::ClearingDecision decision;
    decision.t = ctx_.now();
    decision.job = id;
    decision.scoring = engine.scoring();
    decision.clearing = engine.rule();
    decision.solicited.reserve(auction.book.solicited());
    for (const federation::ParticipantId pid : auction.book.solicited_list()) {
      decision.solicited.push_back(pid.value);
    }
    decision.bids.reserve(auction.book.bids().size());
    for (const market::Bid& bid : auction.book.bids()) {
      decision.bids.push_back(obs::ScoredBid{bid.bidder.value, bid.ask,
                                             bid.completion_estimate,
                                             bid.feasible,
                                             engine.score(p.job, bid)});
    }
    decision.awarded = report.awarded;
    if (report.awarded) {
      decision.winner = report.winner.value;
      decision.winner_ask = report.winner_ask;
      decision.payment = report.payment;
      if (st.awards.size() >= 2) {
        decision.has_runner_up = true;
        decision.runner_up_margin = engine.score(p.job, st.awards[1].bid) -
                                    engine.score(p.job, st.awards[0].bid);
      }
    }
    o->forensics()->record(std::move(decision));
  }
#endif

  // The book's allocations go back to the pool for the next job of the
  // same shape.
  book_pool_.release(std::move(auction.book));

  if (st.awards.empty()) {
    fallback(std::move(p));
  } else {
    advance_awards(std::move(p));
  }
}

void AuctionPolicy::advance_awards(core::Pending p) {
  AuctionJobState& st = ensure_state(p);
  while (st.next_award < st.awards.size()) {
    const market::Award award = st.awards[st.next_award++];
    if (award.bid.bidder == ctx_.self()) {
      // Won our own auction: admission is a free local re-check, and the
      // cleared payment (not the posted price) is what gets settled.
      if (ctx_.local_deadline_ok(p.job)) {
        ctx_.execute_here(std::move(p), award.payment);
        return;
      }
      continue;  // queue filled up since bidding: next award
    }
    const cluster::ResourceIndex rep = representative_of(award.bid.bidder);
    st.award_payment = award.payment;
    if (rep == ctx_.self()) {
      // A coalition the origin itself represents won: internal placement
      // runs over the local links (no wire enquiry); the engine ships
      // the payload straight to the chosen member, or hands the job back
      // through schedule() when every member declines.
      ctx_.place_in_coalition(std::move(p), award.bid.bidder,
                              award.payment);
      return;
    }
    // The award is an admission enquiry through the shared seam: the
    // winner re-checks, reserves, and answers with a kReply.  A
    // coalition winner is addressed through its representative.
    const auto& acfg = ctx_.config().auction;
    if (acfg.piggyback_awards && acfg.batch_solicitations &&
        !solicit_queue_.empty() &&
        flush_deadline_ <= ctx_.now() + acfg.piggyback_hold_window &&
        flush_solicits(award.bid.bidder)) {
      // A flush is already due soon AND it will solicit this winner: hold
      // the award so that flush carries it for free.  Strictly
      // opportunistic — an award never waits for a ride that isn't
      // coming, because delaying an admission re-check decays the
      // winner's estimate (and with it acceptance).
      held_awards_.push_back(
          HeldAward{std::move(p), rep, award.payment, false});
      return;
    }
    ctx_.send_award(std::move(p), rep, award.payment);
    return;  // resume in the engine's reply handler (or the timeout)
  }
  fallback(std::move(p));
}

void AuctionPolicy::drain_in_flight(
    const std::function<void(core::Pending)>& sink) {
  // Deterministic drain order: auctions_ is an unordered map, so walk the
  // open books sorted by job id — the sink records outcomes, and their
  // order must replay identically run to run.
  std::vector<cluster::JobId> open;
  open.reserve(auctions_.size());
  for (const auto& [id, auction] : auctions_) open.push_back(id);
  std::sort(open.begin(), open.end());
  for (const cluster::JobId id : open) {
    const auto it = auctions_.find(id);
    OpenAuction auction = std::move(it->second);
    auctions_.erase(it);
    // Close the trace span the open started; 0 bids, not awarded.
    GF_OBS(ctx_.observer(),
           end(ctx_.now(), obs::SpanKind::kAuction, ctx_.self(), id, 0, 0));
    book_pool_.release(std::move(auction.book));
    sink(std::move(auction.pending));
  }
  // Queued solicitations referenced the books just drained; armed flush
  // wake-ups and bid timeouts now find nothing.
  solicit_queue_.clear();
  flush_deadline_ = sim::kTimeInfinity;
  // Undispatched held awards still own their Pending; dispatched ones
  // were parked with the engine and are drained there.
  for (HeldAward& held : held_awards_) {
    if (held.dispatched) continue;
    sink(std::move(held.pending));
  }
  held_awards_.clear();
  bid_cache_.clear();
}

void AuctionPolicy::fallback(core::Pending p) {
  if (ctx_.config().auction.fallback_to_dbc) {
    AuctionJobState& st = ensure_state(p);
    st.dbc_fallback = true;
    st.awards.clear();
    st.next_award = 0;
    p.next_rank = 1;  // fresh DBC walk; cluster state moved on since bidding
    dbc_fallback_.schedule(std::move(p));
  } else {
    ctx_.reject(std::move(p));
  }
}

// ---- provider side ----------------------------------------------------------

market::Bid AuctionPolicy::participant_bid(const cluster::Job& job) {
  coalition::CoalitionManager* manager = ctx_.coalitions();
  if (manager != nullptr) {
    const federation::ParticipantId pid =
        manager->registry().participant_of(ctx_.self());
    if (pid.is_coalition() &&
        manager->registry().representative(pid) == ctx_.self()) {
      // This cluster speaks for its coalition: one joint bid aggregated
      // over the members' pricing (fanned out on the local links; the
      // manager counts them), bypassing the solo TTL cache — a joint
      // quote depends on every member's queue, not just ours.
      return manager->joint_bid(pid, job);
    }
  }
  return make_bid(job);
}

market::Bid AuctionPolicy::make_bid(const cluster::Job& job) {
  const auto& cfg = ctx_.config();
  const auto& own = ctx_.lrms().spec();
  market::Bid bid;
  bid.bidder = ctx_.self();
  if (job.processors > own.processors) return bid;  // infeasible
  const sim::SimTime ttl = cfg.auction.bid_cache_ttl;
  const double quantum = cfg.auction.bid_cache_quantum;
  const BidCacheKey key{job.origin, job.processors,
                        market::shape_bucket(job.length_mi, quantum),
                        market::shape_bucket(job.comm_overhead, quantum)};
  if (ttl > 0.0) {
    ++counters_.bid_cache_lookups;
    const auto it = bid_cache_.find(key);
    if (it != bid_cache_.end() && ctx_.now() - it->second.stamp <= ttl) {
      // Same-shape job within the window: reuse ask and estimate, but the
      // feasibility verdict is re-derived against THIS job's deadline.
      ++counters_.bid_cache_hits;
      bid.ask = it->second.ask;
      bid.completion_estimate = it->second.completion_estimate;
      bid.feasible = !cfg.enforce_deadline ||
                     bid.completion_estimate <= job.absolute_deadline();
      return bid;
    }
  }
  const sim::SimTime exec = cluster::execution_time(
      job, ctx_.spec_of(job.origin), own);
  const sim::SimTime staged =
      ctx_.now() + ctx_.payload_staging_time(job, ctx_.self());
  bid.completion_estimate = ctx_.lrms().estimate_completion(job, exec, staged);
  bid.feasible = !cfg.enforce_deadline ||
                 bid.completion_estimate <= job.absolute_deadline();
  const double true_cost = economy::job_cost(job, ctx_.spec_of(job.origin),
                                             own, cfg.cost_model);
  bid.ask = market::bid_price(cfg.auction.bid_pricing, true_cost,
                              ctx_.lrms().instantaneous_load(),
                              cfg.auction.markup, cfg.pricing);
  if (ttl > 0.0) {
    bid_cache_[key] =
        BidCacheEntry{bid.ask, bid.completion_estimate, ctx_.now()};
  }
  return bid;
}

void AuctionPolicy::on_call_for_bids(const core::Message& msg) {
  // Provider side: answer with a sealed ask.  Bidding is non-binding (no
  // reservation); the award re-runs admission, so a stale estimate only
  // costs the origin a declined award, never a broken guarantee.
  //
  // Piggybacked awards ride in front of the bids: each is an admission
  // enquiry whose reservation the subsequent estimates must price around.
  for (const core::PiggybackedAward& award : msg.batch_awards) {
    core::Message enquiry{core::MessageType::kAward, msg.from, ctx_.self(),
                          award.job};
    enquiry.price = award.payment;
    ctx_.admit_enquiry(enquiry);
  }
  if (!msg.batch_awards.empty()) {
    // The admissions above reserved capacity; cached estimates predate
    // them, so drop the cache to keep the awards-first ordering honest.
    bid_cache_.clear();
  }
  if (!msg.batch_jobs.empty()) {
    // Batched solicitation: one sealed ask per carried job, all riding
    // home in a single wire message.
    core::Message answer;
    answer.type = core::MessageType::kBid;
    answer.from = ctx_.self();
    answer.to = msg.from;
    answer.job = msg.batch_jobs.front();
    answer.batch_bids.reserve(msg.batch_jobs.size());
    for (const cluster::Job& job : msg.batch_jobs) {
      const market::Bid bid = participant_bid(job);
      answer.batch_bids.push_back(core::BatchedBid{
          job.id, bid.ask, bid.completion_estimate, bid.feasible});
    }
    GF_OBS(ctx_.observer(),
           instant(ctx_.now(), obs::SpanKind::kBidAnswered, ctx_.self(),
                   msg.batch_jobs.front().id, msg.from,
                   msg.batch_jobs.size()));
    GF_OBS(ctx_.observer(),
           count(obs::Counter::kBidsAnswered, msg.batch_jobs.size()));
    ctx_.send(std::move(answer));
    return;
  }
  const market::Bid bid = participant_bid(msg.job);
  core::Message answer{core::MessageType::kBid, ctx_.self(), msg.from,
                       msg.job, bid.feasible, bid.completion_estimate};
  answer.price = bid.ask;
  GF_OBS(ctx_.observer(),
         instant(ctx_.now(), obs::SpanKind::kBidAnswered, ctx_.self(),
                 msg.job.id, msg.from, 1));
  GF_OBS(ctx_.observer(), count(obs::Counter::kBidsAnswered));
  ctx_.send(std::move(answer));
}

void AuctionPolicy::on_bid(const core::Message& msg) {
  if (!msg.batch_bids.empty()) {
    // One wire message, several books: count it once (toward the first
    // still-open auction it feeds) and enter every ask.  A bid that
    // rode the overlay was already booked by the transport as shared
    // edge messages (ledger relay counters) — not per job.
    bool counted = msg.via_overlay;
    const federation::ParticipantId bidder = participant_of(msg.from);
    for (const core::BatchedBid& entry : msg.batch_bids) {
      const auto it = auctions_.find(entry.job);
      if (it == auctions_.end()) continue;  // cleared at the timeout: stale
      // The book rejects duplicates (a re-delivered wire message), so
      // the message only counts once it actually enters a book.
      // A tombstoned entry (overlay convergecast prune) carries no
      // quote: the bidder is marked answered so the book completes on
      // the same instant it would unpruned, but no bid is entered —
      // the relay proved it outside the decision-relevant rank prefix.
      const bool entered =
          entry.pruned
              ? it->second.book.add_pruned(bidder)
              : it->second.book.add(market::Bid{bidder, entry.ask,
                                                entry.completion_estimate,
                                                entry.feasible});
      if (entered && !counted) {
        ++it->second.pending.messages;
        counted = true;
      }
      if (it->second.book.complete()) clear_auction(entry.job);
    }
    return;
  }
  const auto it = auctions_.find(msg.job.id);
  if (it == auctions_.end()) return;  // book cleared at the timeout: stale bid
  OpenAuction& auction = it->second;
  // A bid from a coalition's representative enters under the coalition's
  // participant id (singletons map to themselves).
  const bool entered =
      msg.bid_pruned
          ? auction.book.add_pruned(participant_of(msg.from))
          : auction.book.add(market::Bid{participant_of(msg.from), msg.price,
                                         msg.completion_estimate, msg.accept});
  if (entered && !msg.via_overlay) ++auction.pending.messages;
  if (auction.book.complete()) clear_auction(msg.job.id);
}

}  // namespace gridfed::policy
