// Ablation X2 — the paper's §2.3 future-work coordination scheme: GFAs
// periodically publish load hints into the decentralized directory and
// the rank walk skips sites advertised as saturated.  The claim to test:
// hints cut negotiate/reply traffic, at the price of extra directory
// publishes and occasional staleness.

#include "bench_common.hpp"

using namespace gridfed;

namespace {
void report(const char* label, const core::FederationResult& r) {
  std::printf("%-28s total=%7llu  negotiate=%6llu  reply=%6llu  "
              "accept=%6.2f%%  directory-msgs=%llu\n",
              label, static_cast<unsigned long long>(r.total_messages),
              static_cast<unsigned long long>(r.messages_by_type[0]),
              static_cast<unsigned long long>(r.messages_by_type[1]),
              r.acceptance_pct(),
              static_cast<unsigned long long>(
                  r.directory_traffic.total_messages()));
}
}  // namespace

int main() {
  bench::banner("Ablation X2",
                "Directory load-hint coordination (paper §2.3 future work)");

  for (const std::uint32_t oft : {0u, 50u, 100u}) {
    std::printf("Population OFT=%u%%\n", oft);
    auto cfg = core::make_config(core::SchedulingMode::kEconomy);
    cfg.use_load_hints = false;
    report("  baseline (no hints)", core::run_experiment(cfg, 8, oft));

    cfg.use_load_hints = true;
    cfg.load_hint_period = 600.0;
    cfg.load_hint_threshold = 0.95;
    report("  hints @600s, thr 0.95", core::run_experiment(cfg, 8, oft));

    cfg.load_hint_period = 60.0;
    report("  hints @60s,  thr 0.95", core::run_experiment(cfg, 8, oft));
    std::printf("\n");
  }
  std::printf("Expected: negotiate traffic drops with fresher hints; the\n"
              "saving is largest when demand piles on few resources (100%%\n"
              "OFT/OFC); directory publish traffic rises in exchange.\n");
  return 0;
}
