// Table 3 — Workload Processing Statistics (With Federation).
// Experiment 2: local-first scheduling with fastest-first overflow into
// the federation; no economy.

#include "baselines/no_economy.hpp"
#include "bench_common.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Table 3",
                "Experiment 2 — federation without economy "
                "(local first, then fastest-first overflow)");

  const auto result = baselines::run_federation_no_economy();

  stats::Table t({"Index", "Resource / Cluster Name",
                  "Avg Resource Utilization (%)", "Total Job",
                  "Accepted (%)", "Rejected (%)", "Processed Locally",
                  "Migrated to Federation", "Remote Jobs Processed"});
  for (std::size_t i = 0; i < result.resources.size(); ++i) {
    const auto& row = result.resources[i];
    t.add_row({std::to_string(i + 1), row.name,
               stats::Table::num(100.0 * row.utilization, 2),
               std::to_string(row.total_jobs),
               stats::Table::num(row.acceptance_pct(), 2),
               stats::Table::num(row.rejection_pct(), 2),
               std::to_string(row.processed_locally),
               std::to_string(row.migrated),
               std::to_string(row.remote_processed)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Federation-wide acceptance: %.2f%%  (paper: 98.61%%)\n",
              result.acceptance_pct());
  return 0;
}
