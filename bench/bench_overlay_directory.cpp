// Overlay validation bench — backs the paper's O(log n) directory
// assumption with a measured substrate.  The main experiments charge
// ceil(log2 n) messages per directory query (the paper's assumption,
// citing MAAN); here the same ranked queries run over the real simulated
// Chord ring + MAAN attribute index, and we compare measured hops against
// the analytic model across system sizes well past the paper's 50.

#include "bench_common.hpp"
#include "directory/query_cost.hpp"
#include "overlay/overlay_directory.hpp"
#include "sim/random.hpp"
#include "stats/accumulator.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Overlay substrate",
                "Measured Chord/MAAN query cost vs the analytic O(log n) "
                "model the experiments assume");

  sim::Rng rng(0x0517);
  stats::Table t({"System size", "Analytic ceil(log2 n)", "Measured avg",
                  "Measured p-max", "Publish avg"});
  for (const std::size_t n : {8u, 16u, 32u, 50u, 128u, 512u, 2048u}) {
    const auto specs = cluster::replicated_specs(n);
    overlay::OverlayDirectory dir(1.0, 8.0, 100.0, 1200.0);
    stats::Accumulator publish_cost;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto before = dir.traffic().publish_messages;
      dir.subscribe(directory::Quote::from_spec(
                        static_cast<cluster::ResourceIndex>(i), specs[i]),
                    specs[i].name);
      publish_cost.add(
          static_cast<double>(dir.traffic().publish_messages - before) / 2.0);
    }

    stats::Accumulator query_cost;
    for (int q = 0; q < 2000; ++q) {
      const auto from = static_cast<cluster::ResourceIndex>(
          rng.uniform_int(0, n - 1));
      const auto order = rng.bernoulli(0.5) ? directory::OrderBy::kCheapest
                                            : directory::OrderBy::kFastest;
      // Rank 1-3: the depths the DBC walk actually visits most.
      const auto r = static_cast<std::uint32_t>(rng.uniform_int(1, 3));
      query_cost.add(static_cast<double>(dir.query(from, order, r).messages));
    }
    t.add_row({std::to_string(n),
               std::to_string(directory::query_message_cost(n)),
               stats::Table::num(query_cost.mean(), 2),
               stats::Table::num(query_cost.max(), 0),
               stats::Table::num(publish_cost.mean(), 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Read: measured rank-query cost tracks ceil(log2 n) (route) plus a\n"
      "small arc-walk term for the rank offset — the analytic charge used\n"
      "by Experiments 1-5 is the right order of magnitude at every size.\n");
  return 0;
}
