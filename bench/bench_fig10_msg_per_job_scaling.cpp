// Fig 10 — System scalability: min / average / max messages *per job* as
// the federation grows from 10 to 50 resources (Experiment 5).  The Java
// simulator stopped the authors at 50; we print the same range by default
// (and the harness can go far beyond — see examples/scaling_study).

#include "bench_common.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Fig 10",
                "Experiment 5 — message complexity per job vs system size "
                "(10..50 resources)");

  const std::vector<std::size_t> sizes{10, 20, 30, 40, 50};
  const std::vector<std::uint32_t> profiles{0, 10, 20, 30, 50, 100};
  const auto cfg = core::make_config(core::SchedulingMode::kEconomy);
  const auto points = core::run_scaling_study(cfg, sizes, profiles);

  for (const char* which : {"Min", "Average", "Max"}) {
    std::printf("(%c) %s messages per job vs system size\n\n",
                which[0] == 'M' && which[1] == 'i' ? 'a'
                : which[0] == 'A'                  ? 'b'
                                                   : 'c',
                which);
    std::vector<std::string> header{"System size"};
    for (const auto p : profiles) {
      header.push_back("OFT" + std::to_string(p) + "%");
    }
    stats::Table t(header);
    std::size_t idx = 0;
    for (const auto n : sizes) {
      std::vector<std::string> row{std::to_string(n)};
      for (std::size_t p = 0; p < profiles.size(); ++p, ++idx) {
        const auto& acc = points[idx].msgs_per_job;
        const double v = which[1] == 'i'   ? acc.min()
                         : which[0] == 'A' ? acc.mean()
                                           : acc.max();
        row.push_back(stats::Table::num(v, 2));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s\n", t.str().c_str());
  }
  std::printf("Paper reference (avg/job): OFC 5.55 -> 17.38 and OFT 10.65 "
              "-> 41.37 from size 10 to 50.\n");
  return 0;
}
