// Fig 10 — System scalability: min / average / max messages *per job* as
// the federation grows from 10 to 50 resources (Experiment 5).  The Java
// simulator stopped the authors at 50; we print the same range by default
// (and the harness can go far beyond — see examples/scaling_study).
// Also reports the auction-mode batching comparison (messages/job with
// and without batched solicitation) and, with --json=PATH, dumps a
// machine-readable summary for bench/run_bench.sh.
//
// Observability flags (builds with GRIDFED_TRACE, the default):
//   --trace=PATH      re-run the largest auction+coalition point with the
//                     event tracer on and write a Perfetto-loadable
//                     Chrome trace-event JSON
//   --metrics=PATH    same run, metrics time-series JSON (epoch-sampled
//                     counters/gauges/histograms + ledger columns)
//   --forensics=PATH  same run, per-clearing auction decision ledger
// The three flags share ONE observed run; the observed run never feeds
// the comparison tables (observation is one-way, but keeping it separate
// makes that visually obvious in the output too).

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cluster/catalog.hpp"
#include "core/federation.hpp"
#include "obs/observer.hpp"
#include "transport/tree_transport.hpp"
#include "workload/synthetic.hpp"

namespace {

// ---- membership churn sweep (--churn) ---------------------------------------
// Crashes a growing fraction of the federation mid-run (interior tree
// relay first, then evenly spread) under the heaviest configuration
// (auction + batching + tree + coalitions) and reports how gracefully
// acceptance degrades against the proportional-loss bound.

struct ChurnPoint {
  double loss_pct = 0.0;          ///< fraction of clusters crashed
  std::size_t crashed = 0;
  double accept_pct = 0.0;
  double degradation_pts = 0.0;   ///< vs the 0% baseline
  double proportional_pts = 0.0;  ///< the dead clusters' fair share
  double wire_msgs_per_job = 0.0;
  std::uint64_t gossip_msgs = 0;
  std::uint64_t repairs = 0;
  std::uint64_t replayed = 0;
  std::uint64_t reformations = 0;
  bool sound = false;  ///< exactly-once termination + balanced bank
};

gridfed::core::FederationConfig churn_config() {
  using namespace gridfed;
  auto cfg = core::make_config(core::SchedulingMode::kAuction);
  cfg.auction.batch_solicitations = true;
  cfg.auction.solicit_batch_window = bench::kBenchBatchWindow;
  cfg.transport.kind = transport::TransportKind::kTree;
  cfg.coalitions.enabled = true;
  cfg.coalitions.bucket_size = bench::kBenchCoalitionBucket;
  // Churn needs timeouts (hop- and epoch-aware over the tree).
  cfg.network_latency = 1.0;
  cfg.negotiate_timeout = 200.0;
  cfg.auction.bid_timeout = 200.0;
  cfg.membership.enabled = true;
  return cfg;
}

std::vector<ChurnPoint> churn_sweep(std::size_t size) {
  using namespace gridfed;
  const auto specs = cluster::replicated_specs(size);
  // Probe the deterministic topology once: the first victim should be
  // an interior relay so every sweep point exercises a tree repair.
  cluster::ResourceIndex relay = cluster::kNoResource;
  {
    core::Federation probe(churn_config(), specs);
    const auto* tree =
        dynamic_cast<const transport::TreeTransport*>(&probe.transport());
    for (cluster::ResourceIndex i = 0; i < size; ++i) {
      if (tree != nullptr && tree->interior_relay(i)) {
        relay = i;
        break;
      }
    }
  }

  std::vector<ChurnPoint> points;
  double base_accept = 0.0;
  for (const double loss : {0.0, 0.1, 0.2}) {
    auto cfg = churn_config();
    const auto k = static_cast<std::size_t>(loss * static_cast<double>(size));
    std::set<cluster::ResourceIndex> victims;
    if (k > 0 && relay != cluster::kNoResource) victims.insert(relay);
    for (std::size_t i = 0; victims.size() < k; ++i) {
      victims.insert(static_cast<cluster::ResourceIndex>(
          (i * size) / (k + 1) % size));
    }
    sim::SimTime when = 30000.0;
    for (const cluster::ResourceIndex site : victims) {
      cfg.membership.churn.events.push_back(membership::ChurnEvent{
          when, site, membership::ChurnKind::kCrash});
      when += 10000.0;
    }

    core::Federation fed(cfg, specs);
    const auto traces =
        workload::generate_federation_workload(specs, cfg.window, cfg.seed);
    std::uint64_t loaded = 0;
    for (const auto& t : traces) loaded += t.jobs.size();
    fed.load_workload(traces, workload::PopulationProfile{30});
    const auto result = fed.run();

    ChurnPoint p;
    p.loss_pct = 100.0 * loss;
    p.crashed = victims.size();
    p.accept_pct = result.acceptance_pct();
    if (loss == 0.0) base_accept = p.accept_pct;
    p.degradation_pts = base_accept - p.accept_pct;
    p.proportional_pts =
        100.0 * static_cast<double>(victims.size()) /
        static_cast<double>(size);
    p.wire_msgs_per_job = result.wire_msgs_per_job();
    if (const membership::MembershipService* m = fed.membership()) {
      p.gossip_msgs = m->telemetry().gossip_messages;
    }
    if (const auto* tree = dynamic_cast<const transport::TreeTransport*>(
            &fed.transport())) {
      p.repairs = tree->repairs();
      p.replayed = tree->replayed_solicitations();
    }
    if (const coalition::CoalitionManager* manager = fed.coalitions()) {
      p.reformations = manager->reformations().size();
    }
    std::set<cluster::JobId> seen;
    bool once = fed.outcomes().size() == loaded;
    for (const auto& o : fed.outcomes()) {
      if (!seen.insert(o.job.id).second) once = false;
    }
    p.sound = once && fed.bank().balanced();
    points.push_back(p);
  }
  return points;
}

// One observed 70/30 auction run at `size` clusters with batching, the
// tree overlay and coalitions on — the heaviest-instrumented
// configuration — dumping whichever artifacts were requested.
int run_observed(std::size_t size, const std::string& trace_path,
                 const std::string& metrics_path,
                 const std::string& forensics_path) {
  using namespace gridfed;
#if GRIDFED_TRACE
  auto cfg = core::make_config(core::SchedulingMode::kAuction);
  cfg.auction.batch_solicitations = true;
  cfg.auction.solicit_batch_window = bench::kBenchBatchWindow;
  cfg.transport.kind = transport::TransportKind::kTree;
  cfg.coalitions.enabled = true;
  cfg.coalitions.bucket_size = bench::kBenchCoalitionBucket;
  cfg.obs.trace = !trace_path.empty();
  cfg.obs.metrics = !metrics_path.empty();
  cfg.obs.forensics = !forensics_path.empty();

  const auto specs = cluster::replicated_specs(size);
  core::Federation fed(cfg, specs);
  fed.load_workload(
      workload::generate_federation_workload(specs, cfg.window, cfg.seed),
      workload::PopulationProfile{30});
  const auto result = fed.run();
  std::printf("Observed run (%zu clusters, auction+tree+coalitions): %llu "
              "wire msgs, %llu bytes, %.2f%% accepted\n",
              size, static_cast<unsigned long long>(result.total_messages),
              static_cast<unsigned long long>(result.total_message_bytes),
              result.acceptance_pct());

  const obs::Observer* obs = fed.observer();
  const auto dump = [](const std::string& path, const char* what,
                       auto&& write) {
    if (path.empty()) return true;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    write(out);
    std::printf("%s written to %s\n", what, path.c_str());
    return true;
  };
  bool ok = true;
  ok &= dump(trace_path, "Perfetto trace",
             [obs](std::ostream& o) { obs->trace()->write_chrome_trace(o); });
  ok &= dump(metrics_path, "Metrics time-series",
             [obs](std::ostream& o) { obs->metrics()->write_json(o); });
  ok &= dump(forensics_path, "Auction forensics",
             [obs](std::ostream& o) { obs->forensics()->write_json(o); });
  return ok ? 0 : 1;
#else
  (void)size;
  (void)trace_path;
  (void)metrics_path;
  (void)forensics_path;
  std::fprintf(stderr, "observability flags need a GRIDFED_TRACE=ON build\n");
  return 1;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gridfed;
  bench::banner("Fig 10",
                "Experiment 5 — message complexity per job vs system size "
                "(10..50 resources)");

  // --auction-only skips the economy sweep (the CI perf-smoke gate runs
  // just the transport comparison); --sizes=50 trims the point list.
  const bool auction_only = bench::has_flag(argc, argv, "--auction-only");
  const std::vector<std::size_t> sizes{10, 20, 30, 40, 50};
  const std::vector<std::uint32_t> profiles{0, 10, 20, 30, 50, 100};
  std::vector<core::FederationResult> points;
  if (!auction_only) {
    const auto cfg = core::make_config(core::SchedulingMode::kEconomy);
    points = core::run_scaling_study(cfg, sizes, profiles);
  }

  const std::vector<const char*> series =
      auction_only ? std::vector<const char*>{}
                   : std::vector<const char*>{"Min", "Average", "Max"};
  for (const char* which : series) {
    std::printf("(%c) %s messages per job vs system size\n\n",
                which[0] == 'M' && which[1] == 'i' ? 'a'
                : which[0] == 'A'                  ? 'b'
                                                   : 'c',
                which);
    std::vector<std::string> header{"System size"};
    for (const auto p : profiles) {
      header.push_back("OFT" + std::to_string(p) + "%");
    }
    stats::Table t(header);
    std::size_t idx = 0;
    for (const auto n : sizes) {
      std::vector<std::string> row{std::to_string(n)};
      for (std::size_t p = 0; p < profiles.size(); ++p, ++idx) {
        const auto& acc = points[idx].msgs_per_job;
        const double v = which[1] == 'i'   ? acc.min()
                         : which[0] == 'A' ? acc.mean()
                                           : acc.max();
        row.push_back(stats::Table::num(v, 2));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s\n", t.str().c_str());
  }
  if (!auction_only) {
    std::printf("Paper reference (avg/job): OFC 5.55 -> 17.38 and OFT 10.65 "
                "-> 41.37 from size 10 to 50.\n\n");
  }

  // ---- auction mode: batched vs per-job solicitation ----------------------
  std::printf("Auction mode (70/30 OFC/OFT): messages per job with batched "
              "bid solicitation\n(window %.0f s, per (origin, provider) "
              "coalescing)\n\n",
              bench::kBenchBatchWindow);
  const std::vector<std::size_t> auction_sizes =
      bench::sizes_arg(argc, argv, {8, 20, 50});
  const auto batching = bench::auction_batching_series(auction_sizes);
  stats::Table at({"System size", "Unbatched msgs/job", "Batched msgs/job",
                   "Reduction %", "Accept % (b)"});
  for (const auto& p : batching) {
    at.add_row({std::to_string(p.size),
                stats::Table::num(p.unbatched.msgs_per_job.mean(), 2),
                stats::Table::num(p.batched.msgs_per_job.mean(), 2),
                stats::Table::num(p.reduction_pct(), 1),
                stats::Table::num(p.batched.acceptance_pct(), 2)});
  }
  std::printf("%s\n", at.str().c_str());

  // ---- tree-overlay fan-out on top of batching ----------------------------
  std::printf("TreeTransport (k-ary overlay fan-out, epoch-shared edges) on "
              "top of batching.\nWire msgs/job is ledger-based (tree edge "
              "messages are shared across origins):\n\n");
  stats::Table tt({"System size", "Batched wire msgs/job",
                   "Tree wire msgs/job", "Reduction %", "Relay msgs",
                   "Tree KB/job", "Bid KB/job", "Bids pruned", "Prune %",
                   "Accept % (t)", "Resp delta %"});
  const auto bid_kb_per_job = [](const core::FederationResult& r) {
    const auto t = static_cast<std::size_t>(core::MessageType::kBid);
    return r.total_jobs ? static_cast<double>(r.bytes_by_type[t]) / 1024.0 /
                              static_cast<double>(r.total_jobs)
                        : 0.0;
  };
  // Prune ratio: tombstoned entries over all bid answers the books saw
  // (entered + tombstoned — report.bids counts both).
  const auto prune_pct = [](const core::FederationResult& r) {
    const double answers = r.auctions.bids_per_auction.sum();
    return answers > 0.0
               ? 100.0 * static_cast<double>(r.bids_pruned) / answers
               : 0.0;
  };
  for (const auto& p : batching) {
    const double resp_delta =
        p.batched.fed_response_excl.mean() > 0.0
            ? 100.0 * (p.tree.fed_response_excl.mean() /
                           p.batched.fed_response_excl.mean() -
                       1.0)
            : 0.0;
    tt.add_row({std::to_string(p.size),
                stats::Table::num(p.batched.wire_msgs_per_job(), 2),
                stats::Table::num(p.tree.wire_msgs_per_job(), 2),
                stats::Table::num(p.tree_reduction_pct(), 1),
                std::to_string(p.tree.overlay_relay_messages),
                stats::Table::num(p.tree.wire_bytes_per_job() / 1024.0, 2),
                stats::Table::num(bid_kb_per_job(p.tree), 2),
                std::to_string(p.tree.bids_pruned),
                stats::Table::num(prune_pct(p.tree), 1),
                stats::Table::num(p.tree.acceptance_pct(), 2),
                stats::Table::num(resp_delta, 2)});
  }
  std::printf("%s\n", tt.str().c_str());

  // ---- coalitions (participant layer) on top of the tree ------------------
  std::printf("Coalitions (ring buckets of %u bidding as one participant, "
              "group-addressed\ndissemination through representatives) on "
              "top of the tree overlay:\n\n",
              bench::kBenchCoalitionBucket);
  stats::Table ct({"System size", "Tree wire msgs/job",
                   "Coalition wire msgs/job", "Reduction %", "Coalitions",
                   "Local msgs", "Coal KB/job", "Accept % (c)",
                   "Resp delta %"});
  for (const auto& p : batching) {
    const double resp_delta =
        p.tree.fed_response_excl.mean() > 0.0
            ? 100.0 * (p.coalition.fed_response_excl.mean() /
                           p.tree.fed_response_excl.mean() -
                       1.0)
            : 0.0;
    ct.add_row({std::to_string(p.size),
                stats::Table::num(p.tree.wire_msgs_per_job(), 2),
                stats::Table::num(p.coalition.wire_msgs_per_job(), 2),
                stats::Table::num(p.coalition_reduction_pct(), 1),
                std::to_string(p.coalition.coalitions_formed),
                std::to_string(p.coalition.coalition_local_messages),
                stats::Table::num(p.coalition.wire_bytes_per_job() / 1024.0,
                                  2),
                stats::Table::num(p.coalition.acceptance_pct(), 2),
                stats::Table::num(resp_delta, 2)});
  }
  std::printf("%s\n", ct.str().c_str());

  std::printf("Per-type wire breakdown at the largest point (batched direct "
              "vs tree):\n\n");
  {
    const auto& p = batching.back();
    stats::Table bt({"Type", "Direct msgs", "Direct KB", "Tree msgs",
                     "Tree KB"});
    for (std::size_t t = 0; t < core::kMessageTypeCount; ++t) {
      bt.add_row({core::to_string(static_cast<core::MessageType>(t)),
                  std::to_string(p.batched.messages_by_type[t]),
                  stats::Table::num(
                      static_cast<double>(p.batched.bytes_by_type[t]) / 1024.0,
                      1),
                  std::to_string(p.tree.messages_by_type[t]),
                  stats::Table::num(
                      static_cast<double>(p.tree.bytes_by_type[t]) / 1024.0,
                      1)});
    }
    std::printf("%s\n", bt.str().c_str());
  }

  // ---- membership churn sweep (--churn) -----------------------------------
  std::vector<ChurnPoint> churn_points;
  if (bench::has_flag(argc, argv, "--churn")) {
    const std::size_t churn_size = auction_sizes.back();
    std::printf("Membership churn at %zu clusters (auction + batching + tree "
                "+ coalitions):\ncrashing 0/10/20%% of the federation "
                "mid-run, interior relay first.\n\n",
                churn_size);
    churn_points = churn_sweep(churn_size);
    stats::Table cht({"Loss %", "Crashed", "Accept %", "Degr. pts",
                      "Prop. pts", "Wire msgs/job", "Gossip msgs", "Repairs",
                      "Replayed", "Re-forms", "Sound"});
    for (const auto& p : churn_points) {
      cht.add_row({stats::Table::num(p.loss_pct, 0),
                   std::to_string(p.crashed),
                   stats::Table::num(p.accept_pct, 2),
                   stats::Table::num(p.degradation_pts, 2),
                   stats::Table::num(p.proportional_pts, 2),
                   stats::Table::num(p.wire_msgs_per_job, 2),
                   std::to_string(p.gossip_msgs), std::to_string(p.repairs),
                   std::to_string(p.replayed), std::to_string(p.reformations),
                   p.sound ? "yes" : "NO"});
    }
    std::printf("%s\n", cht.str().c_str());
  }

  std::printf("Award piggybacking on a %.0f s-latency WAN (awards overlap "
              "open solicitations\nand ride the flush for free):\n\n",
              bench::kBenchPiggybackLatency);
  stats::Table pt({"System size", "WAN batched msgs/job",
                   "+Piggyback msgs/job", "Reduction %", "Awards ridden",
                   "Accept % (p)"});
  for (const auto& p : batching) {
    pt.add_row({std::to_string(p.size),
                stats::Table::num(p.batched_wan.msgs_per_job.mean(), 2),
                stats::Table::num(p.piggyback.msgs_per_job.mean(), 2),
                stats::Table::num(p.piggyback_reduction_pct(), 1),
                std::to_string(p.piggyback.auctions.awards_piggybacked),
                stats::Table::num(p.piggyback.acceptance_pct(), 2)});
  }
  std::printf("%s\n", pt.str().c_str());

  // ---- sharded parallel kernel: 1-thread vs N-thread ----------------------
  // The Java simulator stopped the authors at 50 resources; the sharded
  // safe-window kernel is what carries this reproduction to 200 and 500.
  // Each point runs the batched-auction WAN configuration once on the
  // sequential engine and once on N worker threads and compares the
  // per-job outcome digests bitwise (see bench/README.md, "Parallel
  // kernel").  --par-sizes= trims the list, --threads= pins the worker
  // count (default: hardware concurrency).
  const unsigned hw = std::thread::hardware_concurrency();
  const std::uint32_t par_threads =
      bench::threads_arg(argc, argv, hw > 2 ? hw : 2);
  const std::vector<std::size_t> par_sizes =
      bench::sizes_arg(argc, argv, {50, 200, 500}, "par-sizes");
  struct ParRow {
    bench::ParallelRunPoint seq;
    bench::ParallelRunPoint par;
  };
  std::vector<ParRow> par_rows;
  if (!bench::has_flag(argc, argv, "--no-parallel")) {
    std::printf("Sharded parallel kernel (auction + batching, sqrt(2)-s "
                "WAN): the sequential engine vs %u worker threads on %u "
                "CPUs.\nDigests compare per-job outcomes bitwise:\n\n",
                par_threads, hw);
    par_rows.reserve(par_sizes.size());
    for (const std::size_t n : par_sizes) {
      ParRow row;
      row.seq = bench::parallel_kernel_run(n, 0);
      row.par = bench::parallel_kernel_run(n, par_threads);
      par_rows.push_back(row);
    }
    stats::Table plt({"System size", "Jobs", "1-thread s", "N-thread s",
                      "Speedup", "Shards", "Windows", "Accept %",
                      "Digests"});
    for (const ParRow& r : par_rows) {
      const double speedup =
          r.par.seconds > 0.0 ? r.seq.seconds / r.par.seconds : 0.0;
      plt.add_row({std::to_string(r.seq.size), std::to_string(r.seq.jobs),
                   stats::Table::num(r.seq.seconds, 3),
                   stats::Table::num(r.par.seconds, 3),
                   stats::Table::num(speedup, 2),
                   std::to_string(r.par.shards),
                   std::to_string(r.par.windows),
                   stats::Table::num(r.par.accept_pct, 2),
                   r.seq.digest == r.par.digest ? "match" : "DIVERGED"});
    }
    std::printf("%s\n", plt.str().c_str());
  }

  const std::string json = bench::json_path(argc, argv);
  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"artifact\": \"fig10\",\n");
    if (!auction_only) {
      std::fprintf(f, "  \"economy_msgs_per_job_mean\": {");
      std::size_t idx = 0;
      for (std::size_t s = 0; s < sizes.size(); ++s) {
        std::fprintf(f, "%s\"%zu\": [", s == 0 ? "" : ", ", sizes[s]);
        for (std::size_t p = 0; p < profiles.size(); ++p, ++idx) {
          std::fprintf(f, "%s%.4f", p == 0 ? "" : ", ",
                       points[idx].msgs_per_job.mean());
        }
        std::fprintf(f, "]");
      }
      std::fprintf(f, "},\n");
    }
    std::fprintf(f, "  \"auction_batching\": {\"oft_percent\": 30, "
                    "\"batch_window_s\": %.1f, \"points\": [\n",
                 bench::kBenchBatchWindow);
    const auto by_type = [f](const char* key,
                             const core::FederationResult& r) {
      std::fprintf(f, "     \"%s\": {", key);
      for (std::size_t t = 0; t < core::kMessageTypeCount; ++t) {
        std::fprintf(
            f, "%s\"%s\": {\"msgs\": %llu, \"bytes\": %llu}",
            t == 0 ? "" : ", ",
            core::to_string(static_cast<core::MessageType>(t)),
            static_cast<unsigned long long>(r.messages_by_type[t]),
            static_cast<unsigned long long>(r.bytes_by_type[t]));
      }
      std::fprintf(f, "}");
    };
    for (std::size_t i = 0; i < batching.size(); ++i) {
      const auto& p = batching[i];
      std::fprintf(
          f,
          "    {\"size\": %zu, \"unbatched_msgs_per_job\": %.4f, "
          "\"batched_msgs_per_job\": %.4f, \"reduction_pct\": %.2f, "
          "\"tree_wire_msgs_per_job\": %.4f, "
          "\"batched_wire_msgs_per_job\": %.4f, "
          "\"batched_bytes_per_job\": %.4f, "
          "\"tree_bytes_per_job\": %.4f, "
          "\"coalition_bytes_per_job\": %.4f, "
          "\"tree_reduction_pct\": %.2f, "
          "\"tree_relay_messages\": %llu, "
          "\"tree_accept_pct\": %.2f, "
          "\"tree_mean_response_s\": %.2f, "
          "\"batched_mean_response_s\": %.2f, "
          "\"coalition_wire_msgs_per_job\": %.4f, "
          "\"coalition_reduction_pct\": %.2f, "
          "\"coalitions_formed\": %zu, "
          "\"coalition_local_messages\": %llu, "
          "\"coalition_awards\": %llu, "
          "\"coalition_accept_pct\": %.2f, "
          "\"coalition_mean_response_s\": %.2f, "
          "\"wan_batched_msgs_per_job\": %.4f, "
          "\"wan_piggyback_msgs_per_job\": %.4f, "
          "\"piggyback_reduction_pct\": %.2f, "
          "\"awards_piggybacked\": %llu, "
          "\"unbatched_accept_pct\": %.2f, \"batched_accept_pct\": %.2f, "
          "\"piggyback_accept_pct\": %.2f, "
          "\"bids_per_auction_unbatched\": %.4f, "
          "\"bids_per_auction_batched\": %.4f, "
          "\"bids_per_auction_tree\": %.4f, "
          "\"tree_bid_bytes_per_job\": %.4f, "
          "\"batched_bid_bytes_per_job\": %.4f, "
          "\"tree_bids_pruned\": %llu, "
          "\"tree_bid_prune_pct\": %.2f, "
          "\"tree_bid_prune_bytes_saved\": %llu,\n",
          p.size, p.unbatched.msgs_per_job.mean(),
          p.batched.msgs_per_job.mean(), p.reduction_pct(),
          p.tree.wire_msgs_per_job(), p.batched.wire_msgs_per_job(),
          p.batched.wire_bytes_per_job(), p.tree.wire_bytes_per_job(),
          p.coalition.wire_bytes_per_job(),
          p.tree_reduction_pct(),
          static_cast<unsigned long long>(p.tree.overlay_relay_messages),
          p.tree.acceptance_pct(), p.tree.fed_response_excl.mean(),
          p.batched.fed_response_excl.mean(),
          p.coalition.wire_msgs_per_job(), p.coalition_reduction_pct(),
          p.coalition.coalitions_formed,
          static_cast<unsigned long long>(
              p.coalition.coalition_local_messages),
          static_cast<unsigned long long>(p.coalition.coalition_awards),
          p.coalition.acceptance_pct(),
          p.coalition.fed_response_excl.mean(),
          p.batched_wan.msgs_per_job.mean(),
          p.piggyback.msgs_per_job.mean(), p.piggyback_reduction_pct(),
          static_cast<unsigned long long>(
              p.piggyback.auctions.awards_piggybacked),
          p.unbatched.acceptance_pct(), p.batched.acceptance_pct(),
          p.piggyback.acceptance_pct(),
          p.unbatched.auctions.bids_per_auction.mean(),
          p.batched.auctions.bids_per_auction.mean(),
          p.tree.auctions.bids_per_auction.mean(),
          bid_kb_per_job(p.tree) * 1024.0, bid_kb_per_job(p.batched) * 1024.0,
          static_cast<unsigned long long>(p.tree.bids_pruned),
          prune_pct(p.tree),
          static_cast<unsigned long long>(p.tree.bid_prune_bytes_saved));
      by_type("batched_by_type", p.batched);
      std::fprintf(f, ",\n");
      by_type("tree_by_type", p.tree);
      std::fprintf(f, "}%s\n", i + 1 < batching.size() ? "," : "");
    }
    std::fprintf(f, "  ]}%s\n",
                 churn_points.empty() && par_rows.empty() ? "" : ",");
    if (!churn_points.empty()) {
      std::fprintf(f, "  \"churn_sweep\": {\"size\": %zu, \"points\": [\n",
                   auction_sizes.back());
      for (std::size_t i = 0; i < churn_points.size(); ++i) {
        const auto& p = churn_points[i];
        std::fprintf(
            f,
            "    {\"loss_pct\": %.1f, \"crashed\": %zu, "
            "\"accept_pct\": %.2f, \"degradation_pts\": %.2f, "
            "\"proportional_pts\": %.2f, \"wire_msgs_per_job\": %.4f, "
            "\"gossip_msgs\": %llu, \"tree_repairs\": %llu, "
            "\"replayed_solicitations\": %llu, "
            "\"coalition_reformations\": %llu, \"sound\": %s}%s\n",
            p.loss_pct, p.crashed, p.accept_pct, p.degradation_pts,
            p.proportional_pts, p.wire_msgs_per_job,
            static_cast<unsigned long long>(p.gossip_msgs),
            static_cast<unsigned long long>(p.repairs),
            static_cast<unsigned long long>(p.replayed),
            static_cast<unsigned long long>(p.reformations),
            p.sound ? "true" : "false",
            i + 1 < churn_points.size() ? "," : "");
      }
      std::fprintf(f, "  ]}%s\n", par_rows.empty() ? "" : ",");
    }
    if (!par_rows.empty()) {
      std::fprintf(f,
                   "  \"parallel_scaling\": {\"num_cpus\": %u, "
                   "\"threads\": %u, \"latency_s\": %.16f, \"points\": [\n",
                   hw, par_threads, bench::kBenchParallelLatency);
      for (std::size_t i = 0; i < par_rows.size(); ++i) {
        const ParRow& r = par_rows[i];
        const double speedup =
            r.par.seconds > 0.0 ? r.seq.seconds / r.par.seconds : 0.0;
        std::fprintf(
            f,
            "    {\"size\": %zu, \"jobs\": %llu, "
            "\"seq_seconds\": %.4f, \"par_seconds\": %.4f, "
            "\"speedup\": %.4f, \"shards\": %u, \"windows\": %llu, "
            "\"accept_pct\": %.2f, \"msgs_per_job\": %.4f, "
            "\"outcomes_match\": %s}%s\n",
            r.seq.size, static_cast<unsigned long long>(r.seq.jobs),
            r.seq.seconds, r.par.seconds, speedup, r.par.shards,
            static_cast<unsigned long long>(r.par.windows), r.par.accept_pct,
            r.par.msgs_per_job,
            r.seq.digest == r.par.digest ? "true" : "false",
            i + 1 < par_rows.size() ? "," : "");
      }
      std::fprintf(f, "  ]}\n");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("JSON summary written to %s\n", json.c_str());
  }

  const std::string trace_path = bench::path_arg(argc, argv, "trace");
  const std::string metrics_path = bench::path_arg(argc, argv, "metrics");
  const std::string forensics_path = bench::path_arg(argc, argv, "forensics");
  if (!trace_path.empty() || !metrics_path.empty() ||
      !forensics_path.empty()) {
    return run_observed(auction_sizes.back(), trace_path, metrics_path,
                        forensics_path);
  }
  return 0;
}
