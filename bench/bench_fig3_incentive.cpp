// Fig 3 — Resource owner perspective.
// (a) total incentive (Grid Dollars) per resource vs population profile;
// (b) number of remote jobs serviced per resource vs population profile.

#include "bench_common.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Fig 3",
                "Experiment 3 — owner incentive and remote service vs "
                "population profile (OFT = 0..100%)");

  const auto& sweep = bench::economy_sweep();
  const auto& names = sweep.front().resources;

  std::printf("(a) Total incentive (Grid Dollars) vs user population profile\n\n");
  std::vector<std::string> header{"Resource"};
  for (const auto& r : sweep) {
    header.push_back("OFT" + std::to_string(r.oft_percent) + "%");
  }
  stats::Table a(header);
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> row{names[i].name};
    for (const auto& r : sweep) {
      row.push_back(stats::Table::sci(r.resources[i].incentive, 2));
    }
    a.add_row(std::move(row));
  }
  std::printf("%s\n", a.str().c_str());

  std::printf("Federation total incentive: OFC-only %s vs OFT-only %s Grid$ "
              "(paper: 2.12e9 vs 2.30e9)\n\n",
              stats::Table::sci(sweep.front().total_incentive, 3).c_str(),
              stats::Table::sci(sweep.back().total_incentive, 3).c_str());

  std::printf("(b) No. of remote jobs serviced vs user population profile\n\n");
  stats::Table b(header);
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> row{names[i].name};
    for (const auto& r : sweep) {
      row.push_back(std::to_string(r.resources[i].remote_processed));
    }
    b.add_row(std::move(row));
  }
  std::printf("%s\n", b.str().c_str());
  return 0;
}
