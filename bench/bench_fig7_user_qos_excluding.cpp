// Fig 7 — Federation user perspective, excluding rejected jobs.
// (a) average response time per resource vs population profile;
// (b) average budget spent per resource vs population profile.

#include "bench_common.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Fig 7",
                "Experiment 3 — user QoS (response time, budget spent) "
                "excluding rejected jobs");

  const auto& sweep = bench::economy_sweep();
  std::vector<std::string> header{"Resource"};
  for (const auto& r : sweep) {
    header.push_back("OFT" + std::to_string(r.oft_percent) + "%");
  }

  std::printf("(a) Average response time (sim seconds) vs profile\n\n");
  stats::Table a(header);
  for (std::size_t i = 0; i < sweep.front().resources.size(); ++i) {
    std::vector<std::string> row{sweep.front().resources[i].name};
    for (const auto& r : sweep) {
      row.push_back(stats::Table::sci(r.resources[i].response_excl.mean(), 2));
    }
    a.add_row(std::move(row));
  }
  std::printf("%s\n", a.str().c_str());

  std::printf("(b) Average budget spent (Grid Dollars) vs profile\n\n");
  stats::Table b(header);
  for (std::size_t i = 0; i < sweep.front().resources.size(); ++i) {
    std::vector<std::string> row{sweep.front().resources[i].name};
    for (const auto& r : sweep) {
      row.push_back(stats::Table::sci(r.resources[i].budget_excl.mean(), 2));
    }
    b.add_row(std::move(row));
  }
  std::printf("%s\n", b.str().c_str());

  std::printf("Shape checks vs paper:\n"
              "  - response time falls as OFT share rises (users buy speed)\n"
              "  - budget spent rises with OFT share (speed costs more)\n");
  return 0;
}
