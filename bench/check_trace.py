#!/usr/bin/env python3
"""CI lint for exported Perfetto/Chrome trace-event JSON.

Validates a trace produced by the obs::Tracer Chrome exporter
(bench_fig10_msg_per_job_scaling --trace=PATH, or any gridfed binary
that calls write_chrome_trace):

  * the document parses as JSON and has a traceEvents list;
  * every event carries ph/pid/tid/ts with sane types, and the phase is
    one of the shapes the exporter emits (M metadata, b/e async span
    boundaries, i instants);
  * every track (pid) is labelled by exactly one process_name metadata
    event, and no event uses pid 0 (Perfetto reserves it);
  * timestamps are monotone in file order (the tracer appends in
    simulation order, so an out-of-order ts means a buggy exporter or a
    clock that ran backwards);
  * async spans nest: every "e" closes a currently-open "b" with the
    same (cat, id, pid) key, no span is opened twice without closing,
    and nothing is left open at end of trace.

Usage: check_trace.py TRACE.json [--min-events N]
Exits nonzero with a description of the first violation.
"""

import json
import sys


SPAN_KINDS = {"job", "enquiry", "hold", "placement", "auction",
              "solicit_flush", "bid", "fanout_epoch", "relay",
              "convergecast", "coalition_formed", "coalition_place",
              "churn", "suspicion", "tree_repair", "coalition_reform",
              "bid_prune"}


def fail(msg):
    sys.exit(f"check_trace: FAIL: {msg}")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    path = sys.argv[1]
    min_events = 1
    if "--min-events" in sys.argv[2:]:
        min_events = int(sys.argv[sys.argv.index("--min-events") + 1])

    try:
        doc = json.load(open(path))
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path} is not readable JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("no traceEvents list")

    labelled = {}       # pid -> track name (from process_name metadata)
    open_spans = {}     # (cat, id, pid) -> opening ts
    last_ts = None
    counts = {"M": 0, "b": 0, "e": 0, "i": 0}

    for n, ev in enumerate(events):
        where = f"event #{n}"
        if not isinstance(ev, dict):
            fail(f"{where} is not an object")
        ph = ev.get("ph")
        if ph not in counts:
            fail(f"{where}: unexpected phase {ph!r}")
        counts[ph] += 1
        pid, tid = ev.get("pid"), ev.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            fail(f"{where}: pid/tid missing or non-integer")
        if pid == 0:
            fail(f"{where}: pid 0 is reserved")

        if ph == "M":
            if ev.get("name") != "process_name":
                fail(f"{where}: unexpected metadata {ev.get('name')!r}")
            name = ev.get("args", {}).get("name")
            if not name:
                fail(f"{where}: process_name without args.name")
            if pid in labelled:
                fail(f"{where}: pid {pid} labelled twice")
            labelled[pid] = name
            continue

        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where}: bad ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(f"{where}: ts {ts} < preceding {last_ts} "
                 "(append order must be simulation order)")
        last_ts = ts
        if pid not in labelled:
            fail(f"{where}: pid {pid} used before its process_name")
        cat = ev.get("cat")
        if cat not in SPAN_KINDS:
            fail(f"{where}: unknown category {cat!r}")

        if ph in ("b", "e"):
            span_id = ev.get("id")
            if not isinstance(span_id, str) or not span_id.startswith("0x"):
                fail(f"{where}: async event without a 0x… id")
            key = (cat, span_id, pid)
            if ph == "b":
                if key in open_spans:
                    fail(f"{where}: span {key} opened twice")
                open_spans[key] = ts
            else:
                if key not in open_spans:
                    fail(f"{where}: end without open begin for {key}")
                if ts < open_spans[key]:
                    fail(f"{where}: span {key} ends before it begins")
                del open_spans[key]

    if open_spans:
        sample = sorted(open_spans)[:5]
        fail(f"{len(open_spans)} span(s) left open at end of trace, "
             f"e.g. {sample}")
    if counts["b"] != counts["e"]:
        fail(f"begin/end imbalance: {counts['b']} b vs {counts['e']} e")
    payload = counts["b"] + counts["e"] + counts["i"]
    if payload < min_events:
        fail(f"only {payload} payload events (< {min_events}) — "
             "was the run actually traced?")

    print(f"check_trace: OK — {len(labelled)} tracks, {counts['b']} spans, "
          f"{counts['i']} instants, ts monotone, all spans closed")


if __name__ == "__main__":
    main()
