// Fig 8 — Federation user perspective, including rejected jobs (charged
// at their origin-resource estimate), plus the without-federation
// reference points the paper quotes for NASA iPSC / LANL Origin.

#include "baselines/independent.hpp"
#include "bench_common.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Fig 8",
                "Experiment 3 — user QoS including rejected jobs, with "
                "without-federation reference points");

  const auto& sweep = bench::economy_sweep();
  std::vector<std::string> header{"Resource"};
  for (const auto& r : sweep) {
    header.push_back("OFT" + std::to_string(r.oft_percent) + "%");
  }

  std::printf("(a) Average response time (sim seconds), incl. rejected\n\n");
  stats::Table a(header);
  for (std::size_t i = 0; i < sweep.front().resources.size(); ++i) {
    std::vector<std::string> row{sweep.front().resources[i].name};
    for (const auto& r : sweep) {
      row.push_back(stats::Table::sci(r.resources[i].response_incl.mean(), 2));
    }
    a.add_row(std::move(row));
  }
  std::printf("%s\n", a.str().c_str());

  std::printf("(b) Average budget spent (Grid Dollars), incl. rejected\n\n");
  stats::Table b(header);
  for (std::size_t i = 0; i < sweep.front().resources.size(); ++i) {
    std::vector<std::string> row{sweep.front().resources[i].name};
    for (const auto& r : sweep) {
      row.push_back(stats::Table::sci(r.resources[i].budget_incl.mean(), 2));
    }
    b.add_row(std::move(row));
  }
  std::printf("%s\n", b.str().c_str());

  // Without-federation reference points (paper §3.7.3): the most popular
  // resources' local users fare *worse* inside the federation.
  const auto indep = baselines::run_independent();
  const auto nasa = cluster::catalog_index("NASA iPSC");
  const auto origin = cluster::catalog_index("LANL Origin");
  const auto& oft100 = sweep.back();
  const auto& ofc100 = sweep.front();

  std::printf("Reference points (local users of the most popular resources):\n");
  std::printf("  NASA iPSC avg response: %.4g (independent) vs %.4g "
              "(federation, 100%% OFT)   [paper: 1.268e3 vs 1.550e3]\n",
              indep.resources[nasa].response_excl.mean(),
              oft100.resources[nasa].response_excl.mean());
  std::printf("  LANL Origin avg budget: %.4g (independent) vs %.4g "
              "(federation, 100%% OFC)   [paper: 4.851e5 vs 5.189e5]\n",
              indep.resources[origin].budget_excl.mean(),
              ofc100.resources[origin].budget_excl.mean());
  std::printf("  Federation-wide avg budget (incl. rejected) 100%% OFC: %.4g "
              "vs independent %.4g  [paper: 8.874e5 vs 9.359e5]\n",
              ofc100.fed_budget_incl.mean(), indep.fed_budget_incl.mean());
  std::printf("  Federation-wide avg response (incl. rejected) 100%% OFT: "
              "%.4g vs independent %.4g  [paper: 1.171e4 vs 1.207e4]\n",
              oft100.fed_response_incl.mean(),
              indep.fed_response_incl.mean());
  return 0;
}
