// Ablation X5 — dynamic supply/demand pricing (paper §5 future work).
// Owners reprice hourly toward a utilization target; popular resources
// become expensive, idle ones cheap, which should spread OFC demand off
// the single cheapest cluster and even out incentives.

#include "bench_common.hpp"

using namespace gridfed;

namespace {
double incentive_spread(const core::FederationResult& r) {
  // max/min incentive ratio across owners (1 = perfectly even).
  double lo = 1e300, hi = 0.0;
  for (const auto& row : r.resources) {
    lo = std::min(lo, row.incentive);
    hi = std::max(hi, row.incentive);
  }
  return lo > 0.0 ? hi / lo : std::numeric_limits<double>::infinity();
}

void report(const char* label, const core::FederationResult& r) {
  std::printf("%-26s total-incentive=%s  spread(max/min)=%8.2f  "
              "msgs=%7llu  accept=%6.2f%%\n",
              label, stats::Table::sci(r.total_incentive, 3).c_str(),
              incentive_spread(r),
              static_cast<unsigned long long>(r.total_messages),
              r.acceptance_pct());
}
}  // namespace

int main() {
  bench::banner("Ablation X5",
                "Static quotes vs dynamic supply/demand pricing");

  for (const std::uint32_t oft : {0u, 30u, 100u}) {
    std::printf("Population OFT=%u%%\n", oft);
    auto cfg = core::make_config(core::SchedulingMode::kEconomy);
    cfg.dynamic_pricing = false;
    report("  static quotes (paper)", core::run_experiment(cfg, 8, oft));

    cfg.dynamic_pricing = true;
    cfg.pricing.eta = 0.5;
    cfg.pricing.period = 3600.0;
    report("  dynamic pricing", core::run_experiment(cfg, 8, oft));
    std::printf("\n");
  }
  std::printf("Expected: dynamic pricing narrows the incentive spread under\n"
              "skewed demand (pure OFC/OFT) by repricing the flooded\n"
              "resources upward.\n");
  return 0;
}
