// Market-extension bench: sealed-bid reverse auctions (kAuction) vs the
// paper's posted-price DBC economy (kEconomy) over the Table 1 federation
// and calibrated two-day workload.
//
// Reports the paper's three headline series side by side — messages per
// job, mean utilization, and total owner incentive — for the economy
// baseline and both auction clearing rules, plus the auction-only
// telemetry (book thickness, fill rate, clearing prices).  Vickrey runs
// settle the second-lowest ask: winners earn a surplus over their ask, and
// thin books (a lone feasible bid) settle at the budget reserve, so total
// incentive is expected to sit above first-price.

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"

namespace {

struct Series {
  const char* label;
  gridfed::core::FederationResult result;
};

double mean_utilization(const gridfed::core::FederationResult& r) {
  double sum = 0.0;
  for (const auto& row : r.resources) sum += row.utilization;
  return r.resources.empty() ? 0.0 : sum / static_cast<double>(r.resources.size());
}

}  // namespace

int main() {
  using namespace gridfed;

  bench::banner("market auction",
                "kAuction (first-price, Vickrey) vs kEconomy: messages, "
                "utilization, incentive");

  const std::uint32_t oft = 30;  // the paper's recommended 70/30 mix

  auto economy = core::make_config(core::SchedulingMode::kEconomy);
  auto first_price = core::make_config(core::SchedulingMode::kAuction);
  first_price.auction.clearing = market::ClearingRule::kFirstPrice;
  auto vickrey = core::make_config(core::SchedulingMode::kAuction);
  vickrey.auction.clearing = market::ClearingRule::kVickrey;

  const Series series[] = {
      {"economy (DBC)", core::run_experiment(economy, 8, oft)},
      {"auction/first-price", core::run_experiment(first_price, 8, oft)},
      {"auction/vickrey", core::run_experiment(vickrey, 8, oft)},
  };

  stats::Table headline({"Mode", "Msgs/job", "Total msgs", "Util (mean)",
                         "Accept %", "Total incentive"});
  for (const auto& s : series) {
    headline.add_row({s.label,
                      stats::Table::num(s.result.msgs_per_job.mean(), 2),
                      std::to_string(s.result.total_messages),
                      stats::Table::num(100.0 * mean_utilization(s.result), 2),
                      stats::Table::num(s.result.acceptance_pct(), 2),
                      stats::Table::sci(s.result.total_incentive, 3)});
  }
  std::printf("%s\n", headline.str().c_str());

  stats::Table market_t({"Mode", "Auctions", "Fill %", "Bids/auction",
                         "Clearing price (mean)", "Winner surplus (mean)",
                         "Cleared empty"});
  for (const auto& s : series) {
    const auto& a = s.result.auctions;
    market_t.add_row({s.label, std::to_string(a.held),
                      stats::Table::num(100.0 * a.fill_rate(), 2),
                      stats::Table::num(a.bids_per_auction.mean(), 2),
                      stats::Table::sci(a.clearing_price.mean(), 3),
                      stats::Table::sci(a.winner_surplus.mean(), 3),
                      std::to_string(a.unfilled)});
  }
  std::printf("%s\n", market_t.str().c_str());

  // Per-owner incentive: does the auction spread earnings differently?
  stats::Table incentive({"Resource", "economy", "first-price", "vickrey"});
  for (std::size_t i = 0; i < series[0].result.resources.size(); ++i) {
    incentive.add_row({series[0].result.resources[i].name,
                       stats::Table::sci(series[0].result.resources[i].incentive, 3),
                       stats::Table::sci(series[1].result.resources[i].incentive, 3),
                       stats::Table::sci(series[2].result.resources[i].incentive, 3)});
  }
  std::printf("%s\n", incentive.str().c_str());

  std::printf("auction message overhead vs economy: %.2fx (first-price), "
              "%.2fx (vickrey)\n",
              series[1].result.msgs_per_job.mean() /
                  series[0].result.msgs_per_job.mean(),
              series[2].result.msgs_per_job.mean() /
                  series[0].result.msgs_per_job.mean());
  return 0;
}
