// Fig 5 — Resource owner perspective: job processing characteristics
// (jobs processed locally vs migrated to the federation) per resource,
// across population profiles.

#include "bench_common.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Fig 5",
                "Experiment 3 — local vs migrated jobs per resource vs "
                "population profile");

  const auto& sweep = bench::economy_sweep();
  for (const auto& r : sweep) {
    std::printf("Profile %s\n", bench::profile_label(r.oft_percent).c_str());
    stats::Table t({"Resource", "Total", "Processed Locally", "Migrated",
                    "Migration rate (%)"});
    for (const auto& row : r.resources) {
      const double rate =
          row.accepted ? 100.0 * row.migrated / row.accepted : 0.0;
      t.add_row({row.name, std::to_string(row.total_jobs),
                 std::to_string(row.processed_locally),
                 std::to_string(row.migrated), stats::Table::num(rate, 1)});
    }
    std::printf("%s\n", t.str().c_str());
  }
  return 0;
}
