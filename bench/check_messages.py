#!/usr/bin/env python3
"""CI gate for the message-scaling trajectory.

Compares a freshly measured fig10 JSON (bench_fig10_msg_per_job_scaling
--json=...) against the checked-in BENCH_messages.json and fails when
messages/job OR bytes/job regressed by more than the tolerance on any
point present in both files — on the batched direct transport, the tree
transport (the PR 4 headline), AND the coalition mode riding the tree
(the PR 5 group-addressed dissemination).  The bytes/job columns gate
the wire-size model end-to-end: a payload-bloating change that keeps
message counts flat still fails here.  Points are matched by federation
size, so the CI smoke run may measure only the 50-cluster point.  A
metric missing from the baseline (an older BENCH_messages.json) is
skipped, so adding a mode never breaks existing baselines.

When either file carries a "parallel_scaling" section (the sharded
safe-window kernel sweep, including the 200- and 500-cluster columns),
it is gated too: outcome digests must match the sequential engine
unconditionally, and the N-thread column must beat the 1-thread column
at 50+ clusters — but only when the measuring host reported >= 2 CPUs,
so a single-core CI runner still gates correctness without failing on
wall-clock it cannot express.  Points recorded by newer binaries also
carry "fel_digest_match" — the sequential engine re-run with the ladder
future-event list must reproduce the heap-path digest bitwise — and
that pin is gated unconditionally too.

Usage: check_messages.py MEASURED.json CHECKED_IN.json [tolerance_pct]
"""

import json
import sys


def points(doc):
    # BENCH_messages.json nests fig10 under "fig10"; a bare fig10 dump
    # is the artifact itself.
    fig10 = doc.get("fig10", doc)
    if "auction_batching" not in fig10:  # bare parallel_kernel dump
        return {}
    return {p["size"]: p for p in fig10["auction_batching"]["points"]}


def parallel_scaling(doc):
    # The sharded-kernel sweep: inside the fig10 artifact as
    # "parallel_scaling", or a standalone bench_parallel_kernel dump
    # ("artifact": "parallel_kernel").  Returns None when the file
    # predates the parallel kernel.
    if doc.get("artifact") == "parallel_kernel":
        return doc
    return doc.get("fig10", doc).get("parallel_scaling")


METRICS = ("batched_msgs_per_job", "tree_wire_msgs_per_job",
           "coalition_wire_msgs_per_job",
           # bytes/job per transport column (wire-size model)
           "batched_bytes_per_job", "tree_bytes_per_job",
           "coalition_bytes_per_job",
           # kBid bytes/job on the tree (the convergecast prune + delta
           # encoding headline — a regression here means the compact
           # frame accounting degraded even if totals still pass)
           "tree_bid_bytes_per_job")

# Hard invariants checked within the MEASURED file alone (no baseline
# needed): the pruned + delta-encoded convergecast must keep the tree's
# total bytes/job at or below the batched direct transport's at EVERY
# federation size, with acceptance unchanged — the whole point of the
# overlay is paying fewer bytes, not just fewer messages.  The same 5%
# tolerance bounds measurement wiggle.


def invariant_failures(measured, tolerance):
    failures = []
    for size, point in sorted(measured.items()):
        if "tree_bytes_per_job" not in point or \
           "batched_bytes_per_job" not in point:
            continue
        limit = point["batched_bytes_per_job"] * (1.0 + tolerance / 100.0)
        ok = point["tree_bytes_per_job"] <= limit
        print(f"size {size:>3} tree_bytes_per_job {point['tree_bytes_per_job']:10.1f}"
              f" <= batched_bytes_per_job {point['batched_bytes_per_job']:10.1f}"
              f" (+{tolerance:.0f}%)  {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append((size, "tree_bytes_per_job>batched_bytes_per_job"))
    return failures


# Gates on the sharded-kernel sweep.  Digest equality is unconditional:
# a parallel run whose outcomes diverge from the sequential engine fails
# no matter what the clock says.  The speedup floor is hardware-aware —
# the artifact records the measuring host's CPU count, and the floor
# (N threads must beat 1 thread at 50+ clusters) only binds when that
# host could actually run threads in parallel; a 1-CPU container still
# gates correctness but not wall-clock.  Against the baseline, a >5%
# (tolerance) speedup regression fails when BOTH files were measured
# multi-core, including the 200- and 500-cluster columns when present.


def parallel_failures(measured, baseline, tolerance):
    failures = []
    checks = 0
    if measured is None:
        return failures, checks
    cpus = measured.get("num_cpus", 0)
    base_points = {}
    base_cpus = 0
    if baseline is not None:
        base_points = {p["size"]: p for p in baseline.get("points", [])}
        base_cpus = baseline.get("num_cpus", 0)
    for point in measured.get("points", []):
        size = point["size"]
        checks += 1
        if not point.get("outcomes_match", False):
            print(f"size {size:>3} parallel outcomes DIVERGED from the "
                  f"sequential engine  FAIL")
            failures.append((size, "parallel_outcomes_diverged"))
            continue
        # FEL backend pin (newer artifacts only): the sequential engine
        # re-run with the ladder future-event list forced on must match
        # the heap-path digest bitwise.  Missing from older files — the
        # gate, like the metric gates above, never breaks old baselines.
        if "fel_digest_match" in point:
            checks += 1
            if not point["fel_digest_match"]:
                print(f"size {size:>3} ladder-FEL outcomes DIVERGED from "
                      f"the heap path  FAIL")
                failures.append((size, "fel_digest_diverged"))
                continue
        speedup = point.get("speedup", 0.0)
        if cpus >= 2 and size >= 50:
            checks += 1
            ok = speedup >= 1.0
            print(f"size {size:>3} parallel speedup {speedup:6.2f}x >= 1.00x"
                  f" ({cpus} CPUs)  {'ok' if ok else 'FAIL'}")
            if not ok:
                failures.append((size, "parallel_speedup<1"))
        elif cpus < 2:
            print(f"size {size:>3} parallel speedup {speedup:6.2f}x "
                  f"(outcomes match; floor skipped: {cpus} CPU host)")
        base = base_points.get(size)
        if base is not None and cpus >= 2 and base_cpus >= 2:
            checks += 1
            floor = base.get("speedup", 0.0) * (1.0 - tolerance / 100.0)
            ok = speedup >= floor
            print(f"size {size:>3} parallel speedup {speedup:6.2f}x vs "
                  f"baseline {base.get('speedup', 0.0):6.2f}x "
                  f"(-{tolerance:.0f}% floor {floor:6.2f}x)  "
                  f"{'ok' if ok else 'FAIL'}")
            if not ok:
                failures.append((size, "parallel_speedup_regressed"))
    return failures, checks


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    measured_doc = json.load(open(sys.argv[1]))
    baseline_doc = json.load(open(sys.argv[2]))
    measured = points(measured_doc)
    baseline = points(baseline_doc)
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 5.0

    failures = []
    checked = 0
    for size, point in measured.items():
        base = baseline.get(size)
        if base is None:
            continue
        for metric in METRICS:
            if metric not in point or metric not in base:
                continue
            checked += 1
            limit = base[metric] * (1.0 + tolerance / 100.0)
            status = "FAIL" if point[metric] > limit else "ok"
            print(f"size {size:>3} {metric:<28} measured {point[metric]:8.3f}"
                  f"  baseline {base[metric]:8.3f}  (+{tolerance:.0f}% limit"
                  f" {limit:8.3f})  {status}")
            if point[metric] > limit:
                failures.append((size, metric))
    invariants = invariant_failures(measured, tolerance)
    checked += len(measured)
    failures += invariants
    par_failures, par_checked = parallel_failures(
        parallel_scaling(measured_doc), parallel_scaling(baseline_doc),
        tolerance)
    checked += par_checked
    failures += par_failures
    if checked == 0:
        sys.exit("error: no comparable (size, metric) points found")
    if failures:
        sys.exit(f"error: messages/job regressed beyond {tolerance}% on "
                 f"{failures}")
    print(f"message scaling OK ({checked} checks within {tolerance}%)")


if __name__ == "__main__":
    main()
