#!/usr/bin/env python3
"""CI gate for the message-scaling trajectory.

Compares a freshly measured fig10 JSON (bench_fig10_msg_per_job_scaling
--json=...) against the checked-in BENCH_messages.json and fails when
messages/job OR bytes/job regressed by more than the tolerance on any
point present in both files — on the batched direct transport, the tree
transport (the PR 4 headline), AND the coalition mode riding the tree
(the PR 5 group-addressed dissemination).  The bytes/job columns gate
the wire-size model end-to-end: a payload-bloating change that keeps
message counts flat still fails here.  Points are matched by federation
size, so the CI smoke run may measure only the 50-cluster point.  A
metric missing from the baseline (an older BENCH_messages.json) is
skipped, so adding a mode never breaks existing baselines.

Usage: check_messages.py MEASURED.json CHECKED_IN.json [tolerance_pct]
"""

import json
import sys


def points(doc):
    # BENCH_messages.json nests fig10 under "fig10"; a bare fig10 dump
    # is the artifact itself.
    fig10 = doc.get("fig10", doc)
    return {p["size"]: p for p in fig10["auction_batching"]["points"]}


METRICS = ("batched_msgs_per_job", "tree_wire_msgs_per_job",
           "coalition_wire_msgs_per_job",
           # bytes/job per transport column (wire-size model)
           "batched_bytes_per_job", "tree_bytes_per_job",
           "coalition_bytes_per_job",
           # kBid bytes/job on the tree (the convergecast prune + delta
           # encoding headline — a regression here means the compact
           # frame accounting degraded even if totals still pass)
           "tree_bid_bytes_per_job")

# Hard invariants checked within the MEASURED file alone (no baseline
# needed): the pruned + delta-encoded convergecast must keep the tree's
# total bytes/job at or below the batched direct transport's at EVERY
# federation size, with acceptance unchanged — the whole point of the
# overlay is paying fewer bytes, not just fewer messages.  The same 5%
# tolerance bounds measurement wiggle.


def invariant_failures(measured, tolerance):
    failures = []
    for size, point in sorted(measured.items()):
        if "tree_bytes_per_job" not in point:
            continue
        limit = point["batched_bytes_per_job"] * (1.0 + tolerance / 100.0)
        ok = point["tree_bytes_per_job"] <= limit
        print(f"size {size:>3} tree_bytes_per_job {point['tree_bytes_per_job']:10.1f}"
              f" <= batched_bytes_per_job {point['batched_bytes_per_job']:10.1f}"
              f" (+{tolerance:.0f}%)  {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append((size, "tree_bytes_per_job>batched_bytes_per_job"))
    return failures


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    measured = points(json.load(open(sys.argv[1])))
    baseline = points(json.load(open(sys.argv[2])))
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 5.0

    failures = []
    checked = 0
    for size, point in measured.items():
        base = baseline.get(size)
        if base is None:
            continue
        for metric in METRICS:
            if metric not in point or metric not in base:
                continue
            checked += 1
            limit = base[metric] * (1.0 + tolerance / 100.0)
            status = "FAIL" if point[metric] > limit else "ok"
            print(f"size {size:>3} {metric:<28} measured {point[metric]:8.3f}"
                  f"  baseline {base[metric]:8.3f}  (+{tolerance:.0f}% limit"
                  f" {limit:8.3f})  {status}")
            if point[metric] > limit:
                failures.append((size, metric))
    invariants = invariant_failures(measured, tolerance)
    checked += len(measured)
    failures += invariants
    if checked == 0:
        sys.exit("error: no comparable (size, metric) points found")
    if failures:
        sys.exit(f"error: messages/job regressed beyond {tolerance}% on "
                 f"{failures}")
    print(f"message scaling OK ({checked} checks within {tolerance}%)")


if __name__ == "__main__":
    main()
