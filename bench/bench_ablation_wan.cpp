// Ablation X6 — the WAN model vs the paper's free network.  The paper
// abstracts the Internet away (instant messages, free payload movement);
// this bench quantifies what that abstraction hides: per-pair control
// latency plus Eq. 1 payload staging erode the deadline slack migrating
// jobs live on, so migration and federation utility shrink as the WAN
// gets slower.

#include "bench_common.hpp"
#include "network/latency_model.hpp"

using namespace gridfed;

namespace {
void report(const char* label, const core::FederationResult& r) {
  std::uint64_t migrated = 0;
  for (const auto& row : r.resources) migrated += row.migrated;
  std::printf("%-34s accept=%6.2f%%  migrated=%5llu  avg-response=%.4g s  "
              "msgs=%llu\n",
              label, r.acceptance_pct(),
              static_cast<unsigned long long>(migrated),
              r.fed_response_excl.mean(),
              static_cast<unsigned long long>(r.total_messages));
}
}  // namespace

int main() {
  bench::banner("Ablation X6",
                "Free network (paper) vs WAN latency + Eq. 1 payload "
                "staging, 50/50 population");

  report("free network (paper assumption)",
         core::run_experiment(
             core::make_config(core::SchedulingMode::kEconomy), 8, 50));

  for (const auto policy : {cluster::QueuePolicy::kFcfs,
                            cluster::QueuePolicy::kConservativeBackfilling}) {
    std::printf("\nLRMS policy: %s\n",
                policy == cluster::QueuePolicy::kFcfs
                    ? "FCFS"
                    : "conservative backfilling");
    for (const double eff : {0.5, 0.25, 0.1, 0.02}) {
      auto cfg = core::make_config(core::SchedulingMode::kEconomy);
      cfg.queue_policy = policy;
      network::NetworkConfig wan;
      wan.kind = network::LatencyKind::kCoordinates;
      wan.base_latency = 0.05;
      wan.diameter = 0.2;
      wan.wan_efficiency = eff;
      cfg.wan = wan;
      char label[64];
      std::snprintf(label, sizeof label, "  WAN, %2.0f%% of NIC bandwidth",
                    100.0 * eff);
      report(label, core::run_experiment(cfg, 8, 50));
    }
  }

  std::printf(
      "\nRead: staging time scales with job data volume (Eq. 1) over the\n"
      "bottleneck link.  Under FCFS a far-future staged reservation drags\n"
      "the whole queue behind it (head-of-line blocking through the\n"
      "staging window), collapsing acceptance at mid-range WAN speeds;\n"
      "conservative backfilling lets local work flow around the staging\n"
      "holes and restores most of the federation's utility.  At very low\n"
      "WAN bandwidth migration dries up entirely and the system\n"
      "degenerates toward independent resources — a bound on how far the\n"
      "paper's free-network conclusions stretch.\n");
  return 0;
}
