// Kernel microbenchmarks (google-benchmark): event queue throughput,
// availability-profile operations, directory ranked queries, and the
// end-to-end jobs/second of a full federation run — the numbers that
// justify replacing the Java GridSim substrate (DESIGN.md substitution 2).

#include <benchmark/benchmark.h>

#include "cluster/availability_profile.hpp"
#include "cluster/catalog.hpp"
#include "core/experiment.hpp"
#include "directory/federation_directory.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace gridfed;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(1);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(sim::Event{times[i], sim::EventPriority::kArrival,
                        static_cast<sim::EventSeq>(i), [] {}});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 2);
}
// 1024/16384 are the historical heap-regime points; 65536/262144 are the
// cold-cache regimes where the hybrid queue spills to the ladder and the
// O(log n) heap comparisons stop fitting in cache (bench/README.md,
// "Future-event list").
BENCHMARK(BM_EventQueuePushPop)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(65536)
    ->Arg(262144);

// The same push-all/pop-all kernel with the future-event-list backend
// forced, one column per FelConfig::Kind: 0 = hybrid (the EventQueue
// default, heap below the spill threshold), 1 = heap-only (the seed's
// 4-ary heap), 2 = ladder-only (spilled from the first key).  The
// heap-vs-ladder columns locate the crossover; the hybrid column must
// track whichever backend wins at each size.
void BM_EventQueueFel(benchmark::State& state) {
  const auto kind = static_cast<sim::FelConfig::Kind>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  sim::Rng rng(1);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    sim::EventQueue q(sim::FelConfig{kind, 8192});
    for (std::size_t i = 0; i < n; ++i) {
      q.push(sim::Event{times[i], sim::EventPriority::kArrival,
                        static_cast<sim::EventSeq>(i), [] {}});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 2);
}
BENCHMARK(BM_EventQueueFel)
    ->ArgNames({"kind", "n"})
    ->ArgsProduct({{0, 1, 2}, {1024, 16384, 65536, 262144}});

void BM_SimulationEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    std::uint64_t acc = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule_at(static_cast<double>(i), sim::EventPriority::kControl,
                      [&acc] { ++acc; });
    }
    sim.run();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulationEventDispatch);

#if GRIDFED_TRACE
// The observability overhead pair: dispatch with the probe slot present
// but null (runtime-disabled tracing — the default production state)
// vs. a live counting probe (what the Federation installs when
// ObsConfig::metrics is on).  The null-probe number must stay within 2%
// of BM_SimulationEventDispatch on the pre-observability seed; see
// bench/README.md "Observability".
void BM_SimulationEventDispatchProbed(benchmark::State& state) {
  const bool live = state.range(0) != 0;
  for (auto _ : state) {
    sim::Simulation sim;
    std::uint64_t probed = 0;
    if (live) {
      sim.set_dispatch_probe(
          [](void* ctx, sim::SimTime) {
            ++*static_cast<std::uint64_t*>(ctx);
          },
          &probed);
    }
    std::uint64_t acc = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule_at(static_cast<double>(i), sim::EventPriority::kControl,
                      [&acc] { ++acc; });
    }
    sim.run();
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(probed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulationEventDispatchProbed)
    ->Arg(0)   // probe slot compiled in, runtime-off (null probe)
    ->Arg(1);  // live counting probe
#endif  // GRIDFED_TRACE

void BM_TracedEndToEndAuction(benchmark::State& state) {
  // Full two-day auction run with every observability facility on:
  // the end-to-end cost of tracing a real experiment (spans + metrics +
  // forensics), against BM_EndToEndTwoDayEconomy-style baselines.
  auto cfg = core::make_config(core::SchedulingMode::kAuction);
#if GRIDFED_TRACE
  cfg.obs.trace = state.range(0) != 0;
  cfg.obs.metrics = state.range(0) != 0;
  cfg.obs.forensics = state.range(0) != 0;
#endif
  for (auto _ : state) {
    const auto r = core::run_experiment(cfg, 8, 30);
    benchmark::DoNotOptimize(r.total_messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2662);
}
BENCHMARK(BM_TracedEndToEndAuction)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_AvailabilityReserve(benchmark::State& state) {
  sim::Rng rng(7);
  for (auto _ : state) {
    cluster::AvailabilityProfile p(1024);
    for (int i = 0; i < 1000; ++i) {
      const auto procs = static_cast<std::uint32_t>(rng.uniform_int(1, 256));
      const double dur = rng.uniform(1.0, 500.0);
      const double start = p.earliest_start(rng.uniform(0.0, 1e4), procs, dur);
      p.reserve(start, start + dur, procs);
    }
    benchmark::DoNotOptimize(p.step_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_AvailabilityReserve);

void BM_DirectoryRankedQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  directory::FederationDirectory dir;
  const auto specs = cluster::replicated_specs(n);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    dir.subscribe(directory::Quote::from_spec(
        static_cast<cluster::ResourceIndex>(i), specs[i]));
  }
  std::uint32_t r = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dir.query(directory::OrderBy::kCheapest,
                  1 + (r++ % static_cast<std::uint32_t>(n))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DirectoryRankedQuery)->Arg(8)->Arg(50);

void BM_EndToEndTwoDayEconomy(benchmark::State& state) {
  const auto cfg = core::make_config(core::SchedulingMode::kEconomy);
  for (auto _ : state) {
    const auto r = core::run_experiment(cfg, 8, 50);
    benchmark::DoNotOptimize(r.total_messages);
  }
  // 2662 jobs per run: report jobs/second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2662);
}
BENCHMARK(BM_EndToEndTwoDayEconomy)->Unit(benchmark::kMillisecond);

void BM_EndToEndScaling50(benchmark::State& state) {
  const auto cfg = core::make_config(core::SchedulingMode::kEconomy);
  for (auto _ : state) {
    const auto r = core::run_experiment(cfg, 50, 50);
    benchmark::DoNotOptimize(r.total_messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (2662 * 50 / 8));
}
BENCHMARK(BM_EndToEndScaling50)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
