// Table 1 — Workload and Resource Configuration.  Prints the federation's
// resource catalog exactly as the paper tabulates it, plus the derived
// Eq. 6 quote for cross-checking.

#include "bench_common.hpp"
#include "economy/pricing.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Table 1", "Workload and resource configuration");

  stats::Table t({"Index", "Resource / Cluster Name", "Trace Date",
                  "Processors", "MIPS", "Jobs(2day)", "Quote(Price)",
                  "Eq.6 quote", "NIC Bandwidth (Gb/s)"});
  const auto& entries = cluster::table1();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    t.add_row({std::to_string(i + 1), e.spec.name, e.trace_period,
               std::to_string(e.spec.processors),
               stats::Table::num(e.spec.mips, 0),
               std::to_string(e.two_day_jobs),
               stats::Table::num(e.spec.quote, 2),
               stats::Table::num(economy::quote_for(e.spec.mips), 3),
               stats::Table::num(e.spec.bandwidth, 1)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Quote check: Eq.6 with c=5.3 G$, mu_max=930 MIPS reproduces "
              "the paper's printed quotes.\n");
  return 0;
}
