// Ablation X3 — LRMS dispatch discipline: plain FCFS (GridSim SpaceShared,
// the paper's setting) vs conservative backfilling.  Backfilling fills
// schedule holes without delaying earlier reservations, so acceptance and
// utilization can only improve; this bench quantifies by how much on the
// same workload.

#include "bench_common.hpp"

using namespace gridfed;

namespace {
void report(const char* label, const core::FederationResult& r) {
  double mean_util = 0.0;
  for (const auto& row : r.resources) mean_util += row.utilization;
  mean_util /= static_cast<double>(r.resources.size());
  std::printf("%-30s acceptance=%6.2f%%  mean-util=%5.1f%%  "
              "avg-response=%.4g s\n",
              label, r.acceptance_pct(), 100.0 * mean_util,
              r.fed_response_excl.mean());
}
}  // namespace

int main() {
  bench::banner("Ablation X3",
                "FCFS vs conservative backfilling in the LRMS");

  for (const auto mode : {core::SchedulingMode::kIndependent,
                          core::SchedulingMode::kEconomy}) {
    std::printf("Mode: %s\n", core::to_string(mode));
    auto cfg = core::make_config(mode);
    cfg.queue_policy = cluster::QueuePolicy::kFcfs;
    report("  FCFS (paper setting)", core::run_experiment(cfg, 8, 50));
    cfg.queue_policy = cluster::QueuePolicy::kConservativeBackfilling;
    report("  conservative backfilling", core::run_experiment(cfg, 8, 50));
    std::printf("\n");
  }
  std::printf("Expected: backfilling lifts acceptance/utilization most on\n"
              "the saturated SDSC resources where FCFS head-of-line jobs\n"
              "strand processors.\n");
  return 0;
}
