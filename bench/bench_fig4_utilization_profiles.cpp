// Fig 4 — Resource owner perspective: average resource utilization (%)
// vs user population profile, one series per resource.
//
// The auction-mode section extends the figure to the market extension:
// the same OFC/OFT sweep run as sealed-bid reverse auctions, once under
// the classic price-only scoring and once under the multi-attribute
// per-job rule (market::ScoringRule::kPerJob), where OFT jobs clear on
// completion-estimate-weighted scores.  Under price-only scoring the
// profile barely matters — every auction ranks asks the same way — so
// the federation-wide QoS curve is flat; per-job scoring is what makes
// the sweep differentiate in auction mode.

#include "bench_common.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Fig 4",
                "Experiment 3 — utilization per resource vs population "
                "profile");

  const auto& sweep = bench::economy_sweep();
  std::vector<std::string> header{"Resource"};
  for (const auto& r : sweep) {
    header.push_back("OFT" + std::to_string(r.oft_percent) + "%");
  }
  stats::Table t(header);
  for (std::size_t i = 0; i < sweep.front().resources.size(); ++i) {
    std::vector<std::string> row{sweep.front().resources[i].name};
    for (const auto& r : sweep) {
      row.push_back(stats::Table::num(100.0 * r.resources[i].utilization, 1));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.str().c_str());

  // ---- auction-mode section: the sweep under both scoring rules ----------
  std::printf(
      "Auction mode — federation QoS vs profile, price-only vs\n"
      "multi-attribute (per-job) bid scoring:\n\n");
  const auto price_sweep =
      bench::auction_profile_sweep(market::ScoringRule::kPrice);
  const auto perjob_sweep =
      bench::auction_profile_sweep(market::ScoringRule::kPerJob);
  stats::Table qos({"Profile", "resp(price)", "resp(per-job)", "d-resp%",
                    "cost(price)", "cost(per-job)", "util(per-job)%"});
  for (std::size_t i = 0; i < price_sweep.size(); ++i) {
    const auto& a = price_sweep[i];
    const auto& b = perjob_sweep[i];
    const double ra = a.fed_response_excl.mean();
    const double rb = b.fed_response_excl.mean();
    double util = 0.0;
    for (const auto& res : b.resources) util += res.utilization;
    util /= static_cast<double>(b.resources.size());
    qos.add_row({bench::profile_label(a.oft_percent), stats::Table::num(ra, 1),
                 stats::Table::num(rb, 1),
                 stats::Table::num(ra > 0.0 ? 100.0 * (rb - ra) / ra : 0.0, 1),
                 stats::Table::num(a.fed_budget_excl.mean(), 1),
                 stats::Table::num(b.fed_budget_excl.mean(), 1),
                 stats::Table::num(100.0 * util, 1)});
  }
  std::printf("%s\n", qos.str().c_str());
  std::printf(
      "resp = mean response time (s) over accepted jobs; d-resp%% = the\n"
      "response-time change multi-attribute scoring buys at that profile.\n");
  return 0;
}
