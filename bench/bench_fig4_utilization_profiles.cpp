// Fig 4 — Resource owner perspective: average resource utilization (%)
// vs user population profile, one series per resource.

#include "bench_common.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Fig 4",
                "Experiment 3 — utilization per resource vs population "
                "profile");

  const auto& sweep = bench::economy_sweep();
  std::vector<std::string> header{"Resource"};
  for (const auto& r : sweep) {
    header.push_back("OFT" + std::to_string(r.oft_percent) + "%");
  }
  stats::Table t(header);
  for (std::size_t i = 0; i < sweep.front().resources.size(); ++i) {
    std::vector<std::string> row{sweep.front().resources[i].name};
    for (const auto& r : sweep) {
      row.push_back(stats::Table::num(100.0 * r.resources[i].utilization, 1));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.str().c_str());
  return 0;
}
