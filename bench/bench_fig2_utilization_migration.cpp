// Fig 2 — Resource utilization and job-migration plot.
// (a) average utilization per resource, Experiment 1 vs Experiment 2;
// (b) per-resource job split (local / migrated / remote) under federation.

#include "baselines/independent.hpp"
#include "baselines/no_economy.hpp"
#include "bench_common.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Fig 2", "Utilization lift and load-sharing, Exp 1 vs Exp 2");

  const auto indep = baselines::run_independent();
  const auto fed = baselines::run_federation_no_economy();

  std::printf("(a) Average resource utilization (%%)\n\n");
  stats::Table a({"Resource", "Independent", "Federation", "Delta"});
  for (std::size_t i = 0; i < indep.resources.size(); ++i) {
    const double u1 = 100.0 * indep.resources[i].utilization;
    const double u2 = 100.0 * fed.resources[i].utilization;
    a.add_row({indep.resources[i].name, stats::Table::num(u1, 2),
               stats::Table::num(u2, 2), stats::Table::num(u2 - u1, 2)});
  }
  std::printf("%s\n", a.str().c_str());

  std::printf("(b) No. of jobs vs resource (federation run)\n\n");
  stats::Table b({"Resource", "Total", "Processed Locally", "Migrated",
                  "Remote Processed"});
  for (const auto& row : fed.resources) {
    b.add_row({row.name, std::to_string(row.total_jobs),
               std::to_string(row.processed_locally),
               std::to_string(row.migrated),
               std::to_string(row.remote_processed)});
  }
  std::printf("%s\n", b.str().c_str());
  return 0;
}
