// Ablation X1 — cost-model choice.  The paper's §2.1 says owners charge
// "per unit time or per unit of million instructions executed" while
// Eq. 4 writes the per-time form; combined with Eq. 6 pricing the choices
// differ sharply (see economy/cost_model.hpp).  This bench quantifies all
// three:
//   * per-MI (default):      B = c_m l / 1000 — prices discriminate, OFT
//                            bills more than OFC, OFC saves users money;
//   * wall-time:             B = c_m D — the communication term couples
//                            price to bandwidth ratios;
//   * compute-only (Eq. 4):  degenerate — identical per-job cost at every
//                            site, so "cheapest" is meaningless.

#include "bench_common.hpp"
#include "economy/cost_model.hpp"

using namespace gridfed;

namespace {
void report(const core::FederationResult& r, economy::CostModel model) {
  std::printf("Cost model: %s\n", to_string(model));
  stats::Table t({"Resource", "Incentive (G$)", "Avg budget/job (G$)",
                  "Migrated", "Remote processed"});
  for (const auto& row : r.resources) {
    t.add_row({row.name, stats::Table::sci(row.incentive, 2),
               stats::Table::sci(row.budget_excl.mean(), 3),
               std::to_string(row.migrated),
               std::to_string(row.remote_processed)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("Total incentive: %s   total messages: %llu\n\n",
              stats::Table::sci(r.total_incentive, 3).c_str(),
              static_cast<unsigned long long>(r.total_messages));
}
}  // namespace

int main() {
  bench::banner("Ablation X1",
                "per-MI vs wall-time vs compute-only (literal Eq. 4) "
                "charging, 50/50 population");

  for (const auto model :
       {economy::CostModel::kPerMi, economy::CostModel::kWallTime,
        economy::CostModel::kComputeOnly}) {
    auto cfg = core::make_config(core::SchedulingMode::kEconomy);
    cfg.cost_model = model;
    report(core::run_experiment(cfg, 8, 50), model);
  }

  // The headline consequence: the OFT/OFC incentive ordering the paper
  // reports (2.30e9 vs 2.12e9) only reproduces under per-MI charging.
  std::printf("Incentive ordering check (OFT-only vs OFC-only):\n");
  for (const auto model :
       {economy::CostModel::kPerMi, economy::CostModel::kWallTime,
        economy::CostModel::kComputeOnly}) {
    auto cfg = core::make_config(core::SchedulingMode::kEconomy);
    cfg.cost_model = model;
    const auto ofc = core::run_experiment(cfg, 8, 0);
    const auto oft = core::run_experiment(cfg, 8, 100);
    std::printf("  %-13s OFT %s vs OFC %s  -> %s\n", to_string(model),
                stats::Table::sci(oft.total_incentive, 3).c_str(),
                stats::Table::sci(ofc.total_incentive, 3).c_str(),
                oft.total_incentive > ofc.total_incentive
                    ? "OFT earns more (paper's direction)"
                    : "OFC earns more");
  }
  return 0;
}
