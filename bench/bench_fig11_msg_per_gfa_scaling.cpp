// Fig 11 — System scalability: min / average / max messages *per GFA*
// (sent + received) as the federation grows from 10 to 50 resources
// (Experiment 5).  Also reports the auction-mode batching comparison on
// the per-GFA series and, with --json=PATH, dumps a machine-readable
// summary for bench/run_bench.sh.

#include <cstdio>
#include <string>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gridfed;
  bench::banner("Fig 11",
                "Experiment 5 — message complexity per GFA vs system size "
                "(10..50 resources)");

  const std::vector<std::size_t> sizes{10, 20, 30, 40, 50};
  const std::vector<std::uint32_t> profiles{0, 10, 20, 30, 50, 100};
  const auto cfg = core::make_config(core::SchedulingMode::kEconomy);
  const auto points = core::run_scaling_study(cfg, sizes, profiles);

  for (const char* which : {"Min", "Average", "Max"}) {
    std::printf("(%c) %s messages per GFA vs system size\n\n",
                which[0] == 'M' && which[1] == 'i' ? 'a'
                : which[0] == 'A'                  ? 'b'
                                                   : 'c',
                which);
    std::vector<std::string> header{"System size"};
    for (const auto p : profiles) {
      header.push_back("OFT" + std::to_string(p) + "%");
    }
    stats::Table t(header);
    std::size_t idx = 0;
    for (const auto n : sizes) {
      std::vector<std::string> row{std::to_string(n)};
      for (std::size_t p = 0; p < profiles.size(); ++p, ++idx) {
        const auto& acc = points[idx].msgs_per_gfa;
        const double v = which[1] == 'i'   ? acc.min()
                         : which[0] == 'A' ? acc.mean()
                                           : acc.max();
        row.push_back(stats::Table::num(v, 0));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s\n", t.str().c_str());
  }
  std::printf("Paper reference (avg/GFA): OFC 2.836e3 -> 8.943e3 (size 10 "
              "-> 40); OFT 6.039e3 -> 2.099e4.\n\n");

  // ---- auction mode: batched vs per-job solicitation ----------------------
  std::printf("Auction mode (70/30 OFC/OFT): messages per GFA with batched "
              "bid solicitation (window %.0f s)\n\n",
              bench::kBenchBatchWindow);
  // Deliberately re-simulates the same series fig10 runs: each figure
  // binary stays standalone (the bench convention), at the cost of a
  // duplicated sweep when run_bench.sh executes both.
  const std::vector<std::size_t> auction_sizes{8, 20, 50};
  const auto batching = bench::auction_batching_series(auction_sizes);
  stats::Table at({"System size", "Unbatched msgs/GFA", "Batched msgs/GFA",
                   "Reduction %", "Tree msgs/GFA", "Tree red. %",
                   "WAN batched", "WAN +piggyback", "Piggy red. %"});
  for (const auto& p : batching) {
    const double u = p.unbatched.msgs_per_gfa.mean();
    const double b = p.batched.msgs_per_gfa.mean();
    // Tree per-GFA load counts relay traffic at both edge endpoints
    // (MessageLedger::relay_at) — the honest per-node series.
    const double t = p.tree.msgs_per_gfa.mean();
    const double w = p.batched_wan.msgs_per_gfa.mean();
    const double g = p.piggyback.msgs_per_gfa.mean();
    at.add_row({std::to_string(p.size), stats::Table::num(u, 0),
                stats::Table::num(b, 0),
                stats::Table::num(u > 0.0 ? 100.0 * (1.0 - b / u) : 0.0, 1),
                stats::Table::num(t, 0),
                stats::Table::num(b > 0.0 ? 100.0 * (1.0 - t / b) : 0.0, 1),
                stats::Table::num(w, 0), stats::Table::num(g, 0),
                stats::Table::num(w > 0.0 ? 100.0 * (1.0 - g / w) : 0.0, 1)});
  }
  std::printf("%s\n", at.str().c_str());

  const std::string json = bench::json_path(argc, argv);
  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"artifact\": \"fig11\",\n");
    std::fprintf(f, "  \"economy_msgs_per_gfa_mean\": {");
    std::size_t idx = 0;
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      std::fprintf(f, "%s\"%zu\": [", s == 0 ? "" : ", ", sizes[s]);
      for (std::size_t p = 0; p < profiles.size(); ++p, ++idx) {
        std::fprintf(f, "%s%.2f", p == 0 ? "" : ", ",
                     points[idx].msgs_per_gfa.mean());
      }
      std::fprintf(f, "]");
    }
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"auction_batching\": {\"oft_percent\": 30, "
                    "\"batch_window_s\": %.1f, \"points\": [\n",
                 bench::kBenchBatchWindow);
    for (std::size_t i = 0; i < batching.size(); ++i) {
      const auto& p = batching[i];
      std::fprintf(f,
                   "    {\"size\": %zu, \"unbatched_msgs_per_gfa\": %.2f, "
                   "\"batched_msgs_per_gfa\": %.2f, "
                   "\"tree_msgs_per_gfa\": %.2f, "
                   "\"wan_batched_msgs_per_gfa\": %.2f, "
                   "\"wan_piggyback_msgs_per_gfa\": %.2f, "
                   "\"awards_piggybacked\": %llu}%s\n",
                   p.size, p.unbatched.msgs_per_gfa.mean(),
                   p.batched.msgs_per_gfa.mean(),
                   p.tree.msgs_per_gfa.mean(),
                   p.batched_wan.msgs_per_gfa.mean(),
                   p.piggyback.msgs_per_gfa.mean(),
                   static_cast<unsigned long long>(
                       p.piggyback.auctions.awards_piggybacked),
                   i + 1 < batching.size() ? "," : "");
    }
    std::fprintf(f, "  ]}\n}\n");
    std::fclose(f);
    std::printf("JSON summary written to %s\n", json.c_str());
  }
  return 0;
}
