// Fig 6 — Resource owner perspective: number of jobs rejected per
// resource vs user population profile (economy scheduling).

#include "bench_common.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Fig 6",
                "Experiment 3 — jobs rejected per resource vs population "
                "profile");

  const auto& sweep = bench::economy_sweep();
  std::vector<std::string> header{"Resource"};
  for (const auto& r : sweep) {
    header.push_back("OFT" + std::to_string(r.oft_percent) + "%");
  }
  stats::Table t(header);
  for (std::size_t i = 0; i < sweep.front().resources.size(); ++i) {
    std::vector<std::string> row{sweep.front().resources[i].name};
    for (const auto& r : sweep) {
      row.push_back(std::to_string(r.resources[i].rejected));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("Federation-wide rejected jobs per profile:\n");
  for (const auto& r : sweep) {
    std::printf("  OFT%3u%%: %llu of %llu (%.2f%%)\n", r.oft_percent,
                static_cast<unsigned long long>(r.total_rejected),
                static_cast<unsigned long long>(r.total_jobs),
                100.0 - r.acceptance_pct());
  }
  return 0;
}
