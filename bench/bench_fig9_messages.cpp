// Fig 9 — Remote-local message complexity (Experiment 4).
// (a) remote messages per GFA vs profile; (b) local messages per GFA vs
// profile; (c) total messages vs profile.

#include "bench_common.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Fig 9",
                "Experiment 4 — local/remote/total scheduling messages vs "
                "population profile");

  const auto& sweep = bench::economy_sweep();
  std::vector<std::string> header{"Resource"};
  for (const auto& r : sweep) {
    header.push_back("OFT" + std::to_string(r.oft_percent) + "%");
  }

  std::printf("(a) Remote messages per GFA vs profile\n\n");
  stats::Table a(header);
  for (std::size_t i = 0; i < sweep.front().resources.size(); ++i) {
    std::vector<std::string> row{sweep.front().resources[i].name};
    for (const auto& r : sweep) {
      row.push_back(std::to_string(r.resources[i].remote_messages));
    }
    a.add_row(std::move(row));
  }
  std::printf("%s\n", a.str().c_str());

  std::printf("(b) Local messages per GFA vs profile\n\n");
  stats::Table b(header);
  for (std::size_t i = 0; i < sweep.front().resources.size(); ++i) {
    std::vector<std::string> row{sweep.front().resources[i].name};
    for (const auto& r : sweep) {
      row.push_back(std::to_string(r.resources[i].local_messages));
    }
    b.add_row(std::move(row));
  }
  std::printf("%s\n", b.str().c_str());

  std::printf("(c) Total messages vs profile\n\n");
  stats::Table c({"Profile", "Total messages", "negotiate", "reply",
                  "job-submission", "job-completion", "directory msgs"});
  for (const auto& r : sweep) {
    c.add_row({bench::profile_label(r.oft_percent),
               std::to_string(r.total_messages),
               std::to_string(r.messages_by_type[0]),
               std::to_string(r.messages_by_type[1]),
               std::to_string(r.messages_by_type[2]),
               std::to_string(r.messages_by_type[3]),
               std::to_string(r.directory_traffic.total_messages())});
  }
  std::printf("%s\n", c.str().c_str());
  std::printf("Paper reference: 1.024e4 total messages at 100%% OFC vs "
              "1.948e4 at 100%% OFT; growth ~linear in %%OFT.\n");
  return 0;
}
