#pragma once
// Shared helpers for the experiment bench binaries: uniform headers, the
// Table 1 banner, and profile-sweep result caching so that the fig3..fig9
// binaries (which all consume the same sweep) stay cheap.

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/catalog.hpp"
#include "core/experiment.hpp"
#include "stats/table.hpp"

namespace gridfed::bench {

/// Prints the standard banner: which artifact this binary regenerates.
inline void banner(const std::string& artifact, const std::string& what) {
  std::printf("=============================================================\n");
  std::printf("gridfed reproduction — %s\n", artifact.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("=============================================================\n\n");
}

/// The Experiment 3/4 population sweep, computed once per process.
inline const std::vector<core::FederationResult>& economy_sweep() {
  static const std::vector<core::FederationResult> sweep =
      core::run_profile_sweep(
          core::make_config(core::SchedulingMode::kEconomy));
  return sweep;
}

/// Formats a profile as the paper labels it, e.g. "OFC70/OFT30".
inline std::string profile_label(std::uint32_t oft_percent) {
  return "OFC" + std::to_string(100 - oft_percent) + "/OFT" +
         std::to_string(oft_percent);
}

/// `--json=PATH` argument, or empty when absent.  The fig10/fig11
/// binaries use it to dump a machine-readable summary next to the human
/// tables (bench/run_bench.sh collects them into BENCH_messages.json).
inline std::string json_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return {};
}

/// One point of the auction-batching comparison: the same federation and
/// seed run in auction mode without and with batched solicitation.
struct BatchingPoint {
  std::size_t size = 0;
  core::FederationResult unbatched;
  core::FederationResult batched;

  [[nodiscard]] double reduction_pct() const {
    const double u = unbatched.msgs_per_job.mean();
    return u > 0.0 ? 100.0 * (1.0 - batched.msgs_per_job.mean() / u) : 0.0;
  }
};

/// The batch window the scaling benches report (chosen so the two-day
/// calibrated workload batches aggressively while the slack-fraction cap
/// keeps acceptance untouched; see bench/README.md).
inline constexpr double kBenchBatchWindow = 300.0;

/// Runs the auction-mode batching comparison over `sizes` at a 70/30
/// OFC/OFT population.
inline std::vector<BatchingPoint> auction_batching_series(
    const std::vector<std::size_t>& sizes, std::uint32_t oft_percent = 30) {
  std::vector<BatchingPoint> points;
  points.reserve(sizes.size());
  for (const std::size_t n : sizes) {
    BatchingPoint point;
    point.size = n;
    auto cfg = core::make_config(core::SchedulingMode::kAuction);
    point.unbatched = core::run_experiment(cfg, n, oft_percent);
    cfg.auction.batch_solicitations = true;
    cfg.auction.solicit_batch_window = kBenchBatchWindow;
    point.batched = core::run_experiment(cfg, n, oft_percent);
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace gridfed::bench
