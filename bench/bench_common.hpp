#pragma once
// Shared helpers for the experiment bench binaries: uniform headers, the
// Table 1 banner, and profile-sweep result caching so that the fig3..fig9
// binaries (which all consume the same sweep) stay cheap.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/catalog.hpp"
#include "core/experiment.hpp"
#include "core/federation.hpp"
#include "stats/table.hpp"
#include "workload/synthetic.hpp"

namespace gridfed::bench {

/// Prints the standard banner: which artifact this binary regenerates.
inline void banner(const std::string& artifact, const std::string& what) {
  std::printf("=============================================================\n");
  std::printf("gridfed reproduction — %s\n", artifact.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("=============================================================\n\n");
}

/// The Experiment 3/4 population sweep, computed once per process.
inline const std::vector<core::FederationResult>& economy_sweep() {
  static const std::vector<core::FederationResult> sweep =
      core::run_profile_sweep(
          core::make_config(core::SchedulingMode::kEconomy));
  return sweep;
}

/// The auction-mode population sweep (fig4's auction section): OFT = 0,
/// 20, ..., 100 under the given bid-scoring rule.  kPrice reproduces the
/// single-attribute market (the population profile only matters through
/// the DBC fallback); kPerJob is the multi-attribute market where OFT
/// jobs clear on completion-weighted scores.
inline std::vector<core::FederationResult> auction_profile_sweep(
    market::ScoringRule scoring, std::uint32_t step = 20) {
  std::vector<core::FederationResult> results;
  results.reserve(101 / step + 1);
  for (std::uint32_t oft = 0; oft <= 100; oft += step) {
    auto cfg = core::make_config(core::SchedulingMode::kAuction);
    cfg.auction.scoring = scoring;
    results.push_back(core::run_experiment(cfg, 8, oft));
  }
  return results;
}

/// Formats a profile as the paper labels it, e.g. "OFC70/OFT30".
inline std::string profile_label(std::uint32_t oft_percent) {
  return "OFC" + std::to_string(100 - oft_percent) + "/OFT" +
         std::to_string(oft_percent);
}

/// `--<name>=PATH` argument, or empty when absent.
inline std::string path_arg(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return {};
}

/// `--json=PATH` argument, or empty when absent.  The fig10/fig11
/// binaries use it to dump a machine-readable summary next to the human
/// tables (bench/run_bench.sh collects them into BENCH_messages.json).
inline std::string json_path(int argc, char** argv) {
  return path_arg(argc, argv, "json");
}

/// True when `flag` (e.g. "--auction-only") was passed.
inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// `--sizes=8,20,50` argument parsed into a size list (the CI perf-smoke
/// job runs only the 50-cluster point); `fallback` when absent.  A
/// malformed value is a hard error: the flag's consumer is a CI
/// correctness gate, and silently measuring the wrong points would let
/// it pass vacuously.
inline std::vector<std::size_t> sizes_arg(
    int argc, char** argv, std::vector<std::size_t> fallback,
    const std::string& name = "sizes") {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) != 0) continue;
    std::vector<std::size_t> sizes;
    std::size_t value = 0;
    for (const char c : arg.substr(prefix.size())) {
      if (c == ',') {
        if (value == 0) {
          std::fprintf(stderr, "bad --sizes value: %s\n", arg.c_str());
          std::exit(2);
        }
        sizes.push_back(value);
        value = 0;
      } else if (c >= '0' && c <= '9') {
        value = value * 10 + static_cast<std::size_t>(c - '0');
      } else {
        std::fprintf(stderr, "bad --sizes value: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    if (value == 0) {  // dangling comma or empty list
      std::fprintf(stderr, "bad --sizes value: %s\n", arg.c_str());
      std::exit(2);
    }
    sizes.push_back(value);
    return sizes;
  }
  return fallback;
}

/// `--threads=N` argument (0 = sequential), or `fallback` when absent.
/// The parallel-kernel sweeps default this to the hardware concurrency.
inline std::uint32_t threads_arg(int argc, char** argv,
                                 std::uint32_t fallback) {
  const std::string value = path_arg(argc, argv, "threads");
  if (value.empty()) return fallback;
  std::uint32_t threads = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') {
      std::fprintf(stderr, "bad --threads value: %s\n", value.c_str());
      std::exit(2);
    }
    threads = threads * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return threads;
}

/// WAN latency of the parallel-kernel sweeps.  sqrt(2): a realistic ~1 s
/// control delay that is incommensurate with the integer job-submit
/// lattice, so cross-lane events never collide at an identical
/// (time, priority) key — the one tie class where the sharded kernel's
/// causal-token order may differ from the sequential engine's insertion
/// order (see bench/README.md, "Parallel kernel").  The sweeps assert
/// sequential-vs-parallel outcome-digest equality, so they pin the
/// tie-free regime on purpose.
inline constexpr double kBenchParallelLatency = 1.4142135623730951;

/// One point of the auction-batching comparison: the same federation and
/// seed run in auction mode without batching, with batched solicitation,
/// and — on a 1 s-latency WAN, where awards and open solicitations
/// actually overlap in time — batched with and without award
/// piggybacking (kAwards riding the flush).  Under the paper's
/// instantaneous network the whole solicit/bid/award cascade collapses
/// into one instant, so there is never a queued solicitation for an award
/// to ride; the WAN pair is what makes the piggyback comparison
/// apples-to-apples.
struct BatchingPoint {
  std::size_t size = 0;
  core::FederationResult unbatched;
  core::FederationResult batched;
  core::FederationResult batched_wan;  ///< batching at kBenchPiggybackLatency
  core::FederationResult piggyback;    ///< batched_wan + piggyback_awards
  /// Batched solicitation over TransportKind::kTree (default fan-out and
  /// epoch): the cross-origin overlay aggregation on top of batching.
  core::FederationResult tree;
  /// The tree run with latency-proximity coalitions (ring buckets of
  /// kBenchCoalitionBucket) bidding as one participant each: the
  /// group-addressed dissemination on top of the overlay.
  core::FederationResult coalition;

  [[nodiscard]] double reduction_pct() const {
    const double u = unbatched.msgs_per_job.mean();
    return u > 0.0 ? 100.0 * (1.0 - batched.msgs_per_job.mean() / u) : 0.0;
  }
  [[nodiscard]] double piggyback_reduction_pct() const {
    const double u = batched_wan.msgs_per_job.mean();
    return u > 0.0 ? 100.0 * (1.0 - piggyback.msgs_per_job.mean() / u) : 0.0;
  }
  /// Tree-vs-batched uses the ledger-based wire metric: tree edge
  /// messages are shared across origins and not per-job attributable.
  [[nodiscard]] double tree_reduction_pct() const {
    const double u = batched.wire_msgs_per_job();
    return u > 0.0 ? 100.0 * (1.0 - tree.wire_msgs_per_job() / u) : 0.0;
  }
  /// Coalition-vs-tree: what group-addressed dissemination saves on top
  /// of the overlay (the PR 5 headline), on the same wire metric.
  [[nodiscard]] double coalition_reduction_pct() const {
    const double u = tree.wire_msgs_per_job();
    return u > 0.0 ? 100.0 * (1.0 - coalition.wire_msgs_per_job() / u) : 0.0;
  }
};

/// The batch window the scaling benches report (chosen so the two-day
/// calibrated workload batches aggressively while the slack-fraction cap
/// keeps acceptance untouched; see bench/README.md).
inline constexpr double kBenchBatchWindow = 300.0;

/// One-way message latency of the piggyback comparison's WAN setting.
inline constexpr double kBenchPiggybackLatency = 1.0;

/// Ring-bucket size of the coalition comparison (4 ring-adjacent
/// clusters per coalition, the CoalitionConfig default).
inline constexpr std::uint32_t kBenchCoalitionBucket = 4;

/// The auction + batched-solicitation configuration the parallel-kernel
/// sweeps execute on `threads` workers (0 = the sequential engine).
/// `fel` selects the future-event-list backend (hybrid by default); it
/// changes only the cost of the run, never its outcomes, so sweeping it
/// against a fixed thread count isolates the event-queue's share of the
/// wall clock.
inline core::FederationConfig parallel_kernel_config(
    std::uint32_t threads, const sim::FelConfig& fel = {}) {
  auto cfg = core::make_config(core::SchedulingMode::kAuction);
  cfg.auction.batch_solicitations = true;
  cfg.auction.solicit_batch_window = kBenchBatchWindow;
  cfg.network_latency = kBenchParallelLatency;
  cfg.threads = threads;
  cfg.fel = fel;
  return cfg;
}

/// One `threads`-worker run of the parallel-kernel configuration at `n`
/// clusters: wall-clock seconds, the FNV-1a digest of the per-job
/// outcome tuples (id, fate, executor, messages, cost, completion —
/// bitwise, sorted by id), and the kernel telemetry.  The digest is what
/// the sweeps compare across thread counts: equal digests mean the
/// sharded run reproduced the sequential outcomes exactly.
struct ParallelRunPoint {
  std::size_t size = 0;
  std::uint64_t jobs = 0;
  double seconds = 0.0;
  std::uint64_t digest = 0;
  std::uint32_t shards = 0;
  std::uint64_t windows = 0;
  std::uint64_t events = 0;
  double accept_pct = 0.0;
  double msgs_per_job = 0.0;
};

inline ParallelRunPoint parallel_kernel_run(std::size_t n,
                                            std::uint32_t threads,
                                            std::uint32_t oft_percent = 30,
                                            const sim::FelConfig& fel = {}) {
  const auto cfg = parallel_kernel_config(threads, fel);
  const auto specs = cluster::replicated_specs(n);
  core::Federation fed(cfg, specs);
  const auto traces =
      workload::generate_federation_workload(specs, cfg.window, cfg.seed);
  fed.load_workload(traces, workload::PopulationProfile{oft_percent});
  const auto t0 = std::chrono::steady_clock::now();
  const core::FederationResult result = fed.run();
  const auto t1 = std::chrono::steady_clock::now();

  std::vector<const core::JobOutcome*> rows;
  rows.reserve(fed.outcomes().size());
  for (const core::JobOutcome& o : fed.outcomes()) rows.push_back(&o);
  std::sort(rows.begin(), rows.end(),
            [](const core::JobOutcome* a, const core::JobOutcome* b) {
              return a->job.id < b->job.id;
            });
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xFFull;
      h *= 1099511628211ull;
    }
  };
  const auto mix_double = [&mix](double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof bits);
    mix(bits);
  };
  for (const core::JobOutcome* o : rows) {
    mix(o->job.id);
    mix(o->accepted ? 1 : 0);
    mix(o->executed_on);
    mix(o->messages);
    mix_double(o->cost);
    mix_double(o->completion);
  }

  ParallelRunPoint p;
  p.size = n;
  p.jobs = result.total_jobs;
  p.seconds = std::chrono::duration<double>(t1 - t0).count();
  p.digest = h;
  p.shards = fed.parallel_shards();
  p.windows = fed.parallel_windows();
  p.events = fed.events_executed();
  p.accept_pct = result.acceptance_pct();
  p.msgs_per_job = result.msgs_per_job.mean();
  return p;
}

/// Runs the auction-mode batching comparison over `sizes` at a 70/30
/// OFC/OFT population.
inline std::vector<BatchingPoint> auction_batching_series(
    const std::vector<std::size_t>& sizes, std::uint32_t oft_percent = 30) {
  std::vector<BatchingPoint> points;
  points.reserve(sizes.size());
  for (const std::size_t n : sizes) {
    BatchingPoint point;
    point.size = n;
    auto cfg = core::make_config(core::SchedulingMode::kAuction);
    point.unbatched = core::run_experiment(cfg, n, oft_percent);
    cfg.auction.batch_solicitations = true;
    cfg.auction.solicit_batch_window = kBenchBatchWindow;
    point.batched = core::run_experiment(cfg, n, oft_percent);
    auto tree_cfg = cfg;
    tree_cfg.transport.kind = transport::TransportKind::kTree;
    point.tree = core::run_experiment(tree_cfg, n, oft_percent);
    tree_cfg.coalitions.enabled = true;
    tree_cfg.coalitions.bucket_size = kBenchCoalitionBucket;
    point.coalition = core::run_experiment(tree_cfg, n, oft_percent);
    cfg.network_latency = kBenchPiggybackLatency;
    point.batched_wan = core::run_experiment(cfg, n, oft_percent);
    cfg.auction.piggyback_awards = true;
    point.piggyback = core::run_experiment(cfg, n, oft_percent);
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace gridfed::bench
