#pragma once
// Shared helpers for the experiment bench binaries: uniform headers, the
// Table 1 banner, and profile-sweep result caching so that the fig3..fig9
// binaries (which all consume the same sweep) stay cheap.

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/catalog.hpp"
#include "core/experiment.hpp"
#include "stats/table.hpp"

namespace gridfed::bench {

/// Prints the standard banner: which artifact this binary regenerates.
inline void banner(const std::string& artifact, const std::string& what) {
  std::printf("=============================================================\n");
  std::printf("gridfed reproduction — %s\n", artifact.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("=============================================================\n\n");
}

/// The Experiment 3/4 population sweep, computed once per process.
inline const std::vector<core::FederationResult>& economy_sweep() {
  static const std::vector<core::FederationResult> sweep =
      core::run_profile_sweep(
          core::make_config(core::SchedulingMode::kEconomy));
  return sweep;
}

/// Formats a profile as the paper labels it, e.g. "OFC70/OFT30".
inline std::string profile_label(std::uint32_t oft_percent) {
  return "OFC" + std::to_string(100 - oft_percent) + "/OFT" +
         std::to_string(oft_percent);
}

}  // namespace gridfed::bench
