#!/usr/bin/env bash
# Records the perf trajectory: runs the parallel-kernel sweep, the kernel
# microbenchmarks, and the fig10/fig11 message-scaling benches, emitting
#
#   BENCH_kernel.json       — sharded safe-window kernel trajectory: the
#                             1-thread (sequential engine) vs N-thread
#                             columns per federation size, with outcome
#                             digests, speedup and the host CPU count
#                             (bench_parallel_kernel --json)
#   BENCH_kernel_micro.json — google-benchmark JSON (BM_EventQueuePushPop,
#                             BM_SimulationEventDispatch, probed dispatch,
#                             ...)
#   BENCH_messages.json     — fig10 + fig11 summaries incl. the auction
#                             batching comparison (msgs/job AND bytes/job)
#                             and the parallel_scaling sweep at 50/200/500
#                             clusters
#   BENCH_metrics.json      — observability metrics time-series of the
#                             50-cluster auction+tree+coalition observed
#                             run (epoch-sampled counters + ledger columns)
#
# Usage: bench/run_bench.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  defaults to ./build
#   OUT_DIR    defaults to the repository root (this script's parent dir)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT_DIR="${2:-$REPO_ROOT}"

if [[ ! -x "$BUILD_DIR/bench_fig10_msg_per_job_scaling" ]]; then
  echo "error: bench binaries not found in $BUILD_DIR — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# The wall-clock trajectories (BENCH_kernel.json and the fig10
# parallel_scaling section) are only worth re-recording on a host that
# can actually run the N-thread column in parallel; on a 1- or 2-CPU
# container the sweep still RUNS — its digest cross-checks (sequential
# vs sharded, heap vs ladder FEL) gate correctness and fail the script
# on divergence — but the checked-in multi-core trajectory is kept.
NCPUS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

if [[ "$NCPUS" -ge 4 ]]; then
  echo "== parallel kernel sweep -> $OUT_DIR/BENCH_kernel.json"
  "$BUILD_DIR/bench_parallel_kernel" --json="$OUT_DIR/BENCH_kernel.json"
else
  echo "== parallel kernel sweep (digest check only: $NCPUS CPUs < 4," \
       "checked-in BENCH_kernel.json kept)"
  "$BUILD_DIR/bench_parallel_kernel" --json="$tmpdir/kernel.json"
fi

echo "== kernel microbenchmarks -> $OUT_DIR/BENCH_kernel_micro.json"
if [[ -x "$BUILD_DIR/bench_micro_kernel" ]]; then
  "$BUILD_DIR/bench_micro_kernel" \
    --benchmark_filter='BM_EventQueuePushPop|BM_EventQueueFel|BM_SimulationEventDispatch|BM_SimulationEventDispatchProbed|BM_DirectoryRankedQuery' \
    --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=true \
    --benchmark_out="$OUT_DIR/BENCH_kernel_micro.json" \
    --benchmark_out_format=json
else
  echo "  bench_micro_kernel missing (google-benchmark not installed); skipped"
fi

echo "== fig10/fig11 message scaling -> $OUT_DIR/BENCH_messages.json"
# --metrics rides the same invocation: after the comparison tables the
# binary re-runs the largest auction+tree+coalition point with the
# metrics registry on and dumps its epoch time-series.
# --churn adds the membership-churn sweep (0/10/20% mid-run cluster
# loss) and its churn_sweep columns to the JSON.
# The parallel sweep (sequential vs N-thread digests + wall-clock at
# 50/200/500 clusters) runs by default; --par-sizes narrows it.
"$BUILD_DIR/bench_fig10_msg_per_job_scaling" --json="$tmpdir/fig10.json" \
  --churn \
  --metrics="$OUT_DIR/BENCH_metrics.json" \
  > "$tmpdir/fig10.txt"
"$BUILD_DIR/bench_fig11_msg_per_gfa_scaling" --json="$tmpdir/fig11.json" \
  > "$tmpdir/fig11.txt"
{
  echo '{'
  echo '  "fig10":'
  sed 's/^/  /' "$tmpdir/fig10.json"
  echo '  ,'
  echo '  "fig11":'
  sed 's/^/  /' "$tmpdir/fig11.json"
  echo '}'
} > "$tmpdir/messages.json"
# On a <4-CPU host, splice the checked-in multi-core parallel_scaling
# trajectory back in (the freshly measured one was still digest-checked
# above via the sweep's own exit status; only its wall-clock columns are
# meaningless here).
if [[ "$NCPUS" -lt 4 && -f "$OUT_DIR/BENCH_messages.json" ]]; then
  python3 - "$tmpdir/messages.json" "$OUT_DIR/BENCH_messages.json" <<'PY' || true
import json, sys
new_path, old_path = sys.argv[1], sys.argv[2]
new = json.load(open(new_path))
keep = json.load(open(old_path)).get("fig10", {}).get("parallel_scaling")
if keep and new.get("fig10", {}).get("parallel_scaling"):
    new["fig10"]["parallel_scaling"] = keep
    json.dump(new, open(new_path, "w"), indent=2)
    open(new_path, "a").write("\n")
    print("  <4-CPU host: kept the checked-in parallel_scaling trajectory")
PY
fi
mv "$tmpdir/messages.json" "$OUT_DIR/BENCH_messages.json"

echo "== summary"
grep -A7 'Auction mode' "$tmpdir/fig10.txt" | head -10 || true
grep -A8 'Sharded parallel kernel' "$tmpdir/fig10.txt" | head -12 || true
echo "done: $OUT_DIR/BENCH_kernel.json $OUT_DIR/BENCH_kernel_micro.json" \
     "$OUT_DIR/BENCH_messages.json $OUT_DIR/BENCH_metrics.json"
