// Ablation X4 — Grid-Federation vs the NASA-superscheduler broadcast
// algorithms (S-I / R-I / Sy-I) from the related-work comparison.  The
// comparison the paper argues qualitatively (§4): broadcast migration
// costs Theta(n) messages per job and does not scale, while the directory
// walk needs only as many negotiations as the rank search visits.

#include "baselines/broadcast.hpp"
#include "bench_common.hpp"

using namespace gridfed;

int main() {
  bench::banner("Ablation X4",
                "Message complexity: Grid-Federation vs broadcast "
                "superschedulers (S-I, R-I, Sy-I)");

  const std::vector<std::size_t> sizes{8, 16, 24, 32};

  stats::Table t({"System size", "Scheduler", "Total messages",
                  "Avg msgs/job", "Acceptance (%)"});
  for (const auto n : sizes) {
    auto cfg = core::make_config(core::SchedulingMode::kEconomy);
    const auto gf = core::run_experiment(cfg, n, 30);
    t.add_row({std::to_string(n), "Grid-Federation (OFC70/OFT30)",
               std::to_string(gf.total_messages),
               stats::Table::num(gf.msgs_per_job.mean(), 2),
               stats::Table::num(gf.acceptance_pct(), 2)});

    for (const auto strategy : {baselines::BroadcastStrategy::kSenderInitiated,
                                baselines::BroadcastStrategy::kReceiverInitiated,
                                baselines::BroadcastStrategy::kSymmetric}) {
      baselines::BroadcastConfig bcfg;
      bcfg.strategy = strategy;
      const auto br = baselines::run_broadcast(bcfg, n);
      t.add_row({std::to_string(n), to_string(strategy),
                 std::to_string(br.total_messages),
                 stats::Table::num(br.msgs_per_job.mean(), 2),
                 stats::Table::num(br.acceptance_pct(), 2)});
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Expected: broadcast message totals grow ~linearly with n per\n"
              "migration (Theta(n) queries), Grid-Federation grows with the\n"
              "rank-walk depth only.\n");
  return 0;
}
