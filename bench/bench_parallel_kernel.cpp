// BENCH_kernel.json — the sharded conservative-parallel kernel's
// trajectory: the same calibrated auction workload (batched solicitation
// on a sqrt(2)-latency WAN) executed by the seed's sequential engine
// (the 1-thread column) and by the safe-window kernel on N worker
// threads (the N-thread column), per federation size.  The two columns
// pin both halves of the contract:
//
//   * correctness — the per-job outcome digests must be identical
//     (fate, executor, message count, cost and completion, bitwise);
//   * performance — wall-clock speedup at 50+ clusters, recorded next
//     to the host's CPU count so the CI gate (bench/check_messages.py)
//     can hold the floor only where the hardware can express it.
//
// A third, cheap column cross-checks the future-event-list backend: the
// sequential engine re-run with the ladder queue forced on from the
// first key must reproduce the heap-path digest bitwise
// (fel_digest_match in the JSON).  The FEL is pure mechanism — swapping
// it may change wall-clock but never outcomes — and this sweep is where
// that claim is re-proven on every recording host.
//
// Usage: bench_parallel_kernel [--sizes=12,25,50,100,200] [--threads=N]
//                              [--json=PATH]
//   --threads defaults to the hardware concurrency (min 2).

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gridfed;
  bench::banner("Parallel kernel",
                "Sequential vs sharded safe-window execution — outcome "
                "digests and wall-clock, per federation size");

  const unsigned hw = std::thread::hardware_concurrency();
  const std::uint32_t threads =
      bench::threads_arg(argc, argv, hw > 2 ? hw : 2);
  const std::vector<std::size_t> sizes =
      bench::sizes_arg(argc, argv, {12, 25, 50, 100, 200});

  std::printf("host CPUs: %u, N-thread column runs threads=%u\n\n", hw,
              threads);

  struct Row {
    bench::ParallelRunPoint seq;
    bench::ParallelRunPoint par;
    bench::ParallelRunPoint ladder;  ///< sequential, FEL forced to ladder
  };
  const sim::FelConfig ladder_fel{sim::FelConfig::Kind::kLadder, 8192};
  std::vector<Row> rows;
  rows.reserve(sizes.size());
  bool all_match = true;
  bool fel_match = true;
  for (const std::size_t n : sizes) {
    Row row;
    row.seq = bench::parallel_kernel_run(n, 0);
    row.par = bench::parallel_kernel_run(n, threads);
    row.ladder = bench::parallel_kernel_run(n, 0, 30, ladder_fel);
    all_match = all_match && row.seq.digest == row.par.digest;
    fel_match = fel_match && row.seq.digest == row.ladder.digest;
    rows.push_back(row);
  }

  stats::Table t({"System size", "Jobs", "1-thread s", "N-thread s",
                  "Speedup", "Shards", "Windows", "Events", "Digests",
                  "FEL"});
  for (const Row& r : rows) {
    const double speedup =
        r.par.seconds > 0.0 ? r.seq.seconds / r.par.seconds : 0.0;
    t.add_row({std::to_string(r.seq.size),
               std::to_string(r.seq.jobs),
               stats::Table::num(r.seq.seconds, 3),
               stats::Table::num(r.par.seconds, 3),
               stats::Table::num(speedup, 2),
               std::to_string(r.par.shards),
               std::to_string(r.par.windows),
               std::to_string(r.par.events),
               r.seq.digest == r.par.digest ? "match" : "DIVERGED",
               r.seq.digest == r.ladder.digest ? "match" : "DIVERGED"});
  }
  std::printf("%s\n", t.str().c_str());
  if (!all_match) {
    std::fprintf(stderr,
                 "error: sharded outcomes diverged from the sequential "
                 "engine\n");
  }
  if (!fel_match) {
    std::fprintf(stderr,
                 "error: ladder-FEL outcomes diverged from the heap "
                 "path\n");
  }

  const std::string json = bench::json_path(argc, argv);
  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"artifact\": \"parallel_kernel\",\n"
                 "  \"num_cpus\": %u,\n  \"threads\": %u,\n"
                 "  \"latency_s\": %.16f,\n  \"points\": [\n",
                 hw, threads, bench::kBenchParallelLatency);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      const double speedup =
          r.par.seconds > 0.0 ? r.seq.seconds / r.par.seconds : 0.0;
      std::fprintf(
          f,
          "    {\"size\": %zu, \"jobs\": %llu, "
          "\"seq_seconds\": %.4f, \"par_seconds\": %.4f, "
          "\"speedup\": %.4f, \"shards\": %u, \"windows\": %llu, "
          "\"events\": %llu, \"accept_pct\": %.2f, "
          "\"msgs_per_job\": %.4f, \"outcomes_match\": %s, "
          "\"fel_digest_match\": %s}%s\n",
          r.seq.size, static_cast<unsigned long long>(r.seq.jobs),
          r.seq.seconds, r.par.seconds, speedup, r.par.shards,
          static_cast<unsigned long long>(r.par.windows),
          static_cast<unsigned long long>(r.par.events), r.par.accept_pct,
          r.par.msgs_per_job, r.seq.digest == r.par.digest ? "true" : "false",
          r.seq.digest == r.ladder.digest ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("JSON summary written to %s\n", json.c_str());
  }
  return all_match && fel_match ? 0 : 1;
}
