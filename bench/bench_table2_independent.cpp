// Table 2 — Workload Processing Statistics (Without Federation).
// Experiment 1: every cluster schedules only its own trace; jobs whose
// deadline the local LRMS cannot honour are rejected.

#include "baselines/independent.hpp"
#include "bench_common.hpp"

int main() {
  using namespace gridfed;
  bench::banner("Table 2",
                "Experiment 1 — independent resources (no federation)");

  const auto result = baselines::run_independent();

  stats::Table t({"Index", "Resource / Cluster Name",
                  "Avg Resource Utilization (%)", "Total Job",
                  "Total Job Accepted (%)", "Total Job Rejected (%)"});
  for (std::size_t i = 0; i < result.resources.size(); ++i) {
    const auto& row = result.resources[i];
    t.add_row({std::to_string(i + 1), row.name,
               stats::Table::num(100.0 * row.utilization, 3),
               std::to_string(row.total_jobs),
               stats::Table::num(row.acceptance_pct(), 3),
               stats::Table::num(row.rejection_pct(), 3)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Federation-wide acceptance: %.2f%%  (paper: 90.30%%)\n",
              result.acceptance_pct());
  return 0;
}
