file(REMOVE_RECURSE
  "CMakeFiles/bench_overlay_directory.dir/bench/bench_overlay_directory.cpp.o"
  "CMakeFiles/bench_overlay_directory.dir/bench/bench_overlay_directory.cpp.o.d"
  "bench_overlay_directory"
  "bench_overlay_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overlay_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
