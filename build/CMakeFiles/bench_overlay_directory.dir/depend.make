# Empty dependencies file for bench_overlay_directory.
# This may be replaced when dependencies are built.
