file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dynamic_pricing.dir/bench/bench_ablation_dynamic_pricing.cpp.o"
  "CMakeFiles/bench_ablation_dynamic_pricing.dir/bench/bench_ablation_dynamic_pricing.cpp.o.d"
  "bench_ablation_dynamic_pricing"
  "bench_ablation_dynamic_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dynamic_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
