# Empty dependencies file for bench_ablation_dynamic_pricing.
# This may be replaced when dependencies are built.
