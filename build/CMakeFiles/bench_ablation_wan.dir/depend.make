# Empty dependencies file for bench_ablation_wan.
# This may be replaced when dependencies are built.
