file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wan.dir/bench/bench_ablation_wan.cpp.o"
  "CMakeFiles/bench_ablation_wan.dir/bench/bench_ablation_wan.cpp.o.d"
  "bench_ablation_wan"
  "bench_ablation_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
