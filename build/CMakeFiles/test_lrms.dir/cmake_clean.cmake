file(REMOVE_RECURSE
  "CMakeFiles/test_lrms.dir/tests/test_lrms.cpp.o"
  "CMakeFiles/test_lrms.dir/tests/test_lrms.cpp.o.d"
  "test_lrms"
  "test_lrms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lrms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
