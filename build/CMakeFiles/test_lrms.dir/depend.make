# Empty dependencies file for test_lrms.
# This may be replaced when dependencies are built.
