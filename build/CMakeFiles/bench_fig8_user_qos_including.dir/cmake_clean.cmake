file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_user_qos_including.dir/bench/bench_fig8_user_qos_including.cpp.o"
  "CMakeFiles/bench_fig8_user_qos_including.dir/bench/bench_fig8_user_qos_including.cpp.o.d"
  "bench_fig8_user_qos_including"
  "bench_fig8_user_qos_including.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_user_qos_including.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
