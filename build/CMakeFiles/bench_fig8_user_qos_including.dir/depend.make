# Empty dependencies file for bench_fig8_user_qos_including.
# This may be replaced when dependencies are built.
