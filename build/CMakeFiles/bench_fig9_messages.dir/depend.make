# Empty dependencies file for bench_fig9_messages.
# This may be replaced when dependencies are built.
