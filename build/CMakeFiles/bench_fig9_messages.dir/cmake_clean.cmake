file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_messages.dir/bench/bench_fig9_messages.cpp.o"
  "CMakeFiles/bench_fig9_messages.dir/bench/bench_fig9_messages.cpp.o.d"
  "bench_fig9_messages"
  "bench_fig9_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
