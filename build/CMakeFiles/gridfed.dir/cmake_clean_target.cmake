file(REMOVE_RECURSE
  "libgridfed.a"
)
