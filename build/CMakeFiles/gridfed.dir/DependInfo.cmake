
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/broadcast.cpp" "CMakeFiles/gridfed.dir/src/baselines/broadcast.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/baselines/broadcast.cpp.o.d"
  "/root/repo/src/baselines/independent.cpp" "CMakeFiles/gridfed.dir/src/baselines/independent.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/baselines/independent.cpp.o.d"
  "/root/repo/src/baselines/no_economy.cpp" "CMakeFiles/gridfed.dir/src/baselines/no_economy.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/baselines/no_economy.cpp.o.d"
  "/root/repo/src/cluster/availability_profile.cpp" "CMakeFiles/gridfed.dir/src/cluster/availability_profile.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/cluster/availability_profile.cpp.o.d"
  "/root/repo/src/cluster/catalog.cpp" "CMakeFiles/gridfed.dir/src/cluster/catalog.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/cluster/catalog.cpp.o.d"
  "/root/repo/src/cluster/job.cpp" "CMakeFiles/gridfed.dir/src/cluster/job.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/cluster/job.cpp.o.d"
  "/root/repo/src/cluster/lrms.cpp" "CMakeFiles/gridfed.dir/src/cluster/lrms.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/cluster/lrms.cpp.o.d"
  "/root/repo/src/cluster/resource.cpp" "CMakeFiles/gridfed.dir/src/cluster/resource.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/cluster/resource.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "CMakeFiles/gridfed.dir/src/core/experiment.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/core/experiment.cpp.o.d"
  "/root/repo/src/core/federation.cpp" "CMakeFiles/gridfed.dir/src/core/federation.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/core/federation.cpp.o.d"
  "/root/repo/src/core/gfa.cpp" "CMakeFiles/gridfed.dir/src/core/gfa.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/core/gfa.cpp.o.d"
  "/root/repo/src/core/message.cpp" "CMakeFiles/gridfed.dir/src/core/message.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/core/message.cpp.o.d"
  "/root/repo/src/core/trace_export.cpp" "CMakeFiles/gridfed.dir/src/core/trace_export.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/core/trace_export.cpp.o.d"
  "/root/repo/src/directory/federation_directory.cpp" "CMakeFiles/gridfed.dir/src/directory/federation_directory.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/directory/federation_directory.cpp.o.d"
  "/root/repo/src/directory/query_cost.cpp" "CMakeFiles/gridfed.dir/src/directory/query_cost.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/directory/query_cost.cpp.o.d"
  "/root/repo/src/directory/quote.cpp" "CMakeFiles/gridfed.dir/src/directory/quote.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/directory/quote.cpp.o.d"
  "/root/repo/src/economy/cost_model.cpp" "CMakeFiles/gridfed.dir/src/economy/cost_model.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/economy/cost_model.cpp.o.d"
  "/root/repo/src/economy/dynamic_pricing.cpp" "CMakeFiles/gridfed.dir/src/economy/dynamic_pricing.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/economy/dynamic_pricing.cpp.o.d"
  "/root/repo/src/economy/grid_bank.cpp" "CMakeFiles/gridfed.dir/src/economy/grid_bank.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/economy/grid_bank.cpp.o.d"
  "/root/repo/src/economy/pricing.cpp" "CMakeFiles/gridfed.dir/src/economy/pricing.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/economy/pricing.cpp.o.d"
  "/root/repo/src/market/auction_engine.cpp" "CMakeFiles/gridfed.dir/src/market/auction_engine.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/market/auction_engine.cpp.o.d"
  "/root/repo/src/market/bid_pricing.cpp" "CMakeFiles/gridfed.dir/src/market/bid_pricing.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/market/bid_pricing.cpp.o.d"
  "/root/repo/src/network/latency_model.cpp" "CMakeFiles/gridfed.dir/src/network/latency_model.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/network/latency_model.cpp.o.d"
  "/root/repo/src/overlay/attribute_index.cpp" "CMakeFiles/gridfed.dir/src/overlay/attribute_index.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/overlay/attribute_index.cpp.o.d"
  "/root/repo/src/overlay/chord_ring.cpp" "CMakeFiles/gridfed.dir/src/overlay/chord_ring.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/overlay/chord_ring.cpp.o.d"
  "/root/repo/src/overlay/node_id.cpp" "CMakeFiles/gridfed.dir/src/overlay/node_id.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/overlay/node_id.cpp.o.d"
  "/root/repo/src/overlay/overlay_directory.cpp" "CMakeFiles/gridfed.dir/src/overlay/overlay_directory.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/overlay/overlay_directory.cpp.o.d"
  "/root/repo/src/sim/distributions.cpp" "CMakeFiles/gridfed.dir/src/sim/distributions.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/sim/distributions.cpp.o.d"
  "/root/repo/src/sim/entity.cpp" "CMakeFiles/gridfed.dir/src/sim/entity.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/sim/entity.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/gridfed.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "CMakeFiles/gridfed.dir/src/sim/random.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/sim/random.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "CMakeFiles/gridfed.dir/src/sim/simulation.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/sim/simulation.cpp.o.d"
  "/root/repo/src/stats/accumulator.cpp" "CMakeFiles/gridfed.dir/src/stats/accumulator.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/stats/accumulator.cpp.o.d"
  "/root/repo/src/stats/auction_stats.cpp" "CMakeFiles/gridfed.dir/src/stats/auction_stats.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/stats/auction_stats.cpp.o.d"
  "/root/repo/src/stats/csv.cpp" "CMakeFiles/gridfed.dir/src/stats/csv.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/stats/csv.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "CMakeFiles/gridfed.dir/src/stats/table.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/stats/table.cpp.o.d"
  "/root/repo/src/stats/utilization.cpp" "CMakeFiles/gridfed.dir/src/stats/utilization.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/stats/utilization.cpp.o.d"
  "/root/repo/src/workload/calibration.cpp" "CMakeFiles/gridfed.dir/src/workload/calibration.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/workload/calibration.cpp.o.d"
  "/root/repo/src/workload/population.cpp" "CMakeFiles/gridfed.dir/src/workload/population.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/workload/population.cpp.o.d"
  "/root/repo/src/workload/statistics.cpp" "CMakeFiles/gridfed.dir/src/workload/statistics.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/workload/statistics.cpp.o.d"
  "/root/repo/src/workload/swf.cpp" "CMakeFiles/gridfed.dir/src/workload/swf.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/workload/swf.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "CMakeFiles/gridfed.dir/src/workload/synthetic.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/workload/synthetic.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "CMakeFiles/gridfed.dir/src/workload/trace.cpp.o" "gcc" "CMakeFiles/gridfed.dir/src/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
