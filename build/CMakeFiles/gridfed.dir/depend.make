# Empty dependencies file for gridfed.
# This may be replaced when dependencies are built.
