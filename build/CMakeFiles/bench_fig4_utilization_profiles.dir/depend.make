# Empty dependencies file for bench_fig4_utilization_profiles.
# This may be replaced when dependencies are built.
