file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_utilization_profiles.dir/bench/bench_fig4_utilization_profiles.cpp.o"
  "CMakeFiles/bench_fig4_utilization_profiles.dir/bench/bench_fig4_utilization_profiles.cpp.o.d"
  "bench_fig4_utilization_profiles"
  "bench_fig4_utilization_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_utilization_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
