file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_backfilling.dir/bench/bench_ablation_backfilling.cpp.o"
  "CMakeFiles/bench_ablation_backfilling.dir/bench/bench_ablation_backfilling.cpp.o.d"
  "bench_ablation_backfilling"
  "bench_ablation_backfilling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_backfilling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
