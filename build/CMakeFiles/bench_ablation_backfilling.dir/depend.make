# Empty dependencies file for bench_ablation_backfilling.
# This may be replaced when dependencies are built.
