# Empty dependencies file for bench_fig2_utilization_migration.
# This may be replaced when dependencies are built.
