file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_utilization_migration.dir/bench/bench_fig2_utilization_migration.cpp.o"
  "CMakeFiles/bench_fig2_utilization_migration.dir/bench/bench_fig2_utilization_migration.cpp.o.d"
  "bench_fig2_utilization_migration"
  "bench_fig2_utilization_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_utilization_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
