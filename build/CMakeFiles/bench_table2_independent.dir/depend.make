# Empty dependencies file for bench_table2_independent.
# This may be replaced when dependencies are built.
