file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_independent.dir/bench/bench_table2_independent.cpp.o"
  "CMakeFiles/bench_table2_independent.dir/bench/bench_table2_independent.cpp.o.d"
  "bench_table2_independent"
  "bench_table2_independent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_independent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
