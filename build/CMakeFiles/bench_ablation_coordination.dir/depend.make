# Empty dependencies file for bench_ablation_coordination.
# This may be replaced when dependencies are built.
