file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coordination.dir/bench/bench_ablation_coordination.cpp.o"
  "CMakeFiles/bench_ablation_coordination.dir/bench/bench_ablation_coordination.cpp.o.d"
  "bench_ablation_coordination"
  "bench_ablation_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
