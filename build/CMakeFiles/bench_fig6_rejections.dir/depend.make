# Empty dependencies file for bench_fig6_rejections.
# This may be replaced when dependencies are built.
