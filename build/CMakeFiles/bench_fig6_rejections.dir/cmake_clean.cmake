file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rejections.dir/bench/bench_fig6_rejections.cpp.o"
  "CMakeFiles/bench_fig6_rejections.dir/bench/bench_fig6_rejections.cpp.o.d"
  "bench_fig6_rejections"
  "bench_fig6_rejections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rejections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
