file(REMOVE_RECURSE
  "CMakeFiles/test_cancellation.dir/tests/test_cancellation.cpp.o"
  "CMakeFiles/test_cancellation.dir/tests/test_cancellation.cpp.o.d"
  "test_cancellation"
  "test_cancellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cancellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
