# Empty dependencies file for test_cancellation.
# This may be replaced when dependencies are built.
