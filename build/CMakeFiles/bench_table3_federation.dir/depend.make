# Empty dependencies file for bench_table3_federation.
# This may be replaced when dependencies are built.
