file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_federation.dir/bench/bench_table3_federation.cpp.o"
  "CMakeFiles/bench_table3_federation.dir/bench/bench_table3_federation.cpp.o.d"
  "bench_table3_federation"
  "bench_table3_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
