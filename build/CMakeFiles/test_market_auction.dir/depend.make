# Empty dependencies file for test_market_auction.
# This may be replaced when dependencies are built.
