file(REMOVE_RECURSE
  "CMakeFiles/test_market_auction.dir/tests/test_market_auction.cpp.o"
  "CMakeFiles/test_market_auction.dir/tests/test_market_auction.cpp.o.d"
  "test_market_auction"
  "test_market_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_market_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
