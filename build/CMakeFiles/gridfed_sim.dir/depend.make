# Empty dependencies file for gridfed_sim.
# This may be replaced when dependencies are built.
