file(REMOVE_RECURSE
  "CMakeFiles/gridfed_sim.dir/examples/gridfed_sim.cpp.o"
  "CMakeFiles/gridfed_sim.dir/examples/gridfed_sim.cpp.o.d"
  "gridfed_sim"
  "gridfed_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridfed_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
