# Empty dependencies file for auction_market.
# This may be replaced when dependencies are built.
