file(REMOVE_RECURSE
  "CMakeFiles/auction_market.dir/examples/auction_market.cpp.o"
  "CMakeFiles/auction_market.dir/examples/auction_market.cpp.o.d"
  "auction_market"
  "auction_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
