file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_incentive.dir/bench/bench_fig3_incentive.cpp.o"
  "CMakeFiles/bench_fig3_incentive.dir/bench/bench_fig3_incentive.cpp.o.d"
  "bench_fig3_incentive"
  "bench_fig3_incentive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_incentive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
