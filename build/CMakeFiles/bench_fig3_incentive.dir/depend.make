# Empty dependencies file for bench_fig3_incentive.
# This may be replaced when dependencies are built.
