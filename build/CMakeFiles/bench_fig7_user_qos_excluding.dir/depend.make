# Empty dependencies file for bench_fig7_user_qos_excluding.
# This may be replaced when dependencies are built.
