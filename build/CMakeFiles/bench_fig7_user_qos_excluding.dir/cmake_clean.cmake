file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_user_qos_excluding.dir/bench/bench_fig7_user_qos_excluding.cpp.o"
  "CMakeFiles/bench_fig7_user_qos_excluding.dir/bench/bench_fig7_user_qos_excluding.cpp.o.d"
  "bench_fig7_user_qos_excluding"
  "bench_fig7_user_qos_excluding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_user_qos_excluding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
