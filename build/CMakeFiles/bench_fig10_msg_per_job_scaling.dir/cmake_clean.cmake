file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_msg_per_job_scaling.dir/bench/bench_fig10_msg_per_job_scaling.cpp.o"
  "CMakeFiles/bench_fig10_msg_per_job_scaling.dir/bench/bench_fig10_msg_per_job_scaling.cpp.o.d"
  "bench_fig10_msg_per_job_scaling"
  "bench_fig10_msg_per_job_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_msg_per_job_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
