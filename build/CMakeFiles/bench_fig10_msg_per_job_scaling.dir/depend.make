# Empty dependencies file for bench_fig10_msg_per_job_scaling.
# This may be replaced when dependencies are built.
