# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig10_msg_per_job_scaling.
