file(REMOVE_RECURSE
  "CMakeFiles/bench_market_auction.dir/bench/bench_market_auction.cpp.o"
  "CMakeFiles/bench_market_auction.dir/bench/bench_market_auction.cpp.o.d"
  "bench_market_auction"
  "bench_market_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_market_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
