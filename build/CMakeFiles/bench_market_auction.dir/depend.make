# Empty dependencies file for bench_market_auction.
# This may be replaced when dependencies are built.
