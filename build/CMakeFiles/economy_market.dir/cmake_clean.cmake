file(REMOVE_RECURSE
  "CMakeFiles/economy_market.dir/examples/economy_market.cpp.o"
  "CMakeFiles/economy_market.dir/examples/economy_market.cpp.o.d"
  "economy_market"
  "economy_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/economy_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
