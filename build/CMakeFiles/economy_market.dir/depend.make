# Empty dependencies file for economy_market.
# This may be replaced when dependencies are built.
