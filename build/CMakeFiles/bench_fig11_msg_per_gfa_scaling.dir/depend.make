# Empty dependencies file for bench_fig11_msg_per_gfa_scaling.
# This may be replaced when dependencies are built.
