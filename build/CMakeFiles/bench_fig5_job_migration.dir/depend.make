# Empty dependencies file for bench_fig5_job_migration.
# This may be replaced when dependencies are built.
