file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_job_migration.dir/bench/bench_fig5_job_migration.cpp.o"
  "CMakeFiles/bench_fig5_job_migration.dir/bench/bench_fig5_job_migration.cpp.o.d"
  "bench_fig5_job_migration"
  "bench_fig5_job_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_job_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
