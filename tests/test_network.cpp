// Tests for the WAN model and its integration: per-pair latencies, Eq. 1
// payload transfer times, and the admission-control staging constraint
// (a migrated job cannot start before its data lands).

#include <gtest/gtest.h>

#include "cluster/catalog.hpp"
#include "core/experiment.hpp"
#include "network/latency_model.hpp"
#include "workload/synthetic.hpp"

namespace gridfed {
namespace {

network::LatencyModel table1_wan(network::NetworkConfig cfg = {}) {
  return network::LatencyModel(cfg, cluster::table1_specs());
}

TEST(LatencyModel, SelfLatencyIsZero) {
  auto wan = table1_wan();
  for (cluster::ResourceIndex i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(wan.latency(i, i), 0.0);
  }
}

TEST(LatencyModel, ConstantKindIsUniform) {
  network::NetworkConfig cfg;
  cfg.kind = network::LatencyKind::kConstant;
  cfg.base_latency = 0.08;
  auto wan = table1_wan(cfg);
  for (cluster::ResourceIndex a = 0; a < 8; ++a) {
    for (cluster::ResourceIndex b = 0; b < 8; ++b) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(wan.latency(a, b), 0.08);
    }
  }
}

TEST(LatencyModel, CoordinatesAreSymmetricAndBounded) {
  network::NetworkConfig cfg;
  cfg.kind = network::LatencyKind::kCoordinates;
  cfg.base_latency = 0.02;
  cfg.diameter = 0.2;
  auto wan = table1_wan(cfg);
  for (cluster::ResourceIndex a = 0; a < 8; ++a) {
    for (cluster::ResourceIndex b = 0; b < 8; ++b) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(wan.latency(a, b), wan.latency(b, a));
      EXPECT_GE(wan.latency(a, b), 0.02);
      // Max distance in the unit square is sqrt(2).
      EXPECT_LE(wan.latency(a, b), 0.02 + 0.2 * 1.4143);
    }
  }
  EXPECT_LE(wan.max_latency(), 0.02 + 0.2 * 1.4143);
}

TEST(LatencyModel, CoordinatesDeterministicByName) {
  network::NetworkConfig cfg;
  cfg.kind = network::LatencyKind::kCoordinates;
  auto a = table1_wan(cfg);
  auto b = table1_wan(cfg);
  EXPECT_DOUBLE_EQ(a.latency(0, 5), b.latency(0, 5));
}

TEST(LatencyModel, TransferUsesBottleneckBandwidth) {
  network::NetworkConfig cfg;
  cfg.kind = network::LatencyKind::kConstant;
  cfg.base_latency = 0.0;
  cfg.wan_efficiency = 0.5;
  auto wan = table1_wan(cfg);
  // CTC (gamma 2) -> LANL CM5 (gamma 1): bottleneck 1 Gb/s at 50% = 0.5.
  const auto ctc = cluster::catalog_index("CTC SP2");
  const auto cm5 = cluster::catalog_index("LANL CM5");
  EXPECT_DOUBLE_EQ(wan.transfer_time(ctc, cm5, 10.0), 20.0);
  // Local transfers are free.
  EXPECT_DOUBLE_EQ(wan.transfer_time(ctc, ctc, 10.0), 0.0);
}

TEST(LatencyModel, InvalidConfigRejected) {
  network::NetworkConfig cfg;
  cfg.wan_efficiency = 0.0;
  EXPECT_ANY_THROW(table1_wan(cfg));
}

// ---- Federation integration -------------------------------------------------

core::FederationConfig wan_config() {
  auto cfg = core::make_config(core::SchedulingMode::kEconomy);
  network::NetworkConfig wan;
  wan.kind = network::LatencyKind::kCoordinates;
  wan.base_latency = 0.05;
  wan.diameter = 0.2;
  cfg.wan = wan;
  return cfg;
}

TEST(WanFederation, RunsToCompletionWithAllInvariants) {
  const auto cfg = wan_config();
  auto specs = cluster::table1_specs();
  core::Federation fed(cfg, specs);
  fed.load_workload(
      workload::generate_federation_workload(specs, cfg.window, cfg.seed),
      workload::PopulationProfile{50});
  const auto result = fed.run();
  EXPECT_EQ(result.total_accepted + result.total_rejected, result.total_jobs);
  // Deadline guarantees must survive the staging constraint.
  for (const auto& o : fed.outcomes()) {
    if (!o.accepted) continue;
    EXPECT_LE(o.completion, o.job.absolute_deadline() + 1e-6)
        << "job " << o.job.id;
  }
}

TEST(WanFederation, MigratedJobsStartAfterDataLands) {
  const auto cfg = wan_config();
  auto specs = cluster::table1_specs();
  core::Federation fed(cfg, specs);
  fed.load_workload(
      workload::generate_federation_workload(specs, cfg.window, cfg.seed),
      workload::PopulationProfile{50});
  (void)fed.run();
  std::uint64_t checked = 0;
  for (const auto& o : fed.outcomes()) {
    if (!o.accepted || !o.migrated()) continue;
    const auto staging = fed.payload_staging_time(o.job, o.executed_on);
    EXPECT_GE(o.start + 1e-9, o.job.submit + staging) << "job " << o.job.id;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(WanFederation, StagingMakesMigrationStrictlyHarder) {
  // Payload staging consumes deadline slack, so a WAN federation migrates
  // no more jobs than a free-network one on the same workload.
  const auto free_net =
      core::run_experiment(core::make_config(core::SchedulingMode::kEconomy),
                           8, 50);
  const auto wan = core::run_experiment(wan_config(), 8, 50);
  std::uint64_t free_migrated = 0, wan_migrated = 0;
  for (const auto& row : free_net.resources) free_migrated += row.migrated;
  for (const auto& row : wan.resources) wan_migrated += row.migrated;
  EXPECT_LE(wan_migrated, free_migrated);
  EXPECT_GT(wan_migrated, 0u);
}

TEST(WanFederation, TimeoutValidationUsesWorstPairLatency) {
  auto cfg = wan_config();
  cfg.negotiate_timeout = 0.05;  // below 2x the worst pair latency
  EXPECT_ANY_THROW(core::Federation(cfg, cluster::table1_specs()));
}

}  // namespace
}  // namespace gridfed
