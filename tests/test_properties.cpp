// Parameterized property tests: federation-wide invariants that must hold
// for every (mode, population profile, seed) combination.  These sweep the
// full two-day synthetic workload, so each instantiation is an end-to-end
// soundness check of the whole stack.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "cluster/catalog.hpp"
#include "core/experiment.hpp"
#include "workload/synthetic.hpp"

namespace gridfed::core {
namespace {

using Params = std::tuple<SchedulingMode, std::uint32_t, std::uint64_t>;

class FederationInvariants : public ::testing::TestWithParam<Params> {
 protected:
  static FederationResult& result() {
    // One simulation per parameter set, shared by all assertions in the
    // suite instance (results are cached by parameter).
    static std::map<Params, FederationResult> cache;
    const auto key = GetParam();
    auto it = cache.find(key);
    if (it == cache.end()) {
      auto cfg = make_config(std::get<0>(key), std::get<2>(key));
      it = cache.emplace(key, run_experiment(cfg, 8, std::get<1>(key))).first;
    }
    return it->second;
  }
};

TEST_P(FederationInvariants, JobConservation) {
  const auto& r = result();
  EXPECT_EQ(r.total_accepted + r.total_rejected, r.total_jobs);
  std::uint64_t per_resource = 0;
  for (const auto& row : r.resources) {
    EXPECT_EQ(row.accepted + row.rejected, row.total_jobs) << row.name;
    EXPECT_EQ(row.processed_locally + row.migrated, row.accepted) << row.name;
    per_resource += row.total_jobs;
  }
  EXPECT_EQ(per_resource, r.total_jobs);
}

TEST_P(FederationInvariants, MigrationConservation) {
  const auto& r = result();
  std::uint64_t migrated = 0, remote = 0;
  for (const auto& row : r.resources) {
    migrated += row.migrated;
    remote += row.remote_processed;
  }
  EXPECT_EQ(migrated, remote);
}

TEST_P(FederationInvariants, UtilizationBounded) {
  for (const auto& row : result().resources) {
    EXPECT_GE(row.utilization, 0.0) << row.name;
    EXPECT_LE(row.utilization, 1.0 + 1e-12) << row.name;
  }
}

TEST_P(FederationInvariants, MessageLedgerBalances) {
  const auto& r = result();
  std::uint64_t local = 0, remote = 0;
  for (const auto& row : r.resources) {
    local += row.local_messages;
    remote += row.remote_messages;
  }
  EXPECT_EQ(local, r.total_messages);
  EXPECT_EQ(remote, r.total_messages);
}

TEST_P(FederationInvariants, ProtocolMessageAlgebra) {
  const auto& r = result();
  // Every negotiate gets exactly one reply; every migrated job exactly one
  // submission and one completion.
  EXPECT_EQ(r.messages_by_type[0], r.messages_by_type[1]);
  EXPECT_EQ(r.messages_by_type[2], r.messages_by_type[3]);
  std::uint64_t migrated = 0;
  for (const auto& row : r.resources) migrated += row.migrated;
  EXPECT_EQ(r.messages_by_type[2], migrated);
  EXPECT_EQ(r.total_messages,
            r.messages_by_type[0] + r.messages_by_type[1] +
                r.messages_by_type[2] + r.messages_by_type[3]);
}

TEST_P(FederationInvariants, EconomyBankConsistency) {
  const auto& r = result();
  double incentives = 0.0, spending = 0.0;
  for (const auto& row : r.resources) {
    EXPECT_GE(row.incentive, 0.0);
    incentives += row.incentive;
    spending += row.spent_by_home;
  }
  EXPECT_NEAR(incentives, r.total_incentive,
              1e-9 * std::max(1.0, incentives));
  EXPECT_NEAR(spending, r.total_incentive, 1e-9 * std::max(1.0, spending));
}

TEST_P(FederationInvariants, ResponseAccumulatorsCoverAcceptedJobs) {
  const auto& r = result();
  for (const auto& row : r.resources) {
    EXPECT_EQ(row.response_excl.count(), row.accepted) << row.name;
    EXPECT_EQ(row.response_incl.count(), row.total_jobs) << row.name;
    if (row.accepted > 0) {
      EXPECT_GT(row.response_excl.mean(), 0.0) << row.name;
    }
  }
  EXPECT_EQ(r.fed_response_excl.count(), r.total_accepted);
  EXPECT_EQ(r.fed_response_incl.count(), r.total_jobs);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndProfiles, FederationInvariants,
    ::testing::Values(
        std::make_tuple(SchedulingMode::kIndependent, 0u, 0x9042005ULL),
        std::make_tuple(SchedulingMode::kFederationNoEconomy, 0u,
                        0x9042005ULL),
        std::make_tuple(SchedulingMode::kEconomy, 0u, 0x9042005ULL),
        std::make_tuple(SchedulingMode::kEconomy, 30u, 0x9042005ULL),
        std::make_tuple(SchedulingMode::kEconomy, 50u, 0x9042005ULL),
        std::make_tuple(SchedulingMode::kEconomy, 70u, 0x9042005ULL),
        std::make_tuple(SchedulingMode::kEconomy, 100u, 0x9042005ULL),
        std::make_tuple(SchedulingMode::kEconomy, 50u, 0xDEADBEEFULL),
        std::make_tuple(SchedulingMode::kEconomy, 50u, 0x12345678ULL)),
    [](const ::testing::TestParamInfo<Params>& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (auto& c : name) {
        if (c == '+' || c == '-') c = '_';
      }
      return name + "_oft" + std::to_string(std::get<1>(info.param)) +
             "_seed" + std::to_string(std::get<2>(info.param) % 1000);
    });

// Deadline soundness deserves direct per-outcome checking (not just
// aggregates): every accepted job in every mode completes by s + d.
class DeadlineSoundness
    : public ::testing::TestWithParam<std::tuple<SchedulingMode,
                                                 std::uint32_t>> {};

TEST_P(DeadlineSoundness, AcceptedJobsMeetDeadline) {
  const auto [mode, oft] = GetParam();
  auto cfg = make_config(mode);
  auto specs = cluster::table1_specs();
  Federation fed(cfg, specs);
  const auto traces = workload::generate_federation_workload(
      specs, cfg.window, cfg.seed);
  std::optional<workload::PopulationProfile> profile;
  if (mode == SchedulingMode::kEconomy) {
    profile = workload::PopulationProfile{oft};
  }
  fed.load_workload(traces, profile);
  (void)fed.run();
  std::uint64_t checked = 0;
  for (const auto& o : fed.outcomes()) {
    if (!o.accepted) continue;
    ++checked;
    ASSERT_LE(o.completion, o.job.absolute_deadline() + 1e-6)
        << "job " << o.job.id << " missed its guaranteed deadline";
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, DeadlineSoundness,
    ::testing::Values(
        std::make_tuple(SchedulingMode::kIndependent, 0u),
        std::make_tuple(SchedulingMode::kFederationNoEconomy, 0u),
        std::make_tuple(SchedulingMode::kEconomy, 0u),
        std::make_tuple(SchedulingMode::kEconomy, 50u),
        std::make_tuple(SchedulingMode::kEconomy, 100u)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (auto& c : name) {
        if (c == '+' || c == '-') c = '_';
      }
      return name + "_oft" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace gridfed::core
