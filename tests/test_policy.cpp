// Per-mode policy parity suite.  The SchedulingPolicy extraction moved
// every mode's scheduling logic out of the Gfa god class; these tests pin
// each refactored mode to the *seed implementation's* per-job outcomes
// and message counts, bit-identically, on the determinism workload (8
// Table 1 resources, two-day calibrated synthetic traces, default seed).
//
// The golden hashes below were captured from the pre-refactor tree (the
// monolithic Gfa at commit "PR 2"): an FNV-1a digest over every job's
// (id, accepted, executed_on, start, completion, cost, negotiations,
// messages) tuple in job-id order.  Any behavioural drift in a policy —
// a different rank walk, a changed message count, a perturbed award
// ranking — changes the digest.
//
// Also covers the policy layer's own seams: the stray-message defaults,
// the provider-side bid cache (AuctionConfig::bid_cache_ttl), and the
// award piggybacking counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/catalog.hpp"
#include "core/experiment.hpp"
#include "sim/hash.hpp"
#include "workload/synthetic.hpp"

namespace gridfed {
namespace {

template <typename T>
std::uint64_t mix(std::uint64_t h, T value) {
  return sim::fnv1a_mix(h, value);
}

std::uint64_t outcome_hash(const std::vector<core::JobOutcome>& outcomes) {
  std::vector<const core::JobOutcome*> sorted;
  sorted.reserve(outcomes.size());
  for (const auto& o : outcomes) sorted.push_back(&o);
  std::sort(sorted.begin(), sorted.end(),
            [](const core::JobOutcome* a, const core::JobOutcome* b) {
              return a->job.id < b->job.id;
            });
  std::uint64_t h = sim::kFnvOffsetBasis;
  for (const core::JobOutcome* o : sorted) {
    h = mix(h, o->job.id);
    h = mix(h, static_cast<std::uint64_t>(o->accepted));
    h = mix(h, static_cast<std::uint64_t>(o->executed_on));
    h = mix(h, o->start);
    h = mix(h, o->completion);
    h = mix(h, o->cost);
    h = mix(h, static_cast<std::uint64_t>(o->negotiations));
    h = mix(h, o->messages);
  }
  return h;
}

struct RunDigest {
  std::uint64_t hash = 0;
  std::uint64_t messages = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  stats::AuctionStats auctions;
};

RunDigest digest(const core::FederationConfig& cfg, std::uint32_t oft) {
  auto specs = cluster::replicated_specs(8);
  core::Federation fed(cfg, specs);
  const auto traces =
      workload::generate_federation_workload(specs, cfg.window, cfg.seed);
  std::optional<workload::PopulationProfile> profile;
  if (cfg.mode == core::SchedulingMode::kEconomy ||
      cfg.mode == core::SchedulingMode::kAuction) {
    profile = workload::PopulationProfile{oft};
  }
  fed.load_workload(traces, profile);
  const auto result = fed.run();
  return RunDigest{outcome_hash(fed.outcomes()), result.total_messages,
                   result.total_accepted, result.total_rejected,
                   result.auctions};
}

void expect_seed_identical(const RunDigest& d, std::uint64_t hash,
                           std::uint64_t messages, std::uint64_t accepted,
                           std::uint64_t rejected) {
  EXPECT_EQ(d.hash, hash);
  EXPECT_EQ(d.messages, messages);
  EXPECT_EQ(d.accepted, accepted);
  EXPECT_EQ(d.rejected, rejected);
}

// ---- parity with the pre-refactor Gfa ---------------------------------------

TEST(PolicyParity, IndependentReproducesSeed) {
  const auto d =
      digest(core::make_config(core::SchedulingMode::kIndependent), 0);
  expect_seed_identical(d, 0x6ec2c1006e3a08ebULL, 0, 2453, 209);
}

TEST(PolicyParity, NoEconomyReproducesSeed) {
  const auto d = digest(
      core::make_config(core::SchedulingMode::kFederationNoEconomy), 0);
  expect_seed_identical(d, 0xbaf2d890e647929cULL, 5138, 2657, 5);
}

TEST(PolicyParity, DbcReproducesSeedAtOft30) {
  const auto d = digest(core::make_config(core::SchedulingMode::kEconomy), 30);
  expect_seed_identical(d, 0x2514c40b32638affULL, 14758, 2659, 3);
}

TEST(PolicyParity, DbcReproducesSeedAtOft70) {
  const auto d = digest(core::make_config(core::SchedulingMode::kEconomy), 70);
  expect_seed_identical(d, 0x931abf9956ce5c1cULL, 20438, 2660, 2);
}

TEST(PolicyParity, AuctionFirstPriceReproducesSeed) {
  const auto d = digest(core::make_config(core::SchedulingMode::kAuction), 30);
  expect_seed_identical(d, 0xade2c15285cc51f7ULL, 45550, 2657, 5);
}

TEST(PolicyParity, AuctionVickreyReproducesSeed) {
  auto cfg = core::make_config(core::SchedulingMode::kAuction);
  cfg.auction.clearing = market::ClearingRule::kVickrey;
  const auto d = digest(cfg, 30);
  expect_seed_identical(d, 0x7ebc87bb170eac07ULL, 45550, 2657, 5);
}

TEST(PolicyParity, AuctionBatchedSolicitationReproducesSeed) {
  auto cfg = core::make_config(core::SchedulingMode::kAuction);
  cfg.auction.batch_solicitations = true;
  cfg.auction.solicit_batch_window = 300.0;
  const auto d = digest(cfg, 30);
  expect_seed_identical(d, 0xce9c52fe69546cbcULL, 27796, 2657, 5);
}

TEST(PolicyParity, DbcUnderFailureInjectionReproducesSeed) {
  auto cfg = core::make_config(core::SchedulingMode::kEconomy);
  cfg.message_drop_rate = 0.25;
  cfg.negotiate_timeout = 30.0;
  cfg.network_latency = 1.0;
  const auto d = digest(cfg, 30);
  expect_seed_identical(d, 0x18b7102689a07598ULL, 13672, 2530, 132);
}

// ---- policy-layer seams -----------------------------------------------------

TEST(PolicyLayer, StrayAuctionMessagesIgnoredOutsideAuctionMode) {
  // A kCallForBids or kBid delivered to a DBC-mode agent hits the base
  // policy's default handlers and is dropped without effect.
  const auto cfg = core::make_config(core::SchedulingMode::kEconomy);
  auto specs = cluster::table1_specs();
  core::Federation fed(cfg, specs);
  cluster::Job job;
  job.id = 42;
  job.origin = 1;
  job.processors = 1;
  core::Message stray{core::MessageType::kCallForBids, 1, 0, job};
  fed.gfa(0).receive(stray);
  stray.type = core::MessageType::kBid;
  fed.gfa(0).receive(stray);
  EXPECT_EQ(fed.gfa(0).scheduling_policy().counters().bid_cache_lookups, 0u);
}

TEST(PolicyLayer, MultiAttributeScoringBuysResponseTimeForOftUsers) {
  // At a 100% OFT population the per-job scoring rule must clear on
  // completion-weighted scores and measurably cut mean response time
  // against the price-only market (the fig4 auction-section claim).
  auto price = core::make_config(core::SchedulingMode::kAuction);
  price.auction.scoring = market::ScoringRule::kPrice;
  auto perjob = core::make_config(core::SchedulingMode::kAuction);
  perjob.auction.scoring = market::ScoringRule::kPerJob;
  const auto a = core::run_experiment(price, 8, 100);
  const auto b = core::run_experiment(perjob, 8, 100);
  EXPECT_LT(b.fed_response_excl.mean(), 0.9 * a.fed_response_excl.mean());
  // Same workload, same acceptance bar: the market clears the same jobs.
  EXPECT_EQ(a.total_accepted + a.total_rejected,
            b.total_accepted + b.total_rejected);
}

// ---- provider-side bid cache ------------------------------------------------

TEST(BidCache, DisabledByDefault) {
  const auto d = digest(core::make_config(core::SchedulingMode::kAuction), 30);
  EXPECT_EQ(d.auctions.bid_cache_lookups, 0u);
  EXPECT_EQ(d.auctions.bid_cache_hits, 0u);
}

TEST(BidCache, TtlServesRepeatPricingsAndCountsHits) {
  auto cfg = core::make_config(core::SchedulingMode::kAuction);
  cfg.auction.bid_cache_ttl = 3600.0;
  const auto d = digest(cfg, 30);
  EXPECT_GT(d.auctions.bid_cache_lookups, 0u);
  EXPECT_GT(d.auctions.bid_cache_hits, 0u);
  EXPECT_LE(d.auctions.bid_cache_hits, d.auctions.bid_cache_lookups);
  EXPECT_GT(d.auctions.bid_cache_hit_rate(), 0.0);
  EXPECT_LE(d.auctions.bid_cache_hit_rate(), 1.0);
  // Every job still gets a verdict: stale estimates can shift placements
  // but never lose jobs.
  EXPECT_EQ(d.accepted + d.rejected, 2662u);
}

TEST(BidCache, CachedRunsAreDeterministic) {
  auto cfg = core::make_config(core::SchedulingMode::kAuction);
  cfg.auction.bid_cache_ttl = 600.0;
  const auto a = digest(cfg, 30);
  const auto b = digest(cfg, 30);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.auctions.bid_cache_hits, b.auctions.bid_cache_hits);
}

// ---- award piggybacking -----------------------------------------------------

TEST(Piggyback, AwardsRideTheSolicitationFlush) {
  // Piggybacking needs awards and open solicitations to overlap in time,
  // which only happens with nonzero message latency: under the paper's
  // instantaneous network the whole solicit/bid/award cascade runs in one
  // event instant and the flush queue is always empty at award time.
  auto cfg = core::make_config(core::SchedulingMode::kAuction);
  cfg.network_latency = 1.0;
  cfg.auction.batch_solicitations = true;
  cfg.auction.solicit_batch_window = 300.0;
  const auto batched = digest(cfg, 30);
  EXPECT_EQ(batched.auctions.awards_piggybacked, 0u);  // off by default

  cfg.auction.piggyback_awards = true;
  const auto piggy = digest(cfg, 30);
  EXPECT_GT(piggy.auctions.awards_piggybacked, 0u);
  // Each ridden award saves (at least) its own wire message.
  EXPECT_LT(piggy.messages, batched.messages);
  EXPECT_EQ(piggy.accepted + piggy.rejected, 2662u);
}

TEST(Piggyback, NoOverlapUnderInstantaneousNetworkIsHarmless) {
  // With zero latency the flag is a no-op: nothing to ride, awards go
  // standalone, and results match plain batching bit-for-bit.
  auto cfg = core::make_config(core::SchedulingMode::kAuction);
  cfg.auction.batch_solicitations = true;
  cfg.auction.solicit_batch_window = 300.0;
  const auto batched = digest(cfg, 30);
  cfg.auction.piggyback_awards = true;
  const auto piggy = digest(cfg, 30);
  EXPECT_EQ(piggy.auctions.awards_piggybacked, 0u);
  EXPECT_EQ(piggy.hash, batched.hash);
  EXPECT_EQ(piggy.messages, batched.messages);
}

TEST(Piggyback, DeterministicUnderPiggybacking) {
  auto cfg = core::make_config(core::SchedulingMode::kAuction);
  cfg.network_latency = 1.0;
  cfg.auction.batch_solicitations = true;
  cfg.auction.solicit_batch_window = 300.0;
  cfg.auction.piggyback_awards = true;
  const auto a = digest(cfg, 30);
  const auto b = digest(cfg, 30);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.auctions.awards_piggybacked, b.auctions.awards_piggybacked);
}

}  // namespace
}  // namespace gridfed
