// Unit tests for the stats subsystem: accumulators, the utilization
// integrator, table rendering and CSV escaping.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "stats/accumulator.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"
#include "stats/utilization.hpp"

namespace gridfed::stats {
namespace {

TEST(Accumulator, EmptyDefaults) {
  Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MeanMinMax) {
  Accumulator acc;
  for (double x : {4.0, 1.0, 7.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 12.0);
}

TEST(Accumulator, VarianceMatchesTextbook) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  // Population variance of this classic set is 4; sample variance 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Accumulator, MergeEqualsSequential) {
  Accumulator a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmptyIsNoop) {
  Accumulator a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Utilization, FullBusyIsOne) {
  UtilizationIntegrator u(4);
  u.set_busy(0.0, 4);
  EXPECT_DOUBLE_EQ(u.utilization(10.0), 1.0);
}

TEST(Utilization, PiecewiseIntegral) {
  UtilizationIntegrator u(10);
  u.set_busy(0.0, 5);   // [0,4): 5 busy
  u.set_busy(4.0, 10);  // [4,8): 10 busy
  u.set_busy(8.0, 0);   // [8,10): idle
  // area = 5*4 + 10*4 = 60; capacity*horizon = 100.
  EXPECT_DOUBLE_EQ(u.utilization(10.0), 0.6);
}

TEST(Utilization, BusyAreaExtrapolatesCurrentSegment) {
  UtilizationIntegrator u(2);
  u.set_busy(0.0, 1);
  EXPECT_DOUBLE_EQ(u.busy_area(5.0), 5.0);
  EXPECT_DOUBLE_EQ(u.busy_area(10.0), 10.0);
}

TEST(Utilization, ZeroHorizonIsZero) {
  UtilizationIntegrator u(2);
  EXPECT_DOUBLE_EQ(u.utilization(0.0), 0.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_ANY_THROW(t.add_row({"only-one"}));
}

TEST(Table, NumFormatsFixed) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, SciFormatsScientific) {
  EXPECT_EQ(Table::sci(2300000000.0, 2), "2.30e+09");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRowsToDisk) {
  const std::string path = testing::TempDir() + "gridfed_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"h1", "h2"});
    csv.write_row({"1", "two,with comma"});
  }
  std::ifstream in(path);
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_EQ(body.str(), "h1,h2\n1,\"two,with comma\"\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gridfed::stats
