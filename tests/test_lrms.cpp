// Unit tests for the LRMS: FCFS space-sharing, completion estimation,
// backfilling, utilization accounting and the completion callback.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/lrms.hpp"
#include "sim/check.hpp"
#include "sim/simulation.hpp"

namespace gridfed::cluster {
namespace {

ResourceSpec small_cluster() {
  return ResourceSpec{"small", 8, 100.0, 1.0, 1.0};
}

Job make_job(JobId id, std::uint32_t procs, double submit = 0.0) {
  Job j;
  j.id = id;
  j.processors = procs;
  j.submit = submit;
  j.length_mi = 1000.0;
  return j;
}

struct Fixture {
  sim::Simulation sim;
  Lrms lrms;
  std::vector<CompletedJob> done;

  explicit Fixture(QueuePolicy policy = QueuePolicy::kFcfs)
      : lrms(sim, 0, small_cluster(), 0, policy) {
    lrms.set_completion_handler(
        [this](const CompletedJob& c) { done.push_back(c); });
  }
};

TEST(Lrms, ImmediateStartWhenIdle) {
  Fixture f;
  const auto res = f.lrms.submit(make_job(1, 4), 10.0);
  EXPECT_DOUBLE_EQ(res.start, 0.0);
  EXPECT_DOUBLE_EQ(res.completion, 10.0);
}

TEST(Lrms, EstimateMatchesSubsequentSubmit) {
  Fixture f;
  f.lrms.submit(make_job(1, 8), 50.0);  // occupies everything
  const auto j = make_job(2, 4);
  const auto est = f.lrms.estimate_completion(j, 10.0);
  const auto res = f.lrms.submit(j, 10.0);
  EXPECT_DOUBLE_EQ(est, res.completion);
  EXPECT_DOUBLE_EQ(res.start, 50.0);
}

TEST(Lrms, EstimateInfinityWhenJobTooLarge) {
  Fixture f;
  const auto j = make_job(1, 9);  // cluster has 8
  EXPECT_EQ(f.lrms.estimate_completion(j, 1.0), sim::kTimeInfinity);
}

TEST(Lrms, SubmitTooLargeThrows) {
  Fixture f;
  EXPECT_THROW(f.lrms.submit(make_job(1, 9), 1.0), sim::ContractViolation);
}

TEST(Lrms, FcfsKeepsArrivalOrderEvenWhenLaterJobWouldFit) {
  Fixture f;
  f.lrms.submit(make_job(1, 8), 10.0);  // [0,10) full machine
  f.lrms.submit(make_job(2, 8), 10.0);  // [10,20) full machine
  // A 1-proc job could run at t=0 only by jumping the queue; FCFS forbids.
  const auto res = f.lrms.submit(make_job(3, 1), 1.0);
  EXPECT_DOUBLE_EQ(res.start, 20.0);
}

TEST(Lrms, ConservativeBackfillingFillsHoles) {
  Fixture f(QueuePolicy::kConservativeBackfilling);
  f.lrms.submit(make_job(1, 8), 10.0);  // [0,10)
  f.lrms.submit(make_job(2, 8), 10.0);  // [10,20)
  // With backfilling there is no hole here, but a job needing few procs
  // after partial release can slot earlier than the FCFS tail.
  f.lrms.submit(make_job(3, 4), 5.0);   // reserves [20,25) on 4 procs
  const auto res = f.lrms.submit(make_job(4, 4), 5.0);
  // Backfilling: 4 procs are free during [20,25) alongside job 3.
  EXPECT_DOUBLE_EQ(res.start, 20.0);
}

TEST(Lrms, FcfsStartsNeverDecrease) {
  Fixture f;
  sim::SimTime last = 0.0;
  for (JobId id = 1; id <= 20; ++id) {
    const auto procs = static_cast<std::uint32_t>(1 + (id * 3) % 8);
    const auto res = f.lrms.submit(make_job(id, procs), 5.0 + (id % 4));
    EXPECT_GE(res.start, last);
    last = res.start;
  }
}

TEST(Lrms, CompletionCallbackFiresWithReservation) {
  Fixture f;
  const auto job = make_job(7, 2, 0.0);
  const auto res = f.lrms.submit(job, 12.0);
  f.sim.run();
  ASSERT_EQ(f.done.size(), 1u);
  EXPECT_EQ(f.done[0].job.id, 7u);
  EXPECT_DOUBLE_EQ(f.done[0].reservation.completion, res.completion);
  EXPECT_EQ(f.done[0].executed_on, 0u);
}

TEST(Lrms, CountsRunningQueuedCompleted) {
  Fixture f;
  f.lrms.submit(make_job(1, 8), 10.0);
  f.lrms.submit(make_job(2, 8), 10.0);
  EXPECT_EQ(f.lrms.queued_jobs(), 2u);
  EXPECT_EQ(f.lrms.running_jobs(), 0u);
  f.sim.run_until(5.0);
  EXPECT_EQ(f.lrms.running_jobs(), 1u);
  EXPECT_EQ(f.lrms.queued_jobs(), 1u);
  EXPECT_EQ(f.lrms.busy_processors(), 8u);
  f.sim.run();
  EXPECT_EQ(f.lrms.running_jobs(), 0u);
  EXPECT_EQ(f.lrms.jobs_completed(), 2u);
  EXPECT_EQ(f.lrms.busy_processors(), 0u);
}

TEST(Lrms, UtilizationIntegralExact) {
  Fixture f;
  f.lrms.submit(make_job(1, 4), 10.0);  // 4 procs x 10 s = 40 proc.s
  f.sim.run();
  // Over horizon 20 s on 8 procs: 40 / 160 = 0.25.
  EXPECT_DOUBLE_EQ(f.lrms.utilization().utilization(20.0), 0.25);
}

TEST(Lrms, InstantaneousLoadTracksBusyFraction) {
  Fixture f;
  f.lrms.submit(make_job(1, 6), 10.0);
  f.sim.run_until(5.0);
  EXPECT_DOUBLE_EQ(f.lrms.instantaneous_load(), 0.75);
}

TEST(Lrms, ExpectedWaitZeroWhenIdle) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.lrms.expected_wait(8, 10.0), 0.0);
}

TEST(Lrms, ExpectedWaitReflectsQueue) {
  Fixture f;
  f.lrms.submit(make_job(1, 8), 30.0);
  EXPECT_DOUBLE_EQ(f.lrms.expected_wait(1, 5.0), 30.0);
}

TEST(Lrms, DeadlineGuaranteeHoldsUnderLoad) {
  // The completion promised at submit() must be met exactly — this is the
  // soundness of the paper's admission control.
  Fixture f;
  std::vector<std::pair<JobId, sim::SimTime>> promises;
  for (JobId id = 1; id <= 50; ++id) {
    const auto procs = static_cast<std::uint32_t>(1 + (id * 5) % 8);
    const auto res = f.lrms.submit(make_job(id, procs, 0.0),
                                   3.0 + static_cast<double>(id % 7));
    promises.emplace_back(id, res.completion);
  }
  f.sim.run();
  ASSERT_EQ(f.done.size(), 50u);
  for (const auto& c : f.done) {
    const auto it = std::find_if(promises.begin(), promises.end(),
                                 [&](auto& p) { return p.first == c.job.id; });
    ASSERT_NE(it, promises.end());
    EXPECT_DOUBLE_EQ(c.reservation.completion, it->second);
  }
}

}  // namespace
}  // namespace gridfed::cluster
